"""§3's claim in benchmark form: five backends, one cover primitive.

Measures per-backend throughput on the same instrumented design and
asserts exact cover-count parity, plus the qualitative startup/throughput
trade-offs the paper describes (Treadle: no build cost, slower;
Verilator-like: build cost, faster).  Also reports the integration-effort
proxy: lines of backend-specific cover-support code.
"""

from pathlib import Path

import pytest

from repro.backends import (
    EssentBackend,
    FireSimBackend,
    TreadleBackend,
    VerilatorBackend,
)
from repro.coverage import instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate

from .conftest import write_result

SRC = Path(__file__).parent.parent / "src" / "repro" / "backends"

_throughput = {}
_counts = {}


def drive(sim, rounds=40):
    sim.poke("reset", 1)
    sim.step()
    sim.poke("reset", 0)
    sim.poke("resp_ready", 1)
    for i in range(rounds):
        sim.poke("req_valid", 1)
        sim.poke("req_bits", ((i * 7 + 3) << 16) | (i * 13 + 1))
        while not sim.peek("req_ready"):
            sim.step()
        sim.step()
        sim.poke("req_valid", 0)
        while not sim.peek("resp_valid"):
            sim.step()
        sim.step()
    return sim.cover_counts()


BACKENDS = {
    "treadle": lambda state: TreadleBackend().compile_state(state),
    "verilator": lambda state: VerilatorBackend().compile_state(state),
    "essent": lambda state: EssentBackend().compile_state(state),
    "firesim": lambda state: FireSimBackend(counter_width=16).compile_state(state),
}


@pytest.fixture(scope="module")
def gcd_state():
    state, _db = instrument(elaborate(Gcd()), metrics=["line", "fsm", "ready_valid"])
    return state


@pytest.mark.benchmark(group="backend-parity")
@pytest.mark.parametrize("backend", list(BACKENDS))
def test_backend_throughput_and_parity(benchmark, backend, gcd_state):
    sim = BACKENDS[backend](gcd_state)

    def run():
        if hasattr(sim, "fork"):
            return drive(sim.fork())
        return drive(BACKENDS[backend](gcd_state))

    counts = benchmark(run)
    _throughput[backend] = benchmark.stats.stats.median
    _counts[backend] = counts

    if len(_counts) == len(BACKENDS):
        reference = _counts["treadle"]
        for name, c in _counts.items():
            assert c == reference, f"{name} diverged from treadle"
        # compiled simulation is faster than interpretation
        assert _throughput["verilator"] < _throughput["treadle"]

        effort = {
            "treadle (native counters)": _count_cover_lines("treadle.py"),
            "verilator (generated code)": _count_cover_lines("verilator.py"),
            "essent (generated code)": _count_cover_lines("essent.py"),
            "firesim (scan chain pass)": _count_cover_lines("firesim/scanchain.py"),
            "formal (BMC queries)": _count_cover_lines("formal/bmc.py"),
        }
        lines = ["per-backend run time (median, same workload) and cover support LoC:"]
        for name in BACKENDS:
            lines.append(f"  {name:<10} {_throughput[name] * 1e3:>8.2f} ms")
        lines.append("")
        lines.append("backend cover-support footprint (file LoC, upper bound):")
        for name, loc in effort.items():
            lines.append(f"  {name:<28} {loc:>5} lines")
        lines.append("(paper: Treadle ~200 lines / <1 week; ESSENT 60 lines / 5h)")
        write_result("backend_parity", "\n".join(lines))


def _count_cover_lines(rel_path: str) -> int:
    text = (SRC / rel_path).read_text()
    return sum(
        1
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )
