"""§5.2 and §5.3: FireSim boot-scale runs; coverage merging and removal.

§5.2: the paper boots Linux on instrumented SoCs — 3.3 B cycles in 50.4 s
at 65 MHz for the Rocket config, scanning out 8060 16-bit counters in
12 ms.  We reproduce the *pipeline*: a real scan-chain run on the analog
SoC plus the wall-clock/scan-out timing model evaluated at paper scale.

§5.3: running a RISC-V test-suite-like set of programs under the software
simulator covers a large fraction of the points; excluding points covered
at least 10 times shrank the paper's FPGA counter count by 42 %.
"""

import pytest

from repro.backends import FireSimBackend, VerilatorBackend
from repro.backends.firesim import (
    SCAN_CLOCK_HZ,
    FireSimTimingModel,
    ScanChainInfo,
    estimate_fmax,
    estimate_module,
)
from repro.coverage import covered_points, filter_covered, instrument, merge_counts
from repro.designs.riscv_mini import RiscvMini, assemble
from repro.designs.soc import RocketLikeSoC
from repro.hcl import elaborate
from repro.passes import lower

from .conftest import write_result


@pytest.mark.benchmark(group="sec52")
def test_sec52_firesim_boot_pipeline(benchmark):
    # real scan-chain simulation at analog scale
    state, _db = instrument(
        elaborate(RocketLikeSoC(n_cores=2, addr_width=6, cache_sets=2)),
        metrics=["line"],
        flatten=True,
    )
    firesim = FireSimBackend(counter_width=16).compile_state(state)

    def boot_run():
        firesim.poke("reset", 1)
        firesim.step(2)
        firesim.poke("reset", 0)
        firesim.step(300)
        return firesim.cover_counts()

    counts = benchmark.pedantic(boot_run, rounds=1, iterations=1)
    assert any(v > 0 for v in counts.values())

    # paper-scale timing model
    rows = ["config          covers  width  fmax     sim 3.3B cycles  scan-out"]
    for config, n_covers, base_luts, depth, cycles in [
        ("RocketChip", 8060, 280_000, 22, 3_300_000_000),
        ("BOOM", 12059, 420_000, 30, 1_700_000_000),
    ]:
        from repro.backends.firesim.resources import Resources

        base = Resources(base_luts, base_luts // 2, 0, depth)
        fmax = estimate_fmax(base, n_covers, 16, seed=config)
        chain = ScanChainInfo(16, [f"c{i}" for i in range(n_covers)])
        model = FireSimTimingModel(fmax, chain)
        sim_s = model.simulation_seconds(cycles)
        scan_s = model.scan_out_seconds()
        rows.append(
            f"{config:<14} {n_covers:>7} {16:>6} {fmax.fmax_mhz:>5.0f}MHz"
            f" {sim_s:>14.1f}s {scan_s * 1000:>7.1f}ms"
        )
        # paper: 50.4s @ 65 MHz (Rocket), scan-out 12/17 ms
        assert 10 < sim_s < 300
        assert 0.001 < scan_s < 0.1
    rows.append("(paper: Rocket 3.3B cycles in 50.4s @65MHz, scan 12ms;")
    rows.append(" BOOM 1.7B cycles in 42.6s @40MHz, scan 17ms)")
    rows.append(f"real scan-chain run at analog scale: {len(counts)} counters scanned")
    write_result("sec52_boot", "\n".join(rows))


@pytest.mark.benchmark(group="sec53")
def test_sec53_merge_and_removal(benchmark):
    """Run a test-suite of programs, merge counts, filter >=10-hit points."""
    circuit = elaborate(RiscvMini())
    state, db = instrument(circuit, metrics=["line", "toggle", "fsm"])
    sim = VerilatorBackend().compile_state(state)

    test_suite = [
        "addi x1, x0, 5\naddi x2, x0, 6\nadd x3, x1, x2\nebreak",
        "addi x1, x0, 10\nloop: addi x1, x1, -1\nbne x1, x0, loop\nebreak",
        "addi x1, x0, 0x55\nsw x1, 0x40(x0)\nlw x2, 0x40(x0)\nebreak",
        "lui x1, 0xF\nsrli x2, x1, 8\nandi x3, x2, 0xF0\nebreak",
        "addi x1, x0, 3\nslli x2, x1, 4\nsub x3, x2, x1\nxor x4, x3, x1\nebreak",
        "jal x1, f\nebreak\nf: addi x5, x0, 1\njalr x0, x1, 0",
    ]

    def run_suite():
        from repro.designs.riscv_mini import run_program

        results = []
        for program in test_suite:
            fresh = sim.fork()
            run_program(fresh, assemble(program), max_cycles=3000)
            results.append(fresh.cover_counts())
        return results

    per_test = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    merged = merge_counts(*per_test)

    total = len(merged)
    removable = covered_points(merged, threshold=10)
    remaining = filter_covered(merged, threshold=10)
    percent_removed = 100.0 * len(removable) / total

    lines = [
        f"cover points total:          {total}",
        f"covered >=10x by test suite: {len(removable)} ({percent_removed:.0f}%)",
        f"counters still needed:       {len(remaining)}",
        "(paper: 42% of counters removable after the RISC-V test suite)",
    ]
    write_result("sec53_removal", "\n".join(lines))

    # shape: the suite removes a substantial fraction but not everything
    assert 15 <= percent_removed <= 85
    assert remaining, "some deep points must survive (they motivate FPGA runs)"
    # merging across runs is exactly per-point addition
    probe = next(iter(merged))
    assert merged[probe] == sum(r.get(probe, 0) for r in per_test)
