"""Runtime observability benchmark: the BENCH_runtime.json datapoint.

Measures what the ROADMAP's perf trajectory needs before any optimization
PR can claim a win: sustained cycles/second per backend on a real design,
wall time for each compile phase (elaborate / instrument / backend build),
and the cost of the telemetry layer itself — both the enabled overhead
and the disabled-mode jitter (the acceptance bar is that instrumentation
with telemetry *off* is unmeasurable against run-to-run noise).

Uses the suite's smallest design (serv-chisel's SerialGcd analog, the
bit-serial core) so the bench-smoke CI job stays fast, and the recorded
VCD replay methodology from §5.1 so stimulus generation is excluded.
"""

from __future__ import annotations

import time

from repro.backends import EssentBackend, TreadleBackend, VerilatorBackend
from repro.coverage import instrument
from repro.hcl import elaborate
from repro.runtime.telemetry import obs

from .conftest import BENCH_DESIGNS, record_runtime, recorded_replay

SMALLEST = "serv-chisel"

BACKENDS = {
    "treadle": TreadleBackend,
    "verilator": VerilatorBackend,
    "essent": EssentBackend,
}

#: timed replay repetitions per telemetry mode (min is reported)
REPS = 3


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _replay_seconds(sim_factory, replay, reps: int = REPS) -> list[float]:
    """Wall time of ``reps`` full replays, each on a fresh simulation."""
    seconds = []
    for _ in range(reps):
        sim = sim_factory()
        _, elapsed = _timed(lambda: replay.run(sim))
        seconds.append(elapsed)
    return seconds


def test_bench_runtime_smallest_design():
    factory, _driver, _cycles, _widths = BENCH_DESIGNS[SMALLEST]
    replay = recorded_replay(SMALLEST)

    circuit, elaborate_s = _timed(lambda: elaborate(factory()))
    (state, _db), instrument_s = _timed(
        lambda: instrument(circuit, metrics=["line", "toggle"])
    )

    phases = {"elaborate_s": elaborate_s, "instrument_s": instrument_s}
    backends = {}
    for name, cls in BACKENDS.items():
        backend = cls()
        compiled, compile_s = _timed(lambda: backend.compile_state(state))
        runs = _replay_seconds(compiled.fork, replay)
        best = min(runs)
        backends[name] = {
            "compile_s": compile_s,
            "run_s": best,
            "cycles": replay.cycles,
            "cycles_per_second": replay.cycles / best if best > 0 else 0.0,
        }
        assert backends[name]["cycles_per_second"] > 0

    # Telemetry cost on the fastest backend: enabled overhead vs the
    # disabled mode's own run-to-run jitter.  Both are recorded; CI reads
    # them off the artifact rather than hard-asserting a flaky ±2% here.
    probe = VerilatorBackend().compile_state(state)
    was_enabled = obs.enabled
    obs.disable()
    disabled = _replay_seconds(probe.fork, replay)
    obs.enable()
    try:
        enabled = _replay_seconds(probe.fork, replay)
    finally:
        obs.enabled = was_enabled
        obs.reset()
    base = min(disabled)
    telemetry = {
        "disabled_run_s": base,
        "enabled_run_s": min(enabled),
        "disabled_jitter_pct": 100.0 * (max(disabled) - base) / base,
        "enabled_overhead_pct": 100.0 * (min(enabled) - base) / base,
    }

    record_runtime(
        SMALLEST,
        {"phases": phases, "backends": backends, "telemetry": telemetry},
    )

    # Sanity, not a perf assertion: every phase took measurable-but-sane time.
    assert all(v >= 0 for v in phases.values())
    assert telemetry["disabled_run_s"] > 0
