"""Runtime observability benchmark: the BENCH_runtime.json datapoint.

Measures what the ROADMAP's perf trajectory needs before any optimization
PR can claim a win: sustained cycles/second per backend on a real design,
wall time for each compile phase (elaborate / instrument / backend build),
the compile-once-run-many model cache (cold vs warm), and the cost of the
telemetry layer itself — both the enabled overhead and the disabled-mode
jitter (the acceptance bar is that instrumentation with telemetry *off*
is unmeasurable against run-to-run noise).

Five hard perf gates ride along (bench-smoke CI fails if they regress):

* the treadle JIT fast path must sustain >= 10x the tree-walking
  interpreter's cycles/second,
* the native C backend must sustain >= 3x the treadle JIT on the same
  replay (recorded as ``speedup_vs_jit``),
* the bit-parallel swarm backend must sustain >= 8x the treadle JIT in
  *aggregate* lanes x cycles/second on the same replay broadcast across
  all lanes (recorded as ``aggregate_lane_cycles_per_second``),
* a warm in-memory model-cache hit (what forked shards see after the
  parent's compile-before-fork) must be >= 5x faster than a cold compile,
  and
* minimal-basis instrumentation (DESIGN.md §15) must elide >= 25% of
  the line-metric cover counters, with the reconstructed counts checked
  bit-identical against full instrumentation inline (the cycles/second
  delta of counting fewer covers is recorded as ``speedup_vs_full``).

Uses the suite's smallest design (serv-chisel's SerialGcd analog, the
bit-serial core) so the bench-smoke CI job stays fast, and the recorded
VCD replay methodology from §5.1 so stimulus generation is excluded.
"""

from __future__ import annotations

import time

from repro.backends import (
    CBackend,
    EssentBackend,
    ModelCache,
    SwarmBackend,
    TreadleBackend,
    VerilatorBackend,
)
from repro.coverage import InstanceTree, all_cover_names, instrument
from repro.hcl import elaborate
from repro.runtime.telemetry import obs

from .conftest import BENCH_DESIGNS, record_runtime, recorded_replay

SMALLEST = "serv-chisel"

#: "treadle" is pinned to the tree-walking interpreter (the executable
#: semantics reference, CLI ``--no-jit``); "treadle-jit" is the default
#: compiled-closure fast path the 10x gate compares against it.
BACKENDS = {
    "treadle": lambda: TreadleBackend(jit=False),
    "treadle-jit": lambda: TreadleBackend(),
    "verilator": lambda: VerilatorBackend(),
    "essent": lambda: EssentBackend(),
    "c": lambda: CBackend(),
}

#: the bench-smoke perf gates (see module docstring)
JIT_MIN_SPEEDUP = 10.0
WARM_CACHE_MIN_SPEEDUP = 5.0
C_MIN_SPEEDUP_VS_JIT = 3.0
SWARM_MIN_SPEEDUP_VS_JIT = 8.0
MIN_INSTRUMENT_MIN_REDUCTION_PCT = 25.0

#: swarm pack width for the aggregate-throughput gate — wide enough to
#: amortize Python dispatch over the packed ops, well under MAX_LANES
SWARM_LANES = 512

#: timed repetitions per measurement (min is reported)
REPS = 3


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _replay_seconds(sim_factory, replay, reps: int = REPS) -> list[float]:
    """Wall time of ``reps`` full replays, each on a fresh simulation."""
    seconds = []
    for _ in range(reps):
        sim = sim_factory()
        _, elapsed = _timed(lambda: replay.run(sim))
        seconds.append(elapsed)
    return seconds


def _model_cache_section(state, tmp_path) -> dict:
    """Cold / warm-memory / warm-disk compile times, min over REPS.

    Each rep uses a fresh cache directory so "cold" is honestly cold;
    warm-memory is the in-process LRU hit forked shards inherit, and
    warm-disk is a second process's pickle-load path (which still pays
    the codegen exec, so it is recorded but not gated).
    """
    colds, warm_memory, warm_disk = [], [], []
    for rep in range(REPS):
        cache = ModelCache(tmp_path / f"cache-{rep}")
        backend = TreadleBackend(cache=cache)
        _, cold_s = _timed(lambda: backend.compile_state(state))
        _, mem_s = _timed(lambda: backend.compile_state(state))
        cache.clear_memory()
        _, disk_s = _timed(lambda: backend.compile_state(state))
        assert (cache.misses, cache.hits) == (1, 2)
        colds.append(cold_s)
        warm_memory.append(mem_s)
        warm_disk.append(disk_s)
    cold, mem, disk = min(colds), min(warm_memory), min(warm_disk)
    return {
        "cold_compile_s": cold,
        "warm_memory_compile_s": mem,
        "warm_disk_compile_s": disk,
        "warm_memory_speedup": cold / mem if mem > 0 else float("inf"),
        "warm_disk_speedup": cold / disk if disk > 0 else float("inf"),
    }


def test_bench_runtime_smallest_design(tmp_path):
    factory, _driver, _cycles, _widths = BENCH_DESIGNS[SMALLEST]
    replay = recorded_replay(SMALLEST)

    circuit, elaborate_s = _timed(lambda: elaborate(factory()))
    (state, _db), instrument_s = _timed(
        lambda: instrument(circuit, metrics=["line", "toggle"])
    )

    phases = {"elaborate_s": elaborate_s, "instrument_s": instrument_s}
    backends = {}
    for name, make_backend in BACKENDS.items():
        backend = make_backend()
        compiled, compile_s = _timed(lambda: backend.compile_state(state))
        runs = _replay_seconds(compiled.fork, replay)
        best = min(runs)
        backends[name] = {
            "compile_s": compile_s,
            "run_s": best,
            "cycles": replay.cycles,
            "cycles_per_second": replay.cycles / best if best > 0 else 0.0,
        }
        assert backends[name]["cycles_per_second"] > 0

    # Gate: the JIT fast path must beat the interpreter by >= 10x.
    jit_speedup = (
        backends["treadle-jit"]["cycles_per_second"]
        / backends["treadle"]["cycles_per_second"]
    )
    backends["treadle-jit"]["speedup_vs_interpreter"] = jit_speedup
    assert jit_speedup >= JIT_MIN_SPEEDUP, (
        f"treadle-jit only {jit_speedup:.1f}x the interpreter "
        f"(gate: >= {JIT_MIN_SPEEDUP}x)"
    )

    # Gate: native code must beat the JIT by >= 3x on the same replay.
    c_speedup = (
        backends["c"]["cycles_per_second"]
        / backends["treadle-jit"]["cycles_per_second"]
    )
    backends["c"]["speedup_vs_jit"] = c_speedup
    assert c_speedup >= C_MIN_SPEEDUP_VS_JIT, (
        f"c backend only {c_speedup:.1f}x the treadle JIT "
        f"(gate: >= {C_MIN_SPEEDUP_VS_JIT}x)"
    )

    # Gate: swarm lanes must multiply throughput: with the same replay
    # broadcast to every lane, aggregate lanes x cycles/second must be
    # >= 8x what the scalar JIT sustains.
    swarm_sim, swarm_compile_s = _timed(
        lambda: SwarmBackend(lanes=SWARM_LANES).compile_state(state)
    )
    swarm_best = min(_replay_seconds(swarm_sim.fork, replay))
    lane_cps = SWARM_LANES * replay.cycles / swarm_best
    swarm_speedup = lane_cps / backends["treadle-jit"]["cycles_per_second"]
    backends["swarm"] = {
        "compile_s": swarm_compile_s,
        "run_s": swarm_best,
        "cycles": replay.cycles,
        "lanes": SWARM_LANES,
        "cycles_per_second": replay.cycles / swarm_best,
        "aggregate_lane_cycles_per_second": lane_cps,
        "speedup_vs_jit": swarm_speedup,
    }
    assert swarm_speedup >= SWARM_MIN_SPEEDUP_VS_JIT, (
        f"swarm only {swarm_speedup:.1f}x the treadle JIT in aggregate "
        f"lane-cycles/s at {SWARM_LANES} lanes "
        f"(gate: >= {SWARM_MIN_SPEEDUP_VS_JIT}x)"
    )

    # Gate: a warm cache hit must make recompilation negligible.
    model_cache = _model_cache_section(state, tmp_path)
    assert model_cache["warm_memory_speedup"] >= WARM_CACHE_MIN_SPEEDUP, (
        f"warm cache hit only {model_cache['warm_memory_speedup']:.1f}x "
        f"faster than cold compile (gate: >= {WARM_CACHE_MIN_SPEEDUP}x)"
    )

    # Telemetry cost on the fastest backend: enabled overhead vs the
    # disabled mode's own run-to-run jitter.  Min-of-REPS on both sides;
    # when the enabled minimum lands below the disabled one (pure timing
    # noise) the reported overhead clamps at zero and the signed raw
    # value is kept alongside so the artifact never claims telemetry
    # *speeds runs up*.
    probe = TreadleBackend().compile_state(state)
    was_enabled = obs.enabled
    obs.disable()
    disabled = _replay_seconds(probe.fork, replay)
    obs.enable()
    try:
        enabled = _replay_seconds(probe.fork, replay)
    finally:
        obs.enabled = was_enabled
        obs.reset()
    base = min(disabled)
    raw_overhead = 100.0 * (min(enabled) - base) / base
    telemetry = {
        "disabled_run_s": base,
        "enabled_run_s": min(enabled),
        "disabled_jitter_pct": 100.0 * (max(disabled) - base) / base,
        "enabled_overhead_pct": max(0.0, raw_overhead),
        "enabled_overhead_raw_pct": raw_overhead,
        "reps": REPS,
    }

    # Gate: minimal-basis instrumentation must elide >= 25% of the
    # line-metric counters, and reconstruction must be bit-identical.
    # Uses the line metric alone: toggle covers are per-bit and carry no
    # implication structure, so they are irreducible by construction.
    (full_state, _full_db), _ = _timed(
        lambda: instrument(circuit, metrics=["line"])
    )
    (min_state, min_db), minimize_s = _timed(
        lambda: instrument(circuit, metrics=["line"], minimize=True)
    )
    counters_full = len(all_cover_names(full_state.circuit))
    counters_min = len(all_cover_names(min_state.circuit))
    reduction_pct = 100.0 * (counters_full - counters_min) / counters_full
    assert reduction_pct >= MIN_INSTRUMENT_MIN_REDUCTION_PCT, (
        f"minimal basis elided only {reduction_pct:.1f}% of "
        f"{counters_full} line counters "
        f"(gate: >= {MIN_INSTRUMENT_MIN_REDUCTION_PCT}%)"
    )

    jit_full = TreadleBackend().compile_state(full_state)
    jit_min = TreadleBackend().compile_state(min_state)
    full_best = min(_replay_seconds(jit_full.fork, replay))
    min_best = min(_replay_seconds(jit_min.fork, replay))

    sim_full, sim_min = jit_full.fork(), jit_min.fork()
    replay.run(sim_full)
    replay.run(sim_min)
    reconstructed = min_db.reconstruct_counts(
        sim_min.cover_counts(), InstanceTree(min_state.circuit)
    )
    assert reconstructed == sim_full.cover_counts(), (
        "minimal-basis reconstruction diverged from full instrumentation"
    )

    min_instrument = {
        "counters_full": counters_full,
        "counters_min": counters_min,
        "counter_reduction_pct": reduction_pct,
        "minimize_instrument_s": minimize_s,
        "full_cycles_per_second": replay.cycles / full_best,
        "min_cycles_per_second": replay.cycles / min_best,
        "speedup_vs_full": full_best / min_best if min_best > 0 else 0.0,
    }

    record_runtime(
        SMALLEST,
        {
            "phases": phases,
            "backends": backends,
            "model_cache": model_cache,
            "telemetry": telemetry,
            "min_instrument": min_instrument,
        },
    )

    # Sanity, not a perf assertion: every phase took measurable-but-sane time.
    assert all(v >= 0 for v in phases.values())
    assert telemetry["disabled_run_s"] > 0
    assert telemetry["enabled_overhead_pct"] >= 0.0
