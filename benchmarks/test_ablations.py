"""Ablation benches for the design decisions DESIGN.md calls out.

1. *Cover lowering contract* (Figure 3): line coverage must run before
   ``ExpandWhens``; instrumenting the lowered form sees no branches.
2. *Global alias analysis* (§4.2): without it, toggle coverage instruments
   every alias of every fanned-out signal (reset, shared buses), inflating
   cover-point count and run time.
"""

import pytest

from repro.backends import VerilatorBackend
from repro.coverage import CoverageDB, instrument
from repro.coverage.line import LineCoveragePass
from repro.designs.riscv_mini import RiscvMini
from repro.designs.soc import RocketLikeSoC
from repro.hcl import elaborate
from repro.passes import CheckForms, CompileState, ExpandWhens, PassManager

from .conftest import write_result


@pytest.mark.benchmark(group="ablation")
def test_ablation_line_coverage_ordering(benchmark):
    """Pre- vs post-lowering instrumentation (the Figure 3 point)."""
    circuit = elaborate(RiscvMini())

    def instrument_both():
        import copy

        pre_db = CoverageDB()
        PassManager([CheckForms(), LineCoveragePass(pre_db), ExpandWhens()]).run(
            CompileState(copy.deepcopy(circuit))
        )
        post_db = CoverageDB()
        PassManager([CheckForms(), ExpandWhens(), LineCoveragePass(post_db)]).run(
            CompileState(copy.deepcopy(circuit))
        )
        return pre_db.count("line"), post_db.count("line")

    pre, post = benchmark.pedantic(instrument_both, rounds=1, iterations=1)
    write_result(
        "ablation_lowering_order",
        f"line cover points, instrumenting before lowering: {pre}\n"
        f"line cover points, instrumenting after lowering:  {post}\n"
        "(after lowering, branches have become muxes — Figure 3's point:\n"
        " coverage of generated structural code under-reports source branches)",
    )
    assert post < pre / 3, "post-lowering must lose most branch information"


@pytest.mark.benchmark(group="ablation")
def test_ablation_alias_analysis(benchmark):
    """Toggle cover-point inflation without the global alias analysis."""
    circuit = elaborate(RocketLikeSoC(n_cores=2, addr_width=6, cache_sets=2))

    def run_both():
        _, with_alias = instrument(circuit, metrics=["toggle"])
        _, without_alias = instrument(
            circuit, metrics=["toggle"], use_alias_analysis=False
        )
        return with_alias.count("toggle"), without_alias.count("toggle")

    with_alias, without_alias = benchmark.pedantic(run_both, rounds=1, iterations=1)
    saved = 100.0 * (without_alias - with_alias) / without_alias
    write_result(
        "ablation_alias_analysis",
        f"toggle cover points with alias analysis:    {with_alias}\n"
        f"toggle cover points without alias analysis: {without_alias}\n"
        f"redundant points avoided: {saved:.0f}%\n"
        "(the paper: 'the global alias analysis pass is necessary to make\n"
        " toggle coverage perform well')",
    )
    assert with_alias < without_alias
    assert saved > 5
