"""Shared benchmark fixtures: the four Table-2 designs and their workloads.

Each workload follows the paper's §5.1 methodology: run a real testbench
once while recording the top-level inputs to a VCD, then benchmark a
*minimal replay testbench* that only pokes the recorded inputs — isolating
raw simulator throughput from stimulus generation.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.backends import TreadleBackend
from repro.designs.neuroproc import NeuroProc
from repro.designs.riscv_mini import RiscvMini, assemble
from repro.designs.serv import SerialGcd
from repro.designs.tlram import TlRam
from repro.hcl import elaborate
from repro.vcd import InputReplay, VcdRecorder

RESULTS_DIR = Path(__file__).parent / "results"

#: The perf-trajectory file: cycles/sec per backend plus wall time per
#: compile/run phase, written at session end when any benchmark recorded
#: runtime data (see record_runtime / benchmarks/test_bench_runtime.py).
BENCH_RUNTIME_PATH = Path(__file__).parent.parent / "BENCH_runtime.json"

_runtime_records: dict[str, dict] = {}


def write_result(name: str, text: str) -> None:
    """Persist a table/figure reproduction (also printed to the log)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n===== {name} =====\n{text}")


def record_runtime(section: str, data: dict) -> None:
    """Stage one section of BENCH_runtime.json (flushed at session end)."""
    _runtime_records[section] = data


def pytest_sessionfinish(session, exitstatus):
    if _runtime_records:
        payload = {
            "format": "repro-bench-runtime",
            "version": 1,
            "sections": dict(sorted(_runtime_records.items())),
        }
        BENCH_RUNTIME_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"\nwrote {BENCH_RUNTIME_PATH}")


# -- workload drivers (the "real testbench" side) ------------------------------


def drive_riscv_mini(sim, cycles: int) -> None:
    """Boot-like workload: load and run a loop-heavy program repeatedly."""
    program = assemble(
        """
        addi x1, x0, 0
        addi x2, x0, 1
        addi x3, x0, 40
    loop:
        add  x4, x1, x2
        mv   x1, x2
        mv   x2, x4
        sw   x4, 0x80(x0)
        lw   x5, 0x80(x0)
        addi x3, x3, -1
        bne  x3, x0, loop
        ebreak
        """
    )
    sim.poke("reset", 1)
    sim.step(2)
    sim.poke("reset", 0)
    sim.poke("init_en", 1)
    for offset, word in enumerate(program):
        sim.poke("init_addr", offset)
        sim.poke("init_data", word)
        sim.step()
    sim.poke("init_en", 0)
    sim.step(cycles)


def drive_tlram(sim, cycles: int) -> None:
    rng = random.Random(42)
    sim.poke("reset", 1)
    sim.step()
    sim.poke("reset", 0)
    sim.poke("d_ready", 1)
    for _ in range(cycles):
        sim.poke("a_valid", rng.randint(0, 1))
        sim.poke("a_opcode", rng.choice([0, 0, 4]))
        sim.poke("a_address", rng.randint(0, 255))
        sim.poke("a_data", rng.randint(0, 0xFFFFFFFF))
        sim.poke("a_mask", rng.randint(0, 15))
        sim.step()


def drive_serial_gcd(sim, cycles: int) -> None:
    rng = random.Random(7)
    sim.poke("reset", 1)
    sim.step()
    sim.poke("reset", 0)
    sim.poke("resp_ready", 1)
    issued = 0
    for _ in range(cycles):
        if sim.peek("req_ready"):
            a, b = rng.randint(1, 4000), rng.randint(1, 4000)
            sim.poke("req_valid", 1)
            sim.poke("req_bits", (b << 32) | a)
        else:
            sim.poke("req_valid", 0)
        sim.step()


def drive_neuroproc(sim, cycles: int) -> None:
    rng = random.Random(3)
    sim.poke("reset", 1)
    sim.step()
    sim.poke("reset", 0)
    sim.poke("w_en", 1)
    for address in range(16 * 16):
        sim.poke("w_addr", address)
        sim.poke("w_data", rng.randint(0, 300))
        sim.step()
    sim.poke("w_en", 0)
    done = 16 * 16 + 1
    while done < cycles:
        sim.poke("in_spikes", rng.randint(0, 0xFFFF))
        sim.poke("start", 1)
        sim.step()
        done += 1
        sim.poke("start", 0)
        while done < cycles and not sim.peek("done"):
            sim.step()
            done += 1
        sim.step(2)
        done += 2


#: design name -> (module factory, driver, recorded cycles, input widths)
BENCH_DESIGNS = {
    "riscv-mini": (
        lambda: RiscvMini(),
        drive_riscv_mini,
        2500,
        {"reset": 1, "init_en": 1, "init_addr": 10, "init_data": 32},
    ),
    "TLRAM": (
        lambda: TlRam(),
        drive_tlram,
        3000,
        {
            "reset": 1,
            "a_valid": 1,
            "a_opcode": 3,
            "a_address": 8,
            "a_data": 32,
            "a_mask": 4,
            "d_ready": 1,
        },
    ),
    "serv-chisel": (
        lambda: SerialGcd(),
        drive_serial_gcd,
        4000,
        {"reset": 1, "req_valid": 1, "req_bits": 64, "resp_ready": 1},
    ),
    "NeuroProc": (
        lambda: NeuroProc(),
        drive_neuroproc,
        4000,
        {"reset": 1, "start": 1, "in_spikes": 16, "w_en": 1, "w_addr": 8, "w_data": 16},
    ),
}


_replay_cache: dict[str, InputReplay] = {}


def recorded_replay(name: str) -> InputReplay:
    """The recorded input trace for one design (cached per session)."""
    if name not in _replay_cache:
        factory, driver, cycles, widths = BENCH_DESIGNS[name]
        circuit = elaborate(factory())
        recorder_sim = TreadleBackend().compile(circuit)
        recorder = VcdRecorder(recorder_sim, widths)
        original_step = recorder_sim.step

        class _Recording:
            """Wraps the sim so the driver's steps are recorded."""

            def __getattr__(self, item):
                return getattr(recorder_sim, item)

            def step(self, n: int = 1):
                for _ in range(n):
                    values = {k: recorder_sim.peek(k) for k in widths}
                    recorder.writer.sample(recorder.cycles, values)
                    recorder.cycles += 1
                    original_step(1)

        driver(_Recording(), cycles)
        _replay_cache[name] = InputReplay(recorder.finish())
    return _replay_cache[name]


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
