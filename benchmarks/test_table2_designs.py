"""Table 2: benchmark designs — cycles, run time, # line and toggle covers.

Reproduces the paper's benchmark census.  Absolute cover-point counts
differ (our analog designs are smaller than the originals), but the shape
holds: TLRAM has almost no line cover points but thousands-scale toggle
points relative to its size; riscv-mini/NeuroProc are branch-heavy;
toggle counts exceed line counts everywhere.
"""

import pytest

from repro.backends.verilator import VerilatorBackend
from repro.coverage import instrument
from repro.hcl import elaborate

from .conftest import BENCH_DESIGNS, recorded_replay, write_result

PAPER_TABLE2 = {
    "riscv-mini": (126_550, 157, 4_042),
    "TLRAM": (816_473, 8, 2_532),
    "serv-chisel": (828_931, 79, 725),
    "NeuroProc": (53_455_204, 809, 4_786),
}

_rows: dict[str, tuple] = {}


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("name", list(BENCH_DESIGNS))
def test_table2_design(benchmark, name):
    factory, _driver, cycles, _widths = BENCH_DESIGNS[name]
    circuit = elaborate(factory())
    state, db = instrument(circuit, metrics=["line", "toggle"])
    replay = recorded_replay(name)
    sim = VerilatorBackend().compile_state(state)

    def run():
        fresh = sim.fork()
        replay.run(fresh)
        return fresh

    fresh = benchmark(run)
    n_line = db.count("line")
    n_toggle = db.count("toggle")
    _rows[name] = (replay.cycles, n_line, n_toggle)

    assert n_toggle > n_line, "toggle instruments per bit: always more points"
    if name == "TLRAM":
        assert n_line < 20, "TLRAM is branch-poor (paper: 8 line points)"

    if len(_rows) == len(BENCH_DESIGNS):
        lines = [
            f"{'Design':<14} {'Cycles':>10} {'#Line':>7} {'#Toggle':>8}"
            f"   {'paper: cycles/#line/#toggle':>30}"
        ]
        for design, (cyc, nl, nt) in _rows.items():
            p = PAPER_TABLE2[design]
            lines.append(
                f"{design:<14} {cyc:>10} {nl:>7} {nt:>8}   "
                f"{p[0]:>12} /{p[1]:>5} /{p[2]:>6}"
            )
        write_result("table2_designs", "\n".join(lines))
