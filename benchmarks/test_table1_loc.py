"""Table 1: lines of code for coverage passes and report generators.

The paper's point: each metric is small (tens to a few hundred lines of
instrumentation + report code) once the common library exists.  We count
the actual lines of our implementation and reproduce the table's shape:
the common library is the largest single piece, each metric is modest, and
the custom ready/valid metric is the smallest.
"""

from pathlib import Path

import pytest

from .conftest import write_result

SRC = Path(__file__).parent.parent / "src" / "repro"


def loc_of(path: Path) -> int:
    """Non-blank, non-comment-only source lines."""
    count = 0
    in_docstring = False
    for line in path.read_text().splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        count += 1
    return count


ROWS = [
    ("Common Library", ["coverage/common.py"], []),
    ("Line Coverage", ["coverage/line.py"], []),
    ("Toggle Coverage", ["coverage/toggle.py"], ["coverage/alias.py"]),
    ("FSM Coverage", ["coverage/fsm.py"], []),
    ("Ready/Valid Coverage", ["coverage/readyvalid.py"], []),
    ("Mux Toggle (rfuzz)", ["coverage/muxtoggle.py"], []),
]

PAPER_LOC = {
    "Common Library": (106, 290),
    "Line Coverage": (89, 64),
    "Toggle Coverage": (279 + 131, 51),
    "FSM Coverage": (144 + 228, 34),
    "Ready/Valid Coverage": (78, 26),
}


@pytest.mark.benchmark(group="table1")
def test_table1_pass_loc(benchmark):
    def measure():
        rows = []
        for name, files, libs in ROWS:
            total = sum(loc_of(SRC / f) for f in files)
            extra = sum(loc_of(SRC / f) for f in libs)
            rows.append((name, total, extra))
        return rows

    rows = benchmark(measure)
    lines = [f"{'Metric':<24} {'LoC (ours)':>10} {'(+lib)':>8} {'LoC (paper, instr+report)':>26}"]
    for name, total, extra in rows:
        paper = PAPER_LOC.get(name)
        paper_text = f"{paper[0]}+{paper[1]}" if paper else "n/a (not in paper)"
        extra_text = f"+{extra}" if extra else ""
        lines.append(f"{name:<24} {total:>10} {extra_text:>8} {paper_text:>26}")
    write_result("table1_loc", "\n".join(lines))

    by_name = {name: total for name, total, _ in rows}
    # shape assertions from the paper's table:
    # every individual metric is small compared to the whole system
    assert all(total < 600 for total in by_name.values())
    # ready/valid (the custom metric) is the smallest instrumentation pass
    assert by_name["Ready/Valid Coverage"] <= min(
        by_name["Line Coverage"], by_name["Toggle Coverage"], by_name["FSM Coverage"]
    )
    # toggle (with its alias analysis) is the biggest single metric, as in
    # the paper's 279+131
    assert by_name["Toggle Coverage"] + dict((n, e) for n, _, e in rows)[
        "Toggle Coverage"
    ] >= by_name["Line Coverage"]
