"""Figures 9 and 10: FireSim FPGA resource usage and F_max vs counter width.

Two SoC configurations (Rocket-like multi-core in-order, BOOM-like wide
out-of-order) are line-coverage instrumented, scan-chain transformed, and
costed with the analytical VU9P model, sweeping the coverage counter width
over the paper's range {0 (baseline), 1, 2, 4, 8, 16, 32, 48}.

Shapes to reproduce:

* LUT/FF usage grows linearly with counter width; at 32 bit, coverage
  hardware dominates (the paper reports 2.8x LUTs on Rocket),
* §5.3's removal variant (42 % fewer counters after merging software-sim
  coverage) pulls the 32-bit LUT ratio down toward 2.0x,
* F_max stays within placement noise for narrow counters and drops for
  wide ones; an oversized configuration fails to place (48-bit BOOM).
"""

import pytest

from repro.backends.firesim import (
    VU9P_LUTS,
    coverage_counter_resources,
    estimate_fmax,
    estimate_module,
)
from repro.coverage import instrument
from repro.designs.soc import BoomLikeSoC, RocketLikeSoC
from repro.hcl import elaborate

from .conftest import write_result

WIDTHS = [0, 1, 2, 4, 8, 16, 32, 48]

#: paper-scale cover counts for the model-extrapolation columns
PAPER_COVERS = {"rocket": 8060, "boom": 12059}
#: estimated base logic of the paper's SoCs on a VU9P (fractions of device)
PAPER_BASE_LUTS = {"rocket": 280_000, "boom": 420_000}
PAPER_BASE_DEPTH = {"rocket": 22, "boom": 30}


def build_soc(kind: str):
    if kind == "rocket":
        return elaborate(RocketLikeSoC(n_cores=4, addr_width=6, cache_sets=4))
    return elaborate(BoomLikeSoC(rob_entries=48, addr_width=6))


_soc_cache = {}


def instrumented_flat(kind: str):
    if kind not in _soc_cache:
        state, _db = instrument(build_soc(kind), metrics=["line"], flatten=True)
        _soc_cache[kind] = state
    return _soc_cache[kind]


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("kind", ["rocket", "boom"])
def test_fig9_resources(benchmark, kind):
    state = instrumented_flat(kind)
    n_covers = len(state.cover_paths)
    base = benchmark(lambda: estimate_module(state.circuit.top))

    lines = [
        f"{kind}-like SoC: {n_covers} cover statements "
        f"(paper: {PAPER_COVERS[kind]})",
        f"{'width':>6} {'LUTs':>12} {'FFs':>12} {'LUT ratio':>10} {'removed(42%) ratio':>19}",
    ]
    ratios = {}
    for width in WIDTHS:
        coverage = coverage_counter_resources(n_covers, width) if width else None
        luts = base.luts + (coverage.luts if coverage else 0)
        ffs = base.ffs + (coverage.ffs if coverage else 0)
        ratio = luts / base.luts
        # §5.3: removing already-covered points drops 42% of the counters
        kept = int(n_covers * 0.58)
        removed = coverage_counter_resources(kept, width) if width else None
        removed_ratio = (base.luts + (removed.luts if removed else 0)) / base.luts
        ratios[width] = (ratio, removed_ratio)
        lines.append(
            f"{width:>6} {luts:>12.0f} {ffs:>12.0f} {ratio:>9.2f}x {removed_ratio:>18.2f}x"
        )
    # paper-scale extrapolation: the model at the original SoCs' cover
    # density (8060 covers over ~280k base LUTs for Rocket)
    paper_base = PAPER_BASE_LUTS[kind]
    paper_n = PAPER_COVERS[kind]
    lines.append("")
    lines.append(f"paper-scale model: {paper_n} covers over {paper_base} base LUTs")
    paper_ratios = {}
    for width in WIDTHS:
        cov = coverage_counter_resources(paper_n, width) if width else None
        full = (paper_base + (cov.luts if cov else 0)) / paper_base
        kept = coverage_counter_resources(int(paper_n * 0.58), width) if width else None
        removed = (paper_base + (kept.luts if kept else 0)) / paper_base
        paper_ratios[width] = (full, removed)
        lines.append(f"{width:>6} {'':>12} {'':>12} {full:>9.2f}x {removed:>18.2f}x")
    write_result(f"fig9_resources_{kind}", "\n".join(lines))

    # shape assertions on the measured analog SoC
    assert ratios[1][0] < 1.3, "narrow counters must be nearly free"
    assert ratios[48][0] > ratios[32][0] > ratios[8][0] > ratios[1][0]
    full, removed = ratios[32]
    assert removed < full
    # paper-scale shape: 32-bit counters dominate (paper: 2.8x LUTs on
    # Rocket), and the §5.3 removal pulls it toward 2.0x
    paper_full, paper_removed = paper_ratios[32]
    if kind == "rocket":
        assert 2.3 < paper_full < 3.3, f"expected ~2.8x, got {paper_full:.2f}x"
        assert 1.7 < paper_removed < 2.4, f"expected ~2.0x, got {paper_removed:.2f}x"
    assert (paper_full - paper_removed) / (paper_full - 1.0) > 0.3


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("kind", ["rocket", "boom"])
def test_fig10_fmax(benchmark, kind):
    state = instrumented_flat(kind)
    n_covers = len(state.cover_paths)
    base = estimate_module(state.circuit.top)
    # graft the paper-scale base design onto the model so utilization and
    # congestion land in the regime the paper's figures show
    base.luts = PAPER_BASE_LUTS[kind]
    base.logic_depth = PAPER_BASE_DEPTH[kind]
    paper_covers = PAPER_COVERS[kind]

    def sweep():
        return {
            width: estimate_fmax(base, paper_covers, width, seed=kind)
            for width in WIDTHS
        }

    estimates = benchmark(sweep)
    lines = [
        f"{kind}-like SoC, paper-scale model ({paper_covers} covers)",
        f"{'width':>6} {'fmax MHz':>10} {'utilization':>12}",
    ]
    for width, est in estimates.items():
        fmax = f"{est.fmax_mhz:.1f}" if est.fmax_mhz else "FAILED"
        lines.append(f"{width:>6} {fmax:>10} {est.utilization:>11.1%}")
    write_result(f"fig10_fmax_{kind}", "\n".join(lines))

    baseline = estimates[0].fmax_mhz
    assert baseline is not None
    # narrow counters: within placement noise of the baseline
    for width in (1, 2):
        assert estimates[width].fmax_mhz is not None
        assert abs(estimates[width].fmax_mhz - baseline) / baseline < 0.08
    # wide counters: clearly slower
    wide = estimates[32].fmax_mhz
    assert wide is not None and wide < baseline * 0.97
    if kind == "boom":
        # the paper's 48-bit BOOM configuration did not place
        assert estimates[48].fmax_mhz is None or estimates[48].utilization > 0.95
