"""Figure 8: run-time overhead of coverage instrumentation on the compiled
(Verilator-like) backend.

For each benchmark design, the recorded input trace replays on:

* an uninstrumented baseline,
* our line / toggle / FSM / ready-valid instrumentation (the
  simulator-independent approach), and
* the backend's *built-in* line coverage (standing in for
  ``verilator --coverage-line``).

The paper's finding to reproduce: the generic cover-statement approach
causes the same or slightly less overhead than the simulator's built-in
coverage, and line coverage overhead is small (near zero for TLRAM).
"""

import time

import pytest

from repro.backends.verilator import VerilatorBackend
from repro.coverage import instrument
from repro.hcl import elaborate
from repro.passes import lower

from .conftest import BENCH_DESIGNS, recorded_replay, write_result

VARIANTS = ["baseline", "line", "toggle", "fsm", "ready_valid", "native-line"]

_times: dict[tuple[str, str], float] = {}


def _build(name: str, variant: str):
    factory, _driver, _cycles, _widths = BENCH_DESIGNS[name]
    circuit = elaborate(factory())
    if variant == "baseline":
        return VerilatorBackend().compile_state(lower(circuit))
    if variant == "native-line":
        sim, _db = VerilatorBackend().compile_with_native_coverage(circuit)
        return sim
    state, _db = instrument(circuit, metrics=[variant])
    return VerilatorBackend().compile_state(state)


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("name", list(BENCH_DESIGNS))
def test_fig8_overhead(benchmark, name, variant):
    replay = recorded_replay(name)
    sim = _build(name, variant)

    def run():
        fresh = sim.fork()
        replay.run(fresh)
        return fresh

    benchmark(run)
    _times[(name, variant)] = benchmark.stats.stats.median

    if len(_times) == len(BENCH_DESIGNS) * len(VARIANTS):
        _finish()


def _finish():
    header = f"{'Design':<14}" + "".join(f"{v:>14}" for v in VARIANTS[1:])
    lines = [
        "run-time overhead vs uninstrumented baseline (1.00 = no overhead)",
        header,
    ]
    for name in BENCH_DESIGNS:
        base = _times[(name, "baseline")]
        row = f"{name:<14}"
        for variant in VARIANTS[1:]:
            row += f"{_times[(name, variant)] / base:>13.2f}x"
        lines.append(row)
    write_result("fig8_overhead", "\n".join(lines))

    # the paper's headline comparison: our line coverage causes the same or
    # slightly less overhead than the simulator's built-in line coverage —
    # in this reproduction the built-in mode instruments through the same
    # mechanism, so the two must be within measurement noise (geomean)
    ratio_product = 1.0
    for name in BENCH_DESIGNS:
        ratio_product *= _times[(name, "line")] / _times[(name, "native-line")]
    geomean = ratio_product ** (1.0 / len(BENCH_DESIGNS))
    assert 0.6 < geomean < 1.45, (
        f"generic covers vs built-in coverage geomean ratio {geomean:.2f} "
        "should be ~1.0 (same mechanism underneath)"
    )
    # line coverage overhead on TLRAM is close to zero (paper: "for TLRAM,
    # the measured overhead of our FIRRTL line coverage is close to zero")
    tlram_overhead = _times[("TLRAM", "line")] / _times[("TLRAM", "baseline")]
    assert tlram_overhead < 1.6
