"""Figure 12 / §6: the cover-values limitation.

Covering every value of a w-bit signal with plain cover statements needs
2**w covers (exponential blowup in both instrumentation size and run
time); a dedicated ``cover-values`` primitive lowers to a single
array-indexed counter.  We measure both implementations on progressively
wider signals.
"""

import pytest

from repro.backends import VerilatorBackend
from repro.coverage.covervalues import CoverValuesNaivePass, naive_report, probe_report
from repro.hcl import Module, elaborate
from repro.passes import CheckForms, CompileState, ExpandWhens, PassManager

from .conftest import write_result

CYCLES = 2000
WIDTHS = [2, 4, 6, 8]

_rows = {}


class _Lfsr(Module):
    def __init__(self, width):
        super().__init__()
        self.width = width

    def build(self, m):
        out = m.output("o", self.width)
        state = m.reg("state", self.width, init=1)
        taps = {2: 0b11, 4: 0b1100, 6: 0b110000, 8: 0b10111000}[self.width]
        with m.when(state[0] == 1):
            state <<= (state >> 1) ^ taps
        with m.otherwise():
            state <<= state >> 1
        out <<= state


def lowered(width):
    return PassManager([CheckForms(), ExpandWhens()]).run(
        CompileState(elaborate(_Lfsr(width)))
    )


@pytest.mark.benchmark(group="fig12-naive")
@pytest.mark.parametrize("width", WIDTHS)
def test_fig12_naive_covers(benchmark, width):
    state = lowered(width)
    naive = CoverValuesNaivePass({f"_Lfsr": ["state"]})
    state = naive.run(state)
    sim = VerilatorBackend().compile_state(state)

    def run():
        fresh = sim.fork()
        fresh.poke("reset", 1)
        fresh.step()
        fresh.poke("reset", 0)
        fresh.step(CYCLES)
        return fresh

    fresh = benchmark(run)
    _rows[("naive", width)] = (
        benchmark.stats.stats.median,
        naive.db.count("cover_values"),
    )
    report = naive_report(
        naive.db, fresh.cover_counts(), "_Lfsr", "state", width
    )
    assert report.seen >= (1 << width) - 1  # maximal LFSR (plus the pre-reset zero)
    _maybe_finish()


@pytest.mark.benchmark(group="fig12-probe")
@pytest.mark.parametrize("width", WIDTHS)
def test_fig12_value_probe(benchmark, width):
    state = lowered(width)
    sim = VerilatorBackend().compile_state(state, value_probes=("state",))

    def run():
        fresh = sim.fork()
        fresh.poke("reset", 1)
        fresh.step()
        fresh.poke("reset", 0)
        fresh.step(CYCLES)
        return fresh

    fresh = benchmark(run)
    _rows[("probe", width)] = (benchmark.stats.stats.median, 1)
    report = probe_report("state", width, fresh.value_histogram("state"))
    assert report.seen >= (1 << width) - 1
    _maybe_finish()


def _maybe_finish():
    if len(_rows) < 2 * len(WIDTHS):
        return
    lines = [
        f"{'width':>6} {'naive covers':>13} {'naive time':>11} {'probe time':>11} {'slowdown':>9}"
    ]
    for width in WIDTHS:
        naive_t, n_covers = _rows[("naive", width)]
        probe_t, _ = _rows[("probe", width)]
        lines.append(
            f"{width:>6} {n_covers:>13} {naive_t * 1e3:>10.2f}ms {probe_t * 1e3:>10.2f}ms"
            f" {naive_t / probe_t:>8.1f}x"
        )
    write_result("fig12_cover_values", "\n".join(lines))

    # exponential blowup in cover count; growing run-time gap
    assert _rows[("naive", 8)][1] == 256
    assert _rows[("probe", 8)][1] == 1
    slow_wide = _rows[("naive", 8)][0] / _rows[("probe", 8)][0]
    slow_narrow = _rows[("naive", 2)][0] / _rows[("probe", 2)][0]
    assert slow_wide > slow_narrow, "the gap must widen with signal width"
