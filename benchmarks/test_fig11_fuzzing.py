"""Figure 11: cumulative line coverage under different fuzzing feedback.

Fuzzes the I2C peripheral with AFL-style mutation, swapping the feedback
metric: our line coverage, the rfuzz mux-toggle metric, and no feedback
(random mutation) as the control.  Line coverage of all executed inputs is
tracked regardless of feedback (the figure's y-axis), averaged over five
seeded runs (as in the paper).

Shape to reproduce: coverage-guided runs dominate the no-feedback control,
and both coverage metrics are usable interchangeably as feedback.
"""

import pytest

from repro.coverage import instrument
from repro.designs.i2c import I2cPeripheral
from repro.fuzz import AflFuzzer, FuzzHarness, metric_filter
from repro.hcl import elaborate

from .conftest import write_result

EXECUTIONS = 400
SEEDS = [0, 1, 2, 3, 4]
CHECKPOINTS = [50, 100, 200, 300, 400]

_state = None
_db = None


def get_target():
    global _state, _db
    if _state is None:
        _state, _db = instrument(
            elaborate(I2cPeripheral()), metrics=["line", "mux_toggle"]
        )
    return _state, _db


def run_campaign(feedback_metric, seed):
    state, db = get_target()
    harness = FuzzHarness(state, max_cycles=96)
    feedback = None
    if feedback_metric is not None:
        feedback = metric_filter(db, state, feedback_metric)
    fuzzer = AflFuzzer(
        harness.execute,
        feedback=feedback,
        track=metric_filter(db, state, "line"),
        seeds=(b"\x00" * 24,),
        seed=seed,
    )
    stats = fuzzer.run(EXECUTIONS)
    return [stats.coverage_at(c) for c in CHECKPOINTS]


_curves: dict[str, list[float]] = {}


@pytest.mark.benchmark(group="fig11")
@pytest.mark.parametrize("metric", ["line", "mux_toggle", None], ids=["line", "mux_toggle", "random"])
def test_fig11_fuzzing_feedback(benchmark, metric):
    all_runs = []

    def campaign():
        # one seed per benchmark round; aggregate over the fixed seed set
        return [run_campaign(metric, seed) for seed in SEEDS]

    all_runs = benchmark.pedantic(campaign, rounds=1, iterations=1)
    averaged = [
        sum(run[i] for run in all_runs) / len(all_runs)
        for i in range(len(CHECKPOINTS))
    ]
    label = metric if metric is not None else "random"
    _curves[label] = averaged

    if len(_curves) == 3:
        lines = [
            "cumulative line coverage (covered line-cover points, 5-run mean)",
            f"{'executions':>12}" + "".join(f"{m:>12}" for m in _curves),
        ]
        for i, checkpoint in enumerate(CHECKPOINTS):
            lines.append(
                f"{checkpoint:>12}"
                + "".join(f"{_curves[m][i]:>12.1f}" for m in _curves)
            )
        write_result("fig11_fuzzing", "\n".join(lines))

        final_line = _curves["line"][-1]
        final_mux = _curves["mux_toggle"][-1]
        final_random = _curves["random"][-1]
        # feedback helps: both guided variants beat or match random
        assert final_line >= final_random
        assert final_mux >= final_random
        # curves are monotone
        for curve in _curves.values():
            assert curve == sorted(curve)
