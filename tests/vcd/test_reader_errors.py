"""Truncated and garbage VCD input must fail with a located parse error."""

import pytest

from repro.vcd import VcdParseError, VcdWriter, parse_vcd


def valid_vcd() -> str:
    writer = VcdWriter({"a": 1, "b": 8})
    writer.sample(0, {"a": 1, "b": 0x55})
    writer.sample(1, {"a": 0, "b": 0xAA})
    return writer.finish(2)


class TestTruncatedInput:
    def test_truncated_before_enddefinitions(self):
        text = valid_vcd()
        cut = text.index("$enddefinitions")
        with pytest.raises(VcdParseError, match="truncated"):
            parse_vcd(text[:cut])

    def test_empty_input_is_an_empty_dump(self):
        data = parse_vcd("")
        assert data.signals == {} and data.end_time == 0

    def test_error_carries_line_number(self):
        text = "$enddefinitions $end\n#0\nthis is not vcd\n"
        with pytest.raises(VcdParseError) as excinfo:
            parse_vcd(text)
        assert excinfo.value.line_number == 3
        assert "line 3" in str(excinfo.value)


class TestGarbageInput:
    @pytest.mark.parametrize(
        "line,detail",
        [
            ("$var wire x ! sig $end", "width 'x' is not an integer"),
            ("$var wire 0 ! sig $end", "width must be positive"),
            ("$var wire 8", "malformed"),
        ],
    )
    def test_bad_var_declarations(self, line, detail):
        with pytest.raises(VcdParseError, match=detail):
            parse_vcd(line + "\n$enddefinitions $end\n")

    @pytest.mark.parametrize("stamp", ["#zzz", "#1.5", "#-4"])
    def test_bad_timestamps(self, stamp):
        text = valid_vcd().replace("#1", stamp, 1)
        with pytest.raises(VcdParseError, match="timestamp"):
            parse_vcd(text)

    def test_bad_binary_value(self):
        text = "$var wire 8 ! b $end\n$enddefinitions $end\n#0\nbxyz !\n"
        with pytest.raises(VcdParseError, match="bad binary value"):
            parse_vcd(text)

    def test_scalar_without_identifier(self):
        text = "$enddefinitions $end\n#0\n1\n"
        with pytest.raises(VcdParseError, match="missing its identifier"):
            parse_vcd(text)

    def test_random_garbage_line(self):
        text = "$enddefinitions $end\n#0\nhello world\n"
        with pytest.raises(VcdParseError, match="unrecognized line"):
            parse_vcd(text)

    def test_dump_directives_are_tolerated(self):
        text = "$enddefinitions $end\n$dumpvars\n#0\n$end\n"
        data = parse_vcd(text)
        assert data.end_time == 0

    def test_valid_file_still_parses(self):
        data = parse_vcd(valid_vcd())
        assert data.signals == {"a": 1, "b": 8}
        assert data.value_at("b", 1) == 0xAA
