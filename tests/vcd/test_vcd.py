"""VCD write/parse roundtrip and the input-replay methodology."""

import io

from hypothesis import given, settings, strategies as st

from repro.backends import TreadleBackend, VerilatorBackend
from repro.hcl import Module, elaborate
from repro.vcd import InputReplay, VcdRecorder, VcdWriter, parse_vcd, record_inputs


class TestWriterReader:
    def test_roundtrip_simple(self):
        writer = VcdWriter({"a": 1, "b": 8})
        writer.sample(0, {"a": 1, "b": 0x55})
        writer.sample(1, {"a": 0, "b": 0x55})
        writer.sample(2, {"a": 0, "b": 0xAA})
        text = writer.finish(3)
        data = parse_vcd(text)
        assert data.signals == {"a": 1, "b": 8}
        assert data.value_at("a", 0) == 1
        assert data.value_at("a", 1) == 0
        assert data.value_at("b", 1) == 0x55
        assert data.value_at("b", 2) == 0xAA
        assert data.end_time == 3

    def test_only_changes_written(self):
        writer = VcdWriter({"x": 4})
        writer.sample(0, {"x": 3})
        writer.sample(1, {"x": 3})
        writer.sample(2, {"x": 3})
        text = writer.finish(3)
        # one change record only
        assert text.count("b11 ") == 1

    def test_undeclared_signal_rejected(self):
        import pytest

        writer = VcdWriter({"x": 4})
        with pytest.raises(KeyError):
            writer.sample(0, {"y": 1})

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 255)), min_size=1, max_size=40))
    def test_roundtrip_property(self, frames):
        writer = VcdWriter({"bit": 1, "byte": 8})
        for time, (bit, byte) in enumerate(frames):
            writer.sample(time, {"bit": bit, "byte": byte})
        data = parse_vcd(writer.finish(len(frames)))
        cycles = data.as_cycles(["bit", "byte"])
        assert len(cycles) == len(frames)
        for (bit, byte), cycle in zip(frames, cycles):
            assert cycle == {"bit": bit, "byte": byte}

    def test_x_and_z_values_parse_as_zero(self):
        text = (
            "$var wire 4 ! sig $end\n$enddefinitions $end\n"
            "#0\nbx10z !\n#1\n"
        )
        data = parse_vcd(text)
        assert data.value_at("sig", 0) == 0b0100


class _Accumulator(Module):
    def build(self, m):
        en = m.input("en")
        data = m.input("data", 8)
        total = m.output("total", 16)
        acc = m.reg("acc", 16, init=0)
        with m.when(en):
            acc <<= acc + data
        total <<= acc
        m.cover(acc > 100, "past_hundred")


class TestReplay:
    def test_record_and_replay_equivalence(self):
        """The Table 2 methodology: record once, replay gives same coverage."""
        import random

        rng = random.Random(9)
        circuit = elaborate(_Accumulator())
        original = TreadleBackend().compile(circuit)

        def drive(sim, cycle):
            sim.poke("reset", 1 if cycle == 0 else 0)
            sim.poke("en", rng.randint(0, 1))
            sim.poke("data", rng.randint(0, 255))

        vcd_text = record_inputs(
            original, {"reset": 1, "en": 1, "data": 8}, drive, cycles=80
        )
        original_counts = original.cover_counts()

        replay = InputReplay(vcd_text)
        assert replay.cycles == 80
        fresh = VerilatorBackend().compile(circuit)
        replay.run(fresh)
        assert fresh.cover_counts() == original_counts

    def test_partial_replay(self):
        circuit = elaborate(_Accumulator())
        sim = TreadleBackend().compile(circuit)
        writer = VcdRecorder(sim, {"reset": 1, "en": 1, "data": 8})
        sim.poke("en", 1)
        sim.poke("data", 1)
        writer.cycle(10)
        replay = InputReplay(writer.finish())
        fresh = TreadleBackend().compile(circuit)
        replay.run(fresh, cycles=5)
        assert fresh.peek("total") == 5
