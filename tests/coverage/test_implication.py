"""Minimal-basis instrumentation: unit + differential tests (DESIGN.md §15).

The unit half pins the static machinery — atom decomposition, partition
and equivalence detection, basis selection, the reconstruction algebra
(including its saturation clamp), and the CoverageDB recipe plumbing.
The differential half is the acceptance criterion: on every bundled
design and every software backend, counts reconstructed from a
``--min-instrument`` run are bit-identical to full instrumentation.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.implication import (
    analyze_module_covers,
    cover_atoms,
    decompose,
    minimize_basis,
    minimize_circuit,
)
from repro.backends import BACKENDS, TreadleBackend
from repro.coverage import InstanceTree, all_cover_names, instrument
from repro.coverage.common import CoverageDB, CoverageDBError
from repro.ir.nodes import (
    FALSE,
    TRUE,
    Circuit,
    ClockType,
    Cover,
    Module,
    Port,
    Ref,
    UIntType,
    and_,
    not_,
)
from repro.runtime.differential import DifferentialRunner

# -- expression helpers -------------------------------------------------------

CLK = Ref("clock", ClockType())


def bit(name: str) -> Ref:
    return Ref(name, UIntType(1))


def cover(name: str, pred, en=TRUE) -> Cover:
    return Cover(name=name, clock=CLK, pred=pred, en=en)


def module_with(covers) -> Module:
    ports = [Port("clock", "input", ClockType())]
    return Module("M", ports=ports, body=list(covers))


# -- decomposition ------------------------------------------------------------


def test_decompose_flattens_conjunctions_and_peels_not():
    a, b, c = bit("a"), bit("b"), bit("c")
    atoms = decompose(and_(a, and_(b, not_(c))))
    assert atoms == frozenset({(True, a), (True, b), (False, c)})


def test_decompose_negated_conjunction_is_opaque():
    a, b = bit("a"), bit("b")
    conj = and_(a, b)
    assert decompose(not_(conj)) == frozenset({(False, conj)})


def test_decompose_constants():
    assert decompose(TRUE) == frozenset()
    assert decompose(FALSE) is None
    assert decompose(not_(bit("a")), polarity=False) == frozenset(
        {(True, bit("a"))}
    )


def test_cover_atoms_merges_pred_and_en():
    a, b = bit("a"), bit("b")
    assert cover_atoms(cover("x", a, en=b)) == frozenset(
        {(True, a), (True, b)}
    )


def test_cover_atoms_contradiction_is_dead():
    a = bit("a")
    assert cover_atoms(cover("x", and_(a, not_(a)))) is None
    assert cover_atoms(cover("y", a, en=FALSE)) is None


# -- graph construction -------------------------------------------------------


def _partition_module() -> Module:
    # the ExpandWhens shape: parent at the block head, one cover in each
    # arm of `when p` — the arms partition the parent exactly
    b, p = bit("b"), bit("p")
    return module_with(
        [
            cover("parent", b),
            cover("conseq", and_(b, p)),
            cover("alt", and_(b, not_(p))),
        ]
    )


def test_partition_detected():
    analysis = analyze_module_covers(_partition_module(), use_absint=False)
    assert analysis.partitions == {"parent": ("conseq", "alt")}
    assert not analysis.dead


def test_partition_with_multi_literal_guard():
    # nested whens: the pivot literal sits inside a larger conjunction
    b, p, q = bit("b"), bit("p"), bit("q")
    m = module_with(
        [
            cover("parent", and_(b, q)),
            cover("conseq", and_(and_(b, q), p)),
            cover("alt", and_(and_(b, q), not_(p))),
        ]
    )
    analysis = analyze_module_covers(m, use_absint=False)
    assert analysis.partitions == {"parent": ("conseq", "alt")}


def test_equivalence_and_guard_detected():
    a, p = bit("a"), bit("p")
    m = module_with(
        [
            cover("first", a),
            cover("twin", a),
            cover("nested", and_(a, p)),
        ]
    )
    analysis = analyze_module_covers(m, use_absint=False)
    assert ["first", "twin"] in analysis.equivalences
    assert analysis.guards.get("nested") in ("first", "twin")


def test_reachability_exclusions_enter_as_dead():
    analysis = analyze_module_covers(
        _partition_module(), dead_covers=["parent"], use_absint=False
    )
    assert "parent" in analysis.dead
    assert "parent" not in analysis.atoms
    assert not analysis.partitions  # the parent set no longer exists


# -- basis selection ----------------------------------------------------------


def test_minimize_elides_partition_parent():
    result = minimize_basis(
        analyze_module_covers(_partition_module(), use_absint=False)
    )
    assert result.basis == {"conseq", "alt"}
    assert set(result.recipes) == {"parent"}
    assert sorted(result.recipes["parent"]) == [(1, "alt"), (1, "conseq")]


def test_minimize_elides_duplicates_and_dead():
    a = bit("a")
    m = module_with(
        [cover("first", a), cover("twin", a), cover("never", FALSE)]
    )
    result = minimize_basis(analyze_module_covers(m, use_absint=False))
    assert result.basis == {"first"}
    assert result.recipes["twin"] == [(1, "first")]
    assert result.recipes["never"] == []  # dead: reconstructs as 0


def test_minimize_resolves_recipes_transitively():
    # two nested partitions: the grandparent's recipe must bottom out in
    # basis covers only, with coefficients composed through the parent
    b, p, q = bit("b"), bit("p"), bit("q")
    m = module_with(
        [
            cover("grand", b),
            cover("parent", and_(b, p)),
            cover("uncle", and_(b, not_(p))),
            cover("kid_c", and_(and_(b, p), q)),
            cover("kid_a", and_(and_(b, p), not_(q))),
        ]
    )
    result = minimize_basis(analyze_module_covers(m, use_absint=False))
    assert result.basis == {"uncle", "kid_c", "kid_a"}
    assert dict(
        (name, coefficient)
        for coefficient, name in result.recipes["grand"]
    ) == {"uncle": 1, "kid_c": 1, "kid_a": 1}


def test_guard_implication_never_shrinks_the_basis():
    # child <= parent is real, but a subtraction recipe is unsound under
    # saturation — both covers must stay materialized
    a, p = bit("a"), bit("p")
    m = module_with([cover("outer", a), cover("inner", and_(a, p))])
    result = minimize_basis(analyze_module_covers(m, use_absint=False))
    assert result.basis == {"outer", "inner"}
    assert not result.recipes


# -- reconstruction algebra ---------------------------------------------------


def _flat_circuit() -> Circuit:
    return Circuit("M", [module_with([])])


def _recipe_db() -> CoverageDB:
    db = CoverageDB()
    db.add_recipe("M", "parent", [(1, "conseq"), (1, "alt")])
    db.add_recipe("M", "never", [])
    return db


def test_reconstruct_counts_sums_basis():
    counts = _recipe_db().reconstruct_counts(
        {"conseq": 3, "alt": 4}, InstanceTree(_flat_circuit())
    )
    assert counts == {"conseq": 3, "alt": 4, "parent": 7, "never": 0}


def test_reconstruct_clamps_at_the_counter_limit():
    counts = _recipe_db().reconstruct_counts(
        {"conseq": 7, "alt": 5},
        InstanceTree(_flat_circuit()),
        counter_width=3,
    )
    assert counts["parent"] == 7  # min(7 + 5, 2**3 - 1)


def test_reconstruct_is_idempotent():
    # keys already present (a full-instrumentation run) are never touched
    full = {"conseq": 3, "alt": 4, "parent": 99, "never": 5}
    counts = _recipe_db().reconstruct_counts(
        full, InstanceTree(_flat_circuit())
    )
    assert counts == full


# -- CoverageDB plumbing ------------------------------------------------------


def test_recipes_survive_json_round_trip():
    db = _recipe_db()
    loaded = CoverageDB.from_json(db.to_json())
    assert loaded.recipes == db.recipes


def test_from_json_rejects_malformed_recipes():
    doc = json.loads(_recipe_db().to_json())
    doc["recipes"]["M"]["parent"] = [["1", "conseq"]]  # str coefficient
    with pytest.raises(CoverageDBError):
        CoverageDB.from_json(json.dumps(doc))


def test_merge_carries_recipes_and_rejects_conflicts():
    merged = _recipe_db().merge(CoverageDB())
    assert merged.recipes == _recipe_db().recipes
    other = CoverageDB()
    other.add_recipe("M", "parent", [(1, "elsewhere")])
    with pytest.raises(CoverageDBError):
        _recipe_db().merge(other)


# -- differential: bit-identity on every design and backend -------------------


def _bundled_circuits():
    from repro.cli import _bundled_designs

    return _bundled_designs()


def _drive(sim, circuit, cycles: int, seed: int) -> dict:
    rng = random.Random(seed)
    inputs = [
        p for p in circuit.top.inputs if p.name not in ("clock", "reset")
    ]
    widths = {p.name: getattr(p.type, "width", 1) or 1 for p in inputs}
    for _ in range(cycles):
        for p in inputs:
            sim.poke(p.name, rng.getrandbits(widths[p.name]))
        sim.step()
    return sim.cover_counts()


def _assert_bit_identical(circuit, cycles, seed, counter_width=None):
    full_state, _ = instrument(circuit, metrics=["line", "fsm"])
    min_state, min_db = instrument(
        circuit, metrics=["line", "fsm"], minimize=True
    )
    backend = TreadleBackend()
    full = _drive(
        backend.compile_state(full_state, counter_width=counter_width),
        full_state.circuit, cycles, seed,
    )
    mini = _drive(
        backend.compile_state(min_state, counter_width=counter_width),
        min_state.circuit, cycles, seed,
    )
    reconstructed = min_db.reconstruct_counts(
        mini, InstanceTree(min_state.circuit), counter_width=counter_width
    )
    assert reconstructed == full
    return len(full), len(mini)


@pytest.mark.parametrize("name", sorted(_bundled_circuits()))
def test_every_bundled_design_reconstructs_bit_identical(name):
    circuit = _bundled_circuits()[name]
    full_counters, min_counters = _assert_bit_identical(
        circuit, cycles=150, seed=11, counter_width=3
    )
    assert min_counters <= full_counters


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    cycles=st.integers(min_value=10, max_value=300),
)
def test_reconstruction_matches_under_random_campaigns(seed, cycles):
    circuit = _bundled_circuits()["SerialGcd"]
    _assert_bit_identical(circuit, cycles=cycles, seed=seed)


def test_every_registered_backend_votes_bit_identical():
    """The full BACKENDS registry agrees on reconstructed counts.

    Both treatments run through :class:`DifferentialRunner` — every
    backend is one voting leg — and the minimized run's quorum-merged
    counts, reconstructed, must equal the full run's quorum.
    """
    circuit = _bundled_circuits()["SerialGcd"]
    width, cycles, seed = 8, 400, 29
    full_state, _ = instrument(circuit, metrics=["line"])
    min_state, min_db = instrument(circuit, metrics=["line"], minimize=True)

    def run(state):
        rng = random.Random(seed)
        inputs = [
            p for p in state.circuit.top.inputs
            if p.name not in ("clock", "reset")
        ]
        widths = {p.name: getattr(p.type, "width", 1) or 1 for p in inputs}

        def stimulus(sim, cycle):
            for p in inputs:
                sim.poke(p.name, rng.getrandbits(widths[p.name]))

        def make_sim(backend_cls):
            def factory():
                rng.seed(seed)
                return backend_cls().compile(
                    state.circuit, counter_width=width
                )
            return factory

        result = DifferentialRunner().run(
            "min-instrument-diff",
            {name: make_sim(cls) for name, cls in BACKENDS.items()},
            cycles=cycles,
            stimulus=stimulus,
            known_names=all_cover_names(state.circuit),
            counter_width=width,
        )
        assert result.agreed, result.report.format()
        return dict(result.merged)

    full = run(full_state)
    reconstructed = min_db.reconstruct_counts(
        run(min_state), InstanceTree(min_state.circuit), counter_width=width
    )
    assert reconstructed == full
    assert any(full.values())
