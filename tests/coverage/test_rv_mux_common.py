"""Ready/valid + mux-toggle metrics and the common library (merge/filter)."""

from hypothesis import given, strategies as st

from repro.backends import TreadleBackend, VerilatorBackend
from repro.coverage import (
    CoverageDB,
    InstanceTree,
    covered_points,
    filter_covered,
    instrument,
    merge_counts,
    mux_toggle_report,
    ready_valid_report,
)
from repro.designs.lib import Queue
from repro.hcl import Module, elaborate


class TestReadyValid:
    def run_queue(self, enq_cycles):
        state, db = instrument(elaborate(Queue(8, 4)), metrics=["ready_valid"])
        sim = TreadleBackend().compile_state(state)
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        sim.poke("deq_ready", 1)
        for enq in enq_cycles:
            sim.poke("enq_valid", enq)
            sim.poke("enq_bits", 42)
            sim.step()
        return ready_valid_report(db, sim.cover_counts(), state.circuit)

    def test_counts_fires(self):
        report = self.run_queue([1, 1, 0, 1])
        assert report.bundles[("Queue", "enq")] == 3
        assert report.fired >= 1

    def test_idle_interface_reported(self):
        report = self.run_queue([0, 0])
        assert report.bundles[("Queue", "enq")] == 0
        assert report.fired < report.total
        assert "!" in report.format()

    def test_one_cover_per_bundle(self):
        _, db = instrument(elaborate(Queue(8, 4)), metrics=["ready_valid"])
        assert db.count("ready_valid") == 2  # enq + deq


class TestMuxToggle:
    def test_selects_found_and_deduped(self):
        class TwoMux(Module):
            def build(self, m):
                sel = m.input("sel")
                a = m.input("a", 4)
                b = m.input("b", 4)
                o1 = m.output("o1", 4)
                o2 = m.output("o2", 4)
                o1 <<= m.mux(sel, a, b)
                o2 <<= m.mux(sel, b, a)  # same select: dedup

        state, db = instrument(elaborate(TwoMux()), metrics=["mux_toggle"])
        indexes = {payload["index"] for _, _, payload in db.covers_of("mux_toggle")}
        assert len(indexes) == 1  # one distinct select signal
        assert db.count("mux_toggle") == 2  # T and F polarity

    def test_both_polarities_required(self):
        class OneMux(Module):
            def build(self, m):
                sel = m.input("sel")
                o = m.output("o", 4)
                o <<= m.mux(sel, 3, 5)

        state, db = instrument(elaborate(OneMux()), metrics=["mux_toggle"])
        sim = TreadleBackend().compile_state(state)
        sim.poke("sel", 1)
        sim.step(5)
        report = mux_toggle_report(db, sim.cover_counts(), state.circuit)
        assert report.toggled == 0
        sim.poke("sel", 0)
        sim.step(1)
        report = mux_toggle_report(db, sim.cover_counts(), state.circuit)
        assert report.toggled == report.total == 1


class TestCommonLibrary:
    @given(
        st.dictionaries(st.sampled_from(["a", "b", "c", "d"]), st.integers(0, 100)),
        st.dictionaries(st.sampled_from(["a", "b", "c", "d"]), st.integers(0, 100)),
    )
    def test_merge_is_addition(self, x, y):
        merged = merge_counts(x, y)
        for key in set(x) | set(y):
            assert merged[key] == x.get(key, 0) + y.get(key, 0)

    @given(
        st.dictionaries(st.sampled_from(["a", "b", "c"]), st.integers(0, 100)),
        st.dictionaries(st.sampled_from(["a", "b", "c"]), st.integers(0, 100)),
    )
    def test_merge_commutative(self, x, y):
        assert merge_counts(x, y) == merge_counts(y, x)

    def test_merge_saturates(self):
        merged = merge_counts({"a": 200}, {"a": 100}, counter_width=8)
        assert merged["a"] == 255

    def test_filter_covered(self):
        counts = {"a": 0, "b": 5, "c": 12}
        assert filter_covered(counts, threshold=10) == {"a", "b"}
        assert covered_points(counts, threshold=10) == {"c"}
        assert covered_points(counts) == {"b", "c"}

    def test_db_serialization_roundtrip(self):
        db = CoverageDB()
        db.add("line", "M", "l0", {"lines": [["f.py", 3]]})
        db.add("fsm", "M", "t0", {"kind": "state", "state": "idle"})
        restored = CoverageDB.from_json(db.to_json())
        assert restored.entries == db.entries

    def test_db_merge(self):
        a = CoverageDB()
        a.add("line", "M", "l0", {})
        b = CoverageDB()
        b.add("toggle", "M", "t0", {})
        merged = a.merge(b)
        assert merged.count("line") == 1
        assert merged.count("toggle") == 1

    def test_instance_tree_resolution(self):
        class Leaf(Module):
            def signature(self):
                return ("leaf",)

            def build(self, m):
                o = m.output("o", 1)
                o <<= 0
                m.cover(m.lit(1, 1) == 1, "c")

        class Mid(Module):
            def signature(self):
                return ("mid",)

            def build(self, m):
                leaf = m.instance("leaf", Leaf())
                o = m.output("o", 1)
                o <<= leaf.o

        class Top(Module):
            def build(self, m):
                x = m.instance("x", Mid())
                y = m.instance("y", Mid())
                o = m.output("o", 1)
                o <<= x.o | y.o

        circuit = elaborate(Top())
        tree = InstanceTree(circuit)
        module, local = tree.resolve("x.leaf.c")
        assert local == "c"
        paths = tree.instance_paths(module)
        assert sorted(paths) == ["x.leaf.", "y.leaf."]

    def test_counts_json_roundtrip(self):
        from repro.coverage import counts_from_json, counts_to_json

        counts = {"x.c": 4, "y": 0}
        assert counts_from_json(counts_to_json(counts)) == counts
