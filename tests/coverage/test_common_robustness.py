"""Hardened common-library paths: DB deserialization and validated merge."""

import json

import pytest

from repro.coverage import (
    COVERAGE_DB_VERSION,
    CoverageDB,
    CoverageDBError,
    InvalidCountsError,
    checked_merge_counts,
    count_issues,
    counts_from_json,
    merge_counts,
)
from repro.backends import saturate


class TestCoverageDbFromJson:
    def test_roundtrip_still_works(self):
        db = CoverageDB()
        db.add("line", "Top", "l_0", {"kind": "root", "lines": [["f.py", 3]]})
        loaded = CoverageDB.from_json(db.to_json())
        assert loaded.entries == db.entries

    @pytest.mark.parametrize(
        "text,detail",
        [
            ("{oops", "not valid JSON"),
            ("[1, 2]", "expected a JSON object"),
            ("{}", "missing 'version'"),
            ('{"version": 2, "entries": {}}', "unsupported version 2"),
            ('{"version": 1}', "missing or non-object 'entries'"),
            ('{"version": 1, "entries": []}', "missing or non-object 'entries'"),
            ('{"version": 1, "entries": {"line": 5}}', "expected an object of modules"),
            (
                '{"version": 1, "entries": {"line": {"Top": []}}}',
                "expected an object of cover payloads",
            ),
        ],
    )
    def test_malformed_raises_coverage_db_error(self, text, detail):
        with pytest.raises(CoverageDBError, match=detail):
            CoverageDB.from_json(text)

    def test_error_carries_file_context(self):
        with pytest.raises(CoverageDBError, match="gcd.covdb.json"):
            CoverageDB.from_json("{}", source="gcd.covdb.json")

    def test_future_version_is_refused_not_misread(self):
        payload = json.dumps({"version": COVERAGE_DB_VERSION + 1, "entries": {}})
        with pytest.raises(CoverageDBError, match="version"):
            CoverageDB.from_json(payload)


class TestCoverageDbMerge:
    @staticmethod
    def db(payload):
        db = CoverageDB()
        db.add("line", "Gcd", "l_0", payload)
        return db

    def test_disjoint_keys_union(self):
        a = CoverageDB()
        a.add("line", "Gcd", "l_0", {"kind": "root"})
        b = CoverageDB()
        b.add("line", "Gcd", "l_1", {"kind": "root"})
        b.add("fsm", "Gcd", "f_0", {"state": "idle"})
        merged = a.merge(b)
        assert set(merged.entries["line"]["Gcd"]) == {"l_0", "l_1"}
        assert merged.entries["fsm"]["Gcd"]["f_0"] == {"state": "idle"}

    def test_identical_payload_collision_is_fine(self):
        payload = {"kind": "root", "lines": [["gcd.py", 12]]}
        merged = self.db(payload).merge(self.db(dict(payload)))
        assert merged.entries["line"]["Gcd"]["l_0"] == payload

    def test_conflicting_payloads_raise_naming_the_key(self):
        a = self.db({"kind": "root", "lines": [["gcd.py", 12]]})
        b = self.db({"kind": "root", "lines": [["gcd.py", 99]]})
        with pytest.raises(CoverageDBError, match=r"\('line', 'Gcd', 'l_0'\)"):
            a.merge(b)

    def test_conflict_error_shows_both_payloads(self):
        a = self.db({"kind": "root"})
        b = self.db({"kind": "branch"})
        with pytest.raises(CoverageDBError, match="'root'.*!=.*'branch'"):
            a.merge(b)

    def test_merge_does_not_mutate_either_side(self):
        a = self.db({"kind": "root"})
        b = CoverageDB()
        b.add("line", "Gcd", "l_1", {"kind": "root"})
        a.merge(b)
        assert "l_1" not in a.entries["line"]["Gcd"]
        assert "l_0" not in b.entries["line"]["Gcd"]


class TestCountsFromJson:
    def test_roundtrip_still_works(self):
        counts = {"Gcd.l_0": 3, "Gcd.l_1": 0}
        assert counts_from_json(json.dumps(counts)) == counts

    @pytest.mark.parametrize(
        "text,detail",
        [
            ("{oops", "not valid JSON"),
            ("[1, 2]", "expected a JSON object of counts, got list"),
            ('"counts"', "expected a JSON object of counts, got str"),
            ('{"k": -3}', "negative count -3"),
            ('{"k": 1.5}', "non-integer count 1.5"),
            ('{"k": "3"}', "non-integer count '3'"),
            ('{"k": true}', "non-integer count True"),
            ('{"k": null}', "non-integer count None"),
        ],
    )
    def test_malformed_raises_located_error(self, text, detail):
        with pytest.raises(InvalidCountsError, match=detail):
            counts_from_json(text)

    def test_error_carries_file_context(self):
        with pytest.raises(InvalidCountsError, match="gcd.counts.json"):
            counts_from_json("{oops", source="gcd.counts.json")

    def test_error_collects_every_issue(self):
        text = json.dumps({"a": -1, "b": 2.5, "c": 3, "d": -9})
        try:
            counts_from_json(text)
        except InvalidCountsError as error:
            assert len(error.issues) == 3
        else:
            pytest.fail("expected InvalidCountsError")

    def test_long_issue_lists_are_elided_in_the_message(self):
        text = json.dumps({f"k{i}": -i for i in range(1, 8)})
        with pytest.raises(InvalidCountsError, match=r"7 invalid entries.*; \.\.\."):
            counts_from_json(text)


class TestSaturationEdges:
    """Unit tests for the exact boundary the validated merge enforces."""

    @pytest.mark.parametrize("width", [1, 4, 16])
    def test_at_limit_and_around_it(self, width):
        limit = (1 << width) - 1
        assert saturate(limit - 1, width) == limit - 1
        assert saturate(limit, width) == limit
        assert saturate(limit + 1, width) == limit
        assert saturate(limit * 100, width) == limit

    def test_width_one(self):
        assert saturate(0, 1) == 0
        assert saturate(1, 1) == 1
        assert saturate(2, 1) == 1

    def test_width_none_never_saturates(self):
        assert saturate(10**12, None) == 10**12

    def test_merge_saturates_at_exactly_the_limit(self):
        limit = (1 << 4) - 1
        merged = merge_counts({"k": limit - 1}, {"k": 1}, counter_width=4)
        assert merged == {"k": limit}
        merged = merge_counts({"k": limit}, {"k": 1}, counter_width=4)
        assert merged == {"k": limit}


class TestCheckedMerge:
    def test_valid_inputs_behave_like_merge_counts(self):
        a, b = {"x": 2, "y": 0}, {"x": 3, "z": 7}
        assert checked_merge_counts(a, b) == merge_counts(a, b)

    def test_raise_on_negative(self):
        with pytest.raises(InvalidCountsError, match="negative count -2"):
            checked_merge_counts({"x": -2})

    def test_raise_on_non_int(self):
        for bad in (1.5, "3", True, None):
            with pytest.raises(InvalidCountsError, match="non-integer"):
                checked_merge_counts({"x": bad})

    def test_raise_on_overflow_for_width(self):
        limit = (1 << 8) - 1
        assert checked_merge_counts({"x": limit}, counter_width=8) == {"x": limit}
        with pytest.raises(InvalidCountsError, match="saturation limit"):
            checked_merge_counts({"x": limit + 1}, counter_width=8)

    def test_error_lists_every_issue(self):
        try:
            checked_merge_counts({"x": -1, "y": 2.5})
        except InvalidCountsError as error:
            assert len(error.issues) == 2
        else:
            pytest.fail("expected InvalidCountsError")

    def test_clamp_policy(self):
        limit = (1 << 4) - 1
        merged = checked_merge_counts(
            {"neg": -5, "big": limit + 9, "ok": 2, "bad": "x"},
            counter_width=4,
            on_invalid="clamp",
        )
        assert merged == {"neg": 0, "big": limit, "ok": 2}

    def test_drop_policy(self):
        merged = checked_merge_counts(
            {"neg": -5, "ok": 2}, {"ok": 1}, on_invalid="drop"
        )
        assert merged == {"ok": 3}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="raise|clamp|drop"):
            checked_merge_counts({}, on_invalid="ignore")

    def test_count_issues_width1_boundaries(self):
        assert count_issues({"k": 1}, counter_width=1) == []
        assert len(count_issues({"k": 2}, counter_width=1)) == 1
        assert count_issues({"k": 2}, counter_width=None) == []
