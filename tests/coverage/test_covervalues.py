"""cover-values (§6): naive blowup vs efficient backend probes."""

import pytest

from repro.backends import TreadleBackend, VerilatorBackend
from repro.coverage.covervalues import (
    CoverValuesNaivePass,
    naive_report,
    probe_report,
)
from repro.hcl import Module, elaborate
from repro.passes import CheckForms, CompileState, ExpandWhens, PassError, PassManager


class _Walker(Module):
    def build(self, m):
        step_in = m.input("step_in", 4)
        out = m.output("o", 4)
        value = m.reg("value", 4, init=0)
        value <<= value + step_in
        out <<= value


def lowered(module):
    return PassManager([CheckForms(), ExpandWhens()]).run(
        CompileState(elaborate(module))
    )


class TestNaivePass:
    def test_emits_one_cover_per_value(self):
        state = lowered(_Walker())
        naive = CoverValuesNaivePass({"_Walker": ["value"]})
        state = naive.run(state)
        assert naive.db.count("cover_values") == 16  # 2^4: the blowup

    def test_counts_match_probe(self):
        state = lowered(_Walker())
        naive = CoverValuesNaivePass({"_Walker": ["value"]})
        state = naive.run(state)
        sim = TreadleBackend().compile_state(state)
        sim.watch_values("value")
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        sim.poke("step_in", 3)
        sim.step(20)
        counts = sim.cover_counts()
        report_naive = naive_report(naive.db, counts, "_Walker", "value", 4)
        report_probe = probe_report("value", 4, sim.value_histogram("value"))
        assert report_naive.histogram == report_probe.histogram
        assert report_naive.seen == report_probe.seen

    def test_width_guard(self):
        class Wide(Module):
            def build(self, m):
                d = m.input("d", 20)
                out = m.output("o", 20)
                r = m.reg("r", 20, init=0)
                r <<= d
                out <<= r

        state = lowered(Wide())
        with pytest.raises(PassError):
            CoverValuesNaivePass({"Wide": ["r"]}).run(state)

    def test_unknown_signal(self):
        state = lowered(_Walker())
        with pytest.raises(PassError):
            CoverValuesNaivePass({"_Walker": ["ghost"]}).run(state)


class TestProbeBackends:
    def test_verilator_probe_matches_treadle(self):
        state = lowered(_Walker())
        t = TreadleBackend().compile_state(state)
        t.watch_values("value")
        v = VerilatorBackend().compile_state(state, value_probes=("value",))
        for sim in (t, v):
            sim.poke("reset", 1)
            sim.step()
            sim.poke("reset", 0)
            sim.poke("step_in", 5)
            sim.step(30)
        assert t.value_histogram("value") == v.value_histogram("value")

    def test_report_format(self):
        report = probe_report("sig", 4, {0: 3, 7: 1})
        assert "2/16" in report.format()
