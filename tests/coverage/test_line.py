"""Line coverage: instrumentation, reports, and the Figure-3 motivation."""

from repro.backends import TreadleBackend, VerilatorBackend
from repro.coverage import CoverageDB, instrument, line_report
from repro.hcl import Module, elaborate


class _Branchy(Module):
    def build(self, m):
        sel = m.input("sel", 2)
        out = m.output("out", 4)
        out <<= 0
        with m.when(sel == 1):
            out <<= 1
        with m.elsewhen(sel == 2):
            out <<= 2
        with m.otherwise():
            out <<= 3


def run_with_sel(values):
    state, db = instrument(elaborate(_Branchy()), metrics=["line"])
    sim = TreadleBackend().compile_state(state)
    for value in values:
        sim.poke("sel", value)
        sim.step()
    return state, db, sim.cover_counts()


class TestInstrumentation:
    def test_one_cover_per_branch_block(self):
        state, db, _ = run_with_sel([])
        # root + when-conseq + when-alt (holding the elsewhen) +
        # elsewhen-conseq + otherwise = 5 blocks
        assert db.count("line") == 5

    def test_counts_track_branch_execution(self):
        state, db, counts = run_with_sel([1, 1, 2, 0])
        report = line_report(db, counts, state.circuit)
        by_branch = sorted(report.branch_counts.values())
        # root 4x; sel==1 twice; not-sel==1 twice; sel==2 once; otherwise once
        assert by_branch == [1, 1, 2, 2, 4]

    def test_uncovered_branch_reported(self):
        state, db, counts = run_with_sel([1, 1])  # never sel==2, never otherwise
        report = line_report(db, counts, state.circuit)
        assert report.covered < report.total
        assert report.uncovered_lines()

    def test_full_coverage(self):
        state, db, counts = run_with_sel([0, 1, 2])
        report = line_report(db, counts, state.circuit)
        assert report.percent == 100.0

    def test_source_annotation(self):
        state, db, counts = run_with_sel([0, 1, 2, 3])
        report = line_report(db, counts, state.circuit)
        sources = {
            file: ["line text"] * 500 for file in report.files
        }
        text = report.format(sources)
        assert "line coverage:" in text
        assert "100.0%" in text

    def test_original_circuit_not_mutated(self):
        circuit = elaborate(_Branchy())
        from repro.ir import Cover
        from repro.ir.traversal import walk_stmts

        before = sum(1 for s in walk_stmts(circuit.top.body) if isinstance(s, Cover))
        instrument(circuit, metrics=["line"])
        after = sum(1 for s in walk_stmts(circuit.top.body) if isinstance(s, Cover))
        assert before == after == 0


class TestHierarchy:
    def test_counts_sum_across_instances(self):
        class Leaf(Module):
            def build(self, m):
                x = m.input("x")
                o = m.output("o", 1)
                o <<= 0
                with m.when(x):
                    o <<= 1

        class Top(Module):
            def build(self, m):
                x = m.input("x")
                o = m.output("o", 1)
                a = m.instance("a", Leaf())
                b = m.instance("b", Leaf())
                a.x <<= x
                b.x <<= ~x
                o <<= a.o & b.o

        state, db = instrument(elaborate(Top()), metrics=["line"])
        sim = TreadleBackend().compile_state(state)
        sim.poke("x", 1)
        sim.step(10)
        report = line_report(db, sim.cover_counts(), state.circuit)
        # exactly one of the two instances takes the branch each cycle, so
        # the module-level branch line accumulates 10 counts total
        assert report.percent == 100.0


class TestFig3Motivation:
    """Instrumenting AFTER lowering loses branches (the paper's Figure 3)."""

    def test_post_lowering_sees_no_branches(self):
        from repro.coverage.line import LineCoveragePass
        from repro.passes import CheckForms, CompileState, ExpandWhens, PassManager

        circuit = elaborate(_Branchy())
        db = CoverageDB()
        # wrong order: lower first, then instrument
        state = PassManager([CheckForms(), ExpandWhens(), LineCoveragePass(db)]).run(
            CompileState(circuit)
        )
        # only the root block remains: branch information is gone
        assert db.count("line") == 1
