"""Toggle coverage and the global alias analysis."""

from repro.backends import TreadleBackend
from repro.coverage import analyze_aliases, instrument, toggle_report
from repro.hcl import Module, elaborate
from repro.passes import lower


class _Toggler(Module):
    def build(self, m):
        din = m.input("din", 4)
        out = m.output("out", 4)
        r = m.reg("r", 4, init=0)
        r <<= din
        out <<= r


class TestToggleInstrumentation:
    def test_counts_bit_changes(self):
        state, db = instrument(elaborate(_Toggler()), metrics=["toggle"])
        sim = TreadleBackend().compile_state(state)
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        for value in (0b0001, 0b0011, 0b0011):
            sim.poke("din", value)
            sim.step()
        report = toggle_report(db, sim.cover_counts(), state.circuit)
        din_bits = report.signals[("_Toggler", "din")]
        assert din_bits[0] >= 1  # bit 0 rose
        assert din_bits[3] == 0  # bit 3 never moved

    def test_first_cycle_suppressed(self):
        state, db = instrument(elaborate(_Toggler()), metrics=["toggle"])
        sim = TreadleBackend().compile_state(state)
        # drive a value in the very first cycle: prev is bogus, must not count
        sim.poke("din", 0xF)
        sim.step()
        counts = sim.cover_counts()
        assert all(c == 0 for c in counts.values())

    def test_stuck_bits_reported(self):
        state, db = instrument(elaborate(_Toggler()), metrics=["toggle"])
        sim = TreadleBackend().compile_state(state)
        sim.step(5)
        report = toggle_report(db, sim.cover_counts(), state.circuit)
        assert len(report.stuck_bits()) == report.total_bits
        assert report.percent == 0.0

    def test_categories_selectable(self):
        state, db = instrument(
            elaborate(_Toggler()), metrics=["toggle"], toggle_categories=["reg"]
        )
        signals = {payload["signal"] for _, _, payload in db.covers_of("toggle")}
        assert signals == {"r"}


class _AliasTop(Module):
    def build(self, m):
        din = m.input("din", 4)
        out = m.output("out", 4)
        a = m.instance("a", _Toggler())
        b = m.instance("b", _Toggler())
        a.din <<= din
        b.din <<= din
        out <<= a.out & b.out


class TestAliasAnalysis:
    def test_child_ports_skipped_when_plainly_driven(self):
        state = lower(elaborate(_AliasTop()), optimize=False)
        info = analyze_aliases(state.circuit)
        assert "din" in info.skipped("_Toggler")
        assert "reset" in info.skipped("_Toggler")

    def test_reset_instrumented_once_globally(self):
        state, db = instrument(elaborate(_AliasTop()), metrics=["toggle"])
        reset_covers = [
            (module, payload["signal"])
            for module, _, payload in db.covers_of("toggle")
            if payload["signal"] == "reset"
        ]
        assert reset_covers == [("_AliasTop", "reset")]

    def test_alias_analysis_reduces_covers(self):
        circuit = elaborate(_AliasTop())
        _, with_alias = instrument(circuit, metrics=["toggle"])
        _, without_alias = instrument(
            circuit, metrics=["toggle"], use_alias_analysis=False
        )
        assert with_alias.count("toggle") < without_alias.count("toggle")

    def test_groups_reported(self):
        state = lower(elaborate(_AliasTop()), optimize=False)
        info = analyze_aliases(state.circuit)
        assert info.total_skipped > 0

    def test_counts_still_complete_after_aliasing(self):
        """Skipping aliased signals must not lose toggle information."""
        state, db = instrument(elaborate(_AliasTop()), metrics=["toggle"])
        sim = TreadleBackend().compile_state(state)
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        for value in (0b0101, 0b1010, 0b0101):
            sim.poke("din", value)
            sim.step()
        report = toggle_report(db, sim.cover_counts(), state.circuit)
        top_din = report.signals[("_AliasTop", "din")]
        assert all(count >= 2 for count in top_din.values())
