"""FSM coverage: transition analysis, conservatism, reports."""

from repro.backends import TreadleBackend
from repro.coverage import fsm_report, instrument
from repro.coverage.fsm import FsmCoveragePass
from repro.hcl import ChiselEnum, Module, elaborate
from repro.passes import CheckForms, CompileState, ConstProp, ExpandWhens, PassManager


TrafficState = ChiselEnum("Traffic", "red green yellow")


class _Traffic(Module):
    def build(self, m):
        go = m.input("go")
        out = m.output("out", 2)
        state = m.reg("state", enum=TrafficState)
        with m.switch(state):
            with m.is_(TrafficState.red):
                with m.when(go):
                    state <<= TrafficState.green
            with m.is_(TrafficState.green):
                state <<= TrafficState.yellow
            with m.is_(TrafficState.yellow):
                state <<= TrafficState.red
        out <<= state


def analyze(module):
    db_pass = FsmCoveragePass()
    PassManager([CheckForms(), ExpandWhens(), ConstProp(), db_pass]).run(
        CompileState(elaborate(module))
    )
    return db_pass


class TestTransitionAnalysis:
    def test_exact_transitions_found(self):
        info = analyze(_Traffic()).infos[0]
        transitions = set(info.transitions)
        assert transitions == {
            ("red", "red"),
            ("red", "green"),
            ("green", "yellow"),
            ("yellow", "red"),
        }
        assert not info.over_approximated

    def test_start_state_detected(self):
        info = analyze(_Traffic()).infos[0]
        assert info.start == "red"

    def test_over_approximation_on_opaque_next(self):
        S = ChiselEnum("Opaque", "a b")

        class Scrambled(Module):
            def build(self, m):
                noise = m.input("noise", 1)
                out = m.output("o", 1)
                state = m.reg("state", enum=S)
                # next state comes through an arithmetic blender the
                # analysis cannot see through
                state <<= ((state + noise) ^ noise)[0:0]
                out <<= state

        info = analyze(Scrambled()).infos[0]
        assert info.over_approximated
        # conservative: ALL transitions reported
        assert set(info.transitions) == {
            ("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")
        }

    def test_covers_for_states_and_transitions(self):
        fsm_pass = analyze(_Traffic())
        kinds = [payload["kind"] for _, _, payload in fsm_pass.db.covers_of("fsm")]
        assert kinds.count("state") == 3
        assert kinds.count("transition") == 4


class TestRuntimeCounts:
    def run(self, go_sequence):
        state, db = instrument(elaborate(_Traffic()), metrics=["fsm"])
        sim = TreadleBackend().compile_state(state)
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        for go in go_sequence:
            sim.poke("go", go)
            sim.step()
        return fsm_report(db, sim.cover_counts(), state.circuit)

    def test_full_cycle_covers_everything(self):
        report = self.run([0, 1, 0, 0, 1, 0, 0])
        data = report.fsms[("_Traffic", "state")]
        assert all(c > 0 for c in data["states"].values())
        assert all(c > 0 for c in data["transitions"].values())

    def test_stuck_fsm_uncovers_transitions(self):
        report = self.run([0, 0, 0, 0])
        data = report.fsms[("_Traffic", "state")]
        assert data["states"]["red"] > 0
        assert data["states"]["green"] == 0
        assert data["transitions"][("red", "green")] == 0

    def test_report_formats(self):
        report = self.run([1, 0, 0, 1])
        text = report.format()
        assert "FSM _Traffic.state" in text
        assert "->" in text

    def test_transitions_not_counted_during_reset(self):
        state, db = instrument(elaborate(_Traffic()), metrics=["fsm"])
        sim = TreadleBackend().compile_state(state)
        sim.poke("reset", 1)
        sim.poke("go", 1)
        sim.step(5)  # in reset: no transition counts
        report = fsm_report(db, sim.cover_counts(), state.circuit)
        transitions = report.fsms[("_Traffic", "state")]["transitions"]
        assert all(c == 0 for c in transitions.values())
