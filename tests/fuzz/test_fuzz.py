"""Fuzzer: mutations, bucketing, harness decoding, feedback effectiveness."""

import random

from hypothesis import given, settings, strategies as st

from repro.coverage import instrument
from repro.designs.i2c import I2cPeripheral
from repro.fuzz import AflFuzzer, FuzzHarness, bitmap_of, bucket, metric_filter, mutations
from repro.hcl import Module, elaborate


class TestBuckets:
    def test_afl_buckets(self):
        assert bucket(0) == 0
        assert bucket(1) == 1
        assert bucket(2) == 2
        assert bucket(3) == 3
        assert bucket(4) == bucket(7) == 4
        assert bucket(8) == bucket(15) == 5
        assert bucket(16) == bucket(31) == 6
        assert bucket(32) == bucket(127) == 7
        assert bucket(128) == bucket(10_000) == 8

    @given(st.integers(0, 1_000_000))
    def test_bucket_monotone(self, n):
        assert bucket(n) <= bucket(n + 1)

    def test_bitmap_ignores_zeroes(self):
        assert bitmap_of({"a": 0, "b": 3}) == frozenset({("b", 3)})


class TestMutations:
    def test_bitflips_cover_every_bit(self):
        data = b"\x00\x00"
        flipped = list(mutations.bitflips(data))
        assert len(flipped) == 16
        assert all(sum(x.bit_count() for x in out) == 1 for out in flipped)

    def test_byteflips(self):
        outs = list(mutations.byteflips(b"\x00\xff"))
        assert outs[0] == b"\xff\xff"
        assert outs[1] == b"\x00\x00"

    @given(st.binary(min_size=1, max_size=64), st.integers(0, 2**32))
    @settings(max_examples=50)
    def test_havoc_always_returns_bytes(self, data, seed):
        rng = random.Random(seed)
        out = mutations.havoc(data, rng)
        assert isinstance(out, bytes) and len(out) >= 1

    def test_arith_and_interesting(self):
        assert all(len(x) == 2 for x in mutations.arith8(b"\x10\x20", limit=2))
        outs = list(mutations.interesting8(b"\x05"))
        assert b"\xff" in outs


class _Toy(Module):
    """Reaching 'deep' requires a byte sequence — feedback helps."""

    def build(self, m):
        data = m.input("data", 8)
        out = m.output("o", 1)
        stage = m.reg("stage", 2, init=0)
        with m.when((stage == 0) & (data == 0xAB)):
            stage <<= 1
        with m.elsewhen((stage == 1) & (data == 0xCD)):
            stage <<= 2
        with m.elsewhen((stage == 2) & (data == 0xEF)):
            stage <<= 3
        out <<= stage == 3
        m.cover(stage == 3, "deep")


class TestHarness:
    def make(self):
        state, db = instrument(elaborate(_Toy()), metrics=["line"])
        return FuzzHarness(state, max_cycles=32), state, db

    def test_decode_deterministic(self):
        harness, _, _ = self.make()
        assert harness.decode(b"\x01\x02") == harness.decode(b"\x01\x02")
        frames = harness.decode(b"\xab\xcd\xef")
        assert [f["data"] for f in frames] == [0xAB, 0xCD, 0xEF]

    def test_execute_counts_from_fresh_state(self):
        harness, _, _ = self.make()
        counts_a = harness.execute(b"\xab\xcd\xef")
        counts_b = harness.execute(b"\x00\x00\x00")
        assert any(v > 0 for v in counts_a.values())
        # run b must not inherit run a's counters
        assert counts_b != counts_a
        assert harness.executions == 2

    def test_magic_sequence_reaches_deep(self):
        harness, _, _ = self.make()
        counts = harness.execute(b"\xab\xcd\xef\x00")
        assert counts["deep"] >= 1

    def test_metric_filter(self):
        state, db = instrument(elaborate(_Toy()), metrics=["line", "fsm"])
        keep_line = metric_filter(db, state, "line")
        harness = FuzzHarness(state)
        counts = harness.execute(b"\xab")
        filtered = keep_line(counts)
        assert filtered  # line covers present
        assert all(key.startswith("l") for key in filtered)


class TestFuzzerLoop:
    def test_feedback_beats_no_feedback(self):
        """The §5.4 claim in miniature: coverage feedback finds more."""
        state, db = instrument(elaborate(_Toy()), metrics=["line"])

        def covered_with(feedback_enabled, seed):
            harness = FuzzHarness(state, max_cycles=16)
            fuzzer = AflFuzzer(
                harness.execute,
                feedback=(lambda c: c) if feedback_enabled else None,
                seeds=(b"\x00" * 4,),
                seed=seed,
            )
            stats = fuzzer.run(max_executions=300)
            return len(stats.covered)

        with_feedback = sum(covered_with(True, s) for s in range(3))
        without = sum(covered_with(False, s) for s in range(3))
        assert with_feedback >= without

    def test_queue_grows_on_new_coverage(self):
        state, db = instrument(elaborate(_Toy()), metrics=["line"])
        harness = FuzzHarness(state, max_cycles=16)
        fuzzer = AflFuzzer(harness.execute, feedback=lambda c: c, seed=1)
        stats = fuzzer.run(max_executions=100)
        assert stats.queue_size >= 1
        assert stats.executions == 100

    def test_coverage_curve_monotone(self):
        state, db = instrument(elaborate(_Toy()), metrics=["line"])
        harness = FuzzHarness(state, max_cycles=16)
        fuzzer = AflFuzzer(harness.execute, feedback=lambda c: c, seed=2)
        stats = fuzzer.run(max_executions=150)
        values = [covered for _, covered in stats.coverage_curve]
        assert values == sorted(values)
        assert stats.coverage_at(10**9) == len(stats.covered)

    def test_i2c_target_smoke(self):
        state, db = instrument(elaborate(I2cPeripheral()), metrics=["line", "mux_toggle"])
        harness = FuzzHarness(state, max_cycles=64)
        fuzzer = AflFuzzer(
            harness.execute,
            feedback=metric_filter(db, state, "mux_toggle"),
            track=metric_filter(db, state, "line"),
            seed=3,
        )
        stats = fuzzer.run(max_executions=40)
        assert stats.executions == 40
        assert len(stats.covered) > 0
