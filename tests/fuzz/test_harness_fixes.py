"""FuzzHarness correctness fixes + swarm batch execution.

Pins the three harness bugfixes (ceil-division decode, cached no-fork
fallback, reset-port guard) and the batch path: ``execute_batch`` over
swarm lanes must return counts bit-identical to scalar ``execute`` for
every input, with identical execution/cycle accounting.
"""

import random

from repro.backends import ModelCache, TreadleBackend
from repro.backends.swarm import SwarmBackend
from repro.coverage import instrument
from repro.fuzz import AflFuzzer, FuzzHarness
from repro.hcl import Module, elaborate
from repro.runtime.telemetry import obs


class _Wide(Module):
    """12 input bits -> 2 bytes per decoded cycle."""

    def build(self, m):
        a = m.input("a", 12)
        out = m.output("o", 12)
        acc = m.reg("acc", 12, init=0)
        acc <<= acc ^ a
        out <<= acc
        m.cover(acc == 0xFFF, "all_ones")


class _NoResetPort(Module):
    """No reset anywhere: unconditional reset pokes used to raise."""

    def build(self, m):
        a = m.input("a", 4)
        out = m.output("o", 4)
        total = m.reg("total", 4)
        total <<= total + a
        out <<= total
        m.cover(total == 9, "niner")


class _Stopper(Module):
    """Stops after 5 enabled cycles — lanes halt at different times."""

    def build(self, m):
        en = m.input("en")
        out = m.output("count", 4)
        cnt = m.reg("cnt", 4, init=0)
        with m.when(en):
            cnt <<= cnt + 1
        out <<= cnt
        m.cover(cnt == 3, "at_three")
        m.stop(cnt == 5, 3, "enough")


def _state(module, metrics=("line",)):
    state, _db = instrument(elaborate(module), metrics=list(metrics))
    return state


class _NoForkSim:
    """A Simulation proxy with the fork() capability hidden."""

    def __init__(self, sim):
        self._sim = sim

    def __getattr__(self, name):
        if name == "fork":
            raise AttributeError(name)
        return getattr(self._sim, name)


class _NoForkBackend:
    """A treadle wrapper whose templates cannot fork."""

    name = "treadle"

    def __init__(self):
        self._cache = None

    def compile_state(self, state, counter_width=None):
        backend = TreadleBackend(cache=self._cache)
        return _NoForkSim(
            backend.compile_state(state, counter_width=counter_width)
        )


class TestDecodeCeil:
    def test_partial_trailing_chunk_counts_as_a_cycle(self):
        harness = FuzzHarness(_state(_Wide()))
        assert harness.bytes_per_cycle == 2
        full = harness.decode(b"\x12\x34\x56\x78")
        grown = harness.decode(b"\x12\x34\x56\x78" + b"\x9a")
        assert len(full) == 2
        assert len(grown) == 3  # floor division silently dropped this
        # the partial chunk zero-pads the missing high bits
        assert grown[2]["a"] == 0x9A

    def test_every_appended_byte_changes_the_stimulus(self):
        harness = FuzzHarness(_state(_Wide()))
        data = b""
        for byte in range(1, 9):
            grown = data + bytes([byte])
            assert harness.decode(grown) != harness.decode(data)
            data = grown


class TestNoForkFallback:
    def test_n_executions_cost_exactly_one_compile(self):
        state = _state(_Wide())
        obs.reset()
        obs.enable()
        try:
            harness = FuzzHarness(state, backend=_NoForkBackend())
            cache = harness._backend._cache
            assert isinstance(cache, ModelCache)
            for i in range(10):
                harness.execute(bytes([i]) * 6)
            misses = obs.metrics.get("repro_model_cache_misses_total")
            assert misses.value(backend="treadle") == 1
            assert cache.misses == 1 and cache.hits == 10
        finally:
            obs.disable()
            obs.reset()

    def test_explicit_cache_is_left_alone(self):
        cache = ModelCache()
        backend = TreadleBackend(cache=cache)
        harness = FuzzHarness(_state(_Wide()), backend=backend)
        assert harness._backend._cache is cache


class TestResetGuard:
    def test_reset_less_design_executes(self):
        harness = FuzzHarness(_state(_NoResetPort()), reset_cycles=2)
        counts = harness.execute(b"\x09\x00")
        assert counts["niner"] == 1  # total==9 sampled on the second edge
        assert harness.executions == 1 and harness.cycles_executed == 2

    def test_reset_less_design_executes_on_swarm(self):
        harness = FuzzHarness(_state(_NoResetPort()), lanes=4)
        results = harness.execute_batch([b"\x09", b"\x01\x02", b"", b"\x0f"])
        assert len(results) == 4


class TestBatchEquivalence:
    def _batch(self, rng, n):
        return [
            rng.randbytes(rng.randint(0, 12)) for _ in range(n)
        ]

    def _assert_batch_matches_scalar(self, module, batch, lanes):
        state = _state(module)
        swarm = FuzzHarness(state, lanes=lanes, max_cycles=16)
        scalar = FuzzHarness(
            state, backend=TreadleBackend(), max_cycles=16
        )
        assert swarm.lanes == lanes
        got = swarm.execute_batch(batch)
        want = [scalar.execute(data) for data in batch]
        assert got == want
        assert swarm.executions == scalar.executions == len(batch)
        assert swarm.cycles_executed == scalar.cycles_executed

    def test_batch_is_bit_identical_to_scalar(self):
        rng = random.Random(42)
        # more inputs than lanes: exercises chunking across swarms
        self._assert_batch_matches_scalar(_Wide(), self._batch(rng, 11), 4)

    def test_batch_with_stops_is_bit_identical(self):
        rng = random.Random(43)
        self._assert_batch_matches_scalar(_Stopper(), self._batch(rng, 9), 4)

    def test_scalar_backend_degrades_to_a_loop(self):
        state = _state(_Wide())
        harness = FuzzHarness(state, backend=TreadleBackend(), lanes=8)
        assert harness.lanes == 1  # no lane ABI on the template
        results = harness.execute_batch([b"\x01", b"\x02\x03"])
        assert len(results) == 2 and harness.executions == 2

    def test_lanes_argument_selects_the_swarm_backend(self):
        harness = FuzzHarness(_state(_Wide()), lanes=16)
        assert isinstance(harness._backend, SwarmBackend)
        assert harness.lanes == 16


class TestBatchedFuzzer:
    def test_batched_run_spends_exactly_the_budget(self):
        state = _state(_Stopper())
        harness = FuzzHarness(state, lanes=8, max_cycles=32)
        fuzzer = AflFuzzer(
            harness.execute,
            feedback=lambda counts: counts,
            seed=5,
            execute_batch=harness.execute_batch,
        )
        stats = fuzzer.run(100, batch=harness.lanes)
        assert stats.executions == 100
        assert harness.executions == 100
        assert stats.covered  # the toy design is trivially coverable

    def test_batched_baseline_without_feedback(self):
        state = _state(_Wide())
        harness = FuzzHarness(state, lanes=4, max_cycles=16)
        fuzzer = AflFuzzer(
            harness.execute,
            feedback=None,
            seed=6,
            execute_batch=harness.execute_batch,
        )
        stats = fuzzer.run(30, batch=harness.lanes)
        assert stats.executions == 30 and stats.queue_size == 0
