"""SoC generators: scaling and simulatability."""

from repro.backends import TreadleBackend, VerilatorBackend
from repro.coverage import instrument
from repro.designs.soc import BoomLikeSoC, RocketLikeSoC, SyntheticOoOCore, UartLike
from repro.hcl import elaborate


class TestRocketLike:
    def test_tiles_share_one_module(self):
        circuit = elaborate(RocketLikeSoC(n_cores=4))
        names = circuit.module_names()
        assert names.count("RiscvMini") == 1

    def test_flat_covers_scale_with_cores(self):
        def covers(n_cores):
            circuit = elaborate(RocketLikeSoC(n_cores=n_cores, addr_width=6, cache_sets=2))
            state, _ = instrument(circuit, metrics=["line"], flatten=True)
            return len(state.cover_paths)

        two, four = covers(2), covers(4)
        assert four > two
        # per-tile covers replicate, so the delta is about two tiles' worth
        assert (four - two) >= (two // 2)

    def test_runs_programs_on_all_tiles(self):
        from repro.designs.riscv_mini import assemble, load_program

        circuit = elaborate(RocketLikeSoC(n_cores=2, addr_width=6, cache_sets=2))
        sim = VerilatorBackend().compile(circuit)
        sim.poke("reset", 1)
        sim.step(2)
        sim.poke("reset", 0)
        load_program(sim, assemble("addi x1, x0, 3\nebreak"))
        for _ in range(300):
            if sim.peek("all_halted"):
                break
            sim.step()
        assert sim.peek("all_halted") == 1
        assert sim.peek("total_retired") == 2 * 2


class TestBoomLike:
    def test_ooo_core_commits(self):
        sim = VerilatorBackend().compile(elaborate(SyntheticOoOCore(rob_entries=8)))
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        sim.poke("stall", 0)
        sim.poke("mispredict", 0)
        sim.step(300)
        assert sim.peek("committed") > 10

    def test_mispredict_flushes(self):
        from repro.coverage import instrument

        circuit = elaborate(SyntheticOoOCore(rob_entries=8))
        state, db = instrument(circuit, metrics=["line"])
        sim = TreadleBackend().compile_state(state)
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        sim.poke("mispredict", 1)
        sim.step(400)
        flushes = [v for k, v in sim.cover_counts().items() if "pipeline_flush" in k]
        assert flushes and flushes[0] > 0

    def test_boom_has_more_covers_than_tile(self):
        rocket_state, _ = instrument(
            elaborate(RocketLikeSoC(n_cores=1, addr_width=6, cache_sets=2)),
            metrics=["line"],
            flatten=True,
        )
        boom_state, _ = instrument(
            elaborate(BoomLikeSoC(rob_entries=32, addr_width=6)),
            metrics=["line"],
            flatten=True,
        )
        assert len(boom_state.cover_paths) > len(rocket_state.cover_paths)

    def test_rob_scaling_increases_covers(self):
        def covers(entries):
            state, _ = instrument(
                elaborate(SyntheticOoOCore(rob_entries=entries)),
                metrics=["line"],
                flatten=True,
            )
            return len(state.cover_paths)

        assert covers(16) > covers(4)


class TestUart:
    def test_transmits_frame(self):
        sim = VerilatorBackend().compile(elaborate(UartLike(divider=2)))
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        assert sim.peek("tx") == 1  # idle high
        sim.poke("wr_valid", 1)
        sim.poke("wr_data", 0x41)
        sim.step()
        sim.poke("wr_valid", 0)
        assert sim.peek("wr_ready") == 0  # busy shifting
        bits = []
        for _ in range(40):
            bits.append(sim.peek("tx"))
            sim.step()
        assert 0 in bits  # the start bit went out
