"""MainMemory, MemArbiter and cache interplay."""

from repro.backends import VerilatorBackend
from repro.designs.riscv_mini.cache import Cache
from repro.designs.riscv_mini.memory import MainMemory, MemArbiter
from repro.hcl import Module, elaborate


def compiled(design):
    sim = VerilatorBackend().compile(elaborate(design))
    sim.poke("reset", 1)
    sim.step()
    sim.poke("reset", 0)
    return sim


class TestMainMemory:
    def request(self, sim, addr, data=0, wen=0):
        sim.poke("req_valid", 1)
        sim.poke("req_addr", addr)
        sim.poke("req_data", data)
        sim.poke("req_wen", wen)
        cycles = 0
        while not sim.peek("req_ready"):
            sim.step()
            cycles += 1
        sim.step()
        sim.poke("req_valid", 0)
        while not sim.peek("resp_valid"):
            sim.step()
            cycles += 1
        value = sim.peek("resp_data")
        sim.step()
        return value, cycles

    def test_write_then_read(self):
        sim = compiled(MainMemory(addr_width=6, latency=2))
        self.request(sim, 5, data=0xABCD, wen=1)
        value, _ = self.request(sim, 5)
        assert value == 0xABCD

    def test_latency_respected(self):
        fast = compiled(MainMemory(addr_width=6, latency=1))
        slow = compiled(MainMemory(addr_width=6, latency=6))
        _, fast_cycles = self.request(fast, 1)
        _, slow_cycles = self.request(slow, 1)
        assert slow_cycles > fast_cycles

    def test_loader_port(self):
        sim = compiled(MainMemory(addr_width=6, latency=1))
        sim.poke("init_en", 1)
        sim.poke("init_addr", 9)
        sim.poke("init_data", 0x1234)
        sim.step()
        sim.poke("init_en", 0)
        value, _ = self.request(sim, 9)
        assert value == 0x1234


class _ArbitratedMemory(Module):
    """Two caches arbitrated onto one memory (the riscv-mini backbone)."""

    def build(self, m):
        aw = 6
        req_valid = [m.input(f"c{i}_valid") for i in range(2)]
        req_addr = [m.input(f"c{i}_addr", aw) for i in range(2)]
        req_wen = [m.input(f"c{i}_wen") for i in range(2)]
        req_data = [m.input(f"c{i}_data", 32) for i in range(2)]
        resp_valid = [m.output(f"c{i}_resp_valid", 1) for i in range(2)]
        resp_data = [m.output(f"c{i}_resp_data", 32) for i in range(2)]
        ready = [m.output(f"c{i}_ready", 1) for i in range(2)]

        arb = m.instance("arb", MemArbiter(aw, 32))
        mem = m.instance("mem", MainMemory(aw, 32, 1))
        for i in range(2):
            getattr(arb, f"m{i}_req_valid").assign(req_valid[i])
            getattr(arb, f"m{i}_req_addr").assign(req_addr[i])
            getattr(arb, f"m{i}_req_wen").assign(req_wen[i])
            getattr(arb, f"m{i}_req_data").assign(req_data[i])
            resp_valid[i] <<= getattr(arb, f"m{i}_resp_valid")
            resp_data[i] <<= getattr(arb, f"m{i}_resp_data")
            ready[i] <<= getattr(arb, f"m{i}_req_ready")
        mem.req_valid <<= arb.out_req_valid
        arb.out_req_ready <<= mem.req_ready
        mem.req_addr <<= arb.out_req_addr
        mem.req_data <<= arb.out_req_data
        mem.req_wen <<= arb.out_req_wen
        arb.out_resp_valid <<= mem.resp_valid
        arb.out_resp_data <<= mem.resp_data
        mem.init_en <<= 0
        mem.init_addr <<= 0
        mem.init_data <<= 0


class TestMemArbiter:
    def test_priority_and_response_routing(self):
        sim = compiled(_ArbitratedMemory())
        # master 0 writes 7 to addr 3 while master 1 also requests
        sim.poke("c0_valid", 1)
        sim.poke("c0_addr", 3)
        sim.poke("c0_wen", 1)
        sim.poke("c0_data", 7)
        sim.poke("c1_valid", 1)
        sim.poke("c1_addr", 3)
        sim.poke("c1_wen", 0)
        # master 0 must win
        assert sim.peek("c0_ready") == 1
        assert sim.peek("c1_ready") == 0
        sim.step()
        sim.poke("c0_valid", 0)
        # wait for master 0's response; master 1 must not see it
        for _ in range(10):
            if sim.peek("c0_resp_valid"):
                break
            assert sim.peek("c1_resp_valid") == 0
            sim.step()
        assert sim.peek("c0_resp_valid") == 1
        sim.step()
        # now master 1's read gets served and returns the written value
        for _ in range(10):
            if sim.peek("c1_resp_valid"):
                break
            sim.step()
        assert sim.peek("c1_resp_valid") == 1
        assert sim.peek("c1_resp_data") == 7

    def test_no_response_without_request(self):
        sim = compiled(_ArbitratedMemory())
        sim.poke("c0_valid", 0)
        sim.poke("c1_valid", 0)
        for _ in range(10):
            assert sim.peek("c0_resp_valid") == 0
            assert sim.peek("c1_resp_valid") == 0
            sim.step()


class TestCacheBehaviour:
    def drive_read(self, sim, addr):
        sim.poke("cpu_req_valid", 1)
        sim.poke("cpu_req_addr", addr)
        sim.poke("cpu_req_wen", 0)
        cycles = 0
        while not sim.peek("cpu_req_ready"):
            sim.step()
            cycles += 1
        sim.step()
        sim.poke("cpu_req_valid", 0)
        while not sim.peek("cpu_resp_valid"):
            sim.step()
            cycles += 1
        data = sim.peek("cpu_resp_data")
        sim.step()
        return data, cycles


class _CacheWithMemory(Module):
    def build(self, m):
        cache = m.instance("cache", Cache(n_sets=4, addr_width=6, xlen=32))
        mem = m.instance("mem", MainMemory(6, 32, 2))
        for name in ("cpu_req_valid", "cpu_req_addr", "cpu_req_data", "cpu_req_wen"):
            width = {"cpu_req_addr": 6, "cpu_req_data": 32}.get(name, 1)
            cache.io(name).assign(m.input(name, width))
        m.output("cpu_req_ready", 1).assign(cache.cpu_req_ready)
        m.output("cpu_resp_valid", 1).assign(cache.cpu_resp_valid)
        m.output("cpu_resp_data", 32).assign(cache.cpu_resp_data)
        m.output("hit", 1).assign(cache.hit)
        mem.req_valid <<= cache.mem_req_valid
        cache.mem_req_ready <<= mem.req_ready
        mem.req_addr <<= cache.mem_req_addr
        mem.req_data <<= cache.mem_req_data
        mem.req_wen <<= cache.mem_req_wen
        cache.mem_resp_valid <<= mem.resp_valid
        cache.mem_resp_data <<= mem.resp_data
        init_en = m.input("init_en")
        init_addr = m.input("init_addr", 6)
        init_data = m.input("init_data", 32)
        mem.init_en <<= init_en
        mem.init_addr <<= init_addr
        mem.init_data <<= init_data


class TestCacheWithBackingMemory(TestCacheBehaviour):
    def test_miss_then_hit(self):
        sim = compiled(_CacheWithMemory())
        sim.poke("init_en", 1)
        sim.poke("init_addr", 17)
        sim.poke("init_data", 0xCAFE)
        sim.step()
        sim.poke("init_en", 0)
        data_miss, cycles_miss = self.drive_read(sim, 17)
        data_hit, cycles_hit = self.drive_read(sim, 17)
        assert data_miss == data_hit == 0xCAFE
        assert cycles_hit < cycles_miss, "second access must hit"

    def test_conflict_eviction(self):
        """Two addresses mapping to the same set evict each other."""
        sim = compiled(_CacheWithMemory())
        sim.poke("init_en", 1)
        for addr, value in [(1, 111), (1 + 4, 222)]:  # same index, 4 sets
            sim.poke("init_addr", addr)
            sim.poke("init_data", value)
            sim.step()
        sim.poke("init_en", 0)
        a, _ = self.drive_read(sim, 1)
        b, _ = self.drive_read(sim, 5)  # evicts addr 1
        a2, cycles = self.drive_read(sim, 1)  # must miss again
        assert (a, b, a2) == (111, 222, 111)
        _, hit_cycles = self.drive_read(sim, 1)
        assert hit_cycles < cycles
