"""TLRAM, serv, NeuroProc, I2C and stdlib functional tests."""

import math
import random

import pytest

from repro.backends import TreadleBackend, VerilatorBackend
from repro.designs.i2c import I2cPeripheral
from repro.designs.lib import Arbiter, Counter, EdgeDetector, PopCount, PulseStretcher, Queue, RoundRobinArbiter, ShiftRegister
from repro.designs.neuroproc import NeuroProc
from repro.designs.serv import SOP_ADD, SOP_AND, SOP_SUB, SOP_XOR, SerialAlu, SerialGcd
from repro.designs.tlram import A_GET, A_PUT_FULL, TlRam
from repro.hcl import elaborate


def compiled(design):
    sim = VerilatorBackend().compile(elaborate(design))
    sim.poke("reset", 1)
    sim.step()
    sim.poke("reset", 0)
    return sim


class TestTlRam:
    def request(self, sim, opcode, address, data=0, mask=0xF):
        sim.poke("a_valid", 1)
        sim.poke("a_opcode", opcode)
        sim.poke("a_address", address)
        sim.poke("a_data", data)
        sim.poke("a_mask", mask)
        sim.poke("d_ready", 1)
        while not sim.peek("a_ready"):
            sim.step()
        sim.step()
        sim.poke("a_valid", 0)
        while not sim.peek("d_valid"):
            sim.step()
        result = sim.peek("d_data"), sim.peek("d_opcode")
        sim.step()
        return result

    def test_write_read(self):
        sim = compiled(TlRam())
        self.request(sim, A_PUT_FULL, 5, 0xDEADBEEF)
        data, opcode = self.request(sim, A_GET, 5)
        assert data == 0xDEADBEEF
        assert opcode == 1  # AccessAckData

    def test_partial_write_mask(self):
        sim = compiled(TlRam())
        self.request(sim, A_PUT_FULL, 9, 0xAABBCCDD)
        self.request(sim, A_PUT_FULL, 9, 0x11223344, mask=0b0101)
        data, _ = self.request(sim, A_GET, 9)
        assert data == 0xAA22CC44

    def test_distinct_addresses(self):
        sim = compiled(TlRam())
        for addr in range(4):
            self.request(sim, A_PUT_FULL, addr, addr * 0x111)
        for addr in range(4):
            data, _ = self.request(sim, A_GET, addr)
            assert data == addr * 0x111


class TestSerialAlu:
    def compute(self, sim, op, a, b):
        sim.poke("start", 1)
        sim.poke("op", op)
        sim.poke("a", a)
        sim.poke("b", b)
        sim.step()
        sim.poke("start", 0)
        for _ in range(40):
            if sim.peek("done"):
                break
            sim.step()
        return sim.peek("result")

    def test_bit_serial_add(self):
        sim = compiled(SerialAlu())
        assert self.compute(sim, SOP_ADD, 1000, 2345) == 3345

    def test_bit_serial_sub(self):
        sim = compiled(SerialAlu())
        sim.step(2)
        assert self.compute(sim, SOP_SUB, 5000, 1234) == 3766

    def test_logic_ops(self):
        sim = compiled(SerialAlu())
        sim.step(2)
        assert self.compute(sim, SOP_AND, 0xF0F0, 0xFF00) == 0xF000
        sim.step(2)
        assert self.compute(sim, SOP_XOR, 0xFF, 0x0F) == 0xF0

    def test_takes_xlen_cycles(self):
        sim = compiled(SerialAlu())
        sim.poke("start", 1)
        sim.poke("op", SOP_ADD)
        sim.poke("a", 1)
        sim.poke("b", 1)
        sim.step()
        sim.poke("start", 0)
        busy_cycles = 0
        while sim.peek("busy"):
            sim.step()
            busy_cycles += 1
        assert busy_cycles == 32  # one bit per cycle


class TestSerialGcd:
    def gcd_of(self, sim, a, b, width=32):
        sim.poke("req_valid", 1)
        sim.poke("req_bits", (b << width) | a)
        sim.poke("resp_ready", 1)
        while not sim.peek("req_ready"):
            sim.step()
        sim.step()
        sim.poke("req_valid", 0)
        for _ in range(20_000):
            if sim.peek("resp_valid"):
                break
            sim.step()
        value = sim.peek("resp_bits")
        sim.step()
        return value

    def test_gcd_values(self):
        sim = compiled(SerialGcd())
        for a, b in [(12, 18), (7, 13), (100, 75), (5, 0)]:
            assert self.gcd_of(sim, a, b) == math.gcd(a, b)


class TestNeuroProc:
    def configure(self, sim, weights):
        sim.poke("w_en", 1)
        for address, weight in weights.items():
            sim.poke("w_addr", address)
            sim.poke("w_data", weight)
            sim.step()
        sim.poke("w_en", 0)

    def timestep(self, sim, spikes):
        sim.poke("in_spikes", spikes)
        sim.poke("start", 1)
        while not sim.peek("busy"):
            sim.step()
        sim.poke("start", 0)
        for _ in range(2000):
            if sim.peek("done"):
                break
            sim.step()
        out = sim.peek("out_spikes")
        sim.step(2)
        return out

    def test_neuron_fires_over_threshold(self):
        proc = NeuroProc(n_neurons=4, n_inputs=4, threshold=100)
        sim = compiled(proc)
        # neuron 0 gets weight 200 from input 0 -> one spike fires it
        self.configure(sim, {0: 200})
        out = self.timestep(sim, 0b0001)
        assert out & 1 == 1

    def test_no_input_no_spike(self):
        sim = compiled(NeuroProc(n_neurons=4, n_inputs=4, threshold=100))
        self.configure(sim, {0: 200})
        out = self.timestep(sim, 0)
        assert out == 0

    def test_potential_accumulates_across_timesteps(self):
        proc = NeuroProc(n_neurons=4, n_inputs=4, threshold=100, leak_shift=10)
        sim = compiled(proc)
        self.configure(sim, {0: 60})
        assert self.timestep(sim, 1) & 1 == 0  # 60 < 100
        assert self.timestep(sim, 1) & 1 == 1  # ~119 > 100

    def test_reset_on_fire(self):
        proc = NeuroProc(n_neurons=2, n_inputs=2, threshold=100, leak_shift=10)
        sim = compiled(proc)
        self.configure(sim, {0: 150})
        assert self.timestep(sim, 1) & 1 == 1
        assert self.timestep(sim, 0) & 1 == 0  # potential was reset


class TestI2c:
    """Drive proper I2C waveforms into the peripheral."""

    def make(self):
        sim = compiled(I2cPeripheral(device_address=0x42))
        sim.poke("scl", 1)
        sim.poke("sda_in", 1)
        sim.step(2)
        return sim

    def start(self, sim):
        sim.poke("sda_in", 0)  # SDA falls while SCL high
        sim.step()
        sim.poke("scl", 0)
        sim.step()

    def send_bit(self, sim, bit):
        sim.poke("sda_in", bit)
        sim.step()
        sim.poke("scl", 1)
        sim.step()
        sim.poke("scl", 0)
        sim.step()

    def send_byte(self, sim, byte):
        for i in reversed(range(8)):
            self.send_bit(sim, (byte >> i) & 1)
        # ack slot
        sim.poke("scl", 1)
        sim.step()
        ack = sim.peek("sda_oe")
        sim.poke("scl", 0)
        sim.step()
        return ack

    def stop(self, sim):
        sim.poke("sda_in", 0)
        sim.poke("scl", 1)
        sim.step()
        sim.poke("sda_in", 1)
        sim.step()

    def test_address_match_acks(self):
        sim = self.make()
        self.start(sim)
        ack = self.send_byte(sim, (0x42 << 1) | 0)  # write
        assert ack == 1

    def test_wrong_address_ignored(self):
        sim = self.make()
        self.start(sim)
        ack = self.send_byte(sim, (0x17 << 1) | 0)
        assert ack == 0

    def test_register_write(self):
        sim = self.make()
        self.start(sim)
        assert self.send_byte(sim, (0x42 << 1) | 0)
        assert self.send_byte(sim, 0x00)  # register pointer = 0
        self.send_byte(sim, 0x5A)  # data
        self.stop(sim)
        assert sim.peek("dbg_reg0") == 0x5A
        assert sim.peek("dbg_transfers") == 1

    def test_stop_resets_protocol(self):
        sim = self.make()
        self.start(sim)
        self.send_byte(sim, (0x42 << 1) | 0)
        self.stop(sim)
        assert sim.peek("dbg_state") == 0  # back to idle


class TestStdlib:
    def test_counter_wraps_at_limit(self):
        sim = compiled(Counter(4, limit=5))
        sim.poke("en", 1)
        values = []
        for _ in range(8):
            values.append(sim.peek("value"))
            sim.step()
        assert values == [0, 1, 2, 3, 4, 5, 0, 1]

    def test_edge_detector(self):
        sim = compiled(EdgeDetector())
        sim.poke("signal", 0)
        sim.step()
        sim.poke("signal", 1)
        assert sim.peek("rise") == 1
        sim.step()
        assert sim.peek("rise") == 0
        sim.poke("signal", 0)
        assert sim.peek("fall") == 1

    def test_shift_register_delay(self):
        sim = compiled(ShiftRegister(width=4, stages=3))
        sim.poke("en", 1)
        seen = []
        for i in range(8):
            sim.poke("din", i)
            seen.append(sim.peek("dout"))
            sim.step()
        assert seen[3:] == [0, 1, 2, 3, 4]

    def test_popcount(self):
        sim = compiled(PopCount(8))
        for value in (0, 0xFF, 0b1010_1010, 1):
            sim.poke("din", value)
            assert sim.peek("dout") == bin(value).count("1")

    def test_pulse_stretcher(self):
        sim = compiled(PulseStretcher(3))
        sim.poke("pulse", 1)
        assert sim.peek("stretched") == 1
        sim.step()
        sim.poke("pulse", 0)
        stretched = []
        for _ in range(5):
            stretched.append(sim.peek("stretched"))
            sim.step()
        assert stretched == [1, 1, 1, 0, 0]

    def test_priority_arbiter(self):
        sim = compiled(Arbiter(3, 8))
        sim.poke("out_ready", 1)
        sim.poke("in0_valid", 0)
        sim.poke("in1_valid", 1)
        sim.poke("in1_bits", 11)
        sim.poke("in2_valid", 1)
        sim.poke("in2_bits", 22)
        assert sim.peek("out_bits") == 11
        assert sim.peek("chosen") == 1
        assert sim.peek("in1_ready") == 1
        assert sim.peek("in2_ready") == 0

    def test_round_robin_rotates(self):
        sim = compiled(RoundRobinArbiter(2, 8))
        sim.poke("out_ready", 1)
        sim.poke("in0_valid", 1)
        sim.poke("in0_bits", 1)
        sim.poke("in1_valid", 1)
        sim.poke("in1_bits", 2)
        grants = []
        for _ in range(4):
            grants.append(sim.peek("out_bits"))
            sim.step()
        assert set(grants) == {1, 2}, "both inputs must be served"

    def test_queue_wraps_pointers(self):
        sim = compiled(Queue(8, 4))
        sim.poke("deq_ready", 1)
        sim.poke("enq_valid", 1)
        random_values = list(range(1, 13))
        got = []
        for value in random_values:
            sim.poke("enq_bits", value)
            if sim.peek("deq_valid"):
                got.append(sim.peek("deq_bits"))
            sim.step()
        sim.poke("enq_valid", 0)
        while sim.peek("deq_valid"):
            got.append(sim.peek("deq_bits"))
            sim.step()
        assert got == random_values
