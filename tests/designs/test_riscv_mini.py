"""riscv-mini analog: ISA behaviour, caches, and the assembler."""

import pytest

from repro.backends import TreadleBackend
from repro.backends.verilator import VerilatorBackend
from repro.designs.riscv_mini import (
    AsmError,
    RiscvMini,
    assemble,
    load_program,
    run_program,
)
from repro.hcl import elaborate


def fresh_sim():
    return VerilatorBackend().compile(elaborate(RiscvMini()))


def run(asm_text, max_cycles=20_000):
    sim = fresh_sim()
    result = run_program(sim, assemble(asm_text), max_cycles)
    return sim, result


class TestAssembler:
    def test_nop_encoding(self):
        assert assemble("nop") == [0x13]

    def test_addi_encoding(self):
        # addi x1, x0, 5 -> imm=5 rs1=0 funct3=0 rd=1 opcode=0x13
        assert assemble("addi x1, x0, 5") == [(5 << 20) | (1 << 7) | 0x13]

    def test_labels(self):
        words = assemble("start: beq x0, x0, start")
        assert words[0] & 0x7F == 0b1100011

    def test_abi_names(self):
        assert assemble("addi a0, zero, 1") == assemble("addi x10, x0, 1")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            assemble("frobnicate x1, x2")

    def test_unknown_register(self):
        with pytest.raises(AsmError):
            assemble("addi q1, x0, 1")

    def test_memory_operand(self):
        with pytest.raises(AsmError):
            assemble("lw x1, nope")


class TestPrograms:
    def test_arithmetic_chain(self):
        sim, result = run(
            """
            addi x1, x0, 100
            addi x2, x0, 23
            add  x3, x1, x2     # 123
            sub  x4, x3, x2     # 100
            xor  x5, x1, x4     # 0
            beq  x5, x0, ok
            addi x31, x0, 1     # should be skipped
        ok: ebreak
            """
        )
        assert result.halted and not result.illegal
        assert result.retired == 7  # the flagged addi is skipped

    def test_memory_roundtrip(self):
        sim, result = run(
            """
            addi x1, x0, 0x2A
            sw   x1, 0x40(x0)
            lw   x2, 0x40(x0)
            bne  x1, x2, fail
            ebreak
        fail:
            addi x3, x0, 1
            ebreak
            """
        )
        assert result.halted
        assert result.pc == 16  # halted at the first ebreak, not `fail`

    def test_fibonacci_loop(self):
        # fib(10) = 55; prove via conditional halt position
        sim, result = run(
            """
            addi x1, x0, 0     # a
            addi x2, x0, 1     # b
            addi x3, x0, 10    # counter
        loop:
            add  x4, x1, x2
            mv   x1, x2
            mv   x2, x4
            addi x3, x3, -1
            bne  x3, x0, loop
            addi x5, x0, 89    # fib(11) appears in x2 after 10 iterations
            bne  x2, x5, fail
            ebreak
        fail:
            addi x31, x0, 1
            ebreak
            """
        )
        assert result.halted
        # pc must point at the success ebreak (word 10)
        assert result.pc == 10 * 4, f"fib check failed, halted at {result.pc}"

    def test_shift_and_logic_ops(self):
        sim, result = run(
            """
            addi x1, x0, 0xF0
            slli x2, x1, 4      # 0xF00
            srli x3, x2, 8      # 0xF
            addi x4, x0, 0xF
            bne  x3, x4, fail
            andi x5, x1, 0x3C   # 0x30
            addi x6, x0, 0x30
            bne  x5, x6, fail
            ebreak
        fail:
            addi x31, x0, 1
            ebreak
            """
        )
        assert result.halted
        assert result.pc == 8 * 4

    def test_sra_sign(self):
        sim, result = run(
            """
            addi x1, x0, -16
            srai x2, x1, 2      # -4
            addi x3, x0, -4
            bne  x2, x3, fail
            ebreak
        fail:
            ebreak
            """
        )
        assert result.halted
        assert result.pc == 4 * 4

    def test_jal_jalr(self):
        sim, result = run(
            """
            jal  x1, sub        # call
            ebreak              # return lands here
        sub:
            addi x2, x0, 9
            jalr x0, x1, 0      # return
            """
        )
        assert result.halted
        assert result.pc == 4  # the ebreak after the call

    def test_lui_auipc(self):
        sim, result = run(
            """
            lui  x1, 1          # 0x1000
            srli x2, x1, 12     # 1
            addi x3, x0, 1
            bne  x2, x3, fail
            ebreak
        fail:
            ebreak
            """
        )
        assert result.halted
        assert result.pc == 16

    def test_illegal_instruction_halts(self):
        sim = fresh_sim()
        result = run_program(sim, [0xFFFFFFFF])
        assert result.halted
        assert result.illegal

    def test_branch_taken_and_not_taken(self):
        sim, result = run(
            """
            addi x1, x0, 1
            addi x2, x0, 2
            blt  x2, x1, fail   # not taken
            blt  x1, x2, ok     # taken
            addi x31, x0, 1
        fail:
            addi x30, x0, 1
        ok: ebreak
            """
        )
        assert result.halted
        assert result.retired == 5

    def test_backends_agree_on_execution(self):
        program = assemble(
            """
            addi x1, x0, 17
            addi x2, x0, 5
        loop:
            sub  x1, x1, x2
            bge  x1, x2, loop
            sw   x1, 0x20(x0)
            ebreak
            """
        )
        circuit = elaborate(RiscvMini())
        a = run_program(TreadleBackend().compile(circuit), program, max_cycles=3000)
        b = run_program(VerilatorBackend().compile(circuit), program, max_cycles=3000)
        assert (a.cycles, a.retired, a.pc) == (b.cycles, b.retired, b.pc)


class TestCaches:
    def test_icache_hits_on_loop(self):
        """A tight loop must hit in the I$ after the first iteration."""
        from repro.coverage import instrument

        circuit = elaborate(RiscvMini())
        state, db = instrument(circuit, metrics=["ready_valid"])
        sim = TreadleBackend().compile_state(state)
        program = assemble(
            """
            addi x1, x0, 20
        loop:
            addi x1, x1, -1
            bne  x1, x0, loop
            ebreak
            """
        )
        result = run_program(sim, program, max_cycles=3000)
        assert result.halted
        counts = sim.cover_counts()
        hits = sum(v for k, v in counts.items() if "hit" in k)
        assert result.retired == 2 + 2 * 20

    def test_shared_cache_module(self):
        """I$ and D$ must elaborate to ONE module (shared RTL, §5.5)."""
        circuit = elaborate(RiscvMini())
        cache_modules = [n for n in circuit.module_names() if n.startswith("Cache")]
        assert len(cache_modules) == 1
