"""Shared test helpers: hypothesis strategies for random IR and circuits."""

from __future__ import annotations

import random as _random

from hypothesis import strategies as st

from repro.ir import (
    BOOL,
    CLOCK,
    Circuit,
    Connect,
    Cover,
    DefNode,
    DefRegister,
    Expr,
    Module,
    Port,
    PrimOp,
    Ref,
    SIntLiteral,
    SIntType,
    UIntLiteral,
    UIntType,
    bit_width,
    is_signed,
    mask,
    prim,
    u,
)

# ops usable in random generation (and their arity category)
BIN_ARITH = ["add", "sub", "mul", "div", "rem"]
BIN_CMP = ["lt", "leq", "gt", "geq", "eq", "neq"]
BIN_BITS = ["and", "or", "xor"]
UNARY = ["not", "neg", "andr", "orr", "xorr", "asUInt", "asSInt"]


@st.composite
def widths(draw, lo: int = 1, hi: int = 16):
    return draw(st.integers(lo, hi))


@st.composite
def literals(draw, width=None, signed=None):
    if width is None:
        width = draw(st.integers(1, 12))
    if signed is None:
        signed = draw(st.booleans())
    if signed:
        value = draw(st.integers(-(1 << (width - 1)), (1 << (width - 1)) - 1))
        return SIntLiteral(value, width)
    value = draw(st.integers(0, mask(width)))
    return UIntLiteral(value, width)


@st.composite
def expressions(draw, leaves: list[Expr], depth: int = 3) -> Expr:
    """A random expression over the given leaf expressions."""
    if depth == 0 or draw(st.integers(0, 3)) == 0:
        if leaves and draw(st.booleans()):
            return draw(st.sampled_from(leaves))
        return draw(literals())
    kind = draw(st.integers(0, 5))
    if kind == 0:  # binary same-sign op
        op = draw(st.sampled_from(BIN_ARITH + BIN_CMP + BIN_BITS))
        a = draw(expressions(leaves, depth - 1))
        b = draw(expressions(leaves, depth - 1))
        if is_signed(a.tpe) != is_signed(b.tpe):
            b = prim("asSInt", b) if is_signed(a.tpe) else prim("asUInt", b)
        return prim(op, a, b)
    if kind == 1:  # unary
        op = draw(st.sampled_from(UNARY))
        a = draw(expressions(leaves, depth - 1))
        return prim(op, a)
    if kind == 2:  # bits
        a = draw(expressions(leaves, depth - 1))
        width = bit_width(a.tpe)
        lo = draw(st.integers(0, width - 1))
        hi = draw(st.integers(lo, width - 1))
        return prim("bits", a, consts=[hi, lo])
    if kind == 3:  # shifts/pad
        a = draw(expressions(leaves, depth - 1))
        op = draw(st.sampled_from(["shl", "shr", "pad", "head", "tail"]))
        width = bit_width(a.tpe)
        if op == "shl":
            n = draw(st.integers(0, 4))
        elif op == "shr":
            n = draw(st.integers(0, width + 2))
        elif op == "pad":
            n = draw(st.integers(0, width + 4))
        elif op == "head":
            n = draw(st.integers(1, width))
        else:  # tail
            n = draw(st.integers(0, width - 1))
        return prim(op, a, consts=[n])
    if kind == 4:  # cat
        a = draw(expressions(leaves, depth - 1))
        b = draw(expressions(leaves, depth - 1))
        return prim("cat", a, b)
    # mux
    from repro.ir import Mux

    cond = draw(expressions(leaves, depth - 1))
    if bit_width(cond.tpe) != 1 or is_signed(cond.tpe):
        cond = prim("orr", cond)
    a = draw(expressions(leaves, depth - 1))
    b = draw(expressions(leaves, depth - 1))
    if is_signed(a.tpe) != is_signed(b.tpe):
        b = prim("asSInt", b) if is_signed(a.tpe) else prim("asUInt", b)
    return Mux.make(cond, a, b)


@st.composite
def random_circuits(draw, n_nodes: int = 6, n_regs: int = 2):
    """A random single-module sequential circuit with covers.

    Inputs: in_a (8), in_b (4), in_c (1).  Output: out.  Low-form by
    construction (no whens) so it can feed any backend directly.
    """
    ports = [
        Port("clock", "input", CLOCK),
        Port("reset", "input", UIntType(1)),
        Port("in_a", "input", UIntType(8)),
        Port("in_b", "input", UIntType(4)),
        Port("in_c", "input", UIntType(1)),
    ]
    leaves: list[Expr] = [
        Ref("in_a", UIntType(8)),
        Ref("in_b", UIntType(4)),
        Ref("in_c", UIntType(1)),
    ]
    body = []
    clock = Ref("clock", CLOCK)
    reset = Ref("reset", UIntType(1))

    regs = []
    for i in range(n_regs):
        width = draw(st.integers(1, 10))
        name = f"r{i}"
        body.append(
            DefRegister(name, UIntType(width), clock, reset, UIntLiteral(0, width))
        )
        regs.append((name, width))
        leaves.append(Ref(name, UIntType(width)))

    for i in range(n_nodes):
        expr = draw(expressions(leaves, depth=3))
        name = f"n{i}"
        body.append(DefNode(name, expr))
        leaves.append(Ref(name, expr.tpe))

    # register next values: truncate a random leaf into the reg width
    for name, width in regs:
        src = draw(st.sampled_from(leaves))
        raw = prim("asUInt", src)
        if bit_width(raw.tpe) > width:
            value = prim("bits", raw, consts=[width - 1, 0])
        elif bit_width(raw.tpe) < width:
            value = prim("pad", raw, consts=[width])
        else:
            value = raw
        body.append(Connect(Ref(name, UIntType(width)), value))

    # covers over random 1-bit predicates
    n_covers = draw(st.integers(1, 3))
    for i in range(n_covers):
        pred_src = draw(st.sampled_from(leaves))
        pred = prim("orr", pred_src)
        body.append(Cover(f"c{i}", clock, pred, UIntLiteral(1, 1)))

    out_src = draw(st.sampled_from(leaves))
    out_u = prim("asUInt", out_src)
    out_width = bit_width(out_u.tpe)
    ports.append(Port("out", "output", UIntType(out_width)))
    body.append(Connect(Ref("out", UIntType(out_width)), out_u))

    module = Module("RandTop", ports, body)
    return Circuit("RandTop", [module])


def random_stimulus(seed: int, cycles: int):
    """Deterministic random input vectors for the random_circuits ports."""
    rng = _random.Random(seed)
    return [
        {
            "in_a": rng.randint(0, 255),
            "in_b": rng.randint(0, 15),
            "in_c": rng.randint(0, 1),
            "reset": 1 if cycle < 1 else 0,
        }
        for cycle in range(cycles)
    ]


def run_with_stimulus(sim, stimulus):
    """Apply stimulus, collecting the output each cycle."""
    outputs = []
    for frame in stimulus:
        for name, value in frame.items():
            sim.poke(name, value)
        outputs.append(sim.peek("out"))
        sim.step(1)
    return outputs
