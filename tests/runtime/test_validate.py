"""Shard validation and quarantine-before-merge."""

import json

from repro.runtime import Shard, merge_shards, validate_shard_counts


NAMES = ["top.a", "top.b", "sub.inner.c"]


class TestValidateCounts:
    def test_clean_counts_pass(self):
        assert validate_shard_counts({"top.a": 5, "top.b": 0}, NAMES, 16) == []

    def test_unknown_key(self):
        issues = validate_shard_counts({"evil.key": 1}, NAMES)
        assert [i.kind for i in issues] == ["unknown-key"]
        assert issues[0].key == "evil.key"

    def test_negative_and_non_int(self):
        issues = validate_shard_counts({"top.a": -3, "top.b": 1.5}, NAMES)
        assert sorted(i.kind for i in issues) == ["negative-count", "non-int"]

    def test_bool_counts_are_not_ints(self):
        issues = validate_shard_counts({"top.a": True}, NAMES)
        assert [i.kind for i in issues] == ["non-int"]

    def test_overflow_against_counter_width(self):
        limit = (1 << 8) - 1
        assert validate_shard_counts({"top.a": limit}, NAMES, 8) == []
        issues = validate_shard_counts({"top.a": limit + 1}, NAMES, 8)
        assert [i.kind for i in issues] == ["overflow"]

    def test_no_namespace_means_any_key_goes(self):
        assert validate_shard_counts({"whatever": 1}, known_names=None) == []


class TestMergeShards:
    def test_good_shards_merge_bad_shards_quarantine(self):
        good_a = Shard("a", "treadle", 100, {"top.a": 2, "top.b": 1})
        good_b = Shard("b", "verilator", 100, {"top.a": 3})
        bad = Shard("c", "firesim", 100, {"top.a": 1, "corrupt!": 9}, path="/x/c.json")
        merged, report = merge_shards([good_a, good_b, bad], NAMES, 16)
        assert merged == {"top.a": 5, "top.b": 1}
        assert report.merged_job_ids == ["a", "b"]
        assert not report.clean
        assert [q.job_id for q in report.quarantined] == ["c"]
        assert report.quarantined[0].path == "/x/c.json"

    def test_quarantine_is_all_or_nothing(self):
        """One bad entry withholds the whole shard, even its valid keys."""
        bad = Shard("c", "x", 10, {"top.a": 7, "top.b": -1})
        merged, report = merge_shards([bad], NAMES)
        assert merged == {}
        assert report.merged_job_ids == []

    def test_merge_saturates_at_counter_width(self):
        a = Shard("a", "x", 10, {"top.a": 3})
        b = Shard("b", "y", 10, {"top.a": 2})
        merged, report = merge_shards([a, b], NAMES, counter_width=2)
        assert merged == {"top.a": 3}  # 3 + 2 saturates at 2**2 - 1
        assert report.clean

    def test_report_formats_and_serializes(self):
        bad = Shard("c", "x", 10, {"zzz": 1})
        _, report = merge_shards([Shard("a", "t", 5, {"top.a": 1}), bad], NAMES)
        text = report.format()
        assert "merged 1 shard(s): a" in text
        assert "quarantined 1 shard(s):" in text
        assert "unknown-key" in text
        payload = json.loads(report.to_json())
        assert payload["merged"] == ["a"]
        assert payload["quarantined"][0]["job_id"] == "c"
        assert payload["quarantined"][0]["issues"][0]["kind"] == "unknown-key"
