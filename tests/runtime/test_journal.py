"""Write-ahead journal: framing, replay, torn tails, disk faults, compaction."""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.faults import DiskFaultPlan, FaultyOS, PowerLoss
from repro.runtime.journal import (
    MAGIC,
    Journal,
    JournalError,
    encode_record,
    replay,
)

RECORDS = [
    {"type": "submit", "id": "c000001", "seq": 1, "spec": {"tenant": "a"}},
    {"type": "finish", "id": "c000001", "status": "done", "cycles_run": 500},
    {"type": "clean-shutdown", "queued": []},
]


def fill(journal, records=RECORDS):
    for record in records:
        journal.append(record)


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(path) as journal:
            fill(journal)
        result = replay(path)
        assert result.clean
        assert result.records == RECORDS

    def test_missing_file_replays_empty(self, tmp_path):
        result = replay(tmp_path / "nope.wal")
        assert result.clean and result.records == []

    def test_append_returns_offsets(self, tmp_path):
        with Journal(tmp_path / "j.wal") as journal:
            first = journal.append({"type": "a"})
            second = journal.append({"type": "b"})
        assert first == len(MAGIC)
        assert second == first + len(encode_record({"type": "a"}))

    def test_refuses_foreign_file(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_bytes(b"this is somebody's notes file, not a journal")
        with pytest.raises(JournalError, match="bad magic"):
            replay(path)
        with pytest.raises(JournalError, match="bad magic"):
            Journal(path)
        # Refusal must not modify the file.
        assert path.read_bytes().startswith(b"this is somebody's")

    def test_closed_journal_refuses_append(self, tmp_path):
        journal = Journal(tmp_path / "j.wal")
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append({"type": "a"})

    def test_implausible_length_is_tail_damage(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(path) as journal:
            journal.append(RECORDS[0])
        import struct

        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", 1 << 30, 0) + b"xx")
        result = replay(path)
        assert result.records == [RECORDS[0]]
        assert "implausible" in result.torn


class TestTornTail:
    def truncated_replay(self, data, cut, tmp_path):
        path = tmp_path / "cut.wal"
        path.write_bytes(data[:cut])
        return replay(path)

    def test_truncation_at_every_byte_loses_at_most_the_tail(self, tmp_path):
        """Exhaustive version of the property test for one journal."""
        path = tmp_path / "j.wal"
        with Journal(path) as journal:
            fill(journal)
        data = path.read_bytes()
        boundaries = [len(MAGIC)]
        for record in RECORDS:
            boundaries.append(boundaries[-1] + len(encode_record(record)))
        for cut in range(len(data) + 1):
            result = self.truncated_replay(data, cut, tmp_path)
            # The intact prefix is exactly the records whose frames fit.
            expect = sum(1 for b in boundaries[1:] if b <= cut)
            assert result.records == RECORDS[:expect], f"cut at {cut}"
            # Clean only at exact record boundaries; an existing file cut
            # anywhere else (even inside the magic) is reported torn.
            assert result.clean == (cut in boundaries)

    def test_reopen_repairs_torn_tail_and_appends_continue(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(path) as journal:
            fill(journal)
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)  # tear the last record's payload
        with Journal(path) as journal:
            assert journal.recovered.records == RECORDS[:2]
            assert not journal.recovered.clean
            journal.append({"type": "after-repair"})
        result = replay(path)
        assert result.clean
        assert result.records == RECORDS[:2] + [{"type": "after-repair"}]

    def test_corrupt_byte_stops_replay_before_it(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(path) as journal:
            fill(journal)
        data = bytearray(path.read_bytes())
        # Flip a payload byte of the second record.
        offset = len(MAGIC) + len(encode_record(RECORDS[0])) + 8 + 2
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        result = replay(path)
        assert result.records == [RECORDS[0]]
        assert "CRC mismatch" in result.torn


@st.composite
def journal_contents(draw):
    n = draw(st.integers(min_value=0, max_value=6))
    return [
        {"type": draw(st.sampled_from(["submit", "finish", "x"])),
         "seq": i,
         "blob": draw(st.text(max_size=20))}
        for i in range(n)
    ]


class TestReplayProperties:
    @given(records=journal_contents())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_any_records(self, records, tmp_path_factory):
        path = tmp_path_factory.mktemp("wal") / "j.wal"
        with Journal(path, fsync=False) as journal:
            fill(journal, records)
        assert replay(path).records == records

    @given(records=journal_contents(), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_any_truncation_loses_at_most_torn_tail(
        self, records, data, tmp_path_factory
    ):
        """Crash-safety property: prefix-truncation at ANY byte offset
        yields an intact prefix of the history — never a gap, never a
        record that was not appended, never reordered records."""
        base = tmp_path_factory.mktemp("wal")
        path = base / "j.wal"
        with Journal(path, fsync=False) as journal:
            fill(journal, records)
        blob = path.read_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
        torn = base / "torn.wal"
        torn.write_bytes(blob[:cut])
        replayed = replay(torn).records
        assert replayed == records[: len(replayed)]  # an exact prefix
        # At most the single record being appended at the cut is lost.
        frames = 0
        consumed = len(MAGIC)
        for record in records:
            end = consumed + len(encode_record(record))
            if end <= cut:
                frames += 1
            consumed = end
        assert len(replayed) == frames


class TestDiskFaults:
    def test_enospc_self_heals(self, tmp_path):
        path = tmp_path / "j.wal"
        faulty = FaultyOS(DiskFaultPlan(enospc_after_bytes=len(MAGIC) + 20))
        journal = Journal(path, os_module=faulty)
        with pytest.raises(JournalError, match="append failed"):
            fill(journal)
        journal.close()
        # The partial frame was truncated away: the journal replays clean.
        result = replay(path)
        assert result.clean
        # And appends work again once space returns.
        with Journal(path) as journal:
            assert journal.recovered.clean
            journal.append({"type": "recovered"})
        assert replay(path).records[-1] == {"type": "recovered"}

    def test_power_cut_leaves_replayable_prefix(self, tmp_path):
        path = tmp_path / "j.wal"
        first = encode_record(RECORDS[0])
        cut_at = len(MAGIC) + len(first) + 7  # mid-second-record
        faulty = FaultyOS(DiskFaultPlan(power_cut_after_bytes=cut_at))
        journal = Journal(path, os_module=faulty)
        journal.append(RECORDS[0])
        with pytest.raises(PowerLoss):
            journal.append(RECORDS[1])
        # No cleanup ran (PowerLoss is a BaseException): the torn frame is
        # still on disk, exactly as a real power cut leaves it...
        assert path.stat().st_size == cut_at
        assert faulty.writes_torn == 1
        # ...and reopening repairs it back to the intact prefix.
        with Journal(path) as reopened:
            assert reopened.recovered.records == [RECORDS[0]]
            assert not reopened.recovered.clean
        assert replay(path).records == [RECORDS[0]]

    def test_fsync_failure_self_heals(self, tmp_path):
        path = tmp_path / "j.wal"
        # The open-time magic fsync succeeds; the first append's fails.
        journal = Journal(path, os_module=FaultyOS(DiskFaultPlan()))
        faulty = FaultyOS(DiskFaultPlan(fsync_failures=1))
        journal._os = faulty
        with pytest.raises(JournalError, match="append failed"):
            journal.append(RECORDS[0])
        journal.append(RECORDS[1])
        journal.close()
        assert replay(path).records == [RECORDS[1]]

    def test_checkpointer_write_survives_power_cut(self, tmp_path):
        from repro.runtime.checkpoint import Checkpointer, Shard

        checkpointer = Checkpointer(tmp_path / "shards", fsync=True)
        shard = Shard(job_id="j1", backend="treadle", cycle=100,
                      counts={"a": 1}, complete=True)
        assert checkpointer.write(shard) is not None
        # A torn write of the *next* snapshot must leave the last good
        # shard untouched (write-temp + rename means the tear hits the
        # temp file only).
        faulty = Checkpointer(
            tmp_path / "shards", fsync=True,
            os_module=FaultyOS(DiskFaultPlan(power_cut_after_bytes=10)),
        )
        with pytest.raises(PowerLoss):
            faulty.write(Shard(job_id="j1", backend="treadle", cycle=200,
                               counts={"a": 2}, complete=True))
        survivor = checkpointer.load("j1")
        assert survivor.cycle == 100 and survivor.counts == {"a": 1}

    def test_checkpointer_write_survives_enospc(self, tmp_path):
        from repro.runtime.checkpoint import Checkpointer, Shard

        checkpointer = Checkpointer(tmp_path / "shards")
        checkpointer.write(Shard(job_id="j1", backend="treadle", cycle=100,
                                 counts={"a": 1}, complete=True))
        faulty = Checkpointer(
            tmp_path / "shards",
            os_module=FaultyOS(DiskFaultPlan(enospc_after_bytes=5)),
        )
        with pytest.raises(OSError):
            faulty.write(Shard(job_id="j1", backend="treadle", cycle=200,
                               counts={"a": 2}, complete=True))
        assert checkpointer.load("j1").cycle == 100
        # The failed temp file was cleaned up, not left as litter.
        litter = [p for p in (tmp_path / "shards").iterdir()
                  if p.suffix == ".tmp"]
        assert litter == []

    def test_checkpointer_fsync_failure_keeps_old_shard(self, tmp_path):
        from repro.runtime.checkpoint import Checkpointer, Shard

        checkpointer = Checkpointer(tmp_path / "shards", fsync=True)
        checkpointer.write(Shard(job_id="j1", backend="treadle", cycle=100,
                                 counts={"a": 1}, complete=True))
        faulty = Checkpointer(
            tmp_path / "shards", fsync=True,
            os_module=FaultyOS(DiskFaultPlan(fsync_failures=1)),
        )
        with pytest.raises(OSError):
            faulty.write(Shard(job_id="j1", backend="treadle", cycle=200,
                               counts={"a": 2}, complete=True))
        assert checkpointer.load("j1").cycle == 100


class TestCompaction:
    def test_compact_replaces_history_with_snapshot(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(path) as journal:
            fill(journal)
            before = journal.size_bytes
            snapshot = {"type": "snapshot", "next_seq": 2, "campaigns": []}
            journal.compact(snapshot)
            assert journal.size_bytes < before
            # Appends continue against the new file.
            journal.append({"type": "after"})
        result = replay(path)
        assert result.clean
        assert result.records == [snapshot, {"type": "after"}]

    def test_compact_failure_leaves_old_journal(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = Journal(path)
        fill(journal)
        journal._os = FaultyOS(DiskFaultPlan(enospc_after_bytes=4))
        with pytest.raises(JournalError, match="compaction failed"):
            journal.compact({"type": "snapshot"})
        journal._os = os
        journal.close()
        assert replay(path).records == RECORDS
        assert not list(tmp_path.glob("*.tmp"))

    def test_unfsynced_journal_still_survives_process_crash(self, tmp_path):
        """fsync=False drops the power-loss guarantee only: the bytes are
        in the page cache, so a plain process crash loses nothing."""
        path = tmp_path / "j.wal"
        journal = Journal(path, fsync=False)
        fill(journal)
        # Simulate kill -9: no close(), no flush of anything buffered in
        # the *process* (there is nothing: appends are direct os.write).
        del journal
        assert replay(path).records == RECORDS


class TestAutoCompaction:
    """PR 7: the journal folds itself once it outgrows a byte budget."""

    def snapshot_provider(self):
        return {"type": "snapshot", "next_seq": 99, "campaigns": []}

    def test_threshold_crossing_compacts_to_snapshot(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(
            path, auto_compact_bytes=2048,
            snapshot_provider=self.snapshot_provider,
        ) as journal:
            for seq in range(200):
                journal.append({"type": "submit", "id": f"c{seq:06d}",
                                "seq": seq, "spec": {"tenant": "a"}})
            # 200 * ~70-byte records would be ~14 KiB of history; the
            # journal must have folded itself down along the way.
            assert journal.compactions >= 1
            assert journal.size_bytes < 4096
            journal.append({"type": "after"})
        result = replay(path)
        assert result.clean
        # History is gone; the snapshot plus the post-compaction suffix
        # is all that remains.
        assert result.records[0] == self.snapshot_provider()
        assert result.records[-1] == {"type": "after"}
        assert len(result.records) < 200

    def test_oversized_snapshot_does_not_thrash(self, tmp_path):
        """A snapshot already bigger than the limit must not trigger a
        compaction on every append: the journal re-arms at 2x its own
        compacted size."""
        big = {"type": "snapshot", "blob": "x" * 4096}
        with Journal(
            tmp_path / "j.wal", auto_compact_bytes=1024,
            snapshot_provider=lambda: big,
        ) as journal:
            fill(journal)  # crosses 1 KiB?  no — but the next loop does
            for seq in range(40):
                journal.append({"type": "submit", "id": f"c{seq:06d}",
                                "seq": seq, "spec": {}})
            first = journal.compactions
            assert first >= 1
            # The snapshot alone is ~4 KiB > the 1 KiB limit; appends
            # short of doubling the file must not compact again.
            for seq in range(10):
                journal.append({"type": "noise", "seq": seq})
            assert journal.compactions == first

    def test_disabled_without_threshold_or_provider(self, tmp_path):
        with Journal(tmp_path / "a.wal") as journal:
            for seq in range(100):
                journal.append({"type": "noise", "seq": seq})
            assert journal.compactions == 0
        with Journal(
            tmp_path / "b.wal", auto_compact_bytes=64,
            snapshot_provider=None,
        ) as journal:
            for seq in range(100):
                journal.append({"type": "noise", "seq": seq})
            assert journal.compactions == 0

    def test_compaction_failure_is_absorbed_and_retried(self, tmp_path):
        """Disk trouble during an auto-compaction must not fail the append
        that triggered it; the journal keeps growing and retries on the
        next append past the threshold."""
        path = tmp_path / "j.wal"
        journal = Journal(
            path, auto_compact_bytes=512,
            snapshot_provider=self.snapshot_provider,
        )
        real_compact = journal.compact
        calls = []

        def flaky_compact(snapshot):
            calls.append(snapshot)
            if len(calls) == 1:
                raise JournalError("injected compaction failure")
            return real_compact(snapshot)

        journal.compact = flaky_compact
        for seq in range(30):  # crosses 512 bytes twice over
            journal.append({"type": "noise", "seq": seq})
        # First attempt failed and was absorbed (no append raised); the
        # very next append past the still-armed threshold retried and won.
        assert len(calls) >= 2
        assert journal.compactions == 1
        journal.close()
        assert replay(path).clean
