"""Circuit breakers: state machine unit tests + campaign integration."""

import pytest

from repro.backends import TreadleBackend
from repro.coverage import all_cover_names, instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.runtime import (
    BreakerBoard,
    CircuitBreaker,
    Executor,
    FaultPlan,
    FaultyBackend,
    RunJob,
)


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker("b", failure_threshold=0)
        with pytest.raises(ValueError, match="probe_after"):
            CircuitBreaker("b", probe_after=0)

    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker("b", failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_at_consecutive_threshold(self):
        breaker = CircuitBreaker("b", failure_threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.skipped == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker("b", failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # never 3 *consecutive*

    def test_half_open_probe_success_recloses(self):
        breaker = CircuitBreaker("b", failure_threshold=2, probe_after=2)
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.allow()  # skip 1
        assert not breaker.allow()  # skip 2
        assert breaker.allow()  # half-open probe
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker("b", failure_threshold=2, probe_after=1)
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.allow()  # probe
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # back to skipping
        assert breaker.opens == 2

    def test_snapshot_and_format(self):
        breaker = CircuitBreaker("essent", failure_threshold=1)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["failures"] == 1
        assert "essent: open" in breaker.format()


class TestBreakerBoard:
    def test_breakers_are_per_backend(self):
        board = BreakerBoard(failure_threshold=1)
        board.record("bad", ok=False)
        assert not board.allow("bad")
        assert board.allow("good")
        assert board.tripped == ["bad"]

    def test_json_snapshot(self):
        board = BreakerBoard(failure_threshold=1)
        board.record("bad", ok=False)
        assert '"state": "open"' in board.to_json()


@pytest.fixture(scope="module")
def gcd_state():
    state, _ = instrument(elaborate(Gcd(width=8)), metrics=["line"])
    return state


def gcd_stimulus(sim, cycle):
    sim.poke("req_valid", 1)
    sim.poke("req_bits", ((cycle % 13 + 1) << 8) | (cycle % 7 + 1))
    sim.poke("resp_ready", 1)


@pytest.mark.faults
class TestCampaignIntegration:
    """Acceptance: broken backend's remaining jobs are skipped, not failed."""

    def test_breaker_opens_and_remaining_jobs_skip(self, gcd_state):
        crashing = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=3, seed=8))
        board = BreakerBoard(failure_threshold=2, probe_after=100)
        executor = Executor(breaker=board, sleep=lambda s: None)
        names = all_cover_names(gcd_state.circuit)

        def job(job_id, backend, backend_name):
            return RunJob(
                job_id,
                backend_name,
                lambda: backend.compile_state(gcd_state),
                cycles=60,
                stimulus=gcd_stimulus,
            )

        healthy = TreadleBackend()
        jobs = [
            job("bad-1", crashing, "essent"),
            job("good-1", healthy, "treadle"),
            job("bad-2", crashing, "essent"),
            job("bad-3", crashing, "essent"),
            job("bad-4", crashing, "essent"),
            job("good-2", healthy, "treadle"),
        ]
        result = executor.run_campaign(jobs, known_names=names)
        statuses = {o.job_id: o.status for o in result.outcomes}
        # two failures trip the breaker; the rest of essent's jobs skip
        assert statuses == {
            "bad-1": "failed",
            "good-1": "ok",
            "bad-2": "failed",
            "bad-3": "skipped",
            "bad-4": "skipped",
            "good-2": "ok",
        }
        skipped = {o.job_id: o.skip_reason for o in result.skipped}
        assert skipped == {"bad-3": "breaker-open", "bad-4": "breaker-open"}
        # skipped jobs burned zero attempts and recorded zero failures
        for outcome in result.skipped:
            assert outcome.attempts == 0
            assert not outcome.failures
        # breaker state lands in the campaign report
        assert result.breakers is board
        assert board.breakers["essent"].state == "open"
        assert board.breakers["treadle"].state == "closed"
        report = result.format()
        assert "skipped (breaker-open)" in report
        assert "essent: open" in report
        # healthy backend still contributed to the merge
        assert result.quarantine.merged_job_ids == ["good-1", "good-2"]

    def test_half_open_probe_heals_a_recovered_backend(self, gcd_state):
        transient = FaultyBackend(
            TreadleBackend(), FaultPlan(crash_at=3, fail_attempts=2, seed=9)
        )
        board = BreakerBoard(failure_threshold=2, probe_after=1)
        executor = Executor(breaker=board, sleep=lambda s: None)

        def job(job_id):
            return RunJob(
                job_id,
                "treadle",
                lambda: transient.compile_state(gcd_state),
                cycles=60,
                stimulus=gcd_stimulus,
            )

        # attempts 1 and 2 fault (fail_attempts=2), tripping the breaker;
        # job 3 skips; job 4 is the half-open probe and succeeds (attempt 3
        # of the plan runs clean), re-closing the breaker for job 5.
        result = executor.run_campaign([job(f"j{i}") for i in range(1, 6)])
        statuses = [o.status for o in result.outcomes]
        assert statuses == ["failed", "failed", "skipped", "ok", "ok"]
        assert board.breakers["treadle"].state == "closed"
