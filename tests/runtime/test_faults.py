"""The fault injector itself: determinism, and the FireSim CRC defence."""

import pytest

from repro.backends import ScanChainCorruption, TreadleBackend
from repro.backends.firesim.driver import FireSimSimulation, scan_crc
from repro.backends.firesim.scanchain import insert_scan_chain
from repro.coverage import instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.passes import lower
from repro.runtime import FaultPlan, FaultyBackend, ScanNoiseHost

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def gcd_state():
    state, _ = instrument(elaborate(Gcd(width=8)), metrics=["line"])
    return state


def run_and_collect(sim, cycles=40):
    sim.poke("reset", 1)
    sim.step(1)
    sim.poke("reset", 0)
    sim.poke("resp_ready", 1)
    sim.poke("req_valid", 1)
    sim.poke("req_bits", (9 << 8) | 6)
    sim.step(cycles)
    return sim.cover_counts()


class TestDeterminism:
    def test_crash_is_reproducible(self, gcd_state):
        from repro.backends import SimulationCrash

        for _ in range(2):
            sim = FaultyBackend(
                TreadleBackend(), FaultPlan(crash_at=7, seed=3)
            ).compile_state(gcd_state)
            with pytest.raises(SimulationCrash, match="cycle 7"):
                sim.step(50)

    def test_corruption_is_reproducible(self, gcd_state):
        def corrupted():
            backend = FaultyBackend(
                TreadleBackend(),
                FaultPlan(corrupt_keys=2, drop_keys=1, negate_keys=1,
                          inflate_keys=1, seed=11),
            )
            return run_and_collect(backend.compile_state(gcd_state))

        assert corrupted() == corrupted()

    def test_corruption_kinds_all_present(self, gcd_state):
        clean = run_and_collect(TreadleBackend().compile_state(gcd_state))
        backend = FaultyBackend(
            TreadleBackend(),
            FaultPlan(corrupt_keys=2, drop_keys=1, negate_keys=1,
                      inflate_keys=1, inflate_width=16, seed=11),
        )
        counts = run_and_collect(backend.compile_state(gcd_state))
        assert len(counts) == len(clean) - 1  # one key dropped
        renamed = [k for k in counts if k not in clean]
        assert len(renamed) == 2 and all("__corrupt" in k for k in renamed)
        assert sum(1 for v in counts.values() if v < 0) == 1
        assert sum(1 for v in counts.values() if v > (1 << 16) - 1) == 1

    def test_clean_plan_is_a_no_op(self, gcd_state):
        clean = run_and_collect(TreadleBackend().compile_state(gcd_state))
        wrapped = run_and_collect(
            FaultyBackend(TreadleBackend(), FaultPlan()).compile_state(gcd_state)
        )
        assert wrapped == clean


class TestScanChainCrc:
    @pytest.fixture(scope="class")
    def chained(self, gcd_state):
        flat = lower(gcd_state.circuit, flatten=True)
        return insert_scan_chain(flat, counter_width=8)

    def test_crc_is_stable_and_order_sensitive(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        assert scan_crc(bits) == scan_crc(list(bits))
        assert scan_crc(bits) != scan_crc(bits[::-1])
        assert 0 <= scan_crc(bits) <= 0xFFFF

    def test_clean_chain_passes_verification(self, chained):
        state, info = chained
        sim = FireSimSimulation(
            TreadleBackend().compile_state(state), info, verify_scans=True
        )
        counts = run_and_collect(sim)
        assert sim.last_scan_crc is not None
        assert any(counts.values())
        # verification cost: two rotations per scan instead of one
        assert sim.scan_cycles_total == 2 * info.length_bits

    def test_bit_flips_raise_scan_chain_corruption(self, chained):
        state, info = chained
        noisy = ScanNoiseHost(
            TreadleBackend().compile_state(state), flip_probability=0.02, seed=1
        )
        sim = FireSimSimulation(noisy, info, verify_scans=True)
        with pytest.raises(ScanChainCorruption):
            run_and_collect(sim)
        assert noisy.flips > 0

    def test_first_rotation_flip_detected_before_recirculation(self, chained):
        """A single transient flip during the *first* rotation must raise.

        This is the scenario the CRC-replay check alone could not see: the
        corrupted bit used to be recirculated into the chain, so the replay
        read back the same corruption and the CRCs matched.  The
        sample-before-commit check catches the flip on the spot.
        """
        state, info = chained
        # read 4 is chain bit 2's first sample (two samples per bit)
        noisy = ScanNoiseHost(
            TreadleBackend().compile_state(state), 0.0, flip_reads={4}
        )
        sim = FireSimSimulation(noisy, info, verify_scans=True)
        with pytest.raises(ScanChainCorruption, match=r"bit 2/\d+ read unstable"):
            run_and_collect(sim)
        assert noisy.flips == 1

    def test_resample_flip_detected(self, chained):
        """A flip on the second sample (the resample) is equally fatal."""
        state, info = chained
        noisy = ScanNoiseHost(
            TreadleBackend().compile_state(state), 0.0, flip_reads={5}
        )
        sim = FireSimSimulation(noisy, info, verify_scans=True)
        with pytest.raises(ScanChainCorruption, match="unstable"):
            run_and_collect(sim)

    def test_replay_divergence_caught_by_bitstream_compare(self, chained):
        """Both samples of one bit flipped in the *replay* rotation: the
        sample check passes (samples agree), but the replay bitstream no
        longer matches the data rotation, so layer 2 fires."""
        state, info = chained
        base = 2 * info.length_bits  # replay rotation starts here
        noisy = ScanNoiseHost(
            TreadleBackend().compile_state(state), 0.0,
            flip_reads={base + 6, base + 7},
        )
        sim = FireSimSimulation(noisy, info, verify_scans=True)
        with pytest.raises(ScanChainCorruption, match="diverge at bit 3"):
            run_and_collect(sim)

    def test_documented_residual_double_flip_first_rotation(self, chained):
        """The documented p² residual: identical flips on *both* samples of
        the same bit in the data rotation commit the corruption, and the
        replay rereads it as itself — no exception, wrong counts.  This
        test pins the limitation the driver docstring declares; shard
        validation downstream is the remaining backstop."""
        state, info = chained
        clean = run_and_collect(
            FireSimSimulation(TreadleBackend().compile_state(state), info)
        )
        noisy = ScanNoiseHost(
            TreadleBackend().compile_state(state), 0.0, flip_reads={6, 7}
        )
        sim = FireSimSimulation(noisy, info, verify_scans=True)
        poisoned = run_and_collect(sim)
        assert noisy.flips == 2
        assert poisoned != clean  # corrupted, undetected by design limits

    def test_without_verification_corruption_goes_unnoticed(self, chained):
        """The motivating hazard: silent poisoning unless verify_scans is on."""
        state, info = chained
        clean_sim = FireSimSimulation(TreadleBackend().compile_state(state), info)
        clean = run_and_collect(clean_sim)
        noisy = ScanNoiseHost(
            TreadleBackend().compile_state(state), flip_probability=0.05, seed=2
        )
        sim = FireSimSimulation(noisy, info, verify_scans=False)
        poisoned = run_and_collect(sim)
        assert poisoned != clean  # wrong counts, no exception

    def test_flip_probability_validated(self, chained):
        state, info = chained
        with pytest.raises(ValueError, match="probability"):
            ScanNoiseHost(TreadleBackend().compile_state(state), 1.5)
