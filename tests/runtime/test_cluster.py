"""Unit tests for the cluster building blocks: wire protocol frames,
the lease/fencing state machine, and the seeded network fault channel.

The lease table is additionally driven by a hypothesis stateful machine:
random interleavings of grant/heartbeat/expire/re-grant must never
produce two live leases for one shard, never reuse or decrease a fencing
token, and must reject every write that does not carry the current live
lease's exact identity.
"""

import socket
import threading
import time

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.runtime.cluster import Lease, LeaseError, LeaseTable
from repro.runtime.faults import FaultyChannel, NetFaultPlan
from repro.runtime.protocol import (
    MAX_LINE_BYTES,
    LineChannel,
    ProtocolError,
    decode_message,
    encode_message,
)


class TestProtocol:
    def test_round_trip(self):
        msg = {
            "type": "delta", "shard": "c000001", "token": 3, "seq": 7,
            "from_cycle": 500, "to_cycle": 1000,
            "counts": {"l_0": 2, "l_1": 0}, "sent_at": 123.5,
        }
        assert decode_message(encode_message(msg).rstrip(b"\n")) == msg

    def test_encoded_frame_is_one_line(self):
        frame = encode_message({"type": "hello", "worker": "w\n1",
                                "slots": 2, "version": 1})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1  # embedded newline stays escaped

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="missing field.*slots"):
            decode_message(b'{"type": "hello", "worker": "w1", "version": 1}')

    def test_unknown_type_passes_for_forward_compat(self):
        msg = decode_message(b'{"type": "gossip", "x": 1}')
        assert msg["type"] == "gossip"

    def test_non_object_and_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2]")
        with pytest.raises(ProtocolError):
            decode_message(b"not json at all")
        with pytest.raises(ProtocolError):
            decode_message(b'{"no": "type"}')

    def test_oversized_frame_refused_at_send(self):
        big = {"type": "delta", "shard": "c1", "token": 1, "seq": 1,
               "from_cycle": 0, "to_cycle": 1,
               "counts": {"k": "x" * MAX_LINE_BYTES}, "sent_at": 0.0}
        with pytest.raises(ProtocolError, match="frame of .* exceeds"):
            encode_message(big)

    def test_line_channel_over_socketpair(self):
        left, right = socket.socketpair()
        a, b = LineChannel(left), LineChannel(right)
        try:
            a.send({"type": "hello", "worker": "w1", "slots": 2,
                    "version": 1})
            msg = b.recv()
            assert msg["worker"] == "w1"
            a.close()
            assert b.recv() is None  # EOF surfaces as None, not a raise
        finally:
            a.close()
            b.close()
        assert a.closed and b.closed


class TestLeaseTable:
    def test_grant_renew_release(self):
        table = LeaseTable(lease_s=10.0)
        lease = table.grant("c1", "w1", now=100.0)
        assert lease.token == 1
        assert lease.expires_at == 110.0
        assert table.check_write("c1", "w1", 1) is None
        assert table.renew("c1", "w1", 1, now=105.0)
        assert table.get("c1").expires_at == 115.0
        assert table.release("c1", 1)
        assert table.check_write("c1", "w1", 1) == "no-live-lease"

    def test_double_grant_refused(self):
        table = LeaseTable(lease_s=10.0)
        table.grant("c1", "w1", now=0.0)
        with pytest.raises(LeaseError, match="already leased"):
            table.grant("c1", "w2", now=0.0)

    def test_expiry_then_regrant_fences_the_zombie(self):
        table = LeaseTable(lease_s=5.0)
        old = table.grant("c1", "w1", now=0.0)
        dead = table.expire(now=5.0)
        assert [l.token for l in dead] == [old.token]
        new = table.grant("c1", "w2", now=6.0)
        assert new.token > old.token
        # the zombie's writes are rejected forever
        assert table.check_write("c1", "w1", old.token) == "stale-token"
        # even a forged current token from the wrong worker is refused
        assert table.check_write("c1", "w1", new.token) == "wrong-holder"
        assert table.check_write("c1", "w2", new.token) is None

    def test_expired_lease_cannot_renew_or_release(self):
        table = LeaseTable(lease_s=5.0)
        lease = table.grant("c1", "w1", now=0.0)
        table.expire(now=10.0)
        assert not table.renew("c1", "w1", lease.token, now=10.0)
        assert not table.release("c1", lease.token)

    def test_tokens_strictly_increase_across_shards(self):
        table = LeaseTable(lease_s=5.0)
        tokens = [table.grant(f"c{i}", "w1", now=0.0).token for i in range(5)]
        assert tokens == sorted(set(tokens))
        table.revoke("c2")
        assert table.grant("c2", "w2", now=1.0).token > max(tokens)

    def test_next_token_watermark_respected(self):
        # Recovery hands the table a journaled high-water mark: tokens
        # must start at it even though the table itself is empty.
        table = LeaseTable(lease_s=5.0, next_token=42)
        assert table.grant("c1", "w1", now=0.0).token == 42


class LeaseMachine(RuleBasedStateMachine):
    """Random grant/renew/expire/write interleavings vs. the invariants."""

    SHARDS = ("s0", "s1", "s2")
    WORKERS = ("w0", "w1")

    def __init__(self):
        super().__init__()
        self.table = LeaseTable(lease_s=10.0)
        self.clock = 0.0
        self.granted_tokens: set[int] = set()
        #: shard -> (worker, token) for the lease we believe is live
        self.model: dict[str, tuple[str, int]] = {}
        #: every (shard, worker, token) triple that ever lost its lease
        self.dead: list[tuple[str, str, int]] = []

    shards = st.sampled_from(SHARDS)
    workers = st.sampled_from(WORKERS)

    @rule(shard=shards, worker=workers)
    def grant(self, shard, worker):
        if shard in self.model:
            with pytest.raises(LeaseError):
                self.table.grant(shard, worker, now=self.clock)
            return
        lease = self.table.grant(shard, worker, now=self.clock)
        assert lease.token not in self.granted_tokens, "token reused"
        assert not self.granted_tokens or lease.token > max(
            self.granted_tokens
        ), "tokens must increase monotonically"
        self.granted_tokens.add(lease.token)
        self.model[shard] = (worker, lease.token)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def heartbeat_renews(self, data):
        shard = data.draw(st.sampled_from(sorted(self.model)))
        worker, token = self.model[shard]
        assert self.table.renew(shard, worker, token, now=self.clock)

    @rule(advance=st.floats(min_value=0.1, max_value=15.0))
    def time_passes(self, advance):
        self.clock += advance
        for lease in self.table.expire(now=self.clock):
            worker, token = self.model.pop(lease.shard)
            assert lease.token == token
            self.dead.append((lease.shard, worker, token))

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def live_write_accepted(self, data):
        shard = data.draw(st.sampled_from(sorted(self.model)))
        worker, token = self.model[shard]
        assert self.table.check_write(shard, worker, token) is None

    @precondition(lambda self: self.dead)
    @rule(data=st.data())
    def stale_write_always_rejected(self, data):
        shard, worker, token = data.draw(st.sampled_from(self.dead))
        assert self.table.check_write(shard, worker, token) is not None

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def release(self, data):
        shard = data.draw(st.sampled_from(sorted(self.model)))
        worker, token = self.model.pop(shard)
        assert self.table.release(shard, token)
        self.dead.append((shard, worker, token))

    @invariant()
    def at_most_one_live_lease_per_shard(self):
        assert len(self.table) == len(self.model)
        for shard, (worker, token) in self.model.items():
            lease = self.table.get(shard)
            assert lease is not None
            assert (lease.worker, lease.token) == (worker, token)

    @invariant()
    def dead_tokens_stay_dead(self):
        for shard, worker, token in self.dead:
            assert self.table.check_write(shard, worker, token) is not None


TestLeaseStateMachine = LeaseMachine.TestCase
TestLeaseStateMachine.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)


class _Sink:
    """A channel stub recording every frame that reaches the wire."""

    def __init__(self):
        self.sent = []
        self.closed = False

    def send(self, msg):
        self.sent.append(msg)

    def recv(self):
        return None

    def close(self):
        self.closed = True


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestFaultyChannel:
    def msg(self, seq):
        return {"type": "delta", "shard": "c1", "token": 1, "seq": seq,
                "from_cycle": 0, "to_cycle": 1, "counts": {}, "sent_at": 0.0}

    def test_deterministic_drop(self):
        results = []
        for _ in range(2):
            sink = _Sink()
            channel = FaultyChannel(sink, NetFaultPlan(drop_p=0.5, seed=7))
            for seq in range(40):
                channel.send(self.msg(seq))
            channel.close()
            results.append([m["seq"] for m in sink.sent])
        assert results[0] == results[1]  # same seed, same fate
        assert 0 < len(results[0]) < 40  # some dropped, not all

    def test_duplicates_are_byte_identical(self):
        sink = _Sink()
        channel = FaultyChannel(sink, NetFaultPlan(dup_p=1.0, seed=3))
        channel.send(self.msg(1))
        channel.close()
        assert len(sink.sent) == 2
        assert sink.sent[0] == sink.sent[1]

    def test_partition_buffers_then_floods(self):
        sink = _Sink()
        plan = NetFaultPlan(partitions=((0.0, 0.3),), seed=1)
        channel = FaultyChannel(sink, plan)
        for seq in range(3):
            channel.send(self.msg(seq))
        assert sink.sent == []  # inside the window: nothing on the wire
        assert wait_for(lambda: len(sink.sent) == 3, timeout=5.0)
        assert [m["seq"] for m in sink.sent] == [0, 1, 2]  # flood in order
        channel.close()

    def test_only_types_filter_passes_other_frames(self):
        sink = _Sink()
        plan = NetFaultPlan(
            drop_p=1.0, only_types=("delta",), seed=0
        )
        channel = FaultyChannel(sink, plan)
        hello = {"type": "hello", "worker": "w", "slots": 1, "version": 1}
        channel.send(hello)     # not a delta: passes untouched
        channel.send(self.msg(1))  # delta: dropped
        channel.close()
        assert sink.sent == [hello]

    def test_clean_plan_is_transparent(self):
        sink = _Sink()
        channel = FaultyChannel(sink, NetFaultPlan(seed=0))
        frames = [self.msg(seq) for seq in range(10)]
        for frame in frames:
            channel.send(frame)
        channel.close()
        assert sink.sent == frames
