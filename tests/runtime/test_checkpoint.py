"""Shard files: atomic writes, round trips, and malformed-file handling."""

import json
from pathlib import Path

import pytest

from repro.runtime import Checkpointer, Shard, ShardError


class TestShardRoundTrip:
    def test_roundtrip(self, tmp_path):
        checkpointer = Checkpointer(tmp_path, every=10)
        shard = Shard("job-1", "treadle", 40, {"a.b": 3, "c": 0}, complete=False)
        path = checkpointer.write(shard)
        assert path.exists()
        loaded = checkpointer.load("job-1")
        assert loaded is not None
        assert loaded.job_id == "job-1"
        assert loaded.backend == "treadle"
        assert loaded.cycle == 40
        assert loaded.counts == {"a.b": 3, "c": 0}
        assert not loaded.complete
        assert loaded.path == str(path)

    def test_overwrite_keeps_latest(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        checkpointer.write(Shard("j", "b", 10, {"x": 1}))
        checkpointer.write(Shard("j", "b", 20, {"x": 2}))
        assert checkpointer.load("j").cycle == 20
        # exactly one shard file — no temp litter
        assert len(list(tmp_path.iterdir())) == 1

    def test_load_missing_returns_none(self, tmp_path):
        assert Checkpointer(tmp_path).load("ghost") is None

    def test_job_ids_are_sanitized_for_filenames(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        path = checkpointer.write(Shard("a/b c:d", "b", 1, {}))
        assert path.parent == tmp_path

    def test_checkpoint_period_validation(self, tmp_path):
        with pytest.raises(ValueError, match=">= 0"):
            Checkpointer(tmp_path, every=-1)
        cp = Checkpointer(tmp_path, every=25)
        assert not cp.due(24) and cp.due(25) and not cp.due(26) and cp.due(50)
        assert not Checkpointer(tmp_path, every=0).due(100)


class TestDowngradeGuard:
    def test_incomplete_never_overwrites_complete(self, tmp_path):
        """A straggler attempt's periodic snapshot cannot downgrade a
        finished job's shard to a stale partial one."""
        cp = Checkpointer(tmp_path)
        cp.write(Shard("j", "b", 60, {"x": 4}, complete=True))
        refused = cp.write(Shard("j", "b", 30, {"x": 1}, complete=False))
        assert refused is None
        kept = cp.load("j")
        assert kept.complete and kept.cycle == 60 and kept.counts == {"x": 4}

    def test_complete_may_overwrite_complete(self, tmp_path):
        cp = Checkpointer(tmp_path)
        cp.write(Shard("j", "b", 60, {"x": 4}, complete=True))
        assert cp.write(Shard("j", "b", 80, {"x": 9}, complete=True)) is not None
        assert cp.load("j").cycle == 80

    def test_incomplete_may_overwrite_incomplete(self, tmp_path):
        cp = Checkpointer(tmp_path)
        cp.write(Shard("j", "b", 10, {"x": 1}, complete=False))
        assert cp.write(Shard("j", "b", 20, {"x": 2}, complete=False)) is not None
        assert cp.load("j").cycle == 20

    def test_corrupt_file_may_be_overwritten(self, tmp_path):
        cp = Checkpointer(tmp_path)
        cp.shard_path("j").write_text("garbage")
        assert cp.write(Shard("j", "b", 10, {"x": 1})) is not None
        assert cp.load("j").cycle == 10


class TestMalformedShards:
    @pytest.mark.parametrize(
        "text,detail",
        [
            ("{not json", "not valid JSON"),
            ("[]", "expected a JSON object"),
            ('{"version": 99}', "unsupported version"),
            ('{"version": 1, "job_id": "j"}', "mistyped field"),
            (
                json.dumps({"version": 1, "job_id": "j", "backend": "b",
                            "cycle": "soon", "complete": False, "counts": {}}),
                "cycle",
            ),
        ],
    )
    def test_bad_shard_raises_shard_error(self, tmp_path, text, detail):
        path = tmp_path / "bad.shard.json"
        path.write_text(text)
        with pytest.raises(ShardError, match=detail):
            Checkpointer(tmp_path).load("bad")

    def test_load_all_separates_good_from_unreadable(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        checkpointer.write(Shard("good", "b", 5, {"k": 1}, complete=True))
        (tmp_path / "evil.shard.json").write_text("garbage")
        shards, unreadable = checkpointer.load_all()
        assert [s.job_id for s in shards] == ["good"]
        assert len(unreadable) == 1
        path, error = unreadable[0]
        assert "evil" in path and "not valid JSON" in error

    def test_load_all_quarantines_oserror(self, tmp_path, monkeypatch):
        """An unreadable file (permissions, transient FS error) is reported
        as unreadable, not raised into the campaign."""
        checkpointer = Checkpointer(tmp_path)
        checkpointer.write(Shard("good", "b", 5, {"k": 1}, complete=True))
        checkpointer.write(Shard("locked", "b", 5, {"k": 1}, complete=True))
        real = Path.read_text

        def read_text(self, *args, **kwargs):
            if "locked" in self.name:
                raise PermissionError(f"denied: {self}")
            return real(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_text", read_text)
        shards, unreadable = checkpointer.load_all()
        assert [s.job_id for s in shards] == ["good"]
        assert len(unreadable) == 1
        path, error = unreadable[0]
        assert "locked" in path and "denied" in error
