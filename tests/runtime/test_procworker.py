"""Process-isolated workers: supervision, SIGKILL + salvage, rlimits.

The headline test here is the one PR 1 could not have: a *hard* hang that
ignores every cooperative cancellation mechanism.  Under the thread-mode
executor that attempt would leak a spinning daemon thread for the life of
the interpreter (and the faults-suite SIGALRM deadline would fire);
the process supervisor SIGKILLs it, reaps the corpse, and salvages the
last streamed checkpoint shard.
"""

import multiprocessing

import pytest

from repro.backends import TreadleBackend
from repro.coverage import all_cover_names, instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.runtime import (
    Checkpointer,
    Executor,
    FaultPlan,
    FaultyBackend,
    ResourceLimits,
    RunJob,
    SupervisionPolicy,
    process_isolation_available,
    run_process_attempt,
)
from repro.runtime.procworker import (
    address_space_mb,
    counts_digest,
    rlimit_as_enforceable,
)

pytestmark = [
    pytest.mark.faults,
    pytest.mark.skipif(
        not process_isolation_available(),
        reason="process isolation requires the fork start method",
    ),
]


@pytest.fixture(scope="module")
def gcd_state():
    state, _ = instrument(elaborate(Gcd(width=8)), metrics=["line"])
    return state


def gcd_stimulus(sim, cycle):
    sim.poke("req_valid", 1)
    sim.poke("req_bits", ((cycle % 13 + 1) << 8) | (cycle % 7 + 1))
    sim.poke("resp_ready", 1)


def make_job(backend, gcd_state, job_id="job", cycles=60):
    return RunJob(
        job_id=job_id,
        backend_name=getattr(backend, "name", "backend"),
        make_sim=lambda: backend.compile_state(gcd_state),
        cycles=cycles,
        stimulus=gcd_stimulus,
    )


def reference_counts(gcd_state, cycles):
    sim = TreadleBackend().compile_state(gcd_state)
    sim.poke("reset", 1)
    sim.step(1)
    sim.poke("reset", 0)
    for cycle in range(cycles):
        gcd_stimulus(sim, cycle)
        sim.step(1)
    return sim.cover_counts()


class TestConfigValidation:
    def test_policy_rejects_bad_values(self):
        with pytest.raises(ValueError, match="deadline"):
            SupervisionPolicy(deadline=0)
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            SupervisionPolicy(heartbeat_timeout=0)
        with pytest.raises(ValueError, match="max_missed_heartbeats"):
            SupervisionPolicy(max_missed_heartbeats=0)
        with pytest.raises(ValueError, match="heartbeat_cycles"):
            SupervisionPolicy(heartbeat_cycles=0)

    def test_limits_reject_bad_values(self):
        with pytest.raises(ValueError, match="address_space_mb"):
            ResourceLimits(address_space_mb=0)
        with pytest.raises(ValueError, match="cpu_seconds"):
            ResourceLimits(cpu_seconds=-1)

    def test_executor_rejects_limits_without_process_isolation(self):
        with pytest.raises(ValueError, match="isolation='process'"):
            Executor(mem_limit_mb=256)

    def test_executor_rejects_unknown_isolation(self):
        with pytest.raises(ValueError, match="isolation"):
            Executor(isolation="fiber")


class TestCountsDigest:
    def test_insertion_order_independent(self):
        assert counts_digest({"a": 1, "b": 2}) == counts_digest({"b": 2, "a": 1})

    def test_sensitive_to_values_and_keys(self):
        base = counts_digest({"a": 1, "b": 2})
        assert counts_digest({"a": 1, "b": 3}) != base
        assert counts_digest({"a": 1, "c": 2}) != base


class TestProcessAttempt:
    def test_healthy_attempt_matches_reference(self, gcd_state):
        job = make_job(TreadleBackend(), gcd_state)
        result = run_process_attempt(job, 1, SupervisionPolicy(deadline=60))
        assert result.status == "ok"
        assert result.cycles_run == 60
        assert result.counts == reference_counts(gcd_state, 60)

    def test_child_exception_is_reported_not_fatal(self, gcd_state):
        backend = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=10, seed=1))
        job = make_job(backend, gcd_state)
        result = run_process_attempt(job, 1, SupervisionPolicy(deadline=60))
        assert result.status == "error"
        assert result.failure_kind == "crash"
        assert "injected crash" in result.message

    def test_deadline_kills_cooperative_hang(self, gcd_state):
        backend = FaultyBackend(TreadleBackend(), FaultPlan(hang_at=5, seed=2))
        job = make_job(backend, gcd_state)
        policy = SupervisionPolicy(
            deadline=0.5, heartbeat_timeout=0.1, heartbeat_cycles=1
        )
        result = run_process_attempt(job, 1, policy)
        assert result.status == "killed"
        assert result.failure_kind == "timeout"
        assert "worker killed" in result.message
        assert not multiprocessing.active_children()


class TestHardHang:
    """Acceptance: a stimulus that ignores cancellation must still die."""

    def test_hard_hang_killed_checkpoint_salvaged_campaign_completes(
        self, gcd_state, tmp_path
    ):
        # hang_hard_at ignores both the executor's abandoned flag and the
        # fault injector's release event: under PR 1's thread executor the
        # worker would spin forever as a leaked daemon (this test's SIGALRM
        # deadline is what would catch the regression).
        backend = FaultyBackend(TreadleBackend(), FaultPlan(hang_hard_at=10, seed=3))
        checkpointer = Checkpointer(tmp_path, every=4)
        executor = Executor(
            isolation="process",
            timeout=5,
            heartbeat_timeout=0.2,
            max_missed_heartbeats=3,
            heartbeat_cycles=1,
            checkpointer=checkpointer,
            sleep=lambda s: None,
        )
        names = all_cover_names(gcd_state.circuit)
        jobs = [
            make_job(backend, gcd_state, job_id="wedged", cycles=100),
            make_job(TreadleBackend(), gcd_state, job_id="healthy"),
        ]
        result = executor.run_campaign(jobs, known_names=names)

        wedged, healthy = result.outcomes
        # killed within the deadline, last streamed shard salvaged
        assert wedged.status == "partial"
        assert [f.kind for f in wedged.failures] == ["timeout"]
        assert "worker killed" in wedged.failures[0].message
        assert wedged.cycles_run == 8  # checkpoints streamed at cycles 4, 8
        assert wedged.counts == reference_counts(gcd_state, 8)
        # no leaked worker process
        assert not multiprocessing.active_children()
        # ... and the campaign completed around it
        assert healthy.status == "ok"
        assert result.quarantine.merged_job_ids == ["wedged", "healthy"]

    def test_silence_without_deadline_is_killed_by_missed_heartbeats(
        self, gcd_state
    ):
        backend = FaultyBackend(TreadleBackend(), FaultPlan(hang_hard_at=5, seed=4))
        executor = Executor(
            isolation="process",
            timeout=None,  # no deadline: heartbeat supervision must fire
            heartbeat_timeout=0.2,
            max_missed_heartbeats=3,
            heartbeat_cycles=1,
        )
        outcome = executor.run_job(make_job(backend, gcd_state))
        assert outcome.status == "failed"
        assert [f.kind for f in outcome.failures] == ["timeout"]
        assert "no heartbeat for 3" in outcome.failures[0].message


class TestResourceCaps:
    def test_memory_balloon_pops_on_rlimit(self, gcd_state):
        """The balloon must hit the address-space cap before heartbeat
        supervision gives up on the silent child: the cap sits a fixed
        margin above the worker's baseline VmSize and the balloon grows
        in deterministic fixed-size chunks, so only a handful of
        allocations (well under a second) pop it — no race against the
        watchdog, no dependence on the machine's memory layout."""
        if not rlimit_as_enforceable():
            pytest.skip("platform does not enforce RLIMIT_AS for this user")
        base_mb = address_space_mb()
        assert base_mb is not None  # rlimit_as_enforceable() proved /proc works
        backend = FaultyBackend(
            TreadleBackend(),
            FaultPlan(balloon_at=5, balloon_chunk_mb=16, seed=5),
        )
        executor = Executor(
            isolation="process",
            timeout=30,
            mem_limit_mb=base_mb + 96,  # ~6 chunks past baseline
            heartbeat_cycles=1,
        )
        outcome = executor.run_job(make_job(backend, gcd_state))
        assert outcome.status == "failed"
        assert [f.kind for f in outcome.failures] == ["crash"]
        assert "memory balloon popped" in outcome.failures[0].message
        assert not multiprocessing.active_children()


class TestRetriesAcrossForks:
    def test_transient_fault_heals_despite_forked_attempt_counters(
        self, gcd_state
    ):
        """Each forked child gets a copy of the backend's attempt counter;
        the executor's attempt number (via current_attempt) must win, or a
        fails-twice plan would fault on every fork forever."""
        backend = FaultyBackend(
            TreadleBackend(), FaultPlan(crash_at=8, fail_attempts=2, seed=6)
        )
        executor = Executor(
            isolation="process", timeout=30, retries=2, sleep=lambda s: None
        )
        outcome = executor.run_job(make_job(backend, gcd_state))
        assert outcome.status == "ok"
        assert outcome.attempts == 3
        assert [f.kind for f in outcome.failures] == ["crash", "crash"]
        assert outcome.counts == reference_counts(gcd_state, 60)


class TestModelCacheAcrossShards:
    def test_exactly_one_compile_per_circuit_backend(self, tmp_path, gcd_state):
        """Warm-before-fork: the parent compiles once; every process shard
        inherits the in-memory entry copy-on-write and reports a cache hit
        through the counter-forwarding pipe.  The misses metric staying at
        one proves no shard recompiled."""
        from repro.backends import ModelCache
        from repro.runtime.telemetry import obs

        obs.reset()
        obs.enable()
        try:
            cache = ModelCache(tmp_path / "cache")
            backend = TreadleBackend(cache=cache)
            backend.compile_state(gcd_state)  # the one cold compile
            assert (cache.misses, cache.hits) == (1, 0)
            misses = obs.metrics.get("repro_model_cache_misses_total")
            assert misses.value(backend="treadle") == 1

            executor = Executor(isolation="process", timeout=60)
            names = all_cover_names(gcd_state.circuit)
            jobs = [
                make_job(backend, gcd_state, job_id=f"shard-{i}")
                for i in range(3)
            ]
            result = executor.run_campaign(jobs, known_names=names)
            assert [o.status for o in result.outcomes] == ["ok"] * 3

            # each forked shard hit the inherited warm cache, and its
            # counter delta came back over the pipe
            hits = obs.metrics.get("repro_model_cache_hits_total")
            assert hits.value(backend="treadle") >= 3
            assert misses.value(backend="treadle") == 1
            assert cache.misses == 1  # parent never recompiled either
        finally:
            obs.disable()
            obs.reset()
