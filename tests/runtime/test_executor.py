"""Executor fault tolerance: containment, watchdog, retries, salvage."""

import time

import pytest

from repro.backends import SimulationCrash, TreadleBackend
from repro.coverage import all_cover_names, instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.runtime import (
    Checkpointer,
    Executor,
    FaultPlan,
    FaultyBackend,
    RunJob,
)

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def gcd_state():
    state, _ = instrument(elaborate(Gcd(width=8)), metrics=["line"])
    return state


def gcd_stimulus(sim, cycle):
    sim.poke("req_valid", 1)
    sim.poke("req_bits", ((cycle % 13 + 1) << 8) | (cycle % 7 + 1))
    sim.poke("resp_ready", 1)


def make_job(backend, gcd_state, job_id="job", cycles=60):
    return RunJob(
        job_id=job_id,
        backend_name=getattr(backend, "name", "backend"),
        make_sim=lambda: backend.compile_state(gcd_state),
        cycles=cycles,
        stimulus=gcd_stimulus,
    )


class TestCrashContainment:
    def test_crash_becomes_structured_failure(self, gcd_state, isolation):
        backend = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=10, seed=1))
        outcome = Executor(sleep=lambda s: None, isolation=isolation).run_job(
            make_job(backend, gcd_state)
        )
        assert outcome.status == "failed"
        assert outcome.attempts == 1
        assert [f.kind for f in outcome.failures] == ["crash"]
        assert "injected crash" in outcome.failures[0].message

    def test_healthy_job_is_ok(self, gcd_state, isolation):
        outcome = Executor(isolation=isolation).run_job(
            make_job(TreadleBackend(), gcd_state)
        )
        assert outcome.status == "ok"
        assert outcome.cycles_run == 60
        assert outcome.counts and not outcome.failures

    def test_keyboard_interrupt_not_swallowed(self, gcd_state):
        def explode():
            raise KeyboardInterrupt

        job = RunJob("boom", "x", explode, cycles=5)
        with pytest.raises(KeyboardInterrupt):
            Executor().run_job(job)


class TestWatchdog:
    def test_timeout_fires_on_injected_hang(self, gcd_state, isolation):
        backend = FaultyBackend(TreadleBackend(), FaultPlan(hang_at=5, seed=2))
        executor = Executor(timeout=0.3, isolation=isolation)
        outcome = executor.run_job(make_job(backend, gcd_state))
        assert outcome.status == "failed"
        assert [f.kind for f in outcome.failures] == ["timeout"]
        assert "0.3" in outcome.failures[0].message

    def test_fast_job_beats_the_watchdog(self, gcd_state, isolation):
        outcome = Executor(timeout=30, isolation=isolation).run_job(
            make_job(TreadleBackend(), gcd_state)
        )
        assert outcome.status == "ok"


class TestRetries:
    def test_transient_fault_recovers_on_third_attempt(self, gcd_state, isolation):
        """Seeded: fails twice, succeeds on the third attempt."""
        backend = FaultyBackend(
            TreadleBackend(), FaultPlan(crash_at=8, fail_attempts=2, seed=5)
        )
        slept = []
        executor = Executor(retries=2, sleep=slept.append, isolation=isolation)
        outcome = executor.run_job(make_job(backend, gcd_state))
        assert outcome.status == "ok"
        assert outcome.attempts == 3
        assert [f.kind for f in outcome.failures] == ["crash", "crash"]
        if isolation == "thread":
            # forked attempts never report back to the parent's counter
            assert backend.attempts == 3
        assert len(slept) == 2  # one backoff sleep per retry

    def test_backoff_grows_exponentially_with_jitter(self):
        executor = Executor(retries=5, backoff_base=0.1, seed=9)
        delays = [executor.backoff_delay(a) for a in range(2, 6)]
        for i, delay in enumerate(delays):
            base = 0.1 * (2 ** i)
            assert base <= delay <= base + 0.1
        # deterministic for a fixed seed
        assert delays == [Executor(retries=5, backoff_base=0.1, seed=9).backoff_delay(a)
                          for a in range(2, 6)]

    def test_backoff_jitter_differs_per_job(self):
        # Jitter seeded only by (seed, attempt) makes every failing job
        # sleep the same delay and retry in lockstep — a thundering herd.
        executor = Executor(retries=2, backoff_base=0.1, seed=9)
        delays = {
            job_id: executor.backoff_delay(2, job_id)
            for job_id in ("shard-0", "shard-1", "shard-2")
        }
        assert len(set(delays.values())) == len(delays)
        # still deterministic per job for a fixed seed
        for job_id, delay in delays.items():
            assert delay == Executor(
                retries=2, backoff_base=0.1, seed=9
            ).backoff_delay(2, job_id)
            assert 0.1 <= delay <= 0.2

    def test_retries_exhausted_reports_every_attempt(self, gcd_state):
        backend = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=3, seed=4))
        outcome = Executor(retries=2, sleep=lambda s: None).run_job(
            make_job(backend, gcd_state)
        )
        assert outcome.status == "failed"
        assert len(outcome.failures) == 3
        assert [f.attempt for f in outcome.failures] == [1, 2, 3]


class TestCheckpointSalvage:
    def test_crashed_job_contributes_last_checkpoint(self, gcd_state, tmp_path):
        backend = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=45, seed=6))
        checkpointer = Checkpointer(tmp_path, every=10)
        executor = Executor(checkpointer=checkpointer, sleep=lambda s: None)
        outcome = executor.run_job(make_job(backend, gcd_state, cycles=100))
        assert outcome.status == "partial"
        assert outcome.cycles_run == 40  # last checkpoint before the crash
        assert outcome.counts
        # the salvaged counts equal a clean run of the same length
        reference = TreadleBackend().compile_state(gcd_state)
        reference.poke("reset", 1)
        reference.step(1)
        reference.poke("reset", 0)
        for cycle in range(40):
            gcd_stimulus(reference, cycle)
            reference.step(1)
        assert outcome.counts == reference.cover_counts()

    def test_no_checkpointer_means_no_salvage(self, gcd_state):
        backend = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=45, seed=6))
        outcome = Executor(sleep=lambda s: None).run_job(
            make_job(backend, gcd_state, cycles=100)
        )
        assert outcome.status == "failed"
        assert outcome.counts == {}

    def test_corrupt_shard_on_disk_does_not_kill_the_campaign(
        self, gcd_state, tmp_path
    ):
        """Salvage must survive a truncated shard file: the job stays
        'failed' and the file is reported via the quarantine path."""
        backend = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=3, seed=4))
        checkpointer = Checkpointer(tmp_path, every=0)
        checkpointer.shard_path("job").write_text("{truncated")
        executor = Executor(checkpointer=checkpointer, sleep=lambda s: None)
        result = executor.run_campaign([make_job(backend, gcd_state)])
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.counts == {}
        quarantined = result.quarantine.quarantined
        assert len(quarantined) == 1
        assert quarantined[0].job_id == "job.shard.json"
        assert quarantined[0].issues[0].kind == "unreadable"


class TestAbandonedAttempts:
    def test_abandoned_threads_are_counted_and_logged(self, gcd_state, caplog):
        """Thread-mode abandonment leaks a daemon thread; the campaign must
        surface that (count + warning) instead of hiding it."""
        backend = FaultyBackend(TreadleBackend(), FaultPlan(hang_at=5, seed=3))
        sims = []

        def make_sim():
            sim = backend.compile_state(gcd_state)
            sims.append(sim)
            return sim

        job = RunJob("leaky", "treadle", make_sim, 60, gcd_stimulus)
        executor = Executor(timeout=0.3, retries=1, sleep=lambda s: None)
        with caplog.at_level("WARNING", logger="repro.runtime.executor"):
            result = executor.run_campaign([job])
        try:
            outcome = result.outcomes[0]
            assert outcome.status == "failed"
            assert outcome.abandoned_attempts == 2  # both attempts hung
            assert result.abandoned_attempts == 2
            assert "abandoning wedged worker thread" in caplog.text
            assert "abandoned 2 wedged worker thread(s)" in result.format()
        finally:
            for sim in sims:  # unwedge the leaked daemons so they exit
                sim.release.set()

    def test_clean_campaign_reports_zero_abandoned(self, gcd_state):
        result = Executor().run_campaign([make_job(TreadleBackend(), gcd_state)])
        assert result.abandoned_attempts == 0
        assert "abandoned" not in result.format()

    def test_unwedged_straggler_cannot_clobber_retry_shard(
        self, gcd_state, tmp_path
    ):
        """A timed-out attempt that later unwedges must stop stepping and
        must not overwrite the successful retry's complete shard with a
        stale partial snapshot."""
        backend = FaultyBackend(
            TreadleBackend(), FaultPlan(hang_at=5, fail_attempts=1, seed=7)
        )
        sims = []

        def make_sim():
            sim = backend.compile_state(gcd_state)
            sims.append(sim)
            return sim

        job = RunJob("straggler", "treadle", make_sim, 60, gcd_stimulus)
        checkpointer = Checkpointer(tmp_path, every=10)
        executor = Executor(
            timeout=0.3, retries=1, checkpointer=checkpointer, sleep=lambda s: None
        )
        outcome = executor.run_job(job)
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        final = checkpointer.load("straggler")
        assert final.complete and final.cycle == 60

        # Unwedge the abandoned first attempt and give it time to misbehave.
        sims[0].release.set()
        time.sleep(0.3)
        assert sims[0].cycle <= 6  # the abandoned thread stopped stepping
        after = checkpointer.load("straggler")
        assert after.complete and after.cycle == 60
        assert after.counts == final.counts


class TestCampaign:
    def test_resume_skips_complete_jobs(self, gcd_state, tmp_path):
        checkpointer = Checkpointer(tmp_path, every=0)
        executor = Executor(checkpointer=checkpointer)
        names = all_cover_names(gcd_state.circuit)
        job = make_job(TreadleBackend(), gcd_state, job_id="stable")
        first = executor.run_campaign([job], known_names=names)
        assert first.outcomes[0].status == "ok"

        calls = []

        def tracked_make_sim():
            calls.append(1)
            return TreadleBackend().compile_state(gcd_state)

        job2 = RunJob("stable", "treadle", tracked_make_sim, 60, gcd_stimulus)
        second = executor.run_campaign([job2], known_names=names, resume=True)
        assert second.outcomes[0].status == "resumed"
        assert not calls  # never re-simulated
        assert second.merged == first.merged

    def test_resume_across_fresh_checkpointer_instance(self, gcd_state, tmp_path):
        """Resume must survive an interpreter restart: a *fresh*
        Checkpointer over the same directory honors completed shards,
        re-runs partial ones, and keeps corrupt ones quarantined."""
        names = all_cover_names(gcd_state.circuit)
        # --- session 1: one complete job, one crash (partial shard), one
        # corrupt shard file from some earlier disaster
        first = Executor(
            checkpointer=Checkpointer(tmp_path, every=10), sleep=lambda s: None
        )
        first.run_job(make_job(TreadleBackend(), gcd_state, job_id="done"))
        crashing = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=45, seed=6))
        partial = first.run_job(
            make_job(crashing, gcd_state, job_id="half", cycles=100)
        )
        assert partial.status == "partial"
        (tmp_path / "ghost.shard.json").write_text("{truncated")

        # --- session 2: fresh interpreter ⇒ fresh Checkpointer, same dir
        second = Executor(
            checkpointer=Checkpointer(tmp_path, every=10), sleep=lambda s: None
        )
        compiled = []

        def tracked(job_id):
            def make_sim():
                compiled.append(job_id)
                return TreadleBackend().compile_state(gcd_state)

            return make_sim

        jobs = [
            RunJob("done", "treadle", tracked("done"), 60, gcd_stimulus),
            RunJob("half", "treadle", tracked("half"), 100, gcd_stimulus),
        ]
        result = second.run_campaign(jobs, known_names=names, resume=True)
        statuses = {o.job_id: o.status for o in result.outcomes}
        # completed shard honored without re-running; partial shard re-run
        assert statuses == {"done": "resumed", "half": "ok"}
        assert compiled == ["half"]
        # the re-run completed, upgrading half's shard to complete
        half = second.checkpointer.load("half")
        assert half.complete and half.cycle == 100
        # the unreadable shard stays quarantined across sessions
        ghosts = [
            q for q in result.quarantine.quarantined
            if q.job_id == "ghost.shard.json"
        ]
        assert len(ghosts) == 1
        assert ghosts[0].issues[0].kind == "unreadable"

    def test_resume_requires_checkpointer(self, gcd_state):
        with pytest.raises(ValueError, match="checkpointer"):
            Executor().run_campaign([], resume=True)

    def test_job_rejects_non_positive_cycles(self):
        with pytest.raises(ValueError, match="positive"):
            RunJob("j", "b", lambda: None, cycles=0)
