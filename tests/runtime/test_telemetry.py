"""Telemetry: span tracing, metrics, exporters, and campaign integration.

The unit tests inject fake clocks / pids so no assertion depends on wall
time; the integration tests at the bottom run real fault-injected
campaigns and read the resulting metrics the way a user of
``--metrics-out`` would.
"""

import json

import pytest

from repro.backends import TreadleBackend
from repro.coverage import instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.runtime import BreakerBoard, Executor, FaultPlan, FaultyBackend, RunJob
from repro.runtime.telemetry import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_SPAN,
    StepMeter,
    Telemetry,
    Tracer,
    escape_help,
    escape_label_value,
    format_snapshot,
    obs,
    parse_prometheus,
)


def make_clock(*times):
    """A deterministic clock yielding ``times`` then failing loudly."""
    it = iter(times)
    return lambda: next(it)


@pytest.fixture
def telemetry():
    """The global ``obs`` facade, enabled and clean, restored afterwards."""
    obs.reset()
    obs.enable()
    yield obs
    obs.disable()
    obs.reset()


# -- tracer / spans --------------------------------------------------------------


class TestTracer:
    def test_span_timestamps_are_relative_to_epoch(self):
        tracer = Tracer(clock=make_clock(10.0, 11.0, 11.5), pid=1, tid=lambda: 2)
        with tracer.span("work", cat="test"):
            pass
        (event,) = tracer.events()
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(1_000_000.0)
        assert event["dur"] == pytest.approx(500_000.0)
        assert event["pid"] == 1 and event["tid"] == 2

    def test_nested_spans_are_time_contained(self):
        # epoch, outer-enter, inner-enter, inner-exit, outer-exit
        tracer = Tracer(clock=make_clock(0.0, 1.0, 2.0, 3.0, 4.0),
                        pid=1, tid=lambda: 2)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events()  # inner closes (records) first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_export_is_deterministic(self):
        tracer = Tracer(clock=make_clock(0.0, 1.0, 2.0), pid=7, tid=lambda: 7)
        with tracer.span("s", cat="c", design="gcd"):
            pass
        first = json.dumps(tracer.to_chrome_trace(), sort_keys=True)
        second = json.dumps(tracer.to_chrome_trace(), sort_keys=True)
        assert first == second
        trace = json.loads(first)
        assert trace["displayTimeUnit"] == "ms"
        assert trace["traceEvents"][0]["args"] == {"design": "gcd"}

    def test_span_records_error_class_on_exception(self):
        tracer = Tracer(clock=make_clock(0.0, 1.0, 2.0), pid=1, tid=lambda: 1)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (event,) = tracer.events()
        assert event["args"]["error"] == "ValueError"

    def test_set_attaches_args_before_close(self):
        tracer = Tracer(clock=make_clock(0.0, 1.0, 2.0), pid=1, tid=lambda: 1)
        with tracer.span("attempt") as span:
            span.set(result="ok", cycles=60)
        (event,) = tracer.events()
        assert event["args"] == {"result": "ok", "cycles": 60}

    def test_clear_preserves_epoch(self):
        tracer = Tracer(clock=make_clock(5.0, 6.0, 7.0, 8.0, 9.0),
                        pid=1, tid=lambda: 1)
        with tracer.span("before"):
            pass
        tracer.clear()
        with tracer.span("after"):
            pass
        (event,) = tracer.events()
        assert event["ts"] == pytest.approx(3_000_000.0)  # 8.0 − epoch 5.0

    def test_write_produces_valid_json(self, tmp_path):
        tracer = Tracer(clock=make_clock(0.0, 1.0, 2.0), pid=1, tid=lambda: 1)
        with tracer.span("s"):
            pass
        path = tmp_path / "trace.json"
        tracer.write(path)
        trace = json.loads(path.read_text())
        assert len(trace["traceEvents"]) == 1


class TestDisabledFacade:
    def test_disabled_span_is_the_shared_null_span(self):
        t = Telemetry()
        assert t.span("anything") is NULL_SPAN
        with t.span("anything") as span:
            span.set(ignored=True)  # must not raise
        assert t.tracer.events() == []

    def test_disabled_metric_calls_record_nothing(self):
        t = Telemetry()
        t.inc("repro_retries_total", backend="treadle")
        t.observe("repro_attempt_duration_seconds", 0.5, backend="treadle")
        t.set_gauge("repro_backend_cycles_per_second", 1.0, backend="treadle")
        assert t.metrics.names() == []

    def test_enable_disable_round_trip(self):
        t = Telemetry()
        assert t.enable().enabled and not t.disable().enabled


class TestChildSpanMerge:
    def _child_event(self, name, ts):
        return {"name": name, "cat": "worker", "ph": "X",
                "ts": ts, "dur": 10.0, "pid": 999, "tid": 999}

    def test_events_are_reparented_under_this_process(self):
        t = Telemetry(enabled=True)
        t.tracer._pid = 42  # deterministic parent pid
        t.ingest_child_spans([self._child_event("compile", 1.0)], child_pid=7)
        spans = [e for e in t.tracer.events() if e["ph"] == "X"]
        assert spans == [dict(self._child_event("compile", 1.0), pid=42, tid=7)]

    def test_thread_name_metadata_emitted_once_per_worker(self):
        t = Telemetry(enabled=True)
        t.tracer._pid = 42
        t.ingest_child_spans([self._child_event("a", 1.0)], child_pid=7)
        t.ingest_child_spans([self._child_event("b", 2.0)], child_pid=7)
        t.ingest_child_spans([self._child_event("c", 3.0)], child_pid=8)
        meta = [e for e in t.tracer.events() if e["ph"] == "M"]
        assert [(m["tid"], m["args"]["name"]) for m in meta] == [
            (7, "worker-7"), (8, "worker-8"),
        ]

    def test_reset_forgets_named_workers(self):
        t = Telemetry(enabled=True)
        t.ingest_child_spans([self._child_event("a", 1.0)], child_pid=7)
        t.reset()
        t.ingest_child_spans([self._child_event("a", 1.0)], child_pid=7)
        meta = [e for e in t.tracer.events() if e["ph"] == "M"]
        assert len(meta) == 1


# -- metrics ---------------------------------------------------------------------


class TestCounterAndGauge:
    def test_counter_sums_and_rejects_negative(self):
        c = Counter("hits", labels=("backend",))
        c.inc(backend="treadle")
        c.inc(2, backend="treadle")
        assert c.value(backend="treadle") == 3
        with pytest.raises(MetricError):
            c.inc(-1, backend="treadle")

    def test_label_order_does_not_split_samples(self):
        c = Counter("hits", labels=("a", "b"))
        c.inc(a=1, b=2)
        c.inc(b=2, a=1)
        assert c.value(a=1, b=2) == 2
        assert len(c.samples()) == 1

    def test_wrong_label_set_is_rejected(self):
        c = Counter("hits", labels=("backend",))
        with pytest.raises(MetricError):
            c.inc(banana=1)

    def test_gauge_overwrites(self):
        g = Gauge("speed")
        g.set(10.0)
        g.set(3.5)
        assert g.value() == 3.5


class TestHistogramBuckets:
    def test_boundary_values_are_le_inclusive(self):
        h = Histogram("t", buckets=(1.0, 2.0, 5.0))
        for value in (1.0, 2.0, 7.0):
            h.observe(value)
        # 1.0 lands in every bucket; 2.0 skips le=1; 7.0 only in +Inf
        assert h.bucket_counts() == {1.0: 1, 2.0: 2, 5.0: 2}
        assert h.count() == 3

    def test_below_first_bucket_counts_everywhere(self):
        h = Histogram("t", buckets=(1.0, 2.0))
        h.observe(0.0)
        assert h.bucket_counts() == {1.0: 1, 2.0: 1}

    def test_unsorted_buckets_are_rejected(self):
        with pytest.raises(MetricError):
            Histogram("t", buckets=(2.0, 1.0))
        with pytest.raises(MetricError):
            Histogram("t", buckets=())

    def test_prometheus_exposition_has_cumulative_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", help="latency", buckets=(1.0, 2.0))
        h.observe(1.0)
        h.observe(7.0)
        text = registry.to_prometheus()
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert 'lat_sum 8' in text
        assert 'lat_count 2' in text


class TestPrometheusEscaping:
    def test_label_value_escaping(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_help_escaping_leaves_quotes_alone(self):
        assert escape_help('say "hi"\\\n') == 'say "hi"\\\\\\n'

    def test_hostile_label_round_trips_through_parser(self):
        registry = MetricsRegistry()
        counter = registry.counter("evil", help="tricky\nhelp", labels=("p",))
        hostile = 'a\\b"c\nd,e="f"'
        counter.inc(3, p=hostile)
        parsed = parse_prometheus(registry.to_prometheus())["metrics"]
        (sample,) = parsed["evil"]["samples"]
        assert sample["labels"]["p"] == hostile
        assert sample["value"] == 3
        assert parsed["evil"]["help"] == "tricky\nhelp"


class TestRegistry:
    def test_create_is_idempotent_but_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_snapshot_shape_and_determinism(self):
        registry = MetricsRegistry()
        registry.counter("b", labels=("k",)).inc(k="v")
        registry.histogram("a", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["format"] == "repro-metrics" and snap["version"] == 1
        assert list(snap["metrics"]) == ["a", "b"]
        assert snap == registry.snapshot()
        # the human renderer accepts both the snapshot and parsed-prom forms
        assert "b (counter)" in format_snapshot(snap)
        assert "a (histogram)" in format_snapshot(snap)

    def test_write_json_matches_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        path = tmp_path / "m.json"
        registry.write_json(path)
        assert json.loads(path.read_text()) == registry.snapshot()


class TestDeclaredMetrics:
    def test_every_declaration_is_well_formed(self):
        for name, (kind, labels, help_text) in METRICS.items():
            assert name.startswith("repro_")
            assert kind in ("counter", "gauge", "histogram")
            assert isinstance(labels, tuple)
            assert help_text  # DESIGN.md §9 renders these

    def test_undeclared_name_is_rejected(self, telemetry):
        with pytest.raises(MetricError, match="undeclared"):
            telemetry.inc("repro_made_up_total")

    def test_kind_mismatch_is_rejected(self, telemetry):
        with pytest.raises(MetricError, match="not a gauge"):
            telemetry.set_gauge("repro_retries_total", 1.0, backend="x")

    def test_declared_counter_reaches_the_registry(self, telemetry):
        telemetry.inc("repro_retries_total", backend="treadle")
        counter = telemetry.metrics.get("repro_retries_total")
        assert counter.value(backend="treadle") == 1
        assert counter.help == METRICS["repro_retries_total"][2]


class TestStepMeter:
    def test_batches_until_flush_threshold(self, telemetry):
        meter = StepMeter("treadle", flush_cycles=100)
        meter.add(40, 0.1)
        meter.add(40, 0.1)
        assert telemetry.metrics.get("repro_backend_cycles_total") is None
        meter.add(40, 0.2)  # 120 >= 100: flush
        counter = telemetry.metrics.get("repro_backend_cycles_total")
        assert counter.value(backend="treadle") == 120
        gauge = telemetry.metrics.get("repro_backend_cycles_per_second")
        assert gauge.value(backend="treadle") == pytest.approx(300.0)

    def test_explicit_flush_drains_the_remainder(self, telemetry):
        meter = StepMeter("essent", flush_cycles=1000)
        meter.add(10, 0.5)
        meter.flush()
        counter = telemetry.metrics.get("repro_backend_cycles_total")
        assert counter.value(backend="essent") == 10
        meter.flush()  # empty flush is a no-op
        assert counter.value(backend="essent") == 10


# -- campaign integration --------------------------------------------------------


@pytest.fixture(scope="module")
def gcd_state():
    state, _ = instrument(elaborate(Gcd(width=8)), metrics=["line"])
    return state


def gcd_stimulus(sim, cycle):
    sim.poke("req_valid", 1)
    sim.poke("req_bits", ((cycle % 13 + 1) << 8) | (cycle % 7 + 1))
    sim.poke("resp_ready", 1)


def make_job(backend, gcd_state, job_id="job", cycles=60):
    return RunJob(
        job_id=job_id,
        backend_name=getattr(backend, "name", "backend"),
        make_sim=lambda: backend.compile_state(gcd_state),
        cycles=cycles,
        stimulus=gcd_stimulus,
    )


@pytest.mark.faults
class TestCampaignMetrics:
    def test_faulty_campaign_records_retries_and_breaker_trips(
        self, gcd_state, telemetry, tmp_path, isolation
    ):
        """The ISSUE's acceptance check, in-process: a fault-injected
        campaign's ``--metrics-out`` file shows >=1 retry and >=1 breaker
        transition."""
        backend = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=3, seed=4))
        executor = Executor(
            retries=1,
            sleep=lambda s: None,
            isolation=isolation,
            breaker=BreakerBoard(failure_threshold=2),
        )
        jobs = [make_job(backend, gcd_state, job_id=f"j{i}") for i in range(4)]
        result = executor.run_campaign(jobs)
        assert any(o.status == "skipped" for o in result.outcomes)

        metrics_path = tmp_path / "metrics.prom"
        telemetry.metrics.write_prometheus(metrics_path)
        parsed = parse_prometheus(metrics_path.read_text())["metrics"]

        def total(name):
            return sum(s["value"] for s in parsed.get(name, {}).get("samples", []))

        assert total("repro_retries_total") >= 1
        assert total("repro_breaker_transitions_total") >= 1
        assert total("repro_breaker_skips_total") >= 1
        assert total("repro_attempts_total") >= 2
        assert total("repro_job_outcomes_total") == len(jobs)

    def test_healthy_job_traces_attempt_inside_job(self, gcd_state, telemetry):
        outcome = Executor().run_job(make_job(TreadleBackend(), gcd_state))
        assert outcome.status == "ok"
        events = {e["name"]: e for e in telemetry.tracer.events()}
        job, attempt = events["job"], events["attempt"]
        assert job["ts"] <= attempt["ts"]
        assert attempt["ts"] + attempt["dur"] <= job["ts"] + job["dur"] + 1
        assert attempt["args"]["result"] == "ok"

    def test_process_worker_spans_merge_into_parent_trace(
        self, gcd_state, telemetry
    ):
        from repro.runtime import process_isolation_available

        if not process_isolation_available():
            pytest.skip("process isolation requires the fork start method")
        executor = Executor(isolation="process")
        outcome = executor.run_job(make_job(TreadleBackend(), gcd_state))
        assert outcome.status == "ok"
        events = telemetry.tracer.events()
        parent_pid = telemetry.tracer.pid
        worker_spans = [
            e for e in events
            if e["ph"] == "X" and e["pid"] == parent_pid
            and e["tid"] != e["pid"] and e["cat"] == "worker"
        ]
        assert any(e["name"] == "child-attempt" for e in worker_spans)
        assert any(e["name"] == "compile" for e in worker_spans)
        names = [e for e in events if e.get("ph") == "M"]
        assert any(m["args"]["name"].startswith("worker-") for m in names)
        # the child attempt is time-contained in the parent's attempt span
        child = next(e for e in worker_spans if e["name"] == "child-attempt")
        parent = next(
            e for e in events
            if e["name"] == "attempt" and e["tid"] != child["tid"]
        )
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]
