"""Differential quorum: vote mechanics + Byzantine backend detection."""

import json

import pytest

from repro.backends import EssentBackend, TreadleBackend, VerilatorBackend
from repro.coverage import all_cover_names, instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.runtime import (
    DifferentialRunner,
    Executor,
    FaultPlan,
    FaultyBackend,
    quorum_merge,
)


class TestQuorumMerge:
    def test_unanimous_legs_merge_cleanly(self):
        counts = {"a": 3, "b": 0}
        merged, report = quorum_merge(
            "job", {"t": dict(counts), "v": dict(counts), "e": dict(counts)}
        )
        assert merged == counts
        assert report.clean
        assert report.outvoted == {}

    def test_majority_outvotes_the_liar(self):
        merged, report = quorum_merge(
            "job", {"t": {"a": 3}, "v": {"a": 3}, "e": {"a": 9}}
        )
        assert merged == {"a": 3}
        assert report.outvoted == {"e": ["a"]}
        assert report.deltas("e") == {"a": 6}

    def test_two_way_split_detects_but_cannot_localise(self):
        merged, report = quorum_merge("job", {"t": {"a": 3}, "v": {"a": 5}})
        assert merged == {}  # no majority: the cover is withheld
        assert report.no_quorum == ["a"]
        assert report.outvoted == {}
        assert "no quorum" in report.format()

    def test_missing_cover_counts_as_disagreement(self):
        merged, report = quorum_merge(
            "job", {"t": {"a": 3, "b": 1}, "v": {"a": 3, "b": 1}, "e": {"a": 3}}
        )
        assert merged == {"a": 3, "b": 1}
        assert report.outvoted == {"e": ["b"]}
        # a backend that dropped the cover has no numeric delta
        assert report.deltas("e") == {}

    def test_report_json_is_structured(self):
        _, report = quorum_merge(
            "job", {"t": {"a": 3}, "v": {"a": 3}, "e": {"a": 9}}
        )
        data = json.loads(report.to_json())
        assert data["outvoted"] == {"e": ["a"]}
        assert data["disagreements"][0]["cover"] == "a"
        assert data["disagreements"][0]["quorum_value"] == 3


@pytest.fixture(scope="module")
def gcd_state():
    state, _ = instrument(elaborate(Gcd(width=8)), metrics=["line"])
    return state


def gcd_stimulus(sim, cycle):
    sim.poke("req_valid", 1)
    sim.poke("req_bits", ((cycle % 13 + 1) << 8) | (cycle % 7 + 1))
    sim.poke("resp_ready", 1)


def honest_counts(gcd_state, cycles=60):
    sim = TreadleBackend().compile_state(gcd_state)
    sim.poke("reset", 1)
    sim.step(1)
    sim.poke("reset", 0)
    for cycle in range(cycles):
        gcd_stimulus(sim, cycle)
        sim.step(1)
    return sim.cover_counts()


@pytest.mark.faults
class TestDifferentialRunner:
    def test_requires_two_backends(self):
        with pytest.raises(ValueError, match=">= 2 backends"):
            DifferentialRunner().run("j", {"t": lambda: None}, cycles=10)

    def test_honest_backends_agree(self, gcd_state):
        result = DifferentialRunner().run(
            "agree",
            {
                "treadle": lambda: TreadleBackend().compile_state(gcd_state),
                "verilator": lambda: VerilatorBackend().compile_state(gcd_state),
            },
            cycles=60,
            stimulus=gcd_stimulus,
            known_names=all_cover_names(gcd_state.circuit),
        )
        assert result.agreed
        assert result.merged == honest_counts(gcd_state)
        assert result.quarantine.clean

    def test_lying_backend_is_outvoted(self, gcd_state):
        """Acceptance: plausible-but-wrong counts — invisible to namespace
        and range validation — are outvoted by the honest majority; the
        merged counts match the honest backends exactly and the report
        names the liar and the affected covers."""
        liar = FaultyBackend(
            EssentBackend(), FaultPlan(lie_keys=2, lie_delta=7, seed=11)
        )
        names = all_cover_names(gcd_state.circuit)
        result = DifferentialRunner().run(
            "byzantine",
            {
                "treadle": lambda: TreadleBackend().compile_state(gcd_state),
                "verilator": lambda: VerilatorBackend().compile_state(gcd_state),
                "essent": lambda: liar.compile_state(gcd_state),
            },
            cycles=60,
            stimulus=gcd_stimulus,
            known_names=names,
        )
        # the lie really was plausible: every key in-namespace, every count
        # a non-negative int (validation alone would have merged it)
        lying_counts = result.outcomes["essent"].counts
        assert set(lying_counts) <= set(names)
        assert all(type(c) is int and c >= 0 for c in lying_counts.values())
        assert lying_counts != honest_counts(gcd_state)

        # quorum-merged counts match the honest backends exactly
        assert result.merged == honest_counts(gcd_state)
        # the report names the liar and the affected covers
        outvoted = result.report.outvoted
        assert list(outvoted) == ["essent"]
        assert len(outvoted["essent"]) == 2
        assert all(
            delta == 7 for delta in result.report.deltas("essent").values()
        )
        # ... and the liar's contribution is quarantined with evidence
        quarantined = result.quarantine.quarantined
        assert [q.backend for q in quarantined] == ["essent"]
        assert {i.kind for i in quarantined[0].issues} == {"outvoted"}
        assert sorted(result.quarantine.merged_job_ids) == [
            "byzantine@treadle",
            "byzantine@verilator",
        ]

    def test_failed_leg_is_excluded_not_voted(self, gcd_state):
        crashing = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=5, seed=12))
        result = DifferentialRunner(Executor(sleep=lambda s: None)).run(
            "crashleg",
            {
                "treadle": lambda: TreadleBackend().compile_state(gcd_state),
                "verilator": lambda: VerilatorBackend().compile_state(gcd_state),
                "essent": lambda: crashing.compile_state(gcd_state),
            },
            cycles=60,
            stimulus=gcd_stimulus,
        )
        assert result.report.voters == ["treadle", "verilator"]
        assert "essent" in result.report.excluded
        assert "status: failed" in result.report.excluded["essent"]
        assert result.merged == honest_counts(gcd_state)

    def test_detectably_corrupt_leg_is_quarantined_before_the_vote(
        self, gcd_state
    ):
        corrupting = FaultyBackend(
            TreadleBackend(), FaultPlan(corrupt_keys=2, seed=13)
        )
        result = DifferentialRunner().run(
            "corruptleg",
            {
                "treadle": lambda: TreadleBackend().compile_state(gcd_state),
                "verilator": lambda: VerilatorBackend().compile_state(gcd_state),
                "essent": lambda: corrupting.compile_state(gcd_state),
            },
            cycles=60,
            stimulus=gcd_stimulus,
            known_names=all_cover_names(gcd_state.circuit),
        )
        assert result.report.excluded == {"essent": "failed shard validation"}
        assert result.report.voters == ["treadle", "verilator"]
        quarantined = result.quarantine.quarantined
        assert [q.backend for q in quarantined] == ["essent"]
        assert {i.kind for i in quarantined[0].issues} == {"unknown-key"}
        assert result.merged == honest_counts(gcd_state)
