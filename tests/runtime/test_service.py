"""Coverage service: specs, admission, fairness, drain, crash recovery."""

import json
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.coverage import instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.ir import print_circuit
from repro.runtime.checkpoint import Checkpointer
from repro.runtime.journal import replay
from repro.runtime.service import (
    Campaign,
    CampaignSpec,
    CoverageService,
    ServiceConfig,
    SpecError,
    execute_spec,
)
from repro.runtime.telemetry import obs


@pytest.fixture(scope="module")
def gcd_text():
    state, _db = instrument(elaborate(Gcd(width=8)), metrics=["line"])
    return print_circuit(state.circuit)


def make_spec(gcd_text, **overrides):
    base = dict(tenant="alice", circuit=gcd_text, cycles=400, seed=7,
                checkpoint_every=100)
    base.update(overrides)
    return CampaignSpec.from_json_obj(base)


def offline_service(tmp_path, **overrides):
    """A service with journal + scheduler state but no event loop/HTTP.

    ``submit``/``cancel``/``pick_next`` are loop-thread methods with no
    awaits in them, so scheduler-logic tests can drive them directly.
    """
    defaults = dict(state_dir=tmp_path / "state", max_workers=1)
    defaults.update(overrides)
    service = CoverageService(ServiceConfig(**defaults))
    service._recover()
    return service


@pytest.fixture
def threaded_service(tmp_path):
    services = []

    def start(**overrides):
        defaults = dict(state_dir=tmp_path / "state", max_workers=2)
        defaults.update(overrides)
        service = CoverageService(ServiceConfig(**defaults)).start_in_thread()
        services.append(service)
        return service

    yield start
    for service in services:
        service.shutdown(drain=False)
    obs.disable()
    obs.reset()


def http(service, method, path, body=None):
    code, _headers, payload = http_full(service, method, path, body)
    return code, payload


def http_full(service, method, path, body=None):
    """Like :func:`http` but also returns the response headers (lowercased)."""
    url = f"http://127.0.0.1:{service.port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            headers = {k.lower(): v for k, v in response.headers.items()}
            return response.status, headers, json.loads(response.read())
    except urllib.error.HTTPError as error:
        headers = {k.lower(): v for k, v in error.headers.items()}
        return error.code, headers, json.loads(error.read())


def wait_status(service, campaign_id, statuses, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        code, payload = http(service, "GET", f"/status/{campaign_id}")
        assert code == 200, payload
        if payload["status"] in statuses:
            return payload
        time.sleep(0.01)
    raise AssertionError(
        f"{campaign_id} never reached {statuses}: {payload}"
    )


class TestSpecValidation:
    def test_round_trip(self, gcd_text):
        spec = make_spec(gcd_text, priority=3, deadline_s=10.0)
        again = CampaignSpec.from_json_obj(spec.to_json_obj())
        assert again == spec

    @pytest.mark.parametrize("patch,match", [
        ({"circuit": None}, "required"),
        ({"circuit": "not firrtl"}, "does not parse"),
        ({"backend": "ngspice"}, "unknown backend"),
        ({"cycles": 0}, "cycles must be positive"),
        ({"cycles": "many"}, "expected int"),
        ({"metrics": ["line", "branch"]}, "unknown metrics branch"),
        ({"metrics": "line"}, "list of strings"),
        ({"deadline_s": -1}, "deadline_s must be positive"),
        ({"reset_cycles": -1}, "reset_cycles"),
        ({"checkpoint_every": -5}, "checkpoint_every"),
        ({"counter_width": 0}, "counter_width"),
    ])
    def test_rejects_bad_fields(self, gcd_text, patch, match):
        obj = dict(tenant="t", circuit=gcd_text)
        obj.update(patch)
        with pytest.raises(SpecError, match=match):
            CampaignSpec.from_json_obj(obj)

    def test_rejects_non_object(self):
        with pytest.raises(SpecError, match="JSON object"):
            CampaignSpec.from_json_obj([1, 2])


class TestAdmission:
    def test_queue_is_bounded(self, tmp_path, gcd_text):
        service = offline_service(tmp_path, max_queue=2)
        assert service.submit(make_spec(gcd_text))[1] is None
        assert service.submit(make_spec(gcd_text, tenant="bob"))[1] is None
        campaign, reason = service.submit(make_spec(gcd_text, tenant="eve"))
        assert campaign is None and reason == "queue-full"
        # The rejected submit left no trace in the journal.
        service.journal.close()
        records = replay(service.config.state_dir / "journal.wal").records
        assert sum(1 for r in records if r["type"] == "submit") == 2

    def test_tenant_quota(self, tmp_path, gcd_text):
        service = offline_service(tmp_path, tenant_quota=1, max_queue=10)
        assert service.submit(make_spec(gcd_text))[1] is None
        campaign, reason = service.submit(make_spec(gcd_text))
        assert campaign is None and reason == "tenant-quota"
        # Other tenants are unaffected by alice's quota.
        assert service.submit(make_spec(gcd_text, tenant="bob"))[1] is None
        service.journal.close()

    def test_draining_refuses_admission(self, tmp_path, gcd_text):
        service = offline_service(tmp_path)
        service._draining = True
        campaign, reason = service.submit(make_spec(gcd_text))
        assert campaign is None and reason == "draining"
        service.journal.close()


class TestScheduling:
    def test_priority_wins(self, tmp_path, gcd_text):
        service = offline_service(tmp_path)
        service.submit(make_spec(gcd_text, priority=0))
        urgent, _ = service.submit(make_spec(gcd_text, priority=5))
        assert service.pick_next() is urgent
        service.journal.close()

    def test_tenant_fairness(self, tmp_path, gcd_text):
        service = offline_service(tmp_path, tenant_quota=16)
        for _ in range(3):
            service.submit(make_spec(gcd_text, tenant="flood"))
        lone, _ = service.submit(make_spec(gcd_text, tenant="lone"))
        # With a flood campaign already running, the lone tenant goes
        # first even though it submitted last.
        running = service.campaigns["c000001"]
        running.status = "running"
        service._queue.remove(running)
        service._running[running.id] = running
        assert service.pick_next() is lone
        service.journal.close()

    def test_breaker_open_defers_instead_of_failing(self, tmp_path, gcd_text):
        service = offline_service(tmp_path, breaker_retry_s=0.0)
        breaker = service.breakers.breaker("treadle")
        breaker._trip()
        campaign, _ = service.submit(make_spec(gcd_text))
        # Open breaker: the campaign is deferred in place, never failed.
        assert service.pick_next() is None
        assert campaign.status == "queued"
        assert "breaker" in campaign.detail
        # The deferral counted toward the breaker's half-open probe
        # budget (probe_after=2): one more refusal, then a probe slot.
        assert service.pick_next() is None
        assert service.pick_next() is campaign
        service.journal.close()


class TestHttpLifecycle:
    def test_submit_run_report(self, threaded_service, gcd_text):
        service = threaded_service()
        spec = make_spec(gcd_text).to_json_obj()
        code, payload = http(service, "POST", "/submit", spec)
        assert code == 202 and payload["id"] == "c000001"
        final = wait_status(service, "c000001", {"done", "failed"})
        assert final["status"] == "done"
        assert final["cycles_run"] == 400
        code, report = http(service, "GET", "/report/c000001")
        assert code == 200
        assert report["counts"] and all(
            isinstance(v, int) for v in report["counts"].values()
        )
        # The run is deterministic: the service's counts equal a direct
        # execute_spec run of the same spec.
        reference = execute_spec(
            CampaignSpec.from_json_obj(spec), "ref",
            Checkpointer(Path(service.config.state_dir) / "ref-shards"),
        )
        assert report["counts"] == reference.counts

    def test_bad_spec_is_400(self, threaded_service):
        service = threaded_service()
        code, payload = http(service, "POST", "/submit",
                             {"tenant": "x", "circuit": "garbage"})
        assert code == 400 and "does not parse" in payload["error"]

    def test_queue_full_is_429_over_http(self, threaded_service, gcd_text):
        service = threaded_service(max_queue=1, max_workers=1)
        service._pause_dispatch = True  # hold the queue still
        spec = make_spec(gcd_text).to_json_obj()
        code, _ = http(service, "POST", "/submit", spec)
        assert code == 202
        code, payload = http(service, "POST", "/submit", spec)
        assert code == 429 and payload["reason"] == "queue-full"

    def test_rejections_carry_retry_after(self, threaded_service, gcd_text):
        service = threaded_service(max_queue=1, max_workers=1,
                                   retry_after_s=3.0)
        service._pause_dispatch = True
        spec = make_spec(gcd_text).to_json_obj()
        code, headers, _ = http_full(service, "POST", "/submit", spec)
        assert code == 202 and "retry-after" not in headers
        # 429 (queue full): header + machine-readable payload hint.
        code, headers, payload = http_full(service, "POST", "/submit", spec)
        assert code == 429
        assert headers["retry-after"] == "3"
        assert payload["retry_after"] == 3.0
        # 503 (draining): same contract.
        service._draining = True
        code, headers, payload = http_full(service, "POST", "/submit", spec)
        assert code == 503
        assert headers["retry-after"] == "3"
        assert payload["retry_after"] == 3.0
        service._draining = False

    def test_report_before_finish_is_409(self, threaded_service, gcd_text):
        service = threaded_service()
        service._pause_dispatch = True
        code, payload = http(service, "POST", "/submit",
                             make_spec(gcd_text).to_json_obj())
        campaign_id = payload["id"]
        code, payload = http(service, "GET", f"/report/{campaign_id}")
        assert code == 409

    def test_unknown_routes_and_ids(self, threaded_service):
        service = threaded_service()
        assert http(service, "GET", "/status/c999999")[0] == 404
        assert http(service, "GET", "/nonsense")[0] == 404
        code, health = http(service, "GET", "/healthz")
        assert code == 200 and health["status"] == "ok"

    def test_metrics_endpoint_serves_prometheus(self, threaded_service,
                                                gcd_text):
        service = threaded_service()
        code, _ = http(service, "POST", "/submit",
                       make_spec(gcd_text).to_json_obj())
        wait_status(service, "c000001", {"done"})
        url = f"http://127.0.0.1:{service.port}/metrics"
        with urllib.request.urlopen(url, timeout=30) as response:
            text = response.read().decode()
        assert 'repro_serve_campaigns_total{status="done",tenant="alice"}' in text
        assert "repro_serve_journal_appends_total" in text

    def test_cancel_queued_and_running(self, threaded_service, gcd_text):
        service = threaded_service(max_workers=1)
        service._pause_dispatch = True
        slow = make_spec(gcd_text, cycles=2_000_000).to_json_obj()
        _, first = http(service, "POST", "/submit", slow)
        _, second = http(service, "POST", "/submit", slow)
        # Queued cancel is immediate and terminal.
        code, payload = http(service, "POST", f"/cancel/{second['id']}")
        assert code == 200 and payload["status"] == "cancelled"
        service._pause_dispatch = False
        wait_status(service, first["id"], {"running"})
        # Running cancel takes effect at the next cycle boundary.
        code, _ = http(service, "POST", f"/cancel/{first['id']}")
        assert code == 202
        final = wait_status(service, first["id"], {"cancelled"})
        assert final["status"] == "cancelled"
        # Cancelling a terminal campaign is a conflict.
        assert http(service, "POST", f"/cancel/{first['id']}")[0] == 409


class TestDrainAndRecovery:
    def test_drain_writes_clean_shutdown_and_preserves_queue(
        self, tmp_path, gcd_text
    ):
        state_dir = tmp_path / "state"
        service = CoverageService(
            ServiceConfig(state_dir=state_dir, drain_grace=0.2)
        ).start_in_thread()
        try:
            service._pause_dispatch = True
            _, payload = http(service, "POST", "/submit",
                              make_spec(gcd_text).to_json_obj())
            campaign_id = payload["id"]
            service.shutdown(drain=True)
            records = replay(state_dir / "journal.wal").records
            assert records[-1]["type"] == "clean-shutdown"
            assert records[-1]["queued"] == [campaign_id]
            # Restart: the queued campaign survives and runs to done.
            service = CoverageService(
                ServiceConfig(state_dir=state_dir)
            ).start_in_thread()
            code, health = http(service, "GET", "/healthz")
            assert health["recovery"]["clean_shutdown"] is True
            assert health["recovery"]["requeued"] == 1
            assert health["recovery"]["lost"] == 0
            wait_status(service, campaign_id, {"done"})
            service.shutdown(drain=True)
        finally:
            service.shutdown(drain=False)
            obs.disable()
            obs.reset()

    def test_crash_after_finish_adopts_bit_identical_counts(
        self, tmp_path, gcd_text
    ):
        state_dir = tmp_path / "state"
        spec = make_spec(gcd_text, cycles=600)
        service = CoverageService(
            ServiceConfig(state_dir=state_dir)
        ).start_in_thread()
        try:
            _, payload = http(
                service, "POST", "/submit", spec.to_json_obj()
            )
            campaign_id = payload["id"]
            wait_status(service, campaign_id, {"done"})
            _, before = http(service, "GET", f"/report/{campaign_id}")
            service.shutdown(drain=False)  # in-process kill -9 stand-in
            service = CoverageService(
                ServiceConfig(state_dir=state_dir)
            ).start_in_thread()
            _, health = http(service, "GET", "/healthz")
            assert health["recovery"]["clean_shutdown"] is False
            assert health["recovery"]["adopted"] >= 1
            _, after = http(service, "GET", f"/report/{campaign_id}")
            assert after["counts"] == before["counts"]
        finally:
            service.shutdown(drain=False)
            obs.disable()
            obs.reset()

    @pytest.mark.faults
    def test_kill_mid_campaign_recovers_bit_identical(
        self, tmp_path, gcd_text
    ):
        """The acceptance criterion: kill mid-campaign, restart, and the
        final merged counts equal an uninterrupted reference run."""
        state_dir = tmp_path / "state"
        spec = make_spec(gcd_text, cycles=250_000, checkpoint_every=20_000)
        reference = execute_spec(
            spec, "ref", Checkpointer(tmp_path / "ref-shards")
        )
        assert reference.status == "done"
        service = CoverageService(
            ServiceConfig(state_dir=state_dir)
        ).start_in_thread()
        campaign_id = None
        try:
            _, payload = http(service, "POST", "/submit", spec.to_json_obj())
            campaign_id = payload["id"]
            wait_status(service, campaign_id, {"running"})
            # Wait for at least one (partial) checkpoint, then pull the plug
            # with the campaign provably mid-flight.
            shard_dir = service.shard_dir(campaign_id)
            deadline = time.monotonic() + 60
            while not list(shard_dir.glob("*.shard.json")):
                assert time.monotonic() < deadline, "no checkpoint appeared"
                time.sleep(0.005)
            status = http(service, "GET", f"/status/{campaign_id}")[1]
            assert status["status"] == "running"
            service.shutdown(drain=False)
        finally:
            zombie = service.campaigns.get(campaign_id)
            if zombie is not None:
                zombie.cancel_event.set()  # stop the orphaned worker thread
        try:
            service = CoverageService(
                ServiceConfig(state_dir=state_dir)
            ).start_in_thread()
            _, health = http(service, "GET", "/healthz")
            assert health["recovery"]["clean_shutdown"] is False
            assert health["recovery"]["lost"] == 0
            final = wait_status(service, campaign_id, {"done", "failed"},
                                timeout=120)
            assert final["status"] == "done"
            _, report = http(service, "GET", f"/report/{campaign_id}")
            assert report["counts"] == reference.counts
            assert report["cycles_run"] == spec.cycles
        finally:
            service.shutdown(drain=False)
            obs.disable()
            obs.reset()

    def test_done_with_missing_shard_requeues(self, tmp_path, gcd_text):
        state_dir = tmp_path / "state"
        service = CoverageService(
            ServiceConfig(state_dir=state_dir)
        ).start_in_thread()
        try:
            _, payload = http(service, "POST", "/submit",
                              make_spec(gcd_text).to_json_obj())
            campaign_id = payload["id"]
            wait_status(service, campaign_id, {"done"})
            _, before = http(service, "GET", f"/report/{campaign_id}")
            service.shutdown(drain=False)
            # An operator (or fsck) ate the shard directory: the journal
            # says done, but the counts are gone.  Recovery re-runs the
            # campaign instead of serving a lie or losing it.
            import shutil

            shutil.rmtree(service.shard_dir(campaign_id))
            service = CoverageService(
                ServiceConfig(state_dir=state_dir)
            ).start_in_thread()
            _, health = http(service, "GET", "/healthz")
            assert health["recovery"]["requeued"] == 1
            final = wait_status(service, campaign_id, {"done"})
            _, after = http(service, "GET", f"/report/{campaign_id}")
            assert after["counts"] == before["counts"]
        finally:
            service.shutdown(drain=False)
            obs.disable()
            obs.reset()


class TestBoundedJournal:
    """PR 7: the WAL must not grow without bound under sustained load."""

    def test_journal_stays_bounded_under_many_campaigns(
        self, threaded_service, gcd_text
    ):
        service = threaded_service(max_workers=1, compact_max_bytes=16_384)
        spec = make_spec(gcd_text, cycles=50, checkpoint_every=50)
        ids = []
        for _ in range(12):
            code, payload = http(service, "POST", "/submit",
                                 spec.to_json_obj())
            assert code == 202
            ids.append(payload["id"])
        for campaign_id in ids:
            wait_status(service, campaign_id, {"done"})
        _, health = http(service, "GET", "/healthz")
        assert health["journal_compactions"] >= 1
        # The bounded invariant: the on-disk journal is one snapshot plus
        # a short tail, never the full submit/finish history.  (A snapshot
        # retains every campaign's spec — the circuit text included — so
        # the bound is relative to the snapshot, not the raw threshold.)
        from repro.runtime.journal import encode_record

        snapshot_bytes = len(encode_record(service._snapshot_record()))
        assert service.journal.size_bytes < 2 * snapshot_bytes
        history_bytes = sum(
            len(encode_record(r)) for r in replay(
                service.config.state_dir / "journal.wal"
            ).records
        )
        assert history_bytes < 2 * snapshot_bytes  # history really folded
        # The folded journal still recovers every campaign: restart and
        # check one of them is still servable.
        service.shutdown(drain=True)
        revived = CoverageService(
            ServiceConfig(state_dir=service.config.state_dir)
        ).start_in_thread()
        try:
            code, report = http(revived, "GET", f"/report/{ids[0]}")
            assert code == 200 and report["partial"] is False
        finally:
            revived.shutdown(drain=False)
