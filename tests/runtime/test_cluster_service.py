"""Cluster integration: lease-fenced remote dispatch, streaming merges,
partition chaos, and worker loss — all against a real threaded service.

Two kinds of worker drive these tests:

* a *scripted* worker — a bare socket speaking the protocol by hand, so
  tests control exactly which frames (and which fencing tokens) hit the
  coordinator, with no timing races;
* the *real* :class:`~repro.runtime.cluster.ClusterWorker`, in-process
  under an injected :class:`~repro.runtime.faults.NetFaultPlan` for the
  partition chaos test, and as a genuine ``python -m repro worker``
  subprocess for the SIGKILL test.

The acceptance bar throughout: every accepted campaign completes with
counts bit-identical to a single-node run, and zombie writes are
provably rejected (``repro_cluster_fenced_rejections_total``).
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.coverage import instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.ir import print_circuit
from repro.runtime.checkpoint import Checkpointer
from repro.runtime.client import ServiceClient, ServiceError
from repro.runtime.cluster import ClusterWorker, WorkerConfig
from repro.runtime.faults import NetFaultPlan
from repro.runtime.protocol import LineChannel
from repro.runtime.service import (
    CampaignSpec,
    CoverageService,
    ServiceConfig,
    execute_spec,
)
from repro.runtime.telemetry import obs


@pytest.fixture(scope="module")
def gcd_text():
    state, _db = instrument(elaborate(Gcd(width=8)), metrics=["line"])
    return print_circuit(state.circuit)


def make_spec(gcd_text, **overrides):
    base = dict(tenant="alice", circuit=gcd_text, cycles=400, seed=7,
                checkpoint_every=100)
    base.update(overrides)
    return CampaignSpec.from_json_obj(base)


def reference_counts(tmp_path, spec, tag="ref"):
    """The single-node ground truth: execute_spec in a scratch dir."""
    outcome = execute_spec(spec, tag, Checkpointer(tmp_path / f"{tag}-shards"))
    assert outcome.status == "done"
    return outcome.counts


@pytest.fixture
def cluster_service(tmp_path):
    services = []

    def start(**overrides):
        defaults = dict(state_dir=tmp_path / "state", max_workers=1,
                        cluster_port=0)
        defaults.update(overrides)
        service = CoverageService(ServiceConfig(**defaults)).start_in_thread()
        services.append(service)
        return service

    yield start
    for service in services:
        service.shutdown(drain=False)
    obs.disable()
    obs.reset()


def http(service, method, path, body=None):
    url = f"http://127.0.0.1:{service.port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def wait_status(service, campaign_id, statuses, timeout=60.0):
    deadline = time.monotonic() + timeout
    payload = None
    while time.monotonic() < deadline:
        code, payload = http(service, "GET", f"/status/{campaign_id}")
        assert code == 200, payload
        if payload["status"] in statuses:
            return payload
        time.sleep(0.01)
    raise AssertionError(f"{campaign_id} never reached {statuses}: {payload}")


def wait_for(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
    raise AssertionError(f"timed out waiting for {message}")


def metric_total(service, name, **labels):
    """Sum a counter's series matching ``labels`` from /metrics."""
    url = f"http://127.0.0.1:{service.port}/metrics"
    with urllib.request.urlopen(url, timeout=30) as response:
        text = response.read().decode()
    total = 0.0
    found = False
    for line in text.splitlines():
        if not line.startswith(name):
            continue
        rest = line[len(name):]
        if rest and rest[0] not in ("{", " "):
            continue  # a longer metric name sharing the prefix
        if not all(f'{k}="{v}"' in rest for k, v in labels.items()):
            continue
        total += float(line.rsplit(" ", 1)[1])
        found = True
    return total if found else 0.0


class ScriptedWorker:
    """A hand-driven protocol peer: every frame is explicit."""

    def __init__(self, service, worker_id="scripted", slots=1):
        self.id = worker_id
        self.sock = socket.create_connection(
            ("127.0.0.1", service.cluster_port), timeout=10
        )
        self.sock.settimeout(10)
        self.channel = LineChannel(self.sock)
        self.channel.send({"type": "hello", "worker": worker_id,
                           "slots": slots, "version": 1})
        welcome = self.channel.recv()
        assert welcome and welcome["type"] == "welcome", welcome

    def expect(self, frame_type, timeout=10.0):
        """The next frame of ``frame_type`` (skipping others)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            msg = self.channel.recv()
            if msg is None:
                raise AssertionError(f"EOF while waiting for {frame_type}")
            if msg["type"] == frame_type:
                return msg
        raise AssertionError(f"no {frame_type} frame within {timeout}s")

    def close(self):
        self.channel.close()


class TestRemoteDispatch:
    def test_remote_run_is_bit_identical_to_local(
        self, cluster_service, tmp_path, gcd_text
    ):
        """A real worker executes the shard; its done counts must equal a
        single-node run of the same spec exactly."""
        service = cluster_service()
        worker = ClusterWorker(WorkerConfig(
            host="127.0.0.1", port=service.cluster_port, slots=1,
            state_dir=tmp_path / "worker",
        ))
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            wait_for(
                lambda: http(service, "GET", "/healthz")[1]
                .get("cluster", {}).get("workers"),
                message="worker registration",
            )
            spec = make_spec(gcd_text)
            code, payload = http(service, "POST", "/submit",
                                 spec.to_json_obj())
            assert code == 202
            campaign_id = payload["id"]
            running = wait_status(service, campaign_id, {"running", "done"})
            if running["status"] == "running":
                assert running.get("worker") == worker.id
            final = wait_status(service, campaign_id, {"done"})
            assert final["status"] == "done"
            code, report = http(service, "GET", f"/report/{campaign_id}")
            assert code == 200 and report["partial"] is False
            assert report["counts"] == reference_counts(tmp_path, spec)
            assert metric_total(
                service, "repro_cluster_dispatches_total", mode="remote"
            ) >= 1
            # The remote shard landed on the coordinator's disk with its
            # lease provenance, ready for crash recovery.
            shard = Checkpointer(
                service.shard_dir(campaign_id)
            ).load(campaign_id)
            assert shard is not None and shard.complete
            assert shard.origin.startswith(f"{worker.id}#")
        finally:
            worker.stop()
            thread.join(timeout=10)

    def test_zero_workers_degrades_to_local_pool(
        self, cluster_service, tmp_path, gcd_text
    ):
        service = cluster_service()
        spec = make_spec(gcd_text)
        code, payload = http(service, "POST", "/submit", spec.to_json_obj())
        assert code == 202
        final = wait_status(service, payload["id"], {"done"})
        assert final["status"] == "done"
        _, report = http(service, "GET", f"/report/{payload['id']}")
        assert report["counts"] == reference_counts(tmp_path, spec)
        assert metric_total(
            service, "repro_cluster_dispatches_total", mode="local"
        ) >= 1
        _, health = http(service, "GET", "/healthz")
        assert health["cluster"]["workers"] == []

    def test_streaming_deltas_serve_partial_reports(
        self, cluster_service, gcd_text
    ):
        """Scripted deltas: contiguous ones merge into GET /report's
        mid-run view; duplicates/reorders are skipped, never double
        counted; done supersedes the advisory view."""
        service = cluster_service()
        worker = ScriptedWorker(service)
        try:
            spec = make_spec(gcd_text)
            _, payload = http(service, "POST", "/submit", spec.to_json_obj())
            campaign_id = payload["id"]
            grant = worker.expect("grant")
            assert grant["shard"] == campaign_id
            assert grant["spec"]["seed"] == spec.seed
            token = grant["token"]

            worker.channel.send({
                "type": "delta", "shard": campaign_id, "token": token,
                "seq": 1, "from_cycle": 0, "to_cycle": 100,
                "counts": {"a": 2, "b": 0}, "sent_at": time.time(),
            })
            report = wait_for(
                lambda: http(service, "GET", f"/report/{campaign_id}")[1]
                if http(service, "GET", f"/report/{campaign_id}")[0] == 200
                else None,
                message="first partial report",
            )
            assert report["partial"] is True
            assert report["counts"] == {"a": 2, "b": 0}
            assert report["cycles_run"] == 100
            assert report["progress"] == 0.25
            assert report["source"] == f"{worker.id}#{token}"
            assert report["staleness_s"] >= 0

            # A duplicate of the first delta: non-contiguous (from_cycle 0
            # != merged view's 100), skipped — no double count.
            worker.channel.send({
                "type": "delta", "shard": campaign_id, "token": token,
                "seq": 1, "from_cycle": 0, "to_cycle": 100,
                "counts": {"a": 2, "b": 0}, "sent_at": time.time(),
            })
            # A contiguous follow-up merges additively.
            worker.channel.send({
                "type": "delta", "shard": campaign_id, "token": token,
                "seq": 2, "from_cycle": 100, "to_cycle": 200,
                "counts": {"a": 1, "c": 5}, "sent_at": time.time(),
            })
            report = wait_for(
                lambda: (r := http(service, "GET",
                                   f"/report/{campaign_id}")[1])
                and r.get("cycles_run") == 200 and r,
                message="second partial report",
            )
            assert report["counts"] == {"a": 3, "b": 0, "c": 5}
            assert metric_total(
                service, "repro_cluster_deltas_merged_total", applied="no"
            ) >= 1

            final_counts = {"a": 3, "b": 0, "c": 6}
            worker.channel.send({
                "type": "done", "shard": campaign_id, "token": token,
                "status": "done", "detail": "", "counts": final_counts,
                "cycles_run": 400, "attempts": 1, "backend_ok": True,
            })
            wait_status(service, campaign_id, {"done"})
            _, report = http(service, "GET", f"/report/{campaign_id}")
            assert report["partial"] is False
            assert report["counts"] == final_counts
        finally:
            worker.close()


class TestFencing:
    def test_expired_lease_regrants_and_fences_the_zombie(
        self, cluster_service, tmp_path, gcd_text
    ):
        """The fencing story end to end, deterministically scripted: a
        worker goes silent, its lease expires and is re-granted under a
        larger token, and the zombie's late writes bounce off — while the
        re-granted run's counts land bit-identical."""
        service = cluster_service(lease_s=0.4, cluster_heartbeat_s=0.1)
        worker = ScriptedWorker(service)
        try:
            spec = make_spec(gcd_text)
            _, payload = http(service, "POST", "/submit", spec.to_json_obj())
            campaign_id = payload["id"]
            first = worker.expect("grant")
            # Go silent: no heartbeats, no deltas.  The lease expires and
            # the coordinator revokes us...
            revoke = worker.expect("revoke")
            assert revoke["token"] == first["token"]
            assert "expired" in revoke["reason"]
            # ...then re-grants the same shard (we still have the only
            # free slot) under a strictly larger fencing token.
            second = worker.expect("grant")
            assert second["shard"] == campaign_id
            assert second["token"] > first["token"]

            # The zombie flushes a late write under the dead token.
            worker.channel.send({
                "type": "delta", "shard": campaign_id,
                "token": first["token"], "seq": 9, "from_cycle": 0,
                "to_cycle": 100, "counts": {"a": 1},
                "sent_at": time.time(),
            })
            fenced = worker.expect("fenced")
            assert fenced["token"] == first["token"]
            assert fenced["reason"] == "stale-token"
            assert metric_total(
                service, "repro_cluster_fenced_rejections_total"
            ) >= 1

            # The current holder finishes with the real counts: accepted,
            # and exactly what a single-node run produces.
            counts = reference_counts(tmp_path, spec)
            worker.channel.send({
                "type": "done", "shard": campaign_id,
                "token": second["token"], "status": "done", "detail": "",
                "counts": counts, "cycles_run": spec.cycles, "attempts": 1,
                "backend_ok": True,
            })
            wait_status(service, campaign_id, {"done"})
            _, report = http(service, "GET", f"/report/{campaign_id}")
            assert report["counts"] == counts
            # A zombie done under the dead token after completion is
            # rejected too (kind="done").
            worker.channel.send({
                "type": "done", "shard": campaign_id,
                "token": first["token"], "status": "done", "detail": "",
                "counts": {"bogus": 99}, "cycles_run": 1, "attempts": 1,
                "backend_ok": True,
            })
            assert worker.expect("fenced")["token"] == first["token"]
            _, report = http(service, "GET", f"/report/{campaign_id}")
            assert report["counts"] == counts  # unchanged
            assert metric_total(
                service, "repro_cluster_fenced_rejections_total",
                kind="done",
            ) >= 1
        finally:
            worker.close()

    def test_partition_chaos_converges_bit_identical(
        self, cluster_service, tmp_path, gcd_text
    ):
        """The chaos gate: a real worker behind an asymmetric network
        partition (its outbound frames buffered for 2s, hello exempted).
        Leases expire and re-grant repeatedly; when the partition lifts,
        the buffered zombie frames flood in and are fenced off.  The
        campaign still completes with single-node counts."""
        service = cluster_service(lease_s=0.5, cluster_heartbeat_s=0.1)
        plan = NetFaultPlan(
            partitions=((0.0, 2.0),),
            only_types=("heartbeat", "delta", "done"),
            seed=11,
        )
        worker = ClusterWorker(WorkerConfig(
            host="127.0.0.1", port=service.cluster_port, slots=1,
            state_dir=tmp_path / "worker", fault_plan=plan,
        ))
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            wait_for(
                lambda: http(service, "GET", "/healthz")[1]
                .get("cluster", {}).get("workers"),
                message="worker registration",
            )
            spec = make_spec(gcd_text)
            _, payload = http(service, "POST", "/submit", spec.to_json_obj())
            campaign_id = payload["id"]
            final = wait_status(service, campaign_id, {"done"}, timeout=60)
            assert final["status"] == "done"
            _, report = http(service, "GET", f"/report/{campaign_id}")
            assert report["counts"] == reference_counts(tmp_path, spec)
            # The lease/fencing machinery demonstrably engaged: at least
            # one expiry-driven re-dispatch, and at least one buffered
            # zombie write rejected by fencing token.
            assert metric_total(
                service, "repro_cluster_leases_expired_total",
                reason="expired",
            ) >= 1
            assert metric_total(
                service, "repro_cluster_fenced_rejections_total"
            ) >= 1
        finally:
            worker.stop()
            thread.join(timeout=10)


class TestWorkerLoss:
    def test_sigkilled_worker_mid_shard_loses_nothing(
        self, cluster_service, tmp_path, gcd_text
    ):
        """kill -9 a real ``repro worker`` subprocess mid-shard: the
        coordinator deregisters it on EOF, requeues the shard, and the
        local pool finishes it with bit-identical counts."""
        service = cluster_service(lease_s=1.0)
        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_dir)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                              else [])
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"127.0.0.1:{service.cluster_port}",
             "--slots", "1", "--worker-id", "victim",
             "--state-dir", str(tmp_path / "victim")],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        try:
            wait_for(
                lambda: http(service, "GET", "/healthz")[1]
                .get("cluster", {}).get("workers"),
                timeout=30, message="worker subprocess registration",
            )
            # Long enough that the kill lands mid-shard.
            spec = make_spec(gcd_text, cycles=200_000,
                             checkpoint_every=2_000)
            _, payload = http(service, "POST", "/submit", spec.to_json_obj())
            campaign_id = payload["id"]
            # Proof the victim is mid-shard: a streamed partial report
            # whose source names the victim's lease.
            report = wait_for(
                lambda: (r := http(service, "GET",
                                   f"/report/{campaign_id}"))[0] == 200
                and r[1].get("partial") and r[1],
                timeout=30, message="partial report from the victim",
            )
            assert report["source"].startswith("victim#")

            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
            # EOF-driven deregistration, shard requeued, local pool takes
            # over — nothing lost, counts exact.
            wait_for(
                lambda: not http(service, "GET", "/healthz")[1]
                ["cluster"]["workers"],
                message="victim deregistration",
            )
            final = wait_status(service, campaign_id, {"done"}, timeout=120)
            assert final["status"] == "done"
            _, report = http(service, "GET", f"/report/{campaign_id}")
            assert report["partial"] is False
            assert report["counts"] == reference_counts(tmp_path, spec)
            assert metric_total(
                service, "repro_cluster_leases_expired_total",
                reason="disconnected",
            ) >= 1
            assert metric_total(
                service, "repro_cluster_dispatches_total", mode="local"
            ) >= 1
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestServiceClient:
    def test_submit_honors_retry_after_with_jitter(self, monkeypatch):
        """A 429 with Retry-After delays by roughly the server's hint
        (plus bounded jitter), then the retry succeeds."""
        sleeps = []
        client = ServiceClient("http://example.invalid", retries=3,
                               backoff_base=0.25, seed=1,
                               sleep=sleeps.append)
        responses = [
            (429, {"retry-after": "2"}, {"reason": "queue-full",
                                         "retry_after": 2.0}),
            (429, {}, {"reason": "queue-full", "retry_after": 1.5}),
            (202, {}, {"id": "c000001", "status": "queued"}),
        ]
        client.request = lambda *a, **k: responses.pop(0)
        assert client.submit({"tenant": "t"}) == "c000001"
        assert len(sleeps) == 2
        # header hint: 2s <= delay <= 2s + backoff_base of jitter
        assert 2.0 <= sleeps[0] <= 2.25
        # payload hint fallback when the header is absent
        assert 1.5 <= sleeps[1] <= 1.75

    def test_submit_backs_off_exponentially_without_hint(self, monkeypatch):
        sleeps = []
        client = ServiceClient("http://example.invalid", retries=4,
                               backoff_base=0.5, seed=3,
                               sleep=sleeps.append)
        client.request = lambda *a, **k: (429, {}, {"reason": "queue-full"})
        with pytest.raises(ServiceError, match="still rejected"):
            client.submit({"tenant": "t"})
        assert len(sleeps) == 4
        # jittered, but each draw is bounded by the doubling ceiling
        for attempt, delay in enumerate(sleeps):
            assert 0 <= delay <= 0.5 * (2 ** attempt)

    def test_non_retryable_raises_immediately(self):
        client = ServiceClient("http://example.invalid", retries=5,
                               sleep=lambda s: (_ for _ in ()).throw(
                                   AssertionError("must not sleep")))
        client.request = lambda *a, **k: (400, {}, {"error": "bad spec"})
        with pytest.raises(ServiceError) as info:
            client.submit({"tenant": "t"})
        assert info.value.code == 400
