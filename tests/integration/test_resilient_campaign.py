"""Acceptance: a multi-backend campaign that degrades gracefully (ISSUE 1).

A four-job campaign over treadle, verilator, and essent, where one backend
is wrapped in the fault injector (hard crash at cycle N) and another
produces a corrupted-counts shard.  The campaign must complete and its
merged report must contain:

* the healthy backends' full counts,
* the crashed backend's last-checkpoint counts (partial contribution),
* the corrupted shard in the quarantine report — not in the merge.
"""

import pytest

from repro.backends import EssentBackend, TreadleBackend, VerilatorBackend
from repro.coverage import all_cover_names, instrument, merge_counts
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.runtime import (
    Checkpointer,
    Executor,
    FaultPlan,
    FaultyBackend,
    RunJob,
)

pytestmark = pytest.mark.faults

CYCLES = 120
CHECKPOINT_EVERY = 25
CRASH_AT = 80


def stimulus(sim, cycle):
    sim.poke("req_valid", 1)
    sim.poke("req_bits", ((cycle % 11 + 2) << 8) | (cycle % 5 + 1))
    sim.poke("resp_ready", 1)


def clean_reference_counts(state, cycles):
    """What an unwrapped backend reports for the campaign stimulus."""
    sim = TreadleBackend().compile_state(state)
    sim.poke("reset", 1)
    sim.step(1)
    sim.poke("reset", 0)
    for cycle in range(cycles):
        stimulus(sim, cycle)
        sim.step(1)
    return sim.cover_counts()


class TestResilientCampaign:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        state, _ = instrument(elaborate(Gcd(width=8)), metrics=["line", "fsm"])
        names = all_cover_names(state.circuit)
        checkpointer = Checkpointer(
            tmp_path_factory.mktemp("shards"), every=CHECKPOINT_EVERY
        )
        crashing = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=CRASH_AT, seed=21))
        corrupting = FaultyBackend(
            EssentBackend(), FaultPlan(corrupt_keys=2, negate_keys=1, seed=22)
        )
        jobs = [
            RunJob("healthy-treadle", "treadle",
                   lambda: TreadleBackend().compile_state(state), CYCLES, stimulus),
            RunJob("healthy-verilator", "verilator",
                   lambda: VerilatorBackend().compile_state(state), CYCLES, stimulus),
            RunJob("crashing-treadle", "faulty-treadle",
                   lambda: crashing.compile_state(state), CYCLES, stimulus),
            RunJob("corrupting-essent", "faulty-essent",
                   lambda: corrupting.compile_state(state), CYCLES, stimulus),
        ]
        executor = Executor(
            timeout=60, retries=1, checkpointer=checkpointer, sleep=lambda s: None
        )
        result = executor.run_campaign(jobs, known_names=names, counter_width=16)
        return state, names, result

    def test_campaign_completes_despite_faults(self, campaign):
        _, _, result = campaign
        statuses = {o.job_id: o.status for o in result.outcomes}
        assert statuses["healthy-treadle"] == "ok"
        assert statuses["healthy-verilator"] == "ok"
        assert statuses["crashing-treadle"] == "partial"
        assert statuses["corrupting-essent"] == "ok"  # ran fine; shard is the problem

    def test_healthy_backends_contribute_full_counts(self, campaign):
        state, _, result = campaign
        reference = clean_reference_counts(state, CYCLES)
        by_id = {o.job_id: o for o in result.outcomes}
        assert by_id["healthy-treadle"].counts == reference
        assert by_id["healthy-verilator"].counts == reference

    def test_crashed_backend_contributes_last_checkpoint(self, campaign):
        state, _, result = campaign
        by_id = {o.job_id: o for o in result.outcomes}
        partial = by_id["crashing-treadle"]
        # last checkpoint strictly before the injected crash, on the period
        assert partial.cycles_run == 75
        assert partial.counts == clean_reference_counts(state, 75)
        assert [f.kind for f in partial.failures] == ["crash", "crash"]

    def test_corrupted_shard_is_quarantined_not_merged(self, campaign):
        _, _, result = campaign
        assert [q.job_id for q in result.quarantine.quarantined] == [
            "corrupting-essent"
        ]
        kinds = {i.kind for q in result.quarantine.quarantined for i in q.issues}
        assert "unknown-key" in kinds and "negative-count" in kinds
        assert sorted(result.quarantine.merged_job_ids) == [
            "crashing-treadle", "healthy-treadle", "healthy-verilator",
        ]

    def test_merged_counts_are_exactly_the_survivors_sum(self, campaign):
        state, names, result = campaign
        full = clean_reference_counts(state, CYCLES)
        partial = clean_reference_counts(state, 75)
        expected = merge_counts(full, full, partial, counter_width=16)
        assert result.merged == expected
        assert set(result.merged) <= set(names)

    def test_report_narrates_the_campaign(self, campaign):
        _, _, result = campaign
        text = result.format()
        assert "crashing-treadle" in text and "partial" in text
        assert "quarantined 1 shard(s)" in text
        assert "merged coverage:" in text
