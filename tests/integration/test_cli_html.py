"""CLI round trips and the HTML report generator."""

import json
from pathlib import Path

import pytest

from repro.backends import TreadleBackend
from repro.cli import main
from repro.coverage import instrument
from repro.coverage.htmlreport import html_report
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.ir import print_circuit


@pytest.fixture
def gcd_file(tmp_path):
    path = tmp_path / "gcd.fir"
    path.write_text(print_circuit(elaborate(Gcd(width=8))))
    return path


class TestCli:
    def test_check(self, gcd_file, capsys):
        assert main(["check", str(gcd_file)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_print_lowered(self, gcd_file, tmp_path, capsys):
        out = tmp_path / "low.fir"
        assert main(["print", str(gcd_file), "-o", str(out), "--flatten"]) == 0
        assert "when" not in out.read_text().split("circuit")[1]

    def test_verilog(self, gcd_file, tmp_path):
        out = tmp_path / "gcd.v"
        assert main(["verilog", str(gcd_file), "-o", str(out)]) == 0
        assert "module Gcd(" in out.read_text()

    def test_full_flow(self, gcd_file, tmp_path, capsys):
        instrumented = tmp_path / "inst.fir"
        assert main([
            "instrument", str(gcd_file), "-m", "line", "-m", "fsm",
            "-o", str(instrumented),
        ]) == 0
        counts = tmp_path / "counts.json"
        assert main([
            "simulate", str(instrumented), "--cycles", "400",
            "--random-inputs", "--counts", str(counts),
        ]) == 0
        data = json.loads(counts.read_text())
        assert data and any(v > 0 for v in data.values())

        # merge a second run into the first
        merged = tmp_path / "merged.json"
        assert main([
            "simulate", str(instrumented), "--cycles", "400",
            "--random-inputs", "--seed", "7",
            "--merge-with", str(counts), "--counts", str(merged),
        ]) == 0
        merged_data = json.loads(merged.read_text())
        assert all(merged_data[k] >= data[k] for k in data)

        # text report
        capsys.readouterr()
        assert main([
            "report", str(instrumented), "--counts", str(merged),
            "--db", str(instrumented) + ".covdb.json",
        ]) == 0
        text = capsys.readouterr().out
        assert "line coverage:" in text
        assert "FSM" in text

        # html report
        html_out = tmp_path / "report.html"
        assert main([
            "report", str(instrumented), "--counts", str(merged),
            "--db", str(instrumented) + ".covdb.json", "--html", str(html_out),
        ]) == 0
        page = html_out.read_text()
        assert "<title>" in page and "Line coverage" in page

    def test_bmc(self, gcd_file, capsys):
        assert main(["bmc", str(gcd_file), "--bound", "4"]) == 0
        assert "bounded model check" in capsys.readouterr().out

    def test_simulate_with_checkpoints_and_resume(self, gcd_file, tmp_path, capsys):
        instrumented = tmp_path / "inst.fir"
        assert main(["instrument", str(gcd_file), "-m", "line",
                     "-o", str(instrumented)]) == 0
        counts = tmp_path / "counts.json"
        shards = tmp_path / "shards"
        args = [
            "simulate", str(instrumented), "--cycles", "200", "--random-inputs",
            "--counts", str(counts), "--shard-dir", str(shards),
            "--checkpoint-every", "50", "--timeout", "60", "--retries", "1",
        ]
        assert main(args) == 0
        data = json.loads(counts.read_text())
        assert data and any(v > 0 for v in data.values())
        shard_files = list(shards.glob("*.shard.json"))
        assert len(shard_files) == 1
        shard = json.loads(shard_files[0].read_text())
        assert shard["complete"] and shard["cycle"] == 200

        # resume: the completed shard short-circuits the re-run
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        assert "resumed" in capsys.readouterr().out
        assert json.loads(counts.read_text()) == data

    def test_simulate_quarantined_counts_fail_loudly(
        self, gcd_file, tmp_path, capsys, monkeypatch
    ):
        """A run whose only shard is quarantined must exit non-zero and
        refuse to write a (misleadingly empty) counts file."""
        from repro import backends
        from repro.runtime import FaultPlan, FaultyBackend

        monkeypatch.setitem(
            backends.BACKENDS,
            "treadle",
            lambda: FaultyBackend(
                TreadleBackend(), FaultPlan(corrupt_keys=2, seed=3)
            ),
        )
        instrumented = tmp_path / "inst.fir"
        assert main(["instrument", str(gcd_file), "-m", "line",
                     "-o", str(instrumented)]) == 0
        counts = tmp_path / "counts.json"
        rc = main([
            "simulate", str(instrumented), "--backend", "treadle",
            "--cycles", "50", "--random-inputs", "--counts", str(counts),
        ])
        assert rc == 1
        assert not counts.exists()
        err = capsys.readouterr().err
        assert "quarantined" in err and "refusing to write" in err


class TestHtmlReport:
    def test_sections_present(self):
        state, db = instrument(
            elaborate(Gcd(width=8)),
            metrics=["line", "toggle", "fsm", "ready_valid"],
        )
        sim = TreadleBackend().compile_state(state)
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        sim.poke("req_valid", 1)
        sim.poke("req_bits", (18 << 8) | 12)
        sim.poke("resp_ready", 1)
        sim.step(80)
        page = html_report(db, sim.cover_counts(), state.circuit, title="GCD")
        for section in ("Line coverage", "Toggle coverage", "FSM coverage",
                        "Ready/valid coverage"):
            assert section in page
        assert "uncovered" in page or "covered" in page

    def test_escapes_html(self):
        from repro.coverage import CoverageDB

        db = CoverageDB()
        db.add("line", "M<script>", "l0", {"kind": "root", "lines": [["<f>", 1]]})
        from repro.ir import Circuit, Module

        page = html_report(db, {}, Circuit("M", [Module("M")]))
        assert "<script>" not in page.replace("&lt;script&gt;", "")

    def test_annotated_source(self):
        state, db = instrument(elaborate(Gcd(width=8)), metrics=["line"])
        sim = TreadleBackend().compile_state(state)
        sim.step(5)
        files = {file for _, _, p in db.covers_of("line") for file, _ in p["lines"]}
        sources = {f: [f"source line {i}" for i in range(1, 200)] for f in files}
        page = html_report(db, sim.cover_counts(), state.circuit, sources=sources)
        assert "source line" in page
