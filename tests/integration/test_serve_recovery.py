"""Acceptance: ``repro serve`` survives a real ``kill -9`` (ISSUE 6).

A genuine subprocess daemon — not an in-process stand-in — gets two
campaigns over HTTP, is SIGKILLed while at least one is mid-run, and is
restarted on the same state directory.  The restarted daemon must:

* report recovery with zero lost jobs,
* finish both campaigns,
* produce merged counts bit-identical to an uninterrupted reference run
  of the same specs (seeded stimulus makes the re-run deterministic).
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.coverage import instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.ir import print_circuit
from repro.runtime.checkpoint import Checkpointer
from repro.runtime.journal import replay
from repro.runtime.service import CampaignSpec, execute_spec

pytestmark = pytest.mark.faults

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: long enough to be reliably mid-flight at the kill, short enough that
#: the deterministic re-run keeps the test fast (~1.5 s of stepping)
LONG_CYCLES = 250_000
SHORT_CYCLES = 2_000


def spec_obj(circuit_text, tenant, cycles, seed):
    return {
        "tenant": tenant,
        "circuit": circuit_text,
        "cycles": cycles,
        "seed": seed,
        "checkpoint_every": 10_000,
    }


def start_daemon(state_dir):
    env = dict(os.environ, PYTHONPATH=str(REPO_SRC), PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", str(state_dir), "--port", "0", "--max-workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True,
    )
    line = process.stdout.readline()
    assert "listening on http://" in line, (
        f"daemon announced {line!r}" + (process.stdout.read() or "")
    )
    port = int(line.rsplit(":", 1)[1])
    return process, port


def http(port, method, path, body=None, timeout=30):
    url = f"http://127.0.0.1:{port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def wait_until(predicate, timeout=120, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition never became true")


def test_sigkill_mid_campaign_recovers_bit_identical(tmp_path):
    state, _db = instrument(elaborate(Gcd(width=8)), metrics=["line"])
    circuit_text = print_circuit(state.circuit)
    specs = [
        spec_obj(circuit_text, "alice", LONG_CYCLES, seed=11),
        spec_obj(circuit_text, "bob", SHORT_CYCLES, seed=22),
    ]
    references = {
        f"ref{i}": execute_spec(
            CampaignSpec.from_json_obj(obj), f"ref{i}",
            Checkpointer(tmp_path / f"ref{i}-shards"),
        )
        for i, obj in enumerate(specs)
    }
    assert all(r.status == "done" for r in references.values())

    state_dir = tmp_path / "state"
    process, port = start_daemon(state_dir)
    try:
        ids = []
        for obj in specs:
            code, payload = http(port, "POST", "/submit", obj)
            assert code == 202, payload
            ids.append(payload["id"])
        # Wait for the long campaign to be provably mid-run: running
        # status plus at least one checkpoint shard on disk.
        shard_dir = state_dir / "shards" / ids[0]

        def long_campaign_mid_run():
            status = http(port, "GET", f"/status/{ids[0]}")[1]["status"]
            return status == "running" and any(
                shard_dir.glob("*.shard.json")
            )

        wait_until(long_campaign_mid_run)
        process.kill()  # SIGKILL: no drain, no clean-shutdown record
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    # The journal must NOT end with a clean shutdown, and must still
    # replay both submits.
    records = replay(state_dir / "journal.wal").records
    assert [r["id"] for r in records if r["type"] == "submit"] == ids
    assert all(r["type"] != "clean-shutdown" for r in records)

    process, port = start_daemon(state_dir)
    try:
        code, health = http(port, "GET", "/healthz")
        assert health["recovery"]["clean_shutdown"] is False
        assert health["recovery"]["lost"] == 0
        assert (health["recovery"]["adopted"]
                + health["recovery"]["requeued"]) == 2

        def both_done():
            payloads = [http(port, "GET", f"/status/{i}")[1] for i in ids]
            assert all(p["status"] != "failed" for p in payloads), payloads
            return all(p["status"] == "done" for p in payloads)

        wait_until(both_done)
        for campaign_id, reference in zip(ids, references.values()):
            code, report = http(port, "GET", f"/report/{campaign_id}")
            assert code == 200
            assert report["counts"] == reference.counts, campaign_id
        # /metrics accounting agrees: every accepted campaign was either
        # adopted or requeued at recovery (nothing lost), and the requeued
        # ones finished in this process life.
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=30
        ) as response:
            metrics_text = response.read().decode()

        def metric_sum(name, *label_fragments):
            return sum(
                float(line.rsplit(" ", 1)[1])
                for line in metrics_text.splitlines()
                if line.startswith(name)
                and all(f in line for f in label_fragments)
            )

        recovered = metric_sum("repro_serve_recovered_campaigns_total")
        finished_now = metric_sum(
            "repro_serve_campaigns_total", 'status="done"'
        )
        assert recovered == 2  # adopted + requeued covers both submits
        assert finished_now >= 1  # the interrupted campaign re-finished
        _, health = http(port, "GET", "/healthz")
        assert health["campaigns"] == {"done": 2}
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=60)
        assert replay(
            state_dir / "journal.wal"
        ).records[-1]["type"] == "clean-shutdown"
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
