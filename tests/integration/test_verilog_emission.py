"""Verilog emission: structure of the §3.2/§3.4 export path."""

import re

import pytest

from repro.coverage import instrument
from repro.designs.gcd import Gcd
from repro.hcl import Module, elaborate
from repro.passes import lower
from repro.verilog import VerilogError, emit_verilog


class TestEmission:
    def emit_gcd(self, **kwargs):
        state, _ = instrument(elaborate(Gcd()), metrics=["line", "fsm"])
        return emit_verilog(state.circuit, **kwargs)

    def test_module_structure(self):
        text = self.emit_gcd()
        assert text.count("module Gcd(") == 1
        assert "endmodule" in text
        assert "always @(posedge clock)" in text

    def test_covers_become_immediate_sv_covers(self):
        """The Yosys/SymbiYosys-compatible immediate cover form."""
        text = self.emit_gcd()
        covers = re.findall(r"(\w+): cover\(", text)
        assert len(covers) >= 5
        assert all(name for name in covers)

    def test_cover_suppression_mode(self):
        text = self.emit_gcd(use_sv_cover=False)
        assert "cover(" not in text

    def test_registers_have_reset(self):
        text = self.emit_gcd()
        assert "if (reset)" in text

    def test_rejects_high_form(self):
        circuit = elaborate(Gcd())  # whens still present
        with pytest.raises(VerilogError):
            emit_verilog(circuit)

    def test_hierarchy_emitted(self):
        from repro.designs.riscv_mini import RiscvMini

        state = lower(elaborate(RiscvMini()))
        text = emit_verilog(state.circuit)
        assert "Cache icache (" in text
        assert "Cache dcache (" in text
        assert "module Cache(" in text

    def test_memories_emitted(self):
        from repro.designs.riscv_mini import RiscvMini

        state = lower(elaborate(RiscvMini()))
        text = emit_verilog(state.circuit)
        assert re.search(r"reg \[31:0\]\w* \w+ \[0:\d+\];", text) or "[0:" in text

    def test_signed_ops_wrapped(self):
        class Signed(Module):
            def build(self, m):
                a = m.input("a", 8, signed=True)
                b = m.input("b", 8, signed=True)
                o = m.output("o", 1)
                o <<= a < b

        state = lower(elaborate(Signed()))
        text = emit_verilog(state.circuit)
        assert "$signed" in text

    def test_stop_becomes_finish(self):
        class Stops(Module):
            def build(self, m):
                a = m.input("a")
                o = m.output("o", 1)
                o <<= a
                m.stop(a, 1)

        state = lower(elaborate(Stops()))
        text = emit_verilog(state.circuit)
        assert "$finish" in text
