"""The §5.5 formal findings, reproduced.

The paper used formal cover-trace generation on riscv-mini and found:

1. the instruction cache shares RTL with the data cache but is read-only,
   so the cache's write-path code blocks are unreachable in the I$; and
2. the FSM coverage analysis over-approximates transitions; formal proves
   the over-approximated transitions can never be covered.
"""

from repro.backends.formal import generate_cover_traces
from repro.coverage import instrument
from repro.coverage.fsm import FsmCoveragePass
from repro.designs.riscv_mini.cache import Cache
from repro.hcl import ChiselEnum, Module, elaborate


class _ReadOnlyCache(Module):
    """A cache wrapped the way the riscv-mini I$ wraps it: wen tied to 0."""

    def build(self, m):
        req_valid = m.input("req_valid")
        req_addr = m.input("req_addr", 6)
        resp_valid = m.output("resp_valid", 1)
        resp_data = m.output("resp_data", 8)
        mem_resp_valid = m.input("mem_resp_valid")
        mem_resp_data = m.input("mem_resp_data", 8)
        mem_req_valid = m.output("mem_req_valid", 1)

        cache = m.instance("icache", Cache(n_sets=2, addr_width=6, xlen=8))
        cache.cpu_req_valid <<= req_valid
        cache.cpu_req_addr <<= req_addr
        cache.cpu_req_data <<= 0
        cache.cpu_req_wen <<= 0  # read-only: the §5.5 structure
        cache.mem_req_ready <<= 1
        cache.mem_resp_valid <<= mem_resp_valid
        cache.mem_resp_data <<= mem_resp_data
        resp_valid <<= cache.cpu_resp_valid
        resp_data <<= cache.cpu_resp_data
        mem_req_valid <<= cache.mem_req_valid


class _ReadWriteCache(Module):
    """The same cache with the write enable exposed (the D$ usage)."""

    def build(self, m):
        req_valid = m.input("req_valid")
        req_addr = m.input("req_addr", 6)
        req_data = m.input("req_data", 8)
        req_wen = m.input("req_wen")
        resp_valid = m.output("resp_valid", 1)
        mem_resp_valid = m.input("mem_resp_valid")
        mem_resp_data = m.input("mem_resp_data", 8)

        cache = m.instance("dcache", Cache(n_sets=2, addr_width=6, xlen=8))
        cache.cpu_req_valid <<= req_valid
        cache.cpu_req_addr <<= req_addr
        cache.cpu_req_data <<= req_data
        cache.cpu_req_wen <<= req_wen
        cache.mem_req_ready <<= 1
        cache.mem_resp_valid <<= mem_resp_valid
        cache.mem_resp_data <<= mem_resp_data
        resp_valid <<= cache.cpu_resp_valid


def write_branch_covers(state):
    """Line covers whose source block is the cache write path."""
    # write path blocks live on the lines of cache.py containing the
    # write_through transition; identify them through the fsm state instead:
    # any cover whose canonical name reaches the write_through/write_wait
    # states (fsm metric) or, for line coverage, blocks only reachable when
    # cpu_req_wen is high.  We use the FSM state covers, which are precise.
    return [
        name
        for name in (state.cover_paths or {}).values()
        if "write_through" in name or "write_wait" in name
    ]


class TestReadOnlyCacheDeadCode:
    def test_write_states_unreachable_in_icache(self):
        state, db = instrument(
            elaborate(_ReadOnlyCache()), metrics=["fsm"], flatten=True
        )
        result = generate_cover_traces(state, bound=10)
        dead = [n for n in result.unreachable if "write" in n]
        assert dead, "read-only cache must have unreachable write states"

    def test_write_states_reachable_in_dcache(self):
        state, db = instrument(
            elaborate(_ReadWriteCache()), metrics=["fsm"], flatten=True
        )
        result = generate_cover_traces(state, bound=10)
        reachable_writes = [
            n for n in result.reachable if "write_through" in n and "state" in n
        ]
        assert reachable_writes, "writable cache must reach its write states"

    def test_same_rtl_different_reachability(self):
        """The punchline: identical module, different dead code per use."""
        ro_state, _ = instrument(elaborate(_ReadOnlyCache()), metrics=["fsm"], flatten=True)
        rw_state, _ = instrument(elaborate(_ReadWriteCache()), metrics=["fsm"], flatten=True)
        ro = generate_cover_traces(ro_state, bound=10)
        rw = generate_cover_traces(rw_state, bound=10)
        ro_dead = {n.split(".")[-1] for n in ro.unreachable}
        rw_dead = {n.split(".")[-1] for n in rw.unreachable}
        only_dead_when_readonly = ro_dead - rw_dead
        assert any("write" in n for n in only_dead_when_readonly)


class TestFsmOverApproximationFinding:
    def test_formal_refutes_over_approximated_transitions(self):
        S = ChiselEnum("Over", "a b c d")

        class Opaque(Module):
            """Next state routed through arithmetic the analysis can't see.

            Actual behaviour: next state is ``state[0] ^ noise``, so only
            a and b are reachable — but the conservative analysis reports
            all 16 transitions.
            """

            def build(self, m):
                noise = m.input("noise")
                out = m.output("o", 2)
                state = m.reg("state", enum=S)
                # actual behaviour: only a and b are reachable, but the
                # xor is opaque to the mux-tree analysis
                state <<= (state[0] ^ noise).zext(2)
                out <<= state

        state, db = instrument(elaborate(Opaque()), metrics=["fsm"], flatten=True)
        fsm_covers = [
            name for name in state.cover_paths.values() if name.startswith("fsm_")
        ]
        transition_covers = [n for n in fsm_covers if "_to_" in n]
        assert len(transition_covers) == 16, "analysis over-approximates to all"

        result = generate_cover_traces(state, bound=8)
        refuted = [n for n in result.unreachable if "_to_" in n]
        confirmed = [n for n in result.reachable if "_to_" in n]
        # only transitions among {a, b} actually happen
        assert sorted(n.split("state_")[-1] for n in confirmed) == [
            "a_to_a",
            "a_to_b",
            "b_to_a",
            "b_to_b",
        ]
        assert len(refuted) == 12
