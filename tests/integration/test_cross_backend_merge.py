"""End-to-end integration: the paper's headline flows.

1. One instrumented circuit runs on five backends; counts share one
   namespace and merge by addition (abstract of the paper).
2. Software-sim coverage filters the cover set before FPGA instrumentation
   (§5.3).
3. Formal traces replay on any simulator (§3.4/§5.5).
"""

from repro.backends import (
    EssentBackend,
    FireSimBackend,
    TreadleBackend,
    VerilatorBackend,
)
from repro.backends.formal import generate_cover_traces, replay_trace
from repro.coverage import covered_points, filter_covered, instrument, merge_counts
from repro.designs.gcd import Gcd
from repro.hcl import Module, elaborate
from repro.passes import lower


def drive_gcd(sim, pairs):
    sim.poke("reset", 1)
    sim.step()
    sim.poke("reset", 0)
    sim.poke("resp_ready", 1)
    for a, b in pairs:
        sim.poke("req_valid", 1)
        sim.poke("req_bits", (b << 16) | a)
        while not sim.peek("req_ready"):
            sim.step()
        sim.step()
        sim.poke("req_valid", 0)
        while not sim.peek("resp_valid"):
            sim.step()
        sim.step()


class TestUniformBackends:
    def test_same_counts_everywhere(self):
        state, db = instrument(
            elaborate(Gcd()), metrics=["line", "fsm", "ready_valid"]
        )
        results = {}
        for name, sim in [
            ("treadle", TreadleBackend().compile_state(state)),
            ("verilator", VerilatorBackend().compile_state(state)),
            ("essent", EssentBackend().compile_state(state)),
            ("firesim", FireSimBackend(counter_width=16).compile_state(state)),
        ]:
            drive_gcd(sim, [(12, 18), (7, 13)])
            results[name] = sim.cover_counts()
        reference = results["treadle"]
        for name, counts in results.items():
            assert counts == reference, f"{name} diverged"

    def test_merging_across_backends(self):
        state, db = instrument(elaborate(Gcd()), metrics=["line"])
        a = TreadleBackend().compile_state(state)
        b = VerilatorBackend().compile_state(state)
        drive_gcd(a, [(12, 18)])
        drive_gcd(b, [(35, 21)])
        merged = merge_counts(a.cover_counts(), b.cover_counts())
        for key in merged:
            assert merged[key] == a.cover_counts()[key] + b.cover_counts()[key]
        # a point covered by either run is covered in the merge
        union = covered_points(a.cover_counts()) | covered_points(b.cover_counts())
        assert covered_points(merged) == union


class TestCoverageRemovalFlow:
    def test_software_coverage_shrinks_fpga_chain(self):
        """§5.3: remove already-covered points before FPGA instrumentation."""
        state, db = instrument(elaborate(Gcd()), metrics=["line", "fsm"])
        sw = VerilatorBackend().compile_state(state)
        drive_gcd(sw, [(12, 18), (9, 9), (1, 0)])
        counts = sw.cover_counts()

        remaining = filter_covered(counts, threshold=2)
        assert 0 < len(remaining) < len(counts)

        # strip covered points, then build the scan chain from the rest
        flat = lower(state.circuit, flatten=True)
        from repro.ir import Cover

        kept_paths = {
            flat_name
            for flat_name, canonical in flat.cover_paths.items()
            if canonical in remaining
        }
        flat.circuit.top.body = [
            s
            for s in flat.circuit.top.body
            if not (isinstance(s, Cover) and s.name not in kept_paths)
        ]
        firesim = FireSimBackend(counter_width=16).compile_state(flat)
        assert len(firesim.info.chain) == len(remaining)


class TestFormalToSimulation:
    def test_traces_cover_on_every_backend(self):
        state, db = instrument(elaborate(Gcd(width=6)), metrics=["fsm"])
        result = generate_cover_traces(state, bound=8)
        assert result.reachable
        name = result.reachable[0]
        for backend in (TreadleBackend(), VerilatorBackend(), EssentBackend()):
            sim = backend.compile_state(state)
            counts = replay_trace(sim, result.traces[name])
            assert counts[name] >= 1
