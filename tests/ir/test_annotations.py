"""Annotation serialization and circuit-level round trips."""

from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.ir import (
    CoverageMetadataAnnotation,
    DecoupledAnnotation,
    DontTouchAnnotation,
    EnumDefAnnotation,
    annotations_for,
    parse_circuit,
    print_circuit,
)
from repro.ir.annotations import annotation_from_dict, annotation_to_dict


class TestSerialization:
    def roundtrip(self, anno):
        return annotation_from_dict(annotation_to_dict(anno))

    def test_enum_def(self):
        anno = EnumDefAnnotation("M", "state", "S", (("a", 0), ("b", 1)))
        assert self.roundtrip(anno) == anno

    def test_decoupled(self):
        anno = DecoupledAnnotation("M", "enq", "enq_ready", "enq_valid", True)
        assert self.roundtrip(anno) == anno

    def test_dont_touch(self):
        anno = DontTouchAnnotation("M", "sig")
        assert self.roundtrip(anno) == anno

    def test_coverage_metadata(self):
        anno = CoverageMetadataAnnotation("M", "c0", "line", '{"x": 1}')
        assert self.roundtrip(anno) == anno


class TestCircuitRoundtrip:
    def test_annotations_survive_print_parse(self):
        circuit = elaborate(Gcd())
        assert circuit.annotations  # enum + decoupled annotations
        reparsed = parse_circuit(print_circuit(circuit))
        assert set(reparsed.annotations) == set(circuit.annotations)

    def test_text_stable(self):
        circuit = elaborate(Gcd())
        text = print_circuit(circuit)
        assert print_circuit(parse_circuit(text)) == text

    def test_fsm_instrumentation_works_after_roundtrip(self):
        from repro.coverage import instrument

        circuit = parse_circuit(print_circuit(elaborate(Gcd())))
        _state, db = instrument(circuit, metrics=["fsm", "ready_valid"])
        assert db.count("fsm") > 0
        assert db.count("ready_valid") == 2


class TestQueries:
    def test_annotations_for_filters(self):
        annos = [
            EnumDefAnnotation("A", "s", "S", (("x", 0),)),
            DontTouchAnnotation("A", "w"),
            DontTouchAnnotation("B", "w"),
        ]
        assert len(annotations_for(annos, "A")) == 2
        assert len(annotations_for(annos, "A", DontTouchAnnotation)) == 1
        assert len(annotations_for(annos, "C")) == 0
