"""Primop semantics: unit cases plus property tests against Python ints."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.ops import OPS, eval_op, result_type
from repro.ir.types import SIntType, UIntType, bit_width, mask, to_signed, value_of


def u_args(*pairs):
    return [p[0] for p in pairs], [UIntType(p[1]) for p in pairs]


class TestWidthRules:
    def test_add_grows_one(self):
        assert result_type("add", [UIntType(8), UIntType(4)]) == UIntType(9)

    def test_mul_sums_widths(self):
        assert result_type("mul", [UIntType(8), UIntType(4)]) == UIntType(12)

    def test_cmp_one_bit(self):
        for op in ("lt", "leq", "gt", "geq", "eq", "neq"):
            assert result_type(op, [UIntType(8), UIntType(8)]) == UIntType(1)

    def test_bitwise_max_width_unsigned(self):
        assert result_type("and", [SIntType(8), SIntType(4)]) == UIntType(8)

    def test_cat(self):
        assert result_type("cat", [UIntType(3), UIntType(5)]) == UIntType(8)

    def test_bits(self):
        assert result_type("bits", [UIntType(8)], (5, 2)) == UIntType(4)

    def test_bits_out_of_range(self):
        with pytest.raises(ValueError):
            result_type("bits", [UIntType(8)], (8, 0))

    def test_shr_clamps_to_one(self):
        assert result_type("shr", [UIntType(4)], (10,)) == UIntType(1)

    def test_neg_signed_grows(self):
        assert result_type("neg", [UIntType(4)]) == SIntType(5)

    def test_unknown_op(self):
        with pytest.raises(KeyError):
            result_type("bogus", [UIntType(1)])

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            result_type("add", [UIntType(1)])


class TestUnsignedSemantics:
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_add(self, a, b):
        args, types = u_args((a, 8), (b, 8))
        assert eval_op("add", args, types) == a + b

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_sub_wraps(self, a, b):
        args, types = u_args((a, 8), (b, 8))
        assert eval_op("sub", args, types) == (a - b) & 0x1FF

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_div(self, a, b):
        args, types = u_args((a, 8), (b, 8))
        expected = a // b if b else 0
        assert eval_op("div", args, types) == expected

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_rem(self, a, b):
        args, types = u_args((a, 8), (b, 8))
        expected = a % b if b else a
        assert eval_op("rem", args, types) & 0xFF == expected

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_comparisons(self, a, b):
        args, types = u_args((a, 8), (b, 8))
        assert eval_op("lt", args, types) == (a < b)
        assert eval_op("geq", args, types) == (a >= b)
        assert eval_op("eq", args, types) == (a == b)

    @given(st.integers(0, 255))
    def test_not(self, a):
        args, types = u_args((a, 8))
        assert eval_op("not", args, types) == (~a) & 0xFF

    @given(st.integers(0, 255), st.integers(0, 15))
    def test_cat(self, a, b):
        assert eval_op("cat", [a, b], [UIntType(8), UIntType(4)]) == (a << 4) | b

    @given(st.integers(0, 255))
    def test_bits(self, a):
        assert eval_op("bits", [a], [UIntType(8)], (5, 2)) == (a >> 2) & 0xF

    @given(st.integers(0, 255))
    def test_reductions(self, a):
        args, types = u_args((a, 8))
        assert eval_op("orr", args, types) == (a != 0)
        assert eval_op("andr", args, types) == (a == 255)
        assert eval_op("xorr", args, types) == bin(a).count("1") % 2


class TestSignedSemantics:
    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_add_signed(self, a, b):
        raw = [a & 0xFF, b & 0xFF]
        types = [SIntType(8), SIntType(8)]
        result = eval_op("add", raw, types)
        assert to_signed(result, 9) == a + b

    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_div_truncates_toward_zero(self, a, b):
        raw = [a & 0xFF, b & 0xFF]
        types = [SIntType(8), SIntType(8)]
        result = eval_op("div", raw, types)
        expected = 0 if b == 0 else int(a / b)
        assert to_signed(result, 9) == expected

    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_rem_sign_of_dividend(self, a, b):
        raw = [a & 0xFF, b & 0xFF]
        types = [SIntType(8), SIntType(8)]
        result = to_signed(eval_op("rem", raw, types), 8)
        if b == 0:
            assert result == a
        else:
            assert result == a - int(a / b) * b
            assert result == 0 or (result < 0) == (a < 0)

    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_signed_compare(self, a, b):
        raw = [a & 0xFF, b & 0xFF]
        types = [SIntType(8), SIntType(8)]
        assert eval_op("lt", raw, types) == (a < b)

    @given(st.integers(-128, 127))
    def test_neg(self, a):
        result = eval_op("neg", [a & 0xFF], [SIntType(8)])
        assert to_signed(result, 9) == -a

    @given(st.integers(-128, 127), st.integers(0, 7))
    def test_shr_arithmetic(self, a, n):
        result = eval_op("shr", [a & 0xFF], [SIntType(8)], (n,))
        assert to_signed(result, max(8 - n, 1)) == a >> n

    @given(st.integers(-128, 127), st.integers(0, 12))
    def test_pad_sign_extends(self, a, extra):
        result = eval_op("pad", [a & 0xFF], [SIntType(8)], (8 + extra,))
        assert to_signed(result, 8 + extra) == a


class TestResultsAlwaysFit:
    """Every op's result must fit in its declared result width."""

    @given(
        st.sampled_from(sorted(op for op, spec in OPS.items() if spec.n_args == 2 and spec.n_consts == 0)),
        st.integers(0, mask(8)),
        st.integers(0, mask(8)),
        st.booleans(),
    )
    def test_binary_results_fit(self, op, a, b, signed):
        tpe = SIntType(8) if signed else UIntType(8)
        result_t = result_type(op, [tpe, tpe])
        raw = eval_op(op, [a, b], [tpe, tpe])
        assert 0 <= raw <= mask(bit_width(result_t))
