"""Round-trip property: parse(print(circuit)) == circuit (textually)."""

import pytest
from hypothesis import given, settings

from repro.ir import ParseError, parse_circuit, print_circuit
from repro.ir.parser import tokenize

from ..helpers import random_circuits


EXAMPLE = """circuit Top {
  module Top {
    input clock : Clock
    input reset : UInt<1>
    input in : UInt<8>
    output out : UInt<8>

    wire w : UInt<8>
    reg r : UInt<8>, clock reset => (reset, UInt<8>("h0")) @[top.py:3]
    mem scratch : UInt<8>[16]
    node n0 = add(in, UInt<8>("h1"))
    when eq(in, UInt<8>("h3")) { @[top.py:7]
      w <= UInt<8>("h7")
    } else {
      w <= bits(n0, 7, 0)
    }
    r <= w
    write scratch[bits(in, 3, 0)] <= w when UInt<1>("h1") on clock
    cover(clock, eq(r, UInt<8>("h5")), UInt<1>("h1")) : c0
    stop(clock, eq(r, UInt<8>("hff")), UInt<1>("h1"), 1) : s0
    out <= scratch[bits(in, 3, 0)]
  }
}
"""


class TestParser:
    def test_example_roundtrip(self):
        circuit = parse_circuit(EXAMPLE)
        assert print_circuit(circuit) == EXAMPLE

    def test_reparse_stable(self):
        once = print_circuit(parse_circuit(EXAMPLE))
        twice = print_circuit(parse_circuit(once))
        assert once == twice

    def test_undeclared_signal(self):
        bad = "circuit T { module T { output o : UInt<1>\n o <= x } }"
        with pytest.raises(ParseError):
            parse_circuit(bad)

    def test_bad_token(self):
        with pytest.raises(ParseError):
            parse_circuit("circuit T ` {}")

    def test_unexpected_eof(self):
        with pytest.raises(ParseError):
            parse_circuit("circuit T {")

    def test_tokenizer_info(self):
        tokens = tokenize('@[file.py:12] name 42 "hff" <= =>')
        kinds = [t.kind for t in tokens]
        assert kinds == ["info", "ident", "num", "str", "sym", "sym"]

    def test_instance_ports_forward_reference(self):
        text = (
            "circuit A {\n"
            "  module A {\n"
            "    input clock : Clock\n"
            "    output o : UInt<4>\n"
            "    inst b of B\n"
            "    b.clock <= clock\n"
            "    o <= b.q\n"
            "  }\n"
            "  module B {\n"
            "    input clock : Clock\n"
            "    output q : UInt<4>\n"
            "    q <= UInt<4>(\"h5\")\n"
            "  }\n"
            "}\n"
        )
        circuit = parse_circuit(text)
        assert circuit.module("B").port("q").type.width == 4


class TestRoundtripProperty:
    @settings(max_examples=30, deadline=None)
    @given(random_circuits())
    def test_random_circuits_roundtrip(self, circuit):
        text = print_circuit(circuit)
        reparsed = parse_circuit(text)
        assert print_circuit(reparsed) == text

    def test_hierarchical_roundtrip(self):
        from repro.designs.riscv_mini import RiscvMini
        from repro.hcl import elaborate

        circuit = elaborate(RiscvMini(addr_width=6, cache_sets=2))
        text = print_circuit(circuit)
        assert print_circuit(parse_circuit(text)) == text
