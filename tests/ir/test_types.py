"""Unit tests for the IR ground types and raw-value helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.types import (
    BOOL,
    CLOCK,
    ClockType,
    SIntType,
    UIntType,
    bit_width,
    from_signed,
    is_one_bit,
    is_signed,
    mask,
    to_signed,
    truncate,
    value_of,
)


class TestTypeBasics:
    def test_uint_width(self):
        assert UIntType(8).width == 8
        assert bit_width(UIntType(8)) == 8

    def test_uint_zero_width_allowed(self):
        assert UIntType(0).width == 0

    def test_uint_negative_width_rejected(self):
        with pytest.raises(ValueError):
            UIntType(-1)

    def test_sint_zero_width_rejected(self):
        with pytest.raises(ValueError):
            SIntType(0)

    def test_clock_is_one_bit(self):
        assert bit_width(CLOCK) == 1

    def test_bool_alias(self):
        assert BOOL == UIntType(1)

    def test_signedness(self):
        assert is_signed(SIntType(4))
        assert not is_signed(UIntType(4))
        assert not is_signed(CLOCK)

    def test_is_one_bit(self):
        assert is_one_bit(UIntType(1))
        assert not is_one_bit(UIntType(2))
        assert not is_one_bit(SIntType(1))

    def test_types_are_hashable_and_equal(self):
        assert UIntType(3) == UIntType(3)
        assert hash(UIntType(3)) == hash(UIntType(3))
        assert UIntType(3) != SIntType(3)

    def test_str_forms(self):
        assert str(UIntType(5)) == "UInt<5>"
        assert str(SIntType(2)) == "SInt<2>"
        assert str(CLOCK) == "Clock"


class TestRawValueHelpers:
    def test_mask(self):
        assert mask(0) == 0
        assert mask(3) == 0b111

    def test_truncate(self):
        assert truncate(0x1FF, 8) == 0xFF

    @given(st.integers(1, 20), st.integers())
    def test_signed_roundtrip(self, width, value):
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        clamped = max(lo, min(hi, value))
        assert to_signed(from_signed(clamped, width), width) == clamped

    @given(st.integers(1, 20), st.integers(0, 2**20))
    def test_to_signed_range(self, width, raw):
        value = to_signed(raw, width)
        assert -(1 << (width - 1)) <= value < (1 << (width - 1))

    def test_value_of_signed(self):
        assert value_of(0xFF, SIntType(8)) == -1
        assert value_of(0x7F, SIntType(8)) == 127
        assert value_of(0xFF, UIntType(8)) == 255
