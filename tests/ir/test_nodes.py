"""IR node construction and invariants."""

import pytest

from repro.ir import (
    CLOCK,
    Circuit,
    Connect,
    Cover,
    DefMemory,
    FALSE,
    Module,
    Mux,
    Port,
    Ref,
    SIntLiteral,
    SIntType,
    TRUE,
    UIntLiteral,
    UIntType,
    and_,
    not_,
    prim,
    u,
)


class TestLiterals:
    def test_uint_fits(self):
        assert UIntLiteral(255, 8).value == 255

    def test_uint_too_wide(self):
        with pytest.raises(ValueError):
            UIntLiteral(256, 8)

    def test_uint_negative(self):
        with pytest.raises(ValueError):
            UIntLiteral(-1, 8)

    def test_sint_range(self):
        assert SIntLiteral(-128, 8).value == -128
        assert SIntLiteral(127, 8).value == 127
        with pytest.raises(ValueError):
            SIntLiteral(128, 8)
        with pytest.raises(ValueError):
            SIntLiteral(-129, 8)

    def test_constants(self):
        assert TRUE.value == 1 and TRUE.width == 1
        assert FALSE.value == 0


class TestPrimOpConstruction:
    def test_make_computes_type(self):
        node = prim("add", u(3, 8), u(4, 8))
        assert node.tpe == UIntType(9)

    def test_expressions_hashable(self):
        a = prim("add", u(1, 4), u(2, 4))
        b = prim("add", u(1, 4), u(2, 4))
        assert a == b
        assert hash(a) == hash(b)

    def test_mux_make(self):
        node = Mux.make(TRUE, u(1, 4), u(2, 8))
        assert node.tpe == UIntType(8)

    def test_mux_sign_mismatch(self):
        with pytest.raises(TypeError):
            Mux.make(TRUE, u(1, 4), SIntLiteral(1, 4))


class TestPredicateHelpers:
    def test_and_folds_true(self):
        x = Ref("x", UIntType(1))
        assert and_(TRUE, x) is x

    def test_and_folds_false(self):
        x = Ref("x", UIntType(1))
        assert and_(FALSE, x) == FALSE

    def test_and_empty(self):
        assert and_() == TRUE

    def test_not_folds(self):
        assert not_(TRUE) == FALSE
        assert not_(FALSE) == TRUE


class TestModuleCircuit:
    def make(self):
        module = Module(
            "M",
            [Port("clock", "input", CLOCK), Port("o", "output", UIntType(1))],
            [Connect(Ref("o", UIntType(1)), TRUE)],
        )
        return Circuit("M", [module])

    def test_port_lookup(self):
        circuit = self.make()
        assert circuit.top.port("o").direction == "output"
        with pytest.raises(KeyError):
            circuit.top.port("nope")

    def test_module_lookup(self):
        circuit = self.make()
        assert circuit.module("M") is circuit.top
        with pytest.raises(KeyError):
            circuit.module("X")

    def test_inputs_outputs(self):
        top = self.make().top
        assert [p.name for p in top.inputs] == ["clock"]
        assert [p.name for p in top.outputs] == ["o"]

    def test_bad_port_direction(self):
        with pytest.raises(ValueError):
            Port("p", "inout", UIntType(1))

    def test_memory_addr_width(self):
        assert DefMemory("m", UIntType(8), 256).addr_width == 8
        assert DefMemory("m", UIntType(8), 1).addr_width == 1
        assert DefMemory("m", UIntType(8), 3).addr_width == 2
