"""The value-set component of the abstract domain (reduced product).

Known bits and intervals cannot represent "the FSM visits {0, 1, 2, 5}"
— every bit varies and the hull contains the dead states.  These tests
pin the third lattice: exact small sets, their reduction against the
other two components, exact transfer through ``ops.eval_op``, and the
overflow-to-``None`` behavior that bounds the chain height.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.absint import (
    VSET_MAX,
    AbsVal,
    const,
    eval_primop,
    join,
    make,
    top,
    widen,
)
from repro.ir import Ref, UIntType, mask, prim


def _vset_val(width: int, values) -> AbsVal:
    m = mask(width)
    return make(width, 0, 0, 0, m, frozenset(values))


class TestReduction:
    def test_singleton_promotes_to_const(self):
        av = _vset_val(4, {9})
        assert av.is_const and av.const_value == 9

    def test_set_tightens_interval(self):
        av = _vset_val(4, {3, 5, 9})
        assert (av.lo, av.hi) == (3, 9)

    def test_set_derives_agreeing_known_bits(self):
        # {4, 5, 6, 7} = 0b1xx: bit 2 is provably one, bit 3 provably zero
        av = _vset_val(4, {4, 5, 6, 7})
        assert av.known & 0b1100 == 0b1100
        assert av.value & 0b1100 == 0b0100

    def test_known_bits_filter_the_set(self):
        # bit 0 proven one: even members are unreachable and drop out
        av = make(4, 0b0001, 0b0001, 0, 15, frozenset({2, 3, 4, 5}))
        assert av.vset == frozenset({3, 5})

    def test_interval_filters_the_set(self):
        av = make(4, 0, 0, 2, 6, frozenset({0, 3, 5, 9}))
        assert av.vset == frozenset({3, 5})

    def test_oversized_set_overflows_to_none(self):
        av = _vset_val(8, set(range(VSET_MAX + 1)))
        assert av.vset is None

    def test_contradictory_set_keeps_box(self):
        # no member satisfies the box: the set is dropped, not the box
        av = make(4, 0b0001, 0b0001, 0, 15, frozenset({2, 4}))
        assert av.vset is None
        assert av.contains(3)


class TestLattice:
    def test_join_unions_small_sets(self):
        a = _vset_val(4, {1, 2})
        b = _vset_val(4, {5})
        assert join(a, b).vset == frozenset({1, 2, 5})

    def test_join_overflow_drops_set(self):
        a = _vset_val(8, set(range(VSET_MAX)))
        b = _vset_val(8, {200})
        assert join(a, b).vset is None

    def test_join_with_top_is_top_set(self):
        assert join(_vset_val(4, {1, 2}), top(4)).vset is None

    def test_widen_preserves_set(self):
        old = _vset_val(4, {0, 1})
        new = _vset_val(4, {0, 1, 2})
        assert widen(old, new).vset == frozenset({0, 1, 2})

    @given(
        st.integers(1, 8),
        st.lists(st.integers(0, 255), min_size=1, max_size=6),
        st.lists(st.integers(0, 255), min_size=1, max_size=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_join_soundness(self, width, raws_a, raws_b):
        m = mask(width)
        raws_a = [r & m for r in raws_a]
        raws_b = [r & m for r in raws_b]
        a = _vset_val(width, raws_a)
        b = _vset_val(width, raws_b)
        joined = join(a, b)
        for raw in raws_a + raws_b:
            assert joined.contains(raw)


class TestExactTransfer:
    def test_eq_against_excluded_constant_is_false(self):
        u3 = UIntType(3)
        expr = prim("eq", Ref("state", u3), Ref("k", u3))
        state = _vset_val(3, {0, 1, 2, 5})
        out = eval_primop(expr, [state, const(3, 3)])
        assert out.is_const and out.const_value == 0

    def test_eq_against_member_is_unknown(self):
        u3 = UIntType(3)
        expr = prim("eq", Ref("state", u3), Ref("k", u3))
        state = _vset_val(3, {0, 1, 2, 5})
        out = eval_primop(expr, [state, const(2, 3)])
        assert not out.is_const

    def test_add_maps_sets_exactly(self):
        u3 = UIntType(3)
        expr = prim("add", Ref("a", u3), Ref("b", u3))
        out = eval_primop(expr, [_vset_val(3, {1, 4}), _vset_val(3, {2})])
        assert out.vset == frozenset({3, 6})

    def test_large_products_fall_back_to_box(self):
        u8 = UIntType(8)
        expr = prim("add", Ref("a", u8), Ref("b", u8))
        a = _vset_val(8, set(range(16)))
        b = _vset_val(8, set(range(100, 116)))
        out = eval_primop(expr, [a, b])  # 256 combos is the cap; fine
        assert out is not None
        big = _vset_val(8, set(range(16)))
        out2 = eval_primop(expr, [big, _vset_val(8, set(range(17)))])
        # 16 * 17 > VSET_COMBOS: no exact image, but still sound
        assert out2.contains(0 + 0)

    @given(
        st.sampled_from(["add", "sub", "and", "or", "xor", "eq", "lt", "mul"]),
        st.integers(1, 6),
        st.lists(st.integers(0, 63), min_size=1, max_size=4),
        st.lists(st.integers(0, 63), min_size=1, max_size=4),
    )
    @settings(max_examples=150, deadline=None)
    def test_transfer_soundness_vs_concrete(self, op, width, raws_a, raws_b):
        from repro.ir import bit_width, eval_op

        tpe = UIntType(width)
        m = mask(width)
        raws_a = [r & m for r in raws_a]
        raws_b = [r & m for r in raws_b]
        expr = prim(op, Ref("a", tpe), Ref("b", tpe))
        out = eval_primop(expr, [_vset_val(width, raws_a), _vset_val(width, raws_b)])
        for ra in raws_a:
            for rb in raws_b:
                concrete = eval_op(op, [ra, rb], [tpe, tpe], [])
                assert out.contains(concrete), (
                    f"{op}({ra}, {rb}) = {concrete} escapes {out}"
                )
        assert out.width == bit_width(expr.tpe)
