"""CheckForms on the diagnostics engine: all violations in one run.

The old checker raised on the first problem; migrated onto the
diagnostics engine it must report *every* violation with a locator,
while ``CheckForms.run`` keeps the strict raise-at-end contract its
pipeline callers rely on.
"""

from __future__ import annotations

import pytest

from repro.analysis import Severity
from repro.ir import (
    CLOCK,
    Circuit,
    Connect,
    DefNode,
    Module,
    Port,
    Ref,
    SourceInfo,
    UIntType,
    prim,
)
from repro.passes.base import CompileState, PassError
from repro.passes.check import CheckForms, check_circuit

U8 = UIntType(8)


def _multi_bug_circuit() -> Circuit:
    """Three independent violations in one module."""
    module = Module(
        "Buggy",
        [
            Port("clock", "input", CLOCK),
            Port("out", "output", U8),
        ],
        [
            # 1: reads an undeclared signal
            DefNode(
                "a",
                prim("not", Ref("ghost", U8)),
                info=SourceInfo("bug.py", 3),
            ),
            # 2: duplicate declaration
            DefNode("a", Ref("out", U8), info=SourceInfo("bug.py", 4)),
            # 3: drives an input port
            Connect(Ref("clock", CLOCK), Ref("clock", CLOCK), info=SourceInfo("bug.py", 5)),
            Connect(Ref("out", U8), Ref("a", U8)),
        ],
    )
    return Circuit("Buggy", [module])


class TestCollectAll:
    def test_every_violation_reported_in_one_run(self):
        diags = check_circuit(_multi_bug_circuit())
        rules = sorted(d.rule for d in diags.errors)
        assert "check-undeclared" in rules
        assert "check-duplicate" in rules
        assert len(diags.errors) >= 3

    def test_findings_carry_source_locators(self):
        diags = check_circuit(_multi_bug_circuit())
        lines = {d.info.line for d in diags.errors if d.info.file == "bug.py"}
        assert {3, 4} <= lines

    def test_all_checks_are_error_severity(self):
        diags = check_circuit(_multi_bug_circuit())
        assert diags.errors
        for diag in diags.findings:
            assert diag.severity == Severity.ERROR

    def test_failed_declaration_does_not_cascade(self):
        # the duplicate 'a' still declares 'a': the final connect must not
        # produce a spurious undeclared-signal error for it
        diags = check_circuit(_multi_bug_circuit())
        undeclared = [d for d in diags.errors if d.rule == "check-undeclared"]
        assert all("ghost" in d.message for d in undeclared)


class TestStrictContract:
    def test_run_raises_with_every_violation_listed(self):
        with pytest.raises(PassError) as exc:
            CheckForms().run(CompileState(_multi_bug_circuit()))
        text = str(exc.value)
        assert "well-formedness error" in text
        assert "ghost" in text
        assert "bug.py:3" in text

    def test_run_passes_clean_circuit(self):
        module = Module(
            "Clean",
            [Port("clock", "input", CLOCK), Port("out", "output", U8)],
            [Connect(Ref("out", U8), Ref("out", U8))],
        )
        # out reads itself; fine for well-formedness (lint flags loops)
        CheckForms().run(CompileState(Circuit("Clean", [module])))
