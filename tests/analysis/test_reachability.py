"""Tiered reachability: static screen first, BMC only on the residue.

The acceptance case is the paper's §5.5 read-only-I$ finding: a cache
instantiated with its write-enable tied off has statically dead write
branches.  The static tier must prove every one of them unreachable with
zero SAT calls, BMC must agree wherever it is consulted, and the
verdicts must land in the coverage DB's exclusion table under canonical
(per-instance) keys.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "integration"))

from test_formal_findings import _ReadOnlyCache, write_branch_covers  # noqa: E402

from repro.analysis import apply_verdicts, tiered_reachability  # noqa: E402
from repro.analysis.reachability import (  # noqa: E402
    BMC_REACHABLE,
    STATIC_UNREACHABLE,
)
from repro.coverage import CoverageDB, apply_exclusions, instrument  # noqa: E402
from repro.hcl import elaborate  # noqa: E402


def _instrumented(metrics):
    circuit = elaborate(_ReadOnlyCache())
    return instrument(circuit, metrics=metrics, flatten=True)


class TestStaticTier:
    def test_write_branches_proven_dead_with_zero_sat_calls(self):
        state, db = _instrumented(["fsm"])
        dead = write_branch_covers(state)
        assert dead, "instrumentation should cover the write branches"
        result = tiered_reachability(state, bound=10, use_bmc=False)
        assert result.sat_solve_calls == 0
        for name in dead:
            verdict = result.verdicts[name]
            assert verdict.verdict == STATIC_UNREACHABLE, name
            assert verdict.tier == "static", name

    def test_write_path_line_covers_proven_dead(self):
        state, db = _instrumented(["line"])
        result = tiered_reachability(state, bound=10, use_bmc=False)
        assert result.sat_solve_calls == 0
        dead = result.by_verdict(STATIC_UNREACHABLE)
        assert dead, "the tied-off write path must have dead line covers"

    def test_fsm_write_states_proven_dead_statically(self):
        # the FSM state register's reachable set {idle, read_miss,
        # read_wait, respond} excludes both write states: value-set
        # precision, invisible to known-bits and intervals alone
        state, db = _instrumented(["fsm"])
        result = tiered_reachability(state, bound=10, use_bmc=False)
        write_covers = [
            n for n in result.verdicts if "write" in n.split(".")[-1]
        ]
        assert write_covers, "fsm instrumentation should name write states"
        for name in write_covers:
            assert result.verdicts[name].verdict == STATIC_UNREACHABLE, name

    def test_verdicts_use_canonical_instance_keys(self):
        state, db = _instrumented(["line"])
        result = tiered_reachability(state, bound=10, use_bmc=False)
        assert any(n.startswith("icache.") for n in result.verdicts)


class TestBmcAgreement:
    def test_bmc_never_sees_statically_resolved_covers(self):
        state, db = _instrumented(["fsm"])
        dead = set(write_branch_covers(state))
        result = tiered_reachability(state, bound=10, use_bmc=True)
        for name in dead:
            assert result.verdicts[name].tier == "static", name
        # the residue went to BMC and found witnesses (live branches)
        assert result.by_verdict(BMC_REACHABLE)
        assert result.sat_solve_calls > 0

    def test_bmc_confirms_static_verdicts(self):
        # force BMC onto everything (screen disabled via monkey-less
        # route: query the checker directly) and compare
        from repro.backends.formal.bmc import BoundedModelChecker

        state, db = _instrumented(["fsm"])
        dead = write_branch_covers(state)
        checker = BoundedModelChecker(state, 10, reset_cycles=1)
        for name in dead:
            assert not checker.query(name).reachable, (
                f"static tier called {name} dead but BMC found a witness"
            )


class TestDenominator:
    def test_apply_verdicts_excludes_only_static_proofs(self):
        state, db = _instrumented(["line"])
        result = tiered_reachability(state, bound=10, use_bmc=True)
        added = apply_verdicts(db, result)
        assert added == len(result.by_verdict(STATIC_UNREACHABLE))
        for name in result.by_verdict(STATIC_UNREACHABLE):
            assert db.is_excluded(name)
        # bound-relative BMC results must not shrink the denominator
        from repro.analysis.reachability import BMC_UNREACHABLE

        for name in result.by_verdict(BMC_UNREACHABLE):
            assert not db.is_excluded(name)

    def test_excluded_points_leave_the_percentage_base(self):
        state, db = _instrumented(["line"])
        result = tiered_reachability(state, bound=10, use_bmc=False)
        apply_verdicts(db, result)
        dead = result.by_verdict(STATIC_UNREACHABLE)
        counts = {name: 0 for name in result.verdicts}
        countable, excluded = apply_exclusions(counts, db)
        assert set(excluded) == set(dead)
        assert not set(countable) & set(dead)

    @staticmethod
    def _hierarchical_verdicts():
        # mirror the CLI flow: instrument keeps the hierarchy (reports
        # resolve canonical keys through it); reachability runs on a
        # separately flattened copy of the instrumented circuit
        from repro.passes import lower

        circuit = elaborate(_ReadOnlyCache())
        state, db = instrument(circuit, metrics=["line"])
        flat = lower(state.circuit, flatten=True)
        result = tiered_reachability(flat, bound=10, use_bmc=False)
        return state.circuit, db, result

    def test_line_report_denominator_shrinks(self):
        from repro.coverage import line_report

        circuit, db, result = self._hierarchical_verdicts()
        counts = {name: 0 for name in result.verdicts}
        before = line_report(db, counts, circuit).total
        apply_verdicts(db, result)
        after = line_report(db, counts, circuit).total
        assert result.by_verdict(STATIC_UNREACHABLE)
        # a cover may span several source lines, so the drop can exceed
        # the number of excluded covers; it must be strictly positive
        assert after < before, (before, after)

    def test_live_instance_keeps_shared_module_covers(self):
        # one dead instance of a module must not exclude the covers of a
        # live sibling instance: exclusion is per-instance, reports only
        # drop a (module, cover) pair when every instance excludes it
        from repro.coverage import InstanceTree, excluded_module_covers

        circuit, db, result = self._hierarchical_verdicts()
        apply_verdicts(db, result)
        tree = InstanceTree(circuit)
        dead = result.by_verdict(STATIC_UNREACHABLE)
        assert dead
        excluded = excluded_module_covers(db, tree)
        # single-instance design: every canonical exclusion maps through
        assert len(excluded) == len(dead)
        # forge a second, live path for the module: nothing may be excluded
        first_module, _ = tree.resolve(dead[0])
        tree.children[circuit.main]["phantom"] = first_module
        assert not excluded_module_covers(db, tree)

    def test_exclusions_survive_db_round_trip(self):
        db = CoverageDB()
        db.exclude("icache.l_2", "statically unreachable: predicate constant")
        loaded = CoverageDB.from_json(db.to_json())
        assert loaded.is_excluded("icache.l_2")
