"""`repro lint --explain` must track the rule registry and DESIGN.md §10.

Every registered rule must explain successfully, the explanation must
carry the registry's own title/severity/description (not a hand-written
copy that can drift), and — because the §10 catalog is itself
drift-guarded against the registry — each explained title must appear
verbatim in DESIGN.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.analysis  # noqa: F401  (registers every lint rule)
import repro.passes.check as check
from repro.analysis import RULES
from repro.cli import main

check._register_check_rules()


def _catalog_block() -> str:
    design = Path(__file__).resolve().parents[2] / "DESIGN.md"
    text = design.read_text()
    return text.split("<!-- rule-catalog:begin -->", 1)[1].split(
        "<!-- rule-catalog:end -->", 1
    )[0]


CATALOG = _catalog_block()


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_explain_matches_registry_and_design_catalog(rule_id, capsys):
    assert main(["lint", "--explain", rule_id]) == 0
    out = capsys.readouterr().out
    spec = RULES[rule_id]
    assert rule_id in out
    assert str(spec.severity) in out
    assert spec.title in out
    assert spec.description in out
    if spec.example:
        assert "example:" in out
    # §10 lists the same registry row (test_catalog_drift.py pins the
    # full table; this pins that --explain and the table agree)
    assert f"`{rule_id}`" in CATALOG
    assert spec.description in CATALOG


def test_explain_unknown_rule_lists_known_ids(capsys):
    assert main(["lint", "--explain", "no-such-rule"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule id" in err
    assert "width-trunc" in err
