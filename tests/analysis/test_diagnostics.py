"""Diagnostics engine: registry, suppression, rendering, LintPass."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    RULES,
    Diagnostics,
    LintPass,
    Severity,
    SuppressionIndex,
    lint_circuit,
    rule_catalog_markdown,
)
from repro.ir import (
    CLOCK,
    Circuit,
    Connect,
    Module,
    Port,
    Ref,
    SourceInfo,
    UIntType,
    prim,
)
from repro.passes import lower
from repro.passes.base import CompileState, PassError, compile_circuit

U4 = UIntType(4)
U8 = UIntType(8)


def _truncating_circuit(file: str, line: int) -> Circuit:
    """One width-trunc warning located at ``file:line``."""
    module = Module(
        "Trunc",
        [
            Port("clock", "input", CLOCK),
            Port("wide", "input", U8),
            Port("out", "output", U4),
        ],
        [
            Connect(
                Ref("out", U4),
                prim("tail", Ref("wide", U8), consts=[4]),
                info=SourceInfo(file, line),
            )
        ],
    )
    return Circuit("Trunc", [module])


class TestRegistry:
    def test_emit_refuses_undeclared_rule(self):
        diags = Diagnostics()
        with pytest.raises(KeyError, match="undeclared rule"):
            diags.emit("no-such-rule", "boom")

    def test_catalog_covers_every_registered_rule(self):
        # touching the entry points registers every rule module
        import repro.passes.check as check

        check._register_check_rules()
        catalog = rule_catalog_markdown()
        for rule_id in RULES:
            assert f"`{rule_id}`" in catalog


class TestSuppression:
    def test_marker_suppresses_matching_rule(self, tmp_path):
        src = tmp_path / "design.py"
        src.write_text(
            "line one\n"
            "out <<= wide  # lint: disable=width-trunc\n"
        )
        circuit = _truncating_circuit("design.py", 2)
        diags = lint_circuit(circuit, suppressions=SuppressionIndex([tmp_path]))
        found = diags.by_rule("width-trunc")
        assert len(found) == 1
        assert found[0].suppressed
        assert not diags.unsuppressed

    def test_marker_for_other_rule_does_not_suppress(self, tmp_path):
        src = tmp_path / "design.py"
        src.write_text("x\nout <<= wide  # lint: disable=sign-mix\n")
        circuit = _truncating_circuit("design.py", 2)
        diags = lint_circuit(circuit, suppressions=SuppressionIndex([tmp_path]))
        assert [d.rule for d in diags.unsuppressed] == ["width-trunc"]

    def test_bare_marker_suppresses_everything_on_line(self, tmp_path):
        src = tmp_path / "design.py"
        src.write_text("x\nout <<= wide  # lint: disable\n")
        circuit = _truncating_circuit("design.py", 2)
        diags = lint_circuit(circuit, suppressions=SuppressionIndex([tmp_path]))
        assert not diags.unsuppressed

    def test_marker_on_different_line_is_inert(self, tmp_path):
        src = tmp_path / "design.py"
        src.write_text("# lint: disable=width-trunc\nout <<= wide\n")
        circuit = _truncating_circuit("design.py", 2)
        diags = lint_circuit(circuit, suppressions=SuppressionIndex([tmp_path]))
        assert [d.rule for d in diags.unsuppressed] == ["width-trunc"]

    def test_comma_list_suppresses_each_listed_rule(self, tmp_path):
        src = tmp_path / "design.py"
        src.write_text(
            "x\nout <<= wide  # lint: disable=sign-mix, width-trunc\n"
        )
        circuit = _truncating_circuit("design.py", 2)
        diags = lint_circuit(circuit, suppressions=SuppressionIndex([tmp_path]))
        assert not diags.unsuppressed

    def test_comma_list_without_the_rule_does_not_suppress(self, tmp_path):
        src = tmp_path / "design.py"
        src.write_text(
            "x\nout <<= wide  # lint: disable=sign-mix,dead-signal\n"
        )
        circuit = _truncating_circuit("design.py", 2)
        diags = lint_circuit(circuit, suppressions=SuppressionIndex([tmp_path]))
        assert [d.rule for d in diags.unsuppressed] == ["width-trunc"]

    def test_disable_next_line_waives_the_line_below(self, tmp_path):
        src = tmp_path / "design.py"
        src.write_text(
            "# lint: disable-next-line=width-trunc\nout <<= wide\n"
        )
        circuit = _truncating_circuit("design.py", 2)
        diags = lint_circuit(circuit, suppressions=SuppressionIndex([tmp_path]))
        found = diags.by_rule("width-trunc")
        assert len(found) == 1 and found[0].suppressed
        assert not diags.unsuppressed

    def test_bare_disable_next_line_waives_everything_below(self, tmp_path):
        src = tmp_path / "design.py"
        src.write_text("# lint: disable-next-line\nout <<= wide\n")
        circuit = _truncating_circuit("design.py", 2)
        diags = lint_circuit(circuit, suppressions=SuppressionIndex([tmp_path]))
        assert not diags.unsuppressed

    def test_disable_next_line_does_not_waive_its_own_line(self, tmp_path):
        # regression: the same-line parser used to see the
        # "lint: disable" prefix inside "lint: disable-next-line=..."
        # and treat it as a bare suppress-everything marker
        src = tmp_path / "design.py"
        src.write_text(
            "x\nout <<= wide  # lint: disable-next-line=width-trunc\n"
        )
        circuit = _truncating_circuit("design.py", 2)
        diags = lint_circuit(circuit, suppressions=SuppressionIndex([tmp_path]))
        assert [d.rule for d in diags.unsuppressed] == ["width-trunc"]


class TestRendering:
    def test_text_format_carries_rule_and_locator(self):
        diags = lint_circuit(_truncating_circuit("narrow.py", 14))
        text = diags.format_text()
        assert "warning[width-trunc]" in text
        assert "@[narrow.py:14]" in text
        assert "1 warning" in text

    def test_sarif_round_trips_and_names_rules(self):
        diags = lint_circuit(_truncating_circuit("narrow.py", 14))
        doc = json.loads(diags.to_json())
        run = doc["runs"][0]
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "width-trunc" in rules
        result = next(
            r for r in run["results"] if r["ruleId"] == "width-trunc"
        )
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "narrow.py"
        assert location["region"]["startLine"] == 14

    def test_suppressed_findings_marked_in_sarif(self, tmp_path):
        (tmp_path / "design.py").write_text(
            "x\nout <<= wide  # lint: disable=width-trunc\n"
        )
        diags = lint_circuit(
            _truncating_circuit("design.py", 2),
            suppressions=SuppressionIndex([tmp_path]),
        )
        doc = diags.to_sarif()
        result = doc["runs"][0]["results"][0]
        assert result["suppressions"] == [{"kind": "inSource"}]


class TestLintPass:
    def test_findings_accumulate_in_state_metadata(self):
        state = CompileState(_truncating_circuit("narrow.py", 14))
        state = LintPass().run(state)
        sink = state.metadata[LintPass.METADATA_KEY]
        assert [d.rule for d in sink.unsuppressed] == ["width-trunc"]

    def test_strict_mode_raises_on_errors_only(self):
        # a warning-level finding must not abort the pipeline
        state = CompileState(_truncating_circuit("narrow.py", 14))
        LintPass(strict=True).run(state)

        loopy = Circuit(
            "Loop",
            [
                Module(
                    "Loop",
                    [Port("clock", "input", CLOCK), Port("o", "output", U8)],
                    [
                        Connect(Ref("w", U8), prim("not", Ref("w", U8))),
                        Connect(Ref("o", U8), Ref("w", U8)),
                    ],
                )
            ],
        )
        # build the self-loop through a wire so dataflow sees a cycle
        from repro.ir import DefWire

        loopy.modules[0].body.insert(0, DefWire("w", U8))
        with pytest.raises(PassError, match="comb-loop"):
            LintPass(strict=True).run(CompileState(loopy))

    def test_check_passes_mode_interleaves_lint(self):
        from repro.designs.gcd import Gcd
        from repro.hcl import elaborate

        state = lower(elaborate(Gcd()), check_passes=True)
        sink = state.metadata.get(LintPass.METADATA_KEY)
        assert sink is not None
        # a clean design stays clean through every pass
        assert not sink.errors
