"""README flag tables must cover exactly the argparse surface.

Five PRs of flag growth drifted the README more than once (PR 6's
``--model-cache-dir`` landed in the ``serve`` parser without a table
row).  This test extracts every option string from the live
``simulate``/``fuzz``/``serve``/``worker`` subparsers and diffs it against the
``### `repro <cmd>` flags`` table in README.md, in both directions:
an undocumented flag and a documented-but-removed flag both fail.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.cli import build_parser

README = Path(__file__).resolve().parents[2] / "README.md"

#: subcommands whose flags the README documents in a table
DOCUMENTED = ("simulate", "fuzz", "serve", "worker")


def _subparser(command: str):
    parser = build_parser()
    for action in parser._actions:
        choices = getattr(action, "choices", None)
        if choices and command in choices:
            return choices[command]
    raise AssertionError(f"no {command!r} subcommand in the CLI parser")


def parser_flags(command: str) -> set[str]:
    """Long option strings of one subcommand's parser (minus --help)."""
    flags = set()
    for action in _subparser(command)._actions:
        for opt in action.option_strings:
            if opt.startswith("--"):
                flags.add(opt)
    flags.discard("--help")
    return flags


def readme_flags(command: str) -> set[str]:
    """Flags documented in the ``### `repro <command>` flags`` table."""
    text = README.read_text()
    heading = f"### `repro {command}` flags"
    assert heading in text, f"README is missing the {heading!r} section"
    section = text.split(heading, 1)[1]
    # the table ends at the next heading
    section = re.split(r"\n#{2,3} ", section, maxsplit=1)[0]
    flags = {
        match.group(1)
        for match in re.finditer(r"^\| `(--[a-z][a-z0-9-]*)", section, re.M)
    }
    assert flags, f"no flag rows found under {heading!r}"
    return flags


@pytest.mark.parametrize("command", DOCUMENTED)
def test_readme_table_matches_parser(command):
    in_parser = parser_flags(command)
    in_readme = readme_flags(command)
    undocumented = sorted(in_parser - in_readme)
    stale = sorted(in_readme - in_parser)
    assert not undocumented and not stale, (
        f"README `repro {command}` flags table drifted: "
        f"undocumented={undocumented} stale={stale}"
    )


def test_backend_choices_documented():
    """The simulate table's --backend row lists the real choices."""
    choices = next(
        action.choices
        for action in _subparser("simulate")._actions
        if "--backend" in action.option_strings
    )
    documented = f"`--backend {{{','.join(choices)}}}`"
    assert documented in README.read_text(), (
        f"README must document the --backend row as {documented}"
    )
