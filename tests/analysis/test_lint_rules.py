"""One deliberately buggy design per lint rule.

Each test builds the smallest circuit exhibiting one defect, runs the
full lint entry point, and asserts the exact rule ID, severity, and
source line of the finding — the locator contract is what makes findings
actionable, so it is pinned here, not just "some finding appeared".
"""

from __future__ import annotations

from repro.analysis import Severity, lint_circuit
from repro.ir import (
    BOOL,
    CLOCK,
    TRUE,
    Circuit,
    Connect,
    Cover,
    DefInstance,
    DefNode,
    DefRegister,
    DefWire,
    InstPort,
    Module,
    Mux,
    Port,
    PrimOp,
    Ref,
    SIntType,
    SourceInfo,
    UIntLiteral,
    UIntType,
    prim,
)

U1 = UIntType(1)
U4 = UIntType(4)
U8 = UIntType(8)
CLK = Ref("clock", CLOCK)


def _top(body, ports=(), name="Buggy"):
    module = Module(
        name,
        [Port("clock", "input", CLOCK), *ports],
        list(body),
    )
    return Circuit(name, [module])


def _findings(circuit, rule):
    diags = lint_circuit(circuit)
    return [d for d in diags.findings if d.rule == rule]


def _only(circuit, rule):
    found = _findings(circuit, rule)
    assert len(found) == 1, [d.format() for d in found]
    return found[0]


class TestCombLoop:
    def test_wire_node_cycle_flagged_at_wire_decl(self):
        info = SourceInfo("loopy.py", 7)
        circuit = _top(
            [
                DefWire("a", U8, info=info),
                DefNode("b", prim("tail", prim("add", Ref("a", U8), UIntLiteral(1, 8)), consts=[1])),
                Connect(Ref("a", U8), Ref("b", U8)),
                Connect(Ref("out", U8), Ref("a", U8)),
            ],
            ports=[Port("out", "output", U8)],
        )
        diag = _only(circuit, "comb-loop")
        assert diag.severity == Severity.ERROR
        assert diag.info.file == "loopy.py"
        assert diag.info.line == 7
        assert "a" in diag.message

    def test_cross_module_cycle_uses_xmodule_rule(self):
        # child: out = not(in) combinationally; parent feeds out back to in
        child = Module(
            "Inverter",
            [
                Port("inp", "input", U1),
                Port("out", "output", U1),
            ],
            [Connect(Ref("out", U1), prim("not", Ref("inp", U1)))],
        )
        info = SourceInfo("xloop.py", 12)
        parent = Module(
            "Top",
            [Port("clock", "input", CLOCK), Port("o", "output", U1)],
            [
                DefInstance("u", "Inverter", info=info),
                Connect(InstPort("u", "inp", U1), InstPort("u", "out", U1), info=info),
                Connect(Ref("o", U1), InstPort("u", "out", U1)),
            ],
        )
        circuit = Circuit("Top", [child, parent])
        found = _findings(circuit, "comb-loop-xmodule")
        assert found, "cross-module loop not detected"
        diag = found[0]
        assert diag.severity == Severity.ERROR
        assert diag.module == "Top"
        assert diag.info.line == 12


class TestConstantCover:
    def test_always_false_cover(self):
        info = SourceInfo("deadcover.py", 21)
        circuit = _top(
            [
                Cover(
                    "never",
                    CLK,
                    prim("and", Ref("go", U1), UIntLiteral(0, 1)),
                    TRUE,
                    info=info,
                ),
            ],
            ports=[Port("go", "input", U1)],
        )
        diag = _only(circuit, "cover-const-false")
        assert diag.severity == Severity.WARNING
        assert diag.info.file == "deadcover.py"
        assert diag.info.line == 21
        assert diag.signal == "never"

    def test_always_true_cover(self):
        info = SourceInfo("truecover.py", 5)
        circuit = _top(
            [Cover("always", CLK, TRUE, TRUE, info=info)],
        )
        diag = _only(circuit, "cover-const-true")
        assert diag.severity == Severity.INFO
        assert diag.info.line == 5

    def test_fsm_dead_state_cover_via_value_sets(self):
        # reachable states {0, 1, 2, 5}: neither known-bits nor the
        # interval hull [0,5] excludes 3 — only the value-set component
        # proves eq(state, 3) constant-0
        u3 = UIntType(3)
        state = Ref("state", u3)

        def eqc(k):
            return prim("eq", state, UIntLiteral(k, 3))

        step = Mux.make(
            eqc(0),
            UIntLiteral(1, 3),
            Mux.make(
                eqc(1),
                UIntLiteral(2, 3),
                Mux.make(eqc(2), UIntLiteral(5, 3), UIntLiteral(0, 3)),
            ),
        )
        info = SourceInfo("fsm.py", 33)
        circuit = _top(
            [
                DefRegister(
                    "state", u3, CLK, Ref("reset", U1), UIntLiteral(0, 3)
                ),
                Connect(state, Mux.make(Ref("go", U1), step, state)),
                Cover("dead_state", CLK, eqc(3), TRUE, info=info),
                Cover("live_state", CLK, eqc(2), TRUE),
            ],
            ports=[
                Port("reset", "input", U1),
                Port("go", "input", U1),
            ],
        )
        found = _findings(circuit, "cover-const-false")
        assert [d.signal for d in found] == ["dead_state"]
        assert found[0].info.line == 33


class TestDeadCode:
    def test_unread_signal(self):
        info = SourceInfo("dead.py", 9)
        circuit = _top(
            [
                DefNode("scratch", prim("not", Ref("inp", U8)), info=info),
                Connect(Ref("out", U8), Ref("inp", U8)),
            ],
            ports=[Port("inp", "input", U8), Port("out", "output", U8)],
        )
        diag = _only(circuit, "unread-signal")
        assert diag.severity == Severity.WARNING
        assert diag.signal == "scratch"
        assert (diag.info.file, diag.info.line) == ("dead.py", 9)

    def test_unwritten_wire(self):
        info = SourceInfo("floating.py", 4)
        circuit = _top(
            [
                DefWire("floaty", U8, info=info),
                Connect(Ref("out", U8), Ref("floaty", U8)),
            ],
            ports=[Port("out", "output", U8)],
        )
        diag = _only(circuit, "unwritten-wire")
        assert diag.signal == "floaty"
        assert diag.info.line == 4
        # the unread symptom is not double-reported for the same wire
        assert not _findings(circuit, "unread-signal")

    def test_unused_input_port(self):
        info = SourceInfo("iface.py", 2)
        circuit = _top(
            [Connect(Ref("out", U8), Ref("used", U8))],
            ports=[
                Port("used", "input", U8),
                Port("ignored", "input", U8, info=info),
                Port("out", "output", U8),
            ],
        )
        diag = _only(circuit, "unused-port")
        assert diag.signal == "ignored"
        assert diag.info.line == 2


class TestWidths:
    def test_truncating_connect(self):
        info = SourceInfo("narrow.py", 14)
        circuit = _top(
            [
                Connect(
                    Ref("out", U4),
                    prim("tail", Ref("wide", U8), consts=[4]),
                    info=info,
                )
            ],
            ports=[Port("wide", "input", U8), Port("out", "output", U4)],
        )
        diag = _only(circuit, "width-trunc")
        assert diag.severity == Severity.WARNING
        assert (diag.info.file, diag.info.line) == ("narrow.py", 14)

    def test_explicit_user_slice_not_flagged(self):
        # a user-written bits() slice is intentional narrowing, not a lint
        circuit = _top(
            [
                Connect(
                    Ref("out", U4),
                    prim("bits", Ref("wide", U8), consts=[3, 0]),
                )
            ],
            ports=[Port("wide", "input", U8), Port("out", "output", U4)],
        )
        assert not _findings(circuit, "width-trunc")

    def test_sign_reinterpreting_connect(self):
        info = SourceInfo("signs.py", 8)
        s8 = SIntType(8)
        circuit = _top(
            [
                Connect(
                    Ref("out", U8),
                    prim("asUInt", Ref("signed_in", s8)),
                    info=info,
                )
            ],
            ports=[Port("signed_in", "input", s8), Port("out", "output", U8)],
        )
        diag = _only(circuit, "sign-mix")
        assert diag.severity == Severity.WARNING
        assert diag.info.line == 8


class TestClocks:
    def test_register_clocked_by_data(self):
        info = SourceInfo("clk.py", 3)
        circuit = _top(
            [
                DefRegister("r", U8, Ref("data_clk", U1), info=info),
                Connect(Ref("r", U8), Ref("inp", U8)),
                Connect(Ref("out", U8), Ref("r", U8)),
            ],
            ports=[
                Port("data_clk", "input", U1),
                Port("inp", "input", U8),
                Port("out", "output", U8),
            ],
        )
        diag = _only(circuit, "non-clock-clock")
        assert diag.severity == Severity.ERROR
        assert diag.signal == "r"
        assert diag.info.line == 3

    def test_unsynchronized_domain_crossing(self):
        info = SourceInfo("cdc.py", 17)
        circuit = _top(
            [
                DefRegister("ra", U8, Ref("clock", CLOCK)),
                DefRegister("rb", U8, Ref("clk2", CLOCK), info=info),
                Connect(Ref("ra", U8), Ref("inp", U8)),
                Connect(Ref("rb", U8), Ref("ra", U8)),
                Connect(Ref("out", U8), Ref("rb", U8)),
            ],
            ports=[
                Port("clk2", "input", CLOCK),
                Port("inp", "input", U8),
                Port("out", "output", U8),
            ],
        )
        diag = _only(circuit, "cross-domain")
        assert diag.severity == Severity.WARNING
        assert diag.signal == "rb"
        assert "ra" in diag.message
        assert diag.info.line == 17

    def test_cover_on_secondary_clock(self):
        info = SourceInfo("coverclk.py", 6)
        circuit = _top(
            [
                Cover("offbeat", Ref("clk2", CLOCK), Ref("go", U1), TRUE, info=info),
            ],
            ports=[Port("clk2", "input", CLOCK), Port("go", "input", U1)],
        )
        diag = _only(circuit, "cover-clock")
        assert diag.signal == "offbeat"
        assert diag.info.line == 6


class TestCleanDesignIsQuiet:
    def test_minimal_clean_module_has_no_findings(self):
        circuit = _top(
            [
                DefRegister("r", U8, CLK, Ref("reset", U1), UIntLiteral(0, 8)),
                Connect(Ref("r", U8), Ref("inp", U8)),
                Connect(Ref("out", U8), Ref("r", U8)),
                Cover("seen", CLK, prim("orr", Ref("r", U8)), TRUE),
            ],
            ports=[
                Port("reset", "input", U1),
                Port("inp", "input", U8),
                Port("out", "output", U8),
            ],
        )
        diags = lint_circuit(circuit)
        assert not diags.unsuppressed, [d.format() for d in diags.unsuppressed]
