"""No-findings sweep: every bundled design lints clean.

The lint rules are only trustworthy if the repository's own designs do
not trip them — each finding here is either a real design bug or a rule
false-positive, and both block the CI lint gate.
"""

from __future__ import annotations

import pytest

from pathlib import Path

from repro import designs
from repro.analysis import SuppressionIndex, lint_circuit
from repro.hcl import Module, elaborate


def _design_classes():
    for name in designs.__all__:
        obj = getattr(designs, name)
        if isinstance(obj, type) and issubclass(obj, Module) and obj is not Module:
            yield name, obj


DESIGNS = dict(_design_classes())

#: same resolution the CLI uses: in-source ``lint: disable`` markers in
#: the design files waive their findings (kept, but marked suppressed)
SUPPRESSIONS = SuppressionIndex([Path(designs.__file__).parent])


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_design_lints_clean(name):
    circuit = elaborate(DESIGNS[name]())
    diags = lint_circuit(circuit, suppressions=SUPPRESSIONS)
    findings = diags.unsuppressed
    assert not findings, "\n".join(d.format() for d in findings)


def test_sweep_covers_the_design_library():
    assert len(DESIGNS) >= 15, sorted(DESIGNS)
