"""ExpandWhens lowering: structure and semantics."""

import pytest

from repro.backends import TreadleBackend
from repro.hcl import Module, elaborate
from repro.ir import Connect, Cover, Ref, UIntLiteral, When, print_circuit
from repro.ir.traversal import walk_stmts
from repro.passes import CheckForms, CompileState, ExpandWhens, PassError, compile_circuit
from repro.passes.expand_whens import has_whens


def lower_only(circuit):
    return compile_circuit(circuit, [CheckForms(), ExpandWhens()])


class TestStructure:
    def build_example(self):
        class Example(Module):
            def build(self, m):
                a = m.input("a")
                b = m.input("b")
                out = m.output("out", 4)
                out <<= 0
                with m.when(a):
                    out <<= 1
                    with m.when(b):
                        out <<= 2
                m.cover(a & b, "both")

        return elaborate(Example())

    def test_no_whens_after(self):
        state = lower_only(self.build_example())
        assert not has_whens(state.circuit.top)

    def test_single_connect_per_target(self):
        state = lower_only(self.build_example())
        connects = [s for s in state.circuit.top.body if isinstance(s, Connect)]
        targets = [str(c.loc) for c in connects]
        assert len(targets) == len(set(targets))
        assert "out" in targets

    def test_idempotent(self):
        state = lower_only(self.build_example())
        again = ExpandWhens().run(state)
        assert print_circuit(again.circuit) == print_circuit(state.circuit)

    def test_cover_enable_gets_path_condition(self):
        class Gated(Module):
            def build(self, m):
                a = m.input("a")
                out = m.output("o", 1)
                out <<= 0
                with m.when(a):
                    m.cover(m.lit(1, 1), "inside")

        state = lower_only(elaborate(Gated()))
        cover = next(s for s in walk_stmts(state.circuit.top.body) if isinstance(s, Cover))
        # en must no longer be the constant true — the branch condition moved in
        assert not (isinstance(cover.en, UIntLiteral) and cover.en.value == 1)

    def test_register_defaults_to_itself(self):
        class Keep(Module):
            def build(self, m):
                en = m.input("en")
                out = m.output("o", 4)
                r = m.reg("r", 4, init=0)
                with m.when(en):
                    r <<= r + 1
                out <<= r

        state = lower_only(elaborate(Keep()))
        connect = next(
            s
            for s in state.circuit.top.body
            if isinstance(s, Connect) and isinstance(s.loc, Ref) and s.loc.name == "r"
        )
        # when en is false the mux falls back to the register itself
        assert "mux" in str(connect.expr)
        assert "r" in str(connect.expr)


class TestSemanticErrors:
    def test_uninitialized_wire_rejected(self):
        class Bad(Module):
            def build(self, m):
                w = m.wire("w", 4)
                out = m.output("o", 4)
                out <<= w

        with pytest.raises(PassError):
            lower_only(elaborate(Bad()))

    def test_unconnected_output_rejected(self):
        class Bad(Module):
            def build(self, m):
                m.output("o", 4)

        with pytest.raises(PassError):
            lower_only(elaborate(Bad()))

    def test_partial_when_assignment_ok_with_default(self):
        class Partial(Module):
            def build(self, m):
                a = m.input("a")
                out = m.output("o", 4)
                out <<= 0  # default makes partial branch assignment fine
                with m.when(a):
                    out <<= 5

        state = lower_only(elaborate(Partial()))
        sim = TreadleBackend().compile_state(state)
        sim.poke("a", 0)
        assert sim.peek("o") == 0
        sim.poke("a", 1)
        assert sim.peek("o") == 5


class TestLastConnectSemantics:
    def test_later_connect_wins(self):
        class Last(Module):
            def build(self, m):
                out = m.output("o", 4)
                out <<= 1
                out <<= 2

        sim = TreadleBackend().compile_state(lower_only(elaborate(Last())))
        assert sim.peek("o") == 2

    def test_when_overrides_earlier(self):
        class Override(Module):
            def build(self, m):
                a = m.input("a")
                out = m.output("o", 4)
                out <<= 1
                with m.when(a):
                    out <<= 2
                out <<= 3  # overrides everything

        sim = TreadleBackend().compile_state(lower_only(elaborate(Override())))
        sim.poke("a", 1)
        assert sim.peek("o") == 3
