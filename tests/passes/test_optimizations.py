"""ConstProp and DCE: correctness and semantic preservation."""

from hypothesis import given, settings

from repro.backends import TreadleBackend
from repro.backends.verilator import VerilatorBackend
from repro.hcl import Module, elaborate
from repro.ir import Cover, DefNode, DefRegister, UIntLiteral, u, prim
from repro.ir.traversal import walk_stmts
from repro.passes import (
    CheckForms,
    CompileState,
    ConstProp,
    DeadCodeElimination,
    ExpandWhens,
    compile_circuit,
    simplify_deep,
)

from ..helpers import random_circuits, random_stimulus, run_with_stimulus


class TestSimplify:
    def test_literal_folding(self):
        expr = prim("add", u(3, 4), u(4, 4))
        assert simplify_deep(expr) == UIntLiteral(7, 5)

    def test_and_identity(self):
        from repro.ir import Ref, UIntType

        x = Ref("x", UIntType(1))
        assert simplify_deep(prim("and", x, u(1, 1))) == x

    def test_mux_constant_condition(self):
        from repro.ir import Mux

        expr = Mux.make(u(1, 1), u(3, 4), u(5, 4))
        assert simplify_deep(expr) == UIntLiteral(3, 4)

    def test_double_negation(self):
        from repro.ir import Ref, UIntType

        x = Ref("x", UIntType(4))
        assert simplify_deep(prim("not", prim("not", x))) == x

    def test_full_width_bits_identity(self):
        from repro.ir import Ref, UIntType

        x = Ref("x", UIntType(4))
        assert simplify_deep(prim("bits", x, consts=[3, 0])) == x

    def test_eq_self(self):
        from repro.ir import Ref, UIntType

        x = Ref("x", UIntType(4))
        assert simplify_deep(prim("eq", x, x)) == UIntLiteral(1, 1)


class TestConstProp:
    def test_propagates_node_constants(self):
        class Consts(Module):
            def build(self, m):
                out = m.output("o", 8)
                a = m.node("a", m.lit(3, 8))
                b = m.node("b", m.lit(4, 8))
                out <<= a + b

        state = compile_circuit(
            elaborate(Consts()), [CheckForms(), ExpandWhens(), ConstProp()]
        )
        connects = [str(s.expr) for s in state.circuit.top.body if hasattr(s, "loc")]
        assert any("h7" in c for c in connects)

    @settings(max_examples=15, deadline=None)
    @given(random_circuits())
    def test_preserves_semantics(self, circuit):
        baseline = compile_circuit(circuit, [CheckForms()])
        optimized = compile_circuit(circuit, [CheckForms(), ConstProp()])
        stim = random_stimulus(7, 30)
        sim_a = TreadleBackend().compile_state(CompileState(baseline.circuit))
        sim_b = TreadleBackend().compile_state(CompileState(optimized.circuit))
        assert run_with_stimulus(sim_a, stim) == run_with_stimulus(sim_b, stim)
        assert sim_a.cover_counts() == sim_b.cover_counts()


class TestDce:
    def test_removes_unused_node(self):
        class Dead(Module):
            def build(self, m):
                a = m.input("a", 8)
                out = m.output("o", 8)
                m.node("unused", a + 1)
                out <<= a

        state = compile_circuit(
            elaborate(Dead()), [CheckForms(), ExpandWhens(), DeadCodeElimination()]
        )
        nodes = [s for s in state.circuit.top.body if isinstance(s, DefNode)]
        assert not any(s.name == "unused" for s in nodes)

    def test_keeps_cover_feeding_logic(self):
        class CoverFeed(Module):
            def build(self, m):
                a = m.input("a", 8)
                out = m.output("o", 1)
                out <<= a[0]
                hidden = m.reg("hidden", 8, init=0)
                hidden <<= hidden + a
                m.cover(hidden == 42, "answer")

        state = compile_circuit(
            elaborate(CoverFeed()),
            [CheckForms(), ExpandWhens(), ConstProp(), DeadCodeElimination()],
        )
        regs = [s for s in state.circuit.top.body if isinstance(s, DefRegister)]
        assert any(r.name == "hidden" for r in regs)
        covers = [s for s in state.circuit.top.body if isinstance(s, Cover)]
        assert covers

    def test_removes_dead_register(self):
        class DeadReg(Module):
            def build(self, m):
                a = m.input("a", 8)
                out = m.output("o", 8)
                out <<= a
                zombie = m.reg("zombie", 8, init=0)
                zombie <<= zombie + 1

        state = compile_circuit(
            elaborate(DeadReg()),
            [CheckForms(), ExpandWhens(), DeadCodeElimination()],
        )
        regs = [s for s in state.circuit.top.body if isinstance(s, DefRegister)]
        assert not regs

    def test_dont_touch_blocks_removal(self):
        from repro.ir import DontTouchAnnotation

        class Pinned(Module):
            def build(self, m):
                a = m.input("a", 8)
                out = m.output("o", 8)
                out <<= a
                zombie = m.reg("zombie", 8, init=0)
                zombie <<= zombie + 1

        circuit = elaborate(Pinned())
        circuit.annotations.append(DontTouchAnnotation(circuit.main, "zombie"))
        state = compile_circuit(
            circuit, [CheckForms(), ExpandWhens(), DeadCodeElimination()]
        )
        regs = [s for s in state.circuit.top.body if isinstance(s, DefRegister)]
        assert any(r.name == "zombie" for r in regs)

    @settings(max_examples=15, deadline=None)
    @given(random_circuits())
    def test_preserves_semantics(self, circuit):
        stim = random_stimulus(11, 30)
        sim_a = TreadleBackend().compile_state(
            compile_circuit(circuit, [CheckForms()])
        )
        optimized = compile_circuit(
            circuit, [CheckForms(), ConstProp(), DeadCodeElimination()]
        )
        sim_b = VerilatorBackend().compile_state(optimized)
        assert run_with_stimulus(sim_a, stim) == run_with_stimulus(sim_b, stim)
        assert sim_a.cover_counts() == sim_b.cover_counts()
