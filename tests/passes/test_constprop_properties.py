"""Property tests for the expression simplifier (``simplify_deep``).

Three invariants, driven by random expression trees:

* **idempotence** — simplifying twice changes nothing (the rewrite is a
  normal form, so the bounded fixpoint loop in ``ConstProp`` terminates
  for the right reason, not by luck);
* **type preservation** — width and signedness never change (a simplifier
  that narrows an expression corrupts every consumer downstream);
* **cross-validation against the abstract interpreter** — on all-constant
  trees the simplifier folds to a literal whose raw pattern the
  known-bits/interval/value-set interpreter independently proves; two
  implementations of the IR semantics (``simplify_expr`` via
  ``ops.eval_op`` fold order, ``absint.eval_primop`` via its transfer
  functions) must agree exactly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.absint import AbsVal, const, eval_primop
from repro.ir import (
    Expr,
    Mux,
    PrimOp,
    Ref,
    SIntType,
    UIntType,
    bit_width,
    is_signed,
    mask,
    print_expr,
)
from repro.ir.traversal import is_literal, literal_value
from repro.passes.constprop import simplify_deep

from ..helpers import expressions

FREE_LEAVES = [
    Ref("x", UIntType(8)),
    Ref("y", UIntType(4)),
    Ref("s", SIntType(6)),
    Ref("b", UIntType(1)),
]


def _abs_eval(expr: Expr) -> AbsVal:
    """Evaluate an all-constant expression with the abstract interpreter."""
    if is_literal(expr):
        return const(literal_value(expr), bit_width(expr.tpe))
    if isinstance(expr, Mux):
        cond = _abs_eval(expr.cond)
        arm = expr.tval if cond.const_value else expr.fval
        value = _abs_eval(arm)
        width = bit_width(expr.tpe)
        raw = value.const_value
        arm_width = bit_width(arm.tpe)
        if width > arm_width and is_signed(arm.tpe) and raw >> (arm_width - 1):
            raw |= mask(width) & ~mask(arm_width)  # sign-extend the pattern
        return const(raw, width)
    assert isinstance(expr, PrimOp), expr
    return eval_primop(expr, [_abs_eval(a) for a in expr.args])


class TestSimplifyDeep:
    @given(expressions(FREE_LEAVES, depth=3))
    @settings(max_examples=200, deadline=None)
    def test_idempotent(self, expr):
        once = simplify_deep(expr)
        twice = simplify_deep(once)
        assert print_expr(twice) == print_expr(once)

    @given(expressions(FREE_LEAVES, depth=3))
    @settings(max_examples=200, deadline=None)
    def test_preserves_width_and_sign(self, expr):
        out = simplify_deep(expr)
        assert bit_width(out.tpe) == bit_width(expr.tpe)
        assert is_signed(out.tpe) == is_signed(expr.tpe)

    @given(expressions([], depth=3))
    @settings(max_examples=200, deadline=None)
    def test_constant_trees_fold_to_literals(self, expr):
        out = simplify_deep(expr)
        assert is_literal(out), print_expr(out)

    @given(expressions([], depth=3))
    @settings(max_examples=200, deadline=None)
    def test_agrees_with_abstract_interpreter_on_constants(self, expr):
        folded = simplify_deep(expr)
        assert is_literal(folded)
        abstract = _abs_eval(expr)
        assert abstract.is_const, f"absint lost precision on {print_expr(expr)}"
        assert literal_value(folded) == abstract.const_value, print_expr(expr)
        assert abstract.width == bit_width(folded.tpe)

    @given(expressions(FREE_LEAVES, depth=3))
    @settings(max_examples=200, deadline=None)
    def test_free_expressions_stay_sound_under_absint(self, expr):
        """Simplification must not change what the interpreter can admit.

        With free leaves mapped to ⊤, the abstraction of the simplified
        tree must still admit every value the original's abstraction
        proves — checked on the known-bits component, where disagreement
        would mean one side derives a bit the other contradicts.
        """
        from repro.analysis.absint import top

        def abs_free(e: Expr) -> AbsVal:
            if is_literal(e):
                return const(literal_value(e), bit_width(e.tpe))
            if isinstance(e, Ref):
                return top(bit_width(e.tpe))
            if isinstance(e, Mux):
                cond, t, f = abs_free(e.cond), abs_free(e.tval), abs_free(e.fval)
                width = bit_width(e.tpe)
                if cond.is_const:
                    arm = t if cond.const_value else f
                    src = e.tval if cond.const_value else e.fval
                    from repro.analysis.absint import _extend

                    return _extend(arm, is_signed(src.tpe), width)
                from repro.analysis.absint import _extend, join

                return join(
                    _extend(t, is_signed(e.tval.tpe), width),
                    _extend(f, is_signed(e.fval.tpe), width),
                )
            assert isinstance(e, PrimOp)
            return eval_primop(e, [abs_free(a) for a in e.args])

        before = abs_free(expr)
        after = abs_free(simplify_deep(expr))
        # any concretely-provable bit pattern of the simplified tree must
        # be admitted by the original abstraction and vice versa where
        # both are constant
        if before.is_const and after.is_const:
            assert before.const_value == after.const_value, print_expr(expr)
