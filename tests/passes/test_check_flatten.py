"""CheckForms validation and instance flattening."""

import pytest

from repro.backends import TreadleBackend
from repro.backends.verilator import VerilatorBackend
from repro.hcl import Module, elaborate
from repro.ir import (
    CLOCK,
    Circuit,
    Connect,
    Cover,
    DefInstance,
    DefNode,
    Module as IrModule,
    Port,
    PrimOp,
    Ref,
    TRUE,
    UIntType,
    prim,
    u,
)
from repro.passes import CheckForms, CompileState, PassError, lower


def check(circuit):
    return CheckForms().run(CompileState(circuit))


def minimal_module(body, ports=None):
    ports = ports or [
        Port("clock", "input", CLOCK),
        Port("x", "input", UIntType(4)),
        Port("o", "output", UIntType(4)),
    ]
    return Circuit("T", [IrModule("T", ports, body)])


class TestCheckForms:
    def test_accepts_valid(self):
        circuit = minimal_module(
            [Connect(Ref("o", UIntType(4)), Ref("x", UIntType(4)))]
        )
        check(circuit)

    def test_rejects_undeclared_use(self):
        circuit = minimal_module([Connect(Ref("o", UIntType(4)), Ref("ghost", UIntType(4)))])
        with pytest.raises(PassError):
            check(circuit)

    def test_rejects_type_mismatch_on_ref(self):
        circuit = minimal_module([Connect(Ref("o", UIntType(4)), Ref("x", UIntType(8)))])
        with pytest.raises(PassError):
            check(circuit)

    def test_rejects_truncating_connect(self):
        circuit = minimal_module(
            [Connect(Ref("o", UIntType(4)), prim("cat", Ref("x", UIntType(4)), Ref("x", UIntType(4))))]
        )
        with pytest.raises(PassError):
            check(circuit)

    def test_rejects_driving_input(self):
        circuit = minimal_module(
            [
                Connect(Ref("x", UIntType(4)), u(0, 4)),
                Connect(Ref("o", UIntType(4)), Ref("x", UIntType(4))),
            ]
        )
        with pytest.raises(PassError):
            check(circuit)

    def test_rejects_duplicate_declaration(self):
        circuit = minimal_module(
            [
                DefNode("n", u(1, 4)),
                DefNode("n", u(2, 4)),
                Connect(Ref("o", UIntType(4)), Ref("n", UIntType(4))),
            ]
        )
        with pytest.raises(PassError):
            check(circuit)

    def test_rejects_clock_as_data(self):
        circuit = minimal_module(
            [Connect(Ref("o", UIntType(4)), PrimOp.make("pad", (Ref("clock", CLOCK),), (4,)))]
        )
        with pytest.raises(PassError):
            check(circuit)

    def test_rejects_wide_cover_predicate(self):
        circuit = minimal_module(
            [
                Cover("c", Ref("clock", CLOCK), Ref("x", UIntType(4)), TRUE),
                Connect(Ref("o", UIntType(4)), Ref("x", UIntType(4))),
            ]
        )
        with pytest.raises(PassError):
            check(circuit)

    def test_rejects_duplicate_cover_names(self):
        pred = prim("orr", Ref("x", UIntType(4)))
        circuit = minimal_module(
            [
                Cover("c", Ref("clock", CLOCK), pred, TRUE),
                Cover("c", Ref("clock", CLOCK), pred, TRUE),
                Connect(Ref("o", UIntType(4)), Ref("x", UIntType(4))),
            ]
        )
        with pytest.raises(PassError):
            check(circuit)

    def test_rejects_unknown_instance_module(self):
        circuit = minimal_module(
            [
                DefInstance("i", "Nope"),
                Connect(Ref("o", UIntType(4)), Ref("x", UIntType(4))),
            ]
        )
        with pytest.raises(PassError):
            check(circuit)


class _Child(Module):
    def build(self, m):
        a = m.input("a", 8)
        out = m.output("o", 8)
        r = m.reg("r", 8, init=0)
        r <<= a
        out <<= r
        m.cover(a == 0xFF, "maxed")


class _Parent(Module):
    def build(self, m):
        a = m.input("a", 8)
        out = m.output("o", 8)
        c0 = m.instance("first", _Child())
        c1 = m.instance("second", _Child())
        c0.a <<= a
        c1.a <<= c0.o
        out <<= c1.o


class TestFlatten:
    def test_one_module_remains(self):
        state = lower(elaborate(_Parent()), flatten=True)
        assert len(state.circuit.modules) == 1
        assert not any(
            isinstance(s, DefInstance) for s in state.circuit.top.body
        )

    def test_cover_paths_canonical(self):
        state = lower(elaborate(_Parent()), flatten=True)
        assert set(state.cover_paths.values()) == {"first.maxed", "second.maxed"}

    def test_flat_matches_hierarchical_simulation(self):
        circuit = elaborate(_Parent())
        hier = TreadleBackend().compile(circuit)
        flat = VerilatorBackend().compile_state(lower(circuit, flatten=True))
        import random

        rng = random.Random(3)
        for cycle in range(100):
            value = rng.randint(0, 255)
            for sim in (hier, flat):
                sim.poke("reset", 1 if cycle == 0 else 0)
                sim.poke("a", value)
            assert hier.peek("o") == flat.peek("o")
            hier.step()
            flat.step()
        assert hier.cover_counts() == flat.cover_counts()

    def test_statement_order_is_parseable(self):
        from repro.ir import parse_circuit, print_circuit

        state = lower(elaborate(_Parent()), flatten=True)
        text = print_circuit(state.circuit)
        assert print_circuit(parse_circuit(text)) == text

    def test_undriven_instance_input_rejected(self):
        class BadParent(Module):
            def build(self, m):
                out = m.output("o", 8)
                child = m.instance("c", _Child())
                out <<= child.o  # never drives child.a

        with pytest.raises(PassError):
            lower(elaborate(BadParent()), flatten=True)
