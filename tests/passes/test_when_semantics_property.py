"""Property test: ExpandWhens implements last-connect semantics exactly.

A random nested when-tree is built twice: once as hardware through the HCL
and once as a Python golden model (a closure over the same decision tree).
For random inputs, the lowered+optimized circuit must agree with the
golden model on every backend.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.backends import TreadleBackend, VerilatorBackend
from repro.hcl import Module, elaborate
from repro.coverage import instrument


@st.composite
def when_trees(draw, depth=0):
    """A random statement tree: assignments and nested conditionals."""
    statements = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.integers(0, 2 if depth < 3 else 1))
        if kind in (0, 1):
            statements.append(("assign", draw(st.integers(0, 15))))
        else:
            cond = draw(st.sampled_from(["a", "b", "c", "d0"]))
            conseq = draw(when_trees(depth=depth + 1))
            alt = draw(when_trees(depth=depth + 1)) if draw(st.booleans()) else []
            statements.append(("when", cond, conseq, alt))
    return statements


def golden(tree, inputs):
    """Interpret the tree with last-assignment-wins semantics."""
    value = [0]

    def run(statements):
        for stmt in statements:
            if stmt[0] == "assign":
                value[0] = stmt[1]
            else:
                _, cond, conseq, alt = stmt
                if inputs[cond]:
                    run(conseq)
                else:
                    run(alt)

    run(tree)
    return value[0]


class _TreeModule(Module):
    def __init__(self, tree):
        super().__init__()
        self.tree = tree

    def build(self, m):
        a = m.input("a")
        b = m.input("b")
        c = m.input("c")
        d = m.input("d", 4)
        out = m.output("out", 4)
        conditions = {"a": a, "b": b, "c": c, "d0": d[0]}
        out <<= 0

        def emit(statements):
            for stmt in statements:
                if stmt[0] == "assign":
                    out.assign(stmt[1])
                else:
                    _, cond, conseq, alt = stmt
                    with m.when(conditions[cond]):
                        emit(conseq)
                    if alt:
                        with m.otherwise():
                            emit(alt)

        emit(self.tree)


@settings(max_examples=40, deadline=None)
@given(when_trees(), st.integers(0, 2**32))
def test_when_lowering_matches_golden_model(tree, seed):
    state, _db = instrument(elaborate(_TreeModule(tree)), metrics=["line"])
    sims = [
        TreadleBackend().compile_state(state),
        VerilatorBackend().compile_state(state),
    ]
    rng = random.Random(seed)
    for _ in range(10):
        inputs = {
            "a": rng.randint(0, 1),
            "b": rng.randint(0, 1),
            "c": rng.randint(0, 1),
            "d": rng.randint(0, 15),
        }
        golden_inputs = {
            "a": inputs["a"],
            "b": inputs["b"],
            "c": inputs["c"],
            "d0": inputs["d"] & 1,
        }
        expected = golden(tree, golden_inputs)
        for sim in sims:
            for name, value in inputs.items():
                sim.poke(name, value)
            assert sim.peek("out") == expected
            sim.step()
