"""The native C backend must be indistinguishable from the interpreter.

Same contract the treadle JIT is held to (``test_treadle_jit.py``): the
tree-walking interpreter is the executable-semantics reference and the
cc-compiled artifact is an optimization that may never change observable
behaviour — outputs, cover counts, stop behaviour, value probes, and the
wide/signed arithmetic edge cases where C's fixed-width integers (and
their undefined behaviours) diverge most easily from Python's
arbitrary-precision semantics.

Also pins the operational contract: content-addressed ``.so`` reuse,
compiler-identity cache invalidation, truncated-artifact recovery, and
the graceful no-compiler fallback to the JIT tier.
"""

import shutil
import warnings

import pytest
from hypothesis import given, settings

from repro.backends import ModelCache, TreadleBackend
from repro.backends.cbackend import (
    CBackend,
    CSimulation,
    artifact_ok,
    compiler_id,
    find_compiler,
    generate_c_source,
    word_width,
)
from repro.backends.model import build_model
from repro.backends.treadle import TreadleSimulation
from repro.hcl import Module, elaborate
from repro.passes import lower
from repro.runtime.telemetry import obs

from ..helpers import random_circuits, random_stimulus, run_with_stimulus

HAVE_CC = find_compiler() is not None

needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler on PATH")


class _Counter(Module):
    def build(self, m):
        en = m.input("en")
        out = m.output("count", 8)
        cnt = m.reg("cnt", 8, init=0)
        with m.when(en):
            cnt <<= cnt + 1
        out <<= cnt
        m.cover(cnt == 3, "at_three")
        m.stop(cnt == 20, 7, "too_far")


class _WideSigned(Module):
    """Every C-hostile operation in one design: 128-bit intermediates,
    signed division/remainder (including the INT_MIN / -1 shape), and
    signed dynamic shifts whose counts can exceed the word width."""

    def build(self, m):
        a = m.input("a", 64)
        b = m.input("b", 64)
        mul_lo = m.output("mul_lo", 64)
        sdiv = m.output("sdiv", 64)
        srem = m.output("srem", 64)
        sshr = m.output("sshr", 64)
        mul_lo <<= a * b  # 128-bit product, truncated
        sa, sb = a.as_sint(), b.as_sint()
        sdiv <<= (sa // sb).as_uint()[63:0]
        srem <<= (sa % sb).as_uint()[63:0]
        sshr <<= (sa >> b[6:0]).as_uint()[63:0]


def _pair(circuit_or_state, compiled=False):
    if compiled:
        c = CBackend().compile_state(circuit_or_state)
        ref = TreadleBackend(jit=False).compile_state(circuit_or_state)
    else:
        c = CBackend().compile(circuit_or_state)
        ref = TreadleBackend(jit=False).compile(circuit_or_state)
    assert ref._plan is None
    return c, ref


@needs_cc
@settings(max_examples=25, deadline=None)
@given(random_circuits())
def test_c_matches_interpreter_on_random_circuits(circuit):
    stim = random_stimulus(97, 50)
    state = lower(circuit, flatten=True)
    # Random circuits can exceed the 128-bit emitter limit; the backend
    # then degrades to the JIT tier, which must *also* match exactly.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        sim, ref = _pair(state, compiled=True)
    assert run_with_stimulus(sim, stim) == run_with_stimulus(ref, stim)
    assert sim.cover_counts() == ref.cover_counts()


@needs_cc
@settings(max_examples=10, deadline=None)
@given(random_circuits(n_nodes=4, n_regs=1))
def test_c_batched_equals_single_stepping(circuit):
    state = lower(circuit, flatten=True)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        batched, single = _pair(state, compiled=True)
    for sim in (batched, single):
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        sim.poke("in_a", 0xA5)
        sim.poke("in_b", 0x5)
        sim.poke("in_c", 1)
    batched.step(48)
    for _ in range(48):
        single.step(1)
    assert batched.peek("out") == single.peek("out")
    assert batched.cover_counts() == single.cover_counts()
    assert batched.cycle == single.cycle


@needs_cc
class TestWideAndSigned:
    """Deterministically pin the 128-bit word path (hypothesis circuits
    mostly stay narrow, and >128-bit ones fall back entirely)."""

    CASES = [
        (0, 0),  # division and remainder by zero
        (5, 0),
        (0, 5),
        (2**64 - 1, 2**64 - 1),  # -1 / -1 signed
        (2**63, 2**64 - 1),  # INT_MIN / -1: UB in C if computed naively
        (2**63, 1),
        (1, 2**63),
        (2**63 - 1, 2**63),
        (0xDEADBEEFCAFEBABE, 0x123456789ABCDEF0),
        (2**63, 2**63),
    ]

    def _sims(self):
        circuit = elaborate(_WideSigned())
        assert word_width(build_model(circuit)) == 128
        sim = CBackend().compile(circuit)
        assert isinstance(sim, CSimulation)  # must not have fallen back
        return sim, TreadleBackend(jit=False).compile(circuit)

    def test_wide_signed_edge_cases(self):
        sim, ref = self._sims()
        for a, b in self.CASES:
            for s in (sim, ref):
                s.poke("a", a)
                s.poke("b", b)
            for port in ("mul_lo", "sdiv", "srem", "sshr"):
                assert sim.peek(port) == ref.peek(port), (port, a, b)

    def test_wide_signed_random_sweep(self):
        import random

        sim, ref = self._sims()
        rng = random.Random(1337)
        for _ in range(300):
            a, b = rng.getrandbits(64), rng.getrandbits(64)
            for s in (sim, ref):
                s.poke("a", a)
                s.poke("b", b)
            for port in ("mul_lo", "sdiv", "srem", "sshr"):
                assert sim.peek(port) == ref.peek(port), (port, a, b)


@needs_cc
class TestStops:
    def test_stop_parity_batched(self):
        sim, ref = _pair(elaborate(_Counter()))
        for s in (sim, ref):
            s.poke("reset", 1)
            s.step()
            s.poke("reset", 0)
            s.poke("en", 1)
        sim_result = sim.step(400)
        ref_result = ref.step(400)
        assert sim_result == ref_result
        assert sim_result.stopped and sim_result.stop_name == "too_far"
        assert sim_result.exit_code == 7
        # halted sims refuse further cycles identically
        assert sim.step(5) == ref.step(5)
        assert sim.stopped and ref.stopped

    def test_stop_parity_with_probes(self):
        # value probes force the per-cycle path; stops must still fire
        sim, ref = _pair(elaborate(_Counter()))
        for s in (sim, ref):
            s.watch_values("cnt")
            s.poke("reset", 1)
            s.step()
            s.poke("reset", 0)
            s.poke("en", 1)
        assert sim.step(400) == ref.step(400)
        assert sim.value_histogram("cnt") == ref.value_histogram("cnt")

    def test_zero_cycle_step(self):
        sim, ref = _pair(elaborate(_Counter()))
        assert sim.step(0) == ref.step(0)


@needs_cc
class TestProbes:
    def test_value_histogram_parity(self):
        sim, ref = _pair(elaborate(_Counter()))
        for s in (sim, ref):
            s.watch_values("cnt")
            s.poke("reset", 1)
            s.step()
            s.poke("reset", 0)
            s.poke("en", 1)
            s.step(6)
        assert sim.value_histogram("cnt") == ref.value_histogram("cnt")
        assert sim.peek_internal("cnt") == ref.peek_internal("cnt")

    def test_unknown_names_raise_keyerror(self):
        sim = CBackend().compile(elaborate(_Counter()))
        with pytest.raises(KeyError):
            sim.poke("count", 1)  # outputs are not pokeable
        with pytest.raises(KeyError):
            sim.peek("cnt")  # internals need peek_internal
        with pytest.raises(KeyError):
            sim.peek_internal("nonexistent")
        with pytest.raises(KeyError):
            sim.watch_values("nonexistent")


@needs_cc
class TestArtifactSharing:
    def test_cache_shares_one_library_across_sims(self):
        cache = ModelCache(directory=None)
        backend = CBackend(cache=cache)
        circuit = elaborate(_Counter())
        first = backend.compile(circuit)
        second = backend.compile(circuit)
        assert first._clib is second._clib  # dlopen'd exactly once
        assert cache.misses == 1 and cache.hits == 1

    def test_fork_shares_the_library(self):
        sim = CBackend().compile(elaborate(_Counter()))
        clone = sim.fork()
        assert clone._clib is sim._clib
        clone.poke("reset", 1)
        clone.step()
        clone.poke("reset", 0)
        clone.poke("en", 1)
        clone.step(3)
        assert clone.peek("count") == 3
        assert sim.cycle == 0  # parent untouched

    def test_so_artifact_survives_to_a_second_process(self, tmp_path):
        """A fresh backend over the same cache dir reuses the .so."""
        circuit = elaborate(_Counter())
        CBackend(cache=ModelCache(tmp_path)).compile(circuit)
        artifacts = list(tmp_path.glob("*.so"))
        assert len(artifacts) == 1
        mtime = artifacts[0].stat().st_mtime_ns
        # new backend + new cache instance = a second process's view
        sim = CBackend(cache=ModelCache(tmp_path)).compile(circuit)
        sim.poke("en", 1)
        sim.step(3)
        assert sim.peek("count") == 3
        assert artifacts[0].stat().st_mtime_ns == mtime  # not rebuilt


@needs_cc
class TestCompilerIdentityInKey:
    def test_compiler_version_change_invalidates_entries(self, tmp_path, monkeypatch):
        import repro.backends.cbackend as cbackend

        circuit = elaborate(_Counter())
        monkeypatch.setattr(cbackend, "compiler_id", lambda cc: "cc 1.0")
        cache = ModelCache(tmp_path)
        CBackend(cache=cache).compile(circuit)
        assert (cache.misses, cache.hits) == (1, 0)
        # same toolchain: disk entry + .so are reused by a fresh process
        cache_same = ModelCache(tmp_path)
        CBackend(cache=cache_same).compile(circuit)
        assert (cache_same.misses, cache_same.hits) == (0, 1)
        # upgraded toolchain: the old entry must not be reused
        monkeypatch.setattr(cbackend, "compiler_id", lambda cc: "cc 2.0")
        cache_new = ModelCache(tmp_path)
        CBackend(cache=cache_new).compile(circuit)
        assert cache_new.misses == 1

    def test_compiler_id_reads_version_banner(self):
        cc = find_compiler()
        banner = compiler_id(cc)
        assert banner and "\n" not in banner


@needs_cc
class TestCorruption:
    def test_truncated_so_is_rebuilt_not_dlopened(self, tmp_path):
        """A torn .so must cost a recompile, never a SIGBUS.

        dlopen of a truncated ELF can kill the process outright, so the
        loader verifies the sha256 sidecar first.  Simulates a writer
        that crashed mid-write on another machine: same cache entry and
        sidecar, half the artifact bytes.
        """
        circuit = elaborate(_Counter())
        CBackend(cache=ModelCache(tmp_path)).compile(circuit)
        (so_path,) = tmp_path.glob("*.so")
        intact = so_path.read_bytes()

        other = tmp_path / "other-machine"
        other.mkdir()
        for entry in tmp_path.glob("*.model.pkl"):
            shutil.copy(entry, other / entry.name)
        shutil.copy(
            so_path.with_name(so_path.name + ".sha256"),
            other / (so_path.name + ".sha256"),
        )
        (other / so_path.name).write_bytes(intact[: len(intact) // 2])
        assert not artifact_ok(other / so_path.name)

        sim = CBackend(cache=ModelCache(other)).compile(circuit)
        sim.poke("en", 1)
        sim.step(4)
        assert sim.peek("count") == 4
        # the torn artifact was replaced by a fresh, verifiable build
        assert artifact_ok(other / so_path.name)

    def test_missing_sidecar_triggers_rebuild(self, tmp_path):
        circuit = elaborate(_Counter())
        CBackend(cache=ModelCache(tmp_path)).compile(circuit)
        (so_path,) = tmp_path.glob("*.so")
        so_path.with_name(so_path.name + ".sha256").unlink()
        assert not artifact_ok(so_path)
        sim = CBackend(cache=ModelCache(tmp_path)).compile(circuit)
        sim.poke("en", 1)
        sim.step(2)
        assert sim.peek("count") == 2


class TestFallback:
    def test_no_compiler_degrades_to_jit_with_one_warning(self, monkeypatch):
        monkeypatch.setattr(shutil, "which", lambda name, *a, **kw: None)
        circuit = elaborate(_Counter())
        backend = CBackend()
        obs.enable()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = backend.compile(circuit)
                second = backend.compile(circuit)
            fallbacks = obs.metrics.get("repro_backend_fallback_total")
            assert fallbacks.value(backend="c", reason="no-compiler") == 2
        finally:
            obs.disable()
            obs.reset()
        # degraded but fully functional: the JIT tier takes over
        assert isinstance(first, TreadleSimulation)
        assert isinstance(second, TreadleSimulation)
        # exactly one warning per backend instance, not one per compile
        relevant = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(relevant) == 1
        assert "no-compiler" in str(relevant[0].message)
        first.poke("en", 1)
        first.step(3)
        assert first.peek("count") == 3

    @needs_cc
    def test_unsupported_width_degrades_to_jit(self):
        class Huge(Module):
            def build(self, m):
                a = m.input("a", 100)
                b = m.input("b", 100)
                o = m.output("o", 100)
                o <<= a * b  # 200-bit intermediate

        circuit = elaborate(Huge())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sim = CBackend().compile(circuit)
        assert isinstance(sim, TreadleSimulation)
        assert any("unsupported-width" in str(w.message) for w in caught)
        ref = TreadleBackend(jit=False).compile(circuit)
        for s in (sim, ref):
            s.poke("a", 2**99 + 12345)
            s.poke("b", 3)
        assert sim.peek("o") == ref.peek("o")


@needs_cc
class TestGeneratedSource:
    def test_source_is_c99_with_stable_abi_symbols(self):
        model = build_model(elaborate(_Counter()))
        source = generate_c_source(model)
        for symbol in (
            "repro_create", "repro_destroy", "repro_reset", "repro_settle",
            "repro_step", "repro_halted", "repro_poke", "repro_peek",
            "repro_read_covers", "repro_abi_version",
        ):
            assert symbol in source
        assert "__uint128_t" not in source  # 8-bit counter stays on u64

    def test_word_width_escalates_to_128(self):
        model = build_model(elaborate(_WideSigned()))
        assert word_width(model) == 128
        assert "__uint128_t" in generate_c_source(model)
