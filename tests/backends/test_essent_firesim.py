"""ESSENT activity gating and the FireSim scan chain / resource model."""

import pytest

from repro.backends import EssentBackend, TreadleBackend, VerilatorBackend
from repro.backends.firesim import (
    CoverageScanChainPass,
    FireSimBackend,
    ScanChainInfo,
    coverage_counter_resources,
    estimate_fmax,
    estimate_module,
)
from repro.hcl import Module, elaborate
from repro.passes import PassError, lower


class _Gated(Module):
    def build(self, m):
        en = m.input("en")
        data = m.input("data", 8)
        out = m.output("out", 8)
        acc = m.reg("acc", 8, init=0)
        with m.when(en):
            acc <<= acc + data
        out <<= acc
        m.cover(acc == 0x10, "sixteen")


class TestEssent:
    def test_activity_gating_skips_idle_cycles(self):
        sim = EssentBackend().compile(elaborate(_Gated()))
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        sim.poke("en", 0)
        sim.poke("data", 5)
        sim.step(100)  # nothing changes: comb sweep should be skipped
        evals, skips = sim.activity_stats
        assert skips > 80
        assert sim.peek("out") == 0

    def test_gating_does_not_change_results(self):
        a = EssentBackend().compile(elaborate(_Gated()))
        b = TreadleBackend().compile(elaborate(_Gated()))
        import random

        rng = random.Random(5)
        for cycle in range(200):
            frame = {
                "reset": 1 if cycle == 0 else 0,
                "en": rng.randint(0, 1) if cycle % 10 == 0 else 0,
                "data": rng.randint(0, 255) if cycle % 20 == 0 else 17,
            }
            for sim in (a, b):
                for name, value in frame.items():
                    sim.poke(name, value)
            assert a.peek("out") == b.peek("out")
            a.step()
            b.step()
        assert a.cover_counts() == b.cover_counts()


class TestScanChainPass:
    def test_requires_flat_circuit(self):
        class Parent(Module):
            def build(self, m):
                child = m.instance("c", _Gated())
                child.en <<= 0
                child.data <<= 0
                out = m.output("o", 8)
                out <<= child.out

        state = lower(elaborate(Parent()))  # not flattened
        with pytest.raises(PassError):
            CoverageScanChainPass(8).run(state)

    def test_removes_covers_adds_ports(self):
        state = lower(elaborate(_Gated()), flatten=True)
        chain_pass = CoverageScanChainPass(8)
        out = chain_pass.run(state)
        from repro.ir import Cover

        assert not any(isinstance(s, Cover) for s in out.circuit.top.body)
        port_names = {p.name for p in out.circuit.top.ports}
        assert {"cover_en", "scan_en", "scan_in", "scan_out"} <= port_names
        assert chain_pass.info.chain == ["sixteen"]

    def test_decode_rejects_wrong_length(self):
        info = ScanChainInfo(4, ["a", "b"])
        with pytest.raises(ValueError):
            info.decode([0] * 7)

    def test_decode_order(self):
        info = ScanChainInfo(2, ["first", "second"])
        # first bit out is the MSB of the LAST counter
        bits = [1, 0, 0, 1]  # second = 0b10 = 2, first = 0b01 = 1
        assert info.decode(bits) == {"second": 2, "first": 1}

    def test_counter_saturates_in_hardware(self):
        state = lower(elaborate(_Gated()), flatten=True)
        firesim = FireSimBackend(counter_width=2).compile_state(state)
        firesim.poke("reset", 1)
        firesim.step()
        firesim.poke("reset", 0)
        firesim.poke("en", 0)
        firesim.poke("data", 0)
        # acc stays 0 -> cover 'sixteen' is false; drive acc to 0x10 once
        # instead: cover pred is acc==16; hold en so acc cycles through all
        firesim.poke("en", 1)
        firesim.poke("data", 0)
        # acc stays 0 + 0 = 0 ... choose data so acc==16 often: data=16, then
        # acc alternates 16,32,... only first hit counts; simpler: data=0 and
        # poke acc directly is impossible -> drive data=16 then 0
        firesim.poke("data", 16)
        firesim.step()
        firesim.poke("data", 0)
        firesim.step(20)  # acc stays 16: cover true every cycle, saturates at 3
        assert firesim.cover_counts()["sixteen"] == 3


class TestResourceModel:
    def test_counter_resources_scale_linearly(self):
        small = coverage_counter_resources(100, 8)
        double_width = coverage_counter_resources(100, 16)
        double_count = coverage_counter_resources(200, 8)
        assert double_width.ffs == 2 * small.ffs
        assert double_count.luts == 2 * small.luts

    def test_fmax_decreases_with_width(self):
        state = lower(elaborate(_Gated()), flatten=True)
        base = estimate_module(state.circuit.top)
        fmaxes = []
        for width in (1, 8, 16, 32, 48):
            est = estimate_fmax(base, n_covers=5000, counter_width=width, seed="t")
            assert est.fmax_mhz is not None
            fmaxes.append(est.fmax_mhz)
        # wide counters cannot be faster than narrow ones beyond noise
        assert fmaxes[-1] < fmaxes[0] * 1.05

    def test_overutilization_fails_to_place(self):
        state = lower(elaborate(_Gated()), flatten=True)
        base = estimate_module(state.circuit.top)
        est = estimate_fmax(base, n_covers=2_000_000, counter_width=48, seed="t")
        assert est.fmax_mhz is None
        assert est.utilization > 1.0

    def test_module_estimate_counts_state(self):
        state = lower(elaborate(_Gated()), flatten=True)
        resources = estimate_module(state.circuit.top)
        assert resources.ffs >= 8  # the accumulator register
        assert resources.luts > 0
        assert resources.logic_depth > 0
