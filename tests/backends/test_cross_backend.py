"""The paper's central property: all backends agree on cover counts.

Random circuits are simulated on the interpreting (treadle), compiled
(verilator), activity-gated (essent) and scan-chain (firesim) backends.
Outputs must match cycle by cycle and the final cover-count maps must be
identical — the invariant that makes cross-backend merging sound.
"""

from hypothesis import given, settings

from repro.backends import (
    EssentBackend,
    FireSimBackend,
    TreadleBackend,
    VerilatorBackend,
)
from repro.passes import lower

from ..helpers import random_circuits, random_stimulus, run_with_stimulus


@settings(max_examples=20, deadline=None)
@given(random_circuits())
def test_three_software_backends_agree(circuit):
    stim = random_stimulus(23, 40)
    state = lower(circuit, flatten=True)
    sims = [
        TreadleBackend().compile_state(state),
        VerilatorBackend().compile_state(state),
        EssentBackend().compile_state(state),
    ]
    outputs = [run_with_stimulus(sim, stim) for sim in sims]
    assert outputs[0] == outputs[1] == outputs[2]
    counts = [sim.cover_counts() for sim in sims]
    assert counts[0] == counts[1] == counts[2]


@settings(max_examples=8, deadline=None)
@given(random_circuits(n_nodes=4, n_regs=1))
def test_firesim_scan_chain_matches_software(circuit):
    stim = random_stimulus(5, 25)
    state = lower(circuit, flatten=True)
    reference = TreadleBackend().compile_state(state)
    firesim = FireSimBackend(counter_width=16).compile_state(state)
    for frame in stim:
        for name, value in frame.items():
            reference.poke(name, value)
            firesim.poke(name, value)
        reference.step(1)
        firesim.step(1)
    assert firesim.cover_counts() == reference.cover_counts()
    # scanning is non-destructive (recirculation restores the counters)
    assert firesim.cover_counts() == reference.cover_counts()


@settings(max_examples=10, deadline=None)
@given(random_circuits(n_nodes=4, n_regs=1))
def test_saturating_counters_respect_width(circuit):
    stim = random_stimulus(9, 40)
    state = lower(circuit, flatten=True)
    narrow = VerilatorBackend().compile_state(state, counter_width=2)
    wide = VerilatorBackend().compile_state(state)
    run_with_stimulus(narrow, stim)
    run_with_stimulus(wide, stim)
    wide_counts = wide.cover_counts()
    for name, count in narrow.cover_counts().items():
        assert count == min(wide_counts[name], 3)
