"""The treadle JIT fast path must be indistinguishable from the interpreter.

The tree-walking interpreter (``TreadleBackend(jit=False)``) is the
executable-semantics reference; the generated closure path is an
optimization and may never change observable behaviour.  These property
tests pin outputs, cover counts, stop behaviour, and value probes.
"""

from hypothesis import given, settings

from repro.backends import ModelCache, TreadleBackend
from repro.hcl import Module, elaborate
from repro.passes import lower

from ..helpers import random_circuits, random_stimulus, run_with_stimulus


class _Counter(Module):
    def build(self, m):
        en = m.input("en")
        out = m.output("count", 8)
        cnt = m.reg("cnt", 8, init=0)
        with m.when(en):
            cnt <<= cnt + 1
        out <<= cnt
        m.cover(cnt == 3, "at_three")
        m.stop(cnt == 20, 7, "too_far")


def _pair(circuit_or_state, compiled=False):
    if compiled:
        jit = TreadleBackend(jit=True).compile_state(circuit_or_state)
        ref = TreadleBackend(jit=False).compile_state(circuit_or_state)
    else:
        jit = TreadleBackend(jit=True).compile(circuit_or_state)
        ref = TreadleBackend(jit=False).compile(circuit_or_state)
    assert jit._plan is not None
    assert ref._plan is None
    return jit, ref


@settings(max_examples=25, deadline=None)
@given(random_circuits())
def test_jit_matches_interpreter_on_random_circuits(circuit):
    stim = random_stimulus(97, 50)
    state = lower(circuit, flatten=True)
    jit, ref = _pair(state, compiled=True)
    assert run_with_stimulus(jit, stim) == run_with_stimulus(ref, stim)
    assert jit.cover_counts() == ref.cover_counts()


@settings(max_examples=10, deadline=None)
@given(random_circuits(n_nodes=4, n_regs=1))
def test_jit_batched_equals_single_stepping(circuit):
    state = lower(circuit, flatten=True)
    batched, single = _pair(state, compiled=True)
    stim = random_stimulus(5, 0)
    # identical pokes, different step granularity
    for sim in (batched, single):
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        sim.poke("in_a", 0xA5)
        sim.poke("in_b", 0x5)
        sim.poke("in_c", 1)
    batched.step(48)
    for _ in range(48):
        single.step(1)
    assert batched.peek("out") == single.peek("out")
    assert batched.cover_counts() == single.cover_counts()
    assert batched.cycle == single.cycle


class TestStops:
    def test_stop_parity_batched(self):
        jit, ref = _pair(elaborate(_Counter()))
        for sim in (jit, ref):
            sim.poke("reset", 1)
            sim.step()
            sim.poke("reset", 0)
            sim.poke("en", 1)
        jit_result = jit.step(400)
        ref_result = ref.step(400)
        assert jit_result == ref_result
        assert jit_result.stopped and jit_result.stop_name == "too_far"
        assert jit_result.exit_code == 7
        # halted sims refuse further cycles identically
        assert jit.step(5) == ref.step(5)

    def test_stop_parity_with_probes(self):
        # value probes force the per-cycle JIT path; stops must still fire
        jit, ref = _pair(elaborate(_Counter()))
        for sim in (jit, ref):
            sim.watch_values("cnt")
            sim.poke("reset", 1)
            sim.step()
            sim.poke("reset", 0)
            sim.poke("en", 1)
        assert jit.step(400) == ref.step(400)
        assert jit.value_histogram("cnt") == ref.value_histogram("cnt")


class TestProbes:
    def test_value_histogram_parity(self):
        jit, ref = _pair(elaborate(_Counter()))
        for sim in (jit, ref):
            sim.watch_values("cnt")
            sim.poke("reset", 1)
            sim.step()
            sim.poke("reset", 0)
            sim.poke("en", 1)
            sim.step(6)
        assert jit.value_histogram("cnt") == ref.value_histogram("cnt")
        assert jit.peek_internal("cnt") == ref.peek_internal("cnt")


class TestPlanSharing:
    def test_cache_shares_one_plan_across_sims(self):
        cache = ModelCache(directory=None)
        backend = TreadleBackend(cache=cache)
        circuit = elaborate(_Counter())
        first = backend.compile(circuit)
        second = backend.compile(circuit)
        assert first._plan is second._plan  # compiled exactly once
        assert cache.misses == 1 and cache.hits == 1

    def test_fork_shares_the_plan(self):
        sim = TreadleBackend().compile(elaborate(_Counter()))
        clone = sim.fork()
        assert clone._plan is sim._plan
        clone.poke("reset", 1)
        clone.step()
        clone.poke("reset", 0)
        clone.poke("en", 1)
        clone.step(3)
        assert clone.peek("count") == 3
        assert sim.cycle == 0  # parent untouched
