"""Interpreter backend specifics."""

import pytest

from repro.backends import TreadleBackend
from repro.hcl import Module, elaborate


class _Counter(Module):
    def build(self, m):
        en = m.input("en")
        out = m.output("count", 8)
        cnt = m.reg("cnt", 8, init=0)
        with m.when(en):
            cnt <<= cnt + 1
        out <<= cnt
        m.cover(cnt == 3, "at_three")
        m.stop(cnt == 250, 7, "too_far")


@pytest.fixture
def sim():
    s = TreadleBackend().compile(elaborate(_Counter()))
    s.poke("reset", 1)
    s.step()
    s.poke("reset", 0)
    return s


class TestBasics:
    def test_poke_peek(self, sim):
        sim.poke("en", 1)
        assert sim.peek("count") == 0
        sim.step(5)
        assert sim.peek("count") == 5

    def test_poke_masks_value(self, sim):
        sim.poke("en", 0xFF)  # masked to 1 bit
        sim.step()
        assert sim.peek("count") == 1

    def test_unknown_ports(self, sim):
        with pytest.raises(KeyError):
            sim.poke("nope", 1)
        with pytest.raises(KeyError):
            sim.poke("count", 1)  # outputs are not pokeable
        with pytest.raises(KeyError):
            sim.peek("internal_ghost")

    def test_reset_reinitializes(self, sim):
        sim.poke("en", 1)
        sim.step(5)
        sim.poke("reset", 1)
        sim.step()
        assert sim.peek("count") == 0

    def test_cover_counts(self, sim):
        sim.poke("en", 1)
        sim.step(10)
        assert sim.cover_counts()["at_three"] == 1

    def test_counter_width_saturation(self):
        sim = TreadleBackend().compile(elaborate(_Counter()), counter_width=1)
        sim.poke("en", 0)
        sim.step(10)
        # predicate false: count 0; now count some covers
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        sim.poke("en", 1)
        sim.step(10)
        assert sim.cover_counts()["at_three"] <= 1

    def test_stop_halts(self, sim):
        sim.poke("en", 1)
        result = sim.step(400)
        assert result.stopped
        assert result.stop_name == "too_far"
        assert result.exit_code == 7
        assert result.cycles < 400
        # further steps do nothing
        follow_up = sim.step(5)
        assert follow_up.stopped and follow_up.cycles == 0

    def test_fork_gives_fresh_state(self, sim):
        sim.poke("en", 1)
        sim.step(5)
        fresh = sim.fork()
        fresh.poke("reset", 1)
        fresh.step()
        fresh.poke("reset", 0)
        assert fresh.peek("count") == 0
        assert sim.peek("count") == 5

    def test_value_probe(self, sim):
        sim.watch_values("cnt")
        sim.poke("en", 1)
        sim.step(5)
        histogram = sim.value_histogram("cnt")
        assert histogram == {0: 1, 1: 1, 2: 1, 3: 1, 4: 1}

    def test_peek_internal(self, sim):
        sim.poke("en", 1)
        sim.step(2)
        assert sim.peek_internal("cnt") == 2
