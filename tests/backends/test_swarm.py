"""Swarm lanes must be indistinguishable from N scalar runs.

The differential acceptance criterion for the bit-parallel backend: lane
*l* of a swarm driven with per-lane stimulus must produce exactly the
counts, peeks, and stop behaviour of a scalar treadle run fed the same
stream — on random circuits, on every bundled design, under counter
saturation, and through the ``--min-instrument`` reconstruction algebra.
Also pins the operational surface: the broadcast (scalar-protocol) API,
lane retirement, packed memory state, lane-count cache keys, and the
StepMeter lanes multiplier.
"""

import random

import pytest
from hypothesis import given, settings

from repro.backends import ModelCache, TreadleBackend, cache_key
from repro.backends.swarm import (
    MAX_LANES,
    SwarmBackend,
    generate_swarm_source,
    lane_stride,
)
from repro.backends.model import build_model
from repro.coverage import InstanceTree, instrument, merge_counts
from repro.hcl import Module, elaborate
from repro.passes import lower
from repro.runtime.telemetry import obs

from ..helpers import random_circuits

LANES = 5


class _Counter(Module):
    def build(self, m):
        en = m.input("en")
        out = m.output("count", 8)
        cnt = m.reg("cnt", 8, init=0)
        with m.when(en):
            cnt <<= cnt + 1
        out <<= cnt
        m.cover(cnt == 3, "at_three")
        m.stop(cnt == 20, 7, "too_far")


class _NoReset(Module):
    """No reset port at all — exercises reset-less handling."""

    def build(self, m):
        a = m.input("a", 4)
        out = m.output("o", 4)
        total = m.reg("total", 4)
        total <<= total + a
        out <<= total
        m.cover(total == 7, "lucky")


def _inputs_of(circuit):
    ports = [
        p for p in circuit.top.inputs if p.name not in ("clock", "reset")
    ]
    return [(p.name, getattr(p.type, "width", 1) or 1) for p in ports]


def _stimulus(circuit, cycles, seed):
    """Per-cycle input frames from one seeded stream."""
    rng = random.Random(seed)
    inputs = _inputs_of(circuit)
    return [
        {name: rng.getrandbits(width) for name, width in inputs}
        for _ in range(cycles)
    ]


def _run_scalar(sim, frames):
    for frame in frames:
        for name, value in frame.items():
            sim.poke(name, value)
        result = sim.step()
        if result.stopped:
            break
    return sim.cover_counts()


def _run_swarm(sim, circuit, per_lane_frames):
    """Drive each lane with its own stream; stop when every lane halts."""
    cycles = max(len(frames) for frames in per_lane_frames)
    inputs = _inputs_of(circuit)
    for cycle in range(cycles):
        for name, _width in inputs:
            sim.poke_lanes(
                name,
                [frames[cycle][name] for frames in per_lane_frames],
            )
        if sim.step().stopped:
            break
    return [sim.cover_counts(lane) for lane in range(len(per_lane_frames))]


def _assert_lanes_match_scalar(
    circuit_or_state, cycles, seed, counter_width=None, lanes=LANES,
    compiled=False,
):
    compile_ = "compile_state" if compiled else "compile"
    swarm = getattr(SwarmBackend(lanes=lanes), compile_)(
        circuit_or_state, counter_width=counter_width
    )
    circuit = getattr(circuit_or_state, "circuit", circuit_or_state)
    per_lane = [
        _stimulus(circuit, cycles, seed + lane) for lane in range(lanes)
    ]
    got = _run_swarm(swarm, circuit, per_lane)
    backend = TreadleBackend()
    for lane in range(lanes):
        ref = getattr(backend, compile_)(
            circuit_or_state, counter_width=counter_width
        )
        expected = _run_scalar(ref, per_lane[lane])
        assert got[lane] == expected, f"lane {lane} diverged"
    return swarm


# -- random circuits ----------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(random_circuits())
def test_lanes_match_scalar_on_random_circuits(circuit):
    state = lower(circuit, flatten=True)
    _assert_lanes_match_scalar(state, cycles=40, seed=1300, compiled=True)


@settings(max_examples=10, deadline=None)
@given(random_circuits(n_nodes=4, n_regs=1))
def test_lanes_match_scalar_under_saturation(circuit):
    state = lower(circuit, flatten=True)
    _assert_lanes_match_scalar(
        state, cycles=60, seed=7, counter_width=3, compiled=True
    )


@settings(max_examples=10, deadline=None)
@given(random_circuits(n_nodes=4, n_regs=1))
def test_output_lanes_match_scalar_peeks(circuit):
    state = lower(circuit, flatten=True)
    lanes = 3
    swarm = SwarmBackend(lanes=lanes).compile_state(state)
    refs = [TreadleBackend().compile_state(state) for _ in range(lanes)]
    per_lane = [_stimulus(circuit, 20, 40 + lane) for lane in range(lanes)]
    for cycle in range(20):
        for name, _width in _inputs_of(circuit):
            swarm.poke_lanes(
                name, [frames[cycle][name] for frames in per_lane]
            )
        swarm.step()
        for lane, ref in enumerate(refs):
            for name, value in per_lane[lane][cycle].items():
                ref.poke(name, value)
            ref.step()
            assert swarm.peek_lane("out", lane) == ref.peek("out")


# -- every bundled design -----------------------------------------------------


def _bundled_circuits():
    from repro.cli import _bundled_designs

    return _bundled_designs()


@pytest.mark.parametrize("name", sorted(_bundled_circuits()))
def test_every_bundled_design_is_bit_identical_per_lane(name):
    circuit = _bundled_circuits()[name]
    state, _db = instrument(circuit, metrics=["line"])
    _assert_lanes_match_scalar(
        state, cycles=60, seed=100, counter_width=3, lanes=4, compiled=True
    )


def test_min_instrument_reconstructs_per_lane():
    """PR 9's reconstruction algebra holds lane by lane."""
    circuit = _bundled_circuits()["SerialGcd"]
    full_state, _ = instrument(circuit, metrics=["line", "fsm"])
    min_state, min_db = instrument(
        circuit, metrics=["line", "fsm"], minimize=True
    )
    lanes, cycles, width = 4, 120, 3
    per_lane = [
        _stimulus(full_state.circuit, cycles, 900 + lane)
        for lane in range(lanes)
    ]
    full = _run_swarm(
        SwarmBackend(lanes=lanes).compile_state(
            full_state, counter_width=width
        ),
        full_state.circuit, per_lane,
    )
    mini = _run_swarm(
        SwarmBackend(lanes=lanes).compile_state(
            min_state, counter_width=width
        ),
        min_state.circuit, per_lane,
    )
    tree = InstanceTree(min_state.circuit)
    for lane in range(lanes):
        reconstructed = min_db.reconstruct_counts(
            mini[lane], tree, counter_width=width
        )
        assert reconstructed == full[lane], f"lane {lane} diverged"


# -- stops --------------------------------------------------------------------


class TestStops:
    def test_lanes_stop_independently(self):
        """Each lane halts at its own cycle; counts freeze per lane."""
        circuit = elaborate(_Counter())
        lanes = 3
        swarm = SwarmBackend(lanes=lanes).compile(circuit)
        swarm.poke("reset", 1)
        swarm.step()
        swarm.poke("reset", 0)
        # lane 0 counts every cycle, lane 1 one cycle in three, lane 2 never
        enables = [[1], [1, 0, 0], [0]]
        stopped_at = {}
        for cycle in range(120):
            swarm.poke_lanes(
                "en", [en[cycle % len(en)] for en in enables[:lanes]]
            )
            swarm.step()
            for lane in range(lanes):
                if lane not in stopped_at and not swarm.lane_active(lane):
                    stopped_at[lane] = swarm.cycle
        assert swarm.lane_stop(0) is not None
        assert swarm.lane_stop(0)[:2] == ("too_far", 7)
        assert swarm.lane_stop(1) is not None
        assert swarm.lane_stop(2) is None and swarm.lane_active(2)
        # lane 1's 1-in-3 enable stops roughly 3x later than lane 0
        assert stopped_at[1] > stopped_at[0]
        assert swarm.cover_counts(0)["at_three"] == 1

    def test_broadcast_stop_matches_scalar_protocol(self):
        circuit = elaborate(_Counter())
        swarm = SwarmBackend(lanes=4).compile(circuit)
        ref = TreadleBackend().compile(circuit)
        for sim in (swarm, ref):
            sim.poke("reset", 1)
            sim.step()
            sim.poke("reset", 0)
            sim.poke("en", 1)
        got, want = swarm.step(100), ref.step(100)
        assert (got.cycles, got.stopped, got.stop_name, got.exit_code) == (
            want.cycles, want.stopped, want.stop_name, want.exit_code
        )
        assert swarm.stopped and swarm.cover_counts() == ref.cover_counts()
        # a halted swarm refuses to advance, like the scalar backends
        again = swarm.step(5)
        assert again.cycles == 0 and again.stopped


# -- operational surface ------------------------------------------------------


class TestSurface:
    def test_broadcast_is_scalar_protocol(self):
        """poke/peek/cover_counts on a swarm == a scalar treadle run."""
        circuit = elaborate(_Counter())
        swarm = SwarmBackend(lanes=8).compile(circuit)
        ref = TreadleBackend().compile(circuit)
        for sim in (swarm, ref):
            sim.poke("reset", 1)
            sim.step()
            sim.poke("reset", 0)
            sim.poke("en", 1)
            sim.step(10)
        assert swarm.peek("count") == ref.peek("count")
        assert swarm.cover_counts() == ref.cover_counts()

    def test_reset_less_design(self):
        circuit = elaborate(_NoReset())
        swarm = SwarmBackend(lanes=2).compile(circuit)
        swarm.poke_lanes("a", [1, 2])
        swarm.step(7)
        assert swarm.peek_lane("o", 0) == 7
        assert swarm.peek_lane("o", 1) == 14 & 0xF
        swarm.step()  # covers sample pre-edge values: 7 is seen now
        assert swarm.cover_counts(0)["lucky"] == 1
        assert swarm.cover_counts(1)["lucky"] == 0

    def test_poke_lanes_zero_fills_and_validates(self):
        circuit = elaborate(_Counter())
        swarm = SwarmBackend(lanes=4).compile(circuit)
        swarm.poke("en", 1)  # broadcast 1 everywhere...
        swarm.poke_lanes("en", [1, 1])  # ...then lanes 2-3 back to 0
        swarm.poke("reset", 0)
        swarm.step(5)
        assert [swarm.peek_lane("count", lane) for lane in range(4)] == [
            5, 5, 0, 0
        ]
        with pytest.raises(ValueError):
            swarm.poke_lanes("en", [1] * 5)
        with pytest.raises(KeyError):
            swarm.poke_lane("count", 0, 1)  # outputs are not pokeable
        with pytest.raises(IndexError):
            swarm.peek_lane("count", 4)

    def test_retire_lane_freezes_counts(self):
        circuit = elaborate(_Counter())
        swarm = SwarmBackend(lanes=2).compile(circuit)
        swarm.poke("reset", 0)
        swarm.poke("en", 1)
        swarm.step(2)  # cnt == 2: lane 1 retires before at_three fires
        swarm.retire_lane(1)
        swarm.step(10)
        assert swarm.cover_counts(0)["at_three"] == 1
        assert swarm.cover_counts(1)["at_three"] == 0
        assert not swarm.lane_active(1) and swarm.lane_active(0)

    def test_merged_counts_follow_merge_semantics(self):
        circuit = elaborate(_Counter())
        width = 3
        swarm = SwarmBackend(lanes=3).compile(circuit, counter_width=width)
        swarm.poke("reset", 0)
        swarm.poke("en", 1)
        swarm.step(12)
        per_lane = [swarm.cover_counts(lane) for lane in range(3)]
        assert swarm.merged_cover_counts() == merge_counts(
            *per_lane, counter_width=width
        )

    def test_lane_bounds(self):
        with pytest.raises(ValueError):
            SwarmBackend(lanes=0)
        with pytest.raises(ValueError):
            SwarmBackend(lanes=MAX_LANES + 1)

    def test_fork_is_fresh(self):
        circuit = elaborate(_Counter())
        swarm = SwarmBackend(lanes=2).compile(circuit)
        swarm.poke("en", 1)
        swarm.poke("reset", 0)
        swarm.step(5)
        child = swarm.fork()
        assert child.cycle == 0 and child.peek("count") == 0
        assert swarm.peek("count") == 5

    def test_step_meter_reports_aggregate_lane_cycles(self):
        circuit = elaborate(_Counter())
        obs.reset()
        obs.enable()
        try:
            swarm = SwarmBackend(lanes=8).compile(circuit)
            swarm.poke("reset", 0)
            swarm.step(300)  # past the 256-cycle flush threshold
            total = obs.metrics.get("repro_backend_cycles_total")
            assert total.value(backend="swarm") == 300 * 8
        finally:
            obs.disable()
            obs.reset()


# -- cache keys ---------------------------------------------------------------


class TestCacheKeys:
    def test_lane_count_is_part_of_the_key(self):
        circuit = elaborate(_Counter())
        cache = ModelCache()
        SwarmBackend(lanes=4, cache=cache).compile(circuit)
        assert (cache.misses, cache.hits) == (1, 0)
        SwarmBackend(lanes=8, cache=cache).compile(circuit)
        assert (cache.misses, cache.hits) == (2, 0)
        SwarmBackend(lanes=4, cache=cache).compile(circuit)
        assert (cache.misses, cache.hits) == (2, 1)

    def test_swarm_never_collides_with_scalar_backends(self):
        circuit = elaborate(_Counter())
        state = lower(circuit, flatten=True)
        keys = {
            cache_key(state, "treadle", None, ("jit1",)),
            cache_key(state, "swarm", None, ("swarm1", "lanes=64")),
            cache_key(state, "swarm", None, ("swarm1", "lanes=128")),
        }
        assert len(keys) == 3


# -- generated source ---------------------------------------------------------


class TestEmission:
    def test_stride_covers_every_node_plus_carry_room(self):
        circuit = elaborate(_Counter())
        model = build_model(lower(circuit, flatten=True))
        stride = lane_stride(model)
        assert stride >= max(model.widths.values()) + 2

    def test_source_has_masked_and_full_speed_loops(self):
        circuit = elaborate(_NoReset())  # no stops: run_full is emitted
        model = build_model(lower(circuit, flatten=True))
        source = generate_swarm_source(model, 64)
        assert "def run(" in source and "def run_full(" in source

    def test_stops_suppress_the_unmasked_fast_path(self):
        circuit = elaborate(_Counter())
        model = build_model(lower(circuit, flatten=True))
        source = generate_swarm_source(model, 64)
        assert "def run_full(" not in source
