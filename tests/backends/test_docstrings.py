"""A pydocstyle-lite docstring contract, scoped to ``repro.backends``.

The backend package is the repo's public ABI surface — five execution
tiers behind one protocol — so its docstrings are load-bearing: they are
where units (cycles, seconds, raw bit patterns), thread-safety, and
failure modes are specified.  Rather than depend on pydocstyle itself
(not in the container), this test walks the package with ``ast`` and
enforces the subset of checks we care about:

* D100-lite: every module has a docstring;
* D101/D102/D103-lite: every public class and public function/method has
  a docstring (private ``_names`` and dunders are exempt, and — like
  pydocstyle's overridden-member convention — implementations of the
  ``api.py`` protocol methods inherit the contract docstring rather
  than repeat it);
* D400-lite: the docstring's first line ends with a period;
* ABI-strict: the public contract symbols in ``api.py`` and
  ``modelcache.compile_cached`` must have *multi-line* docstrings — a
  one-line summary cannot document units, thread-safety, and failure
  modes, which is the whole point of the satellite this test rode in on.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

BACKENDS = Path(__file__).resolve().parents[2] / "src" / "repro" / "backends"

MODULES = sorted(BACKENDS.rglob("*.py"))

#: api.py symbols forming the backend ABI: docstrings must be multi-line
#: (summary + body covering units / thread-safety / failure modes).
ABI_STRICT = {
    "api.py": {
        "saturate",
        "StepResult",
        "Simulation",
        "Simulation.poke",
        "Simulation.peek",
        "Simulation.step",
        "Simulation.cover_counts",
        "SimulatorBackend",
        "SimulatorBackend.compile",
        "SimulatorBackend.compile_state",
        "metered_step",
        "reset_and_run",
    },
    "modelcache.py": {"compile_cached"},
}

#: methods whose contract lives on the api.py protocols; implementations
#: (TreadleSimulation.poke, CBackend.compile, ...) inherit those docs.
INHERITS_ABI_DOC = {"poke", "peek", "step", "cover_counts", "compile", "compile_state"}


def is_public(name: str) -> bool:
    return not name.startswith("_")


def iter_public_defs(tree: ast.Module):
    """Yield ``(qualname, node)`` for public defs needing docstrings."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if is_public(node.name):
                yield node.name, node
        elif isinstance(node, ast.ClassDef) and is_public(node.name):
            yield node.name, node
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if is_public(child.name):
                        yield f"{node.name}.{child.name}", child


def violations(path: Path) -> list[str]:
    tree = ast.parse(path.read_text())
    rel = path.relative_to(BACKENDS).as_posix()
    strict = ABI_STRICT.get(rel, set())
    found = []
    if ast.get_docstring(tree) is None:
        found.append(f"{rel}: missing module docstring")
    for qualname, node in iter_public_defs(tree):
        doc = ast.get_docstring(node)
        where = f"{rel}:{node.lineno} {qualname}"
        if doc is None:
            inherited = (
                rel != "api.py"
                and "." in qualname
                and qualname.rsplit(".", 1)[1] in INHERITS_ABI_DOC
            )
            if not inherited:
                found.append(f"{where}: missing docstring")
            continue
        first = doc.strip().splitlines()[0].strip()
        if not first.endswith("."):
            found.append(f"{where}: first docstring line must end with '.'")
        if qualname in strict and "\n" in doc.strip():
            strict.discard(qualname)
        elif qualname in strict:
            found.append(
                f"{where}: ABI symbol needs a multi-line docstring "
                "(units, thread-safety, failure modes)"
            )
            strict.discard(qualname)
    for missing in sorted(strict):
        found.append(f"{rel}: ABI symbol {missing} not found (renamed?)")
    return found


@pytest.mark.parametrize("path", MODULES, ids=lambda p: p.relative_to(BACKENDS).as_posix())
def test_backend_module_docstrings(path):
    assert not violations(path), "\n".join(violations(path))


def test_abi_strict_list_is_live():
    """Every ABI_STRICT entry must name a real module (catch renames)."""
    for rel in ABI_STRICT:
        assert (BACKENDS / rel).is_file(), f"ABI_STRICT names missing module {rel}"
