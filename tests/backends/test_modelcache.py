"""Content-addressed model cache: keys, tiers, corruption, cross-process."""

import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.backends import (
    CacheEntry,
    ModelCache,
    TreadleBackend,
    VerilatorBackend,
    cache_key,
    circuit_fingerprint,
    default_cache,
    set_default_cache,
)
from repro.backends.modelcache import CACHE_SUFFIX, compile_cached
from repro.backends.pycodegen import CODEGEN_VERSION
from repro.coverage import instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def gcd_state():
    state, _ = instrument(elaborate(Gcd(width=8)), metrics=["line"])
    return state


@pytest.fixture(scope="module")
def other_state():
    state, _ = instrument(elaborate(Gcd(width=4)), metrics=["line"])
    return state


class TestCacheKey:
    def test_fingerprint_stable_for_same_circuit(self, gcd_state):
        assert circuit_fingerprint(gcd_state) == circuit_fingerprint(gcd_state)

    def test_fingerprint_differs_for_different_circuits(self, gcd_state, other_state):
        assert circuit_fingerprint(gcd_state) != circuit_fingerprint(other_state)

    def test_key_mixes_backend_width_and_options(self, gcd_state):
        base = cache_key(gcd_state, "treadle")
        assert base == cache_key(gcd_state, "treadle")
        assert cache_key(gcd_state, "verilator") != base
        assert cache_key(gcd_state, "treadle", counter_width=8) != base
        assert cache_key(gcd_state, "treadle", options=("jit",)) != base


class TestTwoTierCache:
    def test_miss_then_memory_hit(self, tmp_path, gcd_state):
        cache = ModelCache(tmp_path)
        backend = TreadleBackend(cache=cache)
        first = backend.compile_state(gcd_state)
        assert (cache.misses, cache.hits) == (1, 0)
        second = backend.compile_state(gcd_state)
        assert (cache.misses, cache.hits) == (1, 1)
        # the exec'd plan is memoized on the shared entry
        assert first._plan is second._plan

    def test_disk_hit_after_memory_cleared(self, tmp_path, gcd_state):
        cache = ModelCache(tmp_path)
        backend = TreadleBackend(cache=cache)
        backend.compile_state(gcd_state)
        cache.clear_memory()
        sim = backend.compile_state(gcd_state)
        assert (cache.misses, cache.hits) == (1, 1)
        sim.poke("req_valid", 1)
        sim.poke("req_bits", (9 << 8) | 6)
        sim.step(30)
        assert sum(sim.cover_counts().values()) > 0

    def test_memory_only_cache_has_no_disk_tier(self, gcd_state):
        cache = ModelCache(directory=None)
        backend = VerilatorBackend(cache=cache)
        backend.compile_state(gcd_state)
        cache.clear_memory()
        backend.compile_state(gcd_state)
        assert cache.misses == 2  # nothing survives a memory clear

    def test_lru_eviction_bounded_but_disk_covers(self, tmp_path, gcd_state, other_state):
        cache = ModelCache(tmp_path, max_entries=1)
        backend = VerilatorBackend(cache=cache)
        backend.compile_state(gcd_state)
        backend.compile_state(other_state)  # evicts the first from memory
        assert len(cache._lru) == 1
        backend.compile_state(gcd_state)  # reloaded from disk, not rebuilt
        assert cache.misses == 2
        assert cache.hits == 1

    def test_rejects_bad_max_entries(self):
        with pytest.raises(ValueError):
            ModelCache(max_entries=0)


class TestCorruptionRecovery:
    def _entry_file(self, cache, gcd_state, backend):
        key = cache_key(
            gcd_state, backend.name, counter_width=None, options=("jit",)
        )
        path = cache.entry_path(key)
        assert path is not None and path.exists()
        return path

    def test_truncated_entry_recompiles_and_overwrites(self, tmp_path, gcd_state):
        cache = ModelCache(tmp_path)
        backend = TreadleBackend(cache=cache)
        backend.compile_state(gcd_state)
        path = self._entry_file(cache, gcd_state, backend)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        cache.clear_memory()
        sim = backend.compile_state(gcd_state)  # must not crash
        assert cache.misses == 2
        assert sim.step(5).cycles == 5
        # the fresh compile atomically replaced the torn file
        cache.clear_memory()
        backend.compile_state(gcd_state)
        assert cache.hits == 1

    def test_garbage_entry_is_a_miss_not_a_crash(self, tmp_path, gcd_state):
        cache = ModelCache(tmp_path)
        backend = TreadleBackend(cache=cache)
        backend.compile_state(gcd_state)
        path = self._entry_file(cache, gcd_state, backend)
        path.write_bytes(b"\x00not a pickle at all")
        cache.clear_memory()
        backend.compile_state(gcd_state)
        assert cache.misses == 2

    def test_wrong_payload_shape_is_a_miss(self, tmp_path, gcd_state):
        cache = ModelCache(tmp_path)
        backend = TreadleBackend(cache=cache)
        backend.compile_state(gcd_state)
        path = self._entry_file(cache, gcd_state, backend)
        path.write_bytes(pickle.dumps(["unexpected", "payload"]))
        cache.clear_memory()
        backend.compile_state(gcd_state)
        assert cache.misses == 2

    def test_stale_codegen_version_invalidates(self, tmp_path, gcd_state):
        cache = ModelCache(tmp_path)
        backend = TreadleBackend(cache=cache)
        backend.compile_state(gcd_state)
        path = self._entry_file(cache, gcd_state, backend)
        payload = pickle.loads(path.read_bytes())
        payload["codegen_version"] = CODEGEN_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        cache.clear_memory()
        backend.compile_state(gcd_state)
        assert cache.misses == 2

    def test_renamed_file_is_not_trusted(self, tmp_path, gcd_state, other_state):
        cache = ModelCache(tmp_path)
        backend = VerilatorBackend(cache=cache)
        backend.compile_state(gcd_state)
        src = next(tmp_path.glob(f"*{CACHE_SUFFIX}"))
        wrong_key = cache_key(other_state, "verilator")
        os.replace(src, cache.entry_path(wrong_key))
        cache.clear_memory()
        backend.compile_state(other_state)  # recorded key mismatches file name
        assert cache.misses == 2


class TestDefaultCache:
    def test_install_and_restore(self, tmp_path, gcd_state):
        cache = ModelCache(tmp_path)
        previous = set_default_cache(cache)
        try:
            assert default_cache() is cache
            TreadleBackend().compile_state(gcd_state)
            assert cache.misses == 1
        finally:
            set_default_cache(previous)
        assert default_cache() is previous

    def test_compile_cached_without_cache_always_builds(self, gcd_state):
        calls = []

        def build():
            calls.append(1)
            return CacheEntry(key="", backend="x", model=None)

        compile_cached(gcd_state, "x", build, cache=None)
        compile_cached(gcd_state, "x", build, cache=None)
        assert len(calls) == 2


# -- cross-process differential: disk hit must be bit-identical ------------------

_CHILD_SCRIPT = """
import json, random, sys
sys.path.insert(0, {src!r})
from repro.backends import BACKENDS, ModelCache
from repro.cli import _bundled_designs

cache_dir, out_path = sys.argv[1], sys.argv[2]
cache = ModelCache(cache_dir)
results = {{}}
for name, circuit in sorted(_bundled_designs().items()):
    for backend_name in ("treadle", "verilator"):
        backend = BACKENDS[backend_name](cache=cache)
        sim = backend.compile(circuit)
        rng = random.Random(1234)
        inputs = [p.name for p in circuit.top.inputs if p.name != "clock"]
        widths = {{p.name: getattr(p.type, "width", 1) or 1
                   for p in circuit.top.inputs}}
        for cycle in range(40):
            for port in inputs:
                value = 1 if (port == "reset" and cycle < 2) else (
                    0 if port == "reset" else rng.getrandbits(widths[port]))
                sim.poke(port, value)
            sim.step(1)
        peeks = {{p.name: sim.peek(p.name) for p in circuit.top.outputs}}
        results[f"{{name}}/{{backend_name}}"] = {{
            "counts": sim.cover_counts(), "peeks": peeks,
        }}
assert cache.misses == 0, f"disk cache missed {{cache.misses}} times"
with open(out_path, "w") as handle:
    json.dump(results, handle)
"""


@pytest.mark.slow
def test_cache_hit_model_is_bit_identical_across_processes(tmp_path):
    """A second process loading every bundled design from disk must agree
    bit-for-bit (cover counts and output peeks) with the cold compile."""
    from repro.cli import _bundled_designs
    from repro.backends import BACKENDS

    cache_dir = tmp_path / "cache"
    cache = ModelCache(cache_dir)
    expected = {}
    import random

    for name, circuit in sorted(_bundled_designs().items()):
        for backend_name in ("treadle", "verilator"):
            backend = BACKENDS[backend_name](cache=cache)
            sim = backend.compile(circuit)
            rng = random.Random(1234)
            inputs = [p.name for p in circuit.top.inputs if p.name != "clock"]
            widths = {
                p.name: getattr(p.type, "width", 1) or 1
                for p in circuit.top.inputs
            }
            for cycle in range(40):
                for port in inputs:
                    value = 1 if (port == "reset" and cycle < 2) else (
                        0 if port == "reset" else rng.getrandbits(widths[port]))
                    sim.poke(port, value)
                sim.step(1)
            peeks = {p.name: sim.peek(p.name) for p in circuit.top.outputs}
            expected[f"{name}/{backend_name}"] = {
                "counts": dict(sim.cover_counts()), "peeks": peeks,
            }
    assert cache.hits == 0  # every model above was a cold compile

    out_path = tmp_path / "child.json"
    script = tmp_path / "replay.py"
    script.write_text(_CHILD_SCRIPT.format(src=SRC))
    subprocess.run(
        [sys.executable, str(script), str(cache_dir), str(out_path)],
        check=True,
        timeout=600,
    )
    got = json.loads(out_path.read_text())
    assert got == expected
