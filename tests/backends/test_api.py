"""The shared backend API helpers: reset probing and failure types."""

import pytest

from repro.backends import (
    RunFailure,
    ScanChainCorruption,
    SimulationCrash,
    SimulationFault,
    SimulationTimeout,
    TreadleBackend,
    has_port,
    reset_and_run,
)
from repro.hcl import Module, elaborate


class WithReset(Module):
    def build(self, m):
        counter = m.reg("counter", 8, init=0)
        counter <<= counter + 1
        m.output("count", 8).assign(counter)


class NoReset(Module):
    """A design that never elaborates a reset port."""

    has_reset = False

    def build(self, m):
        a = m.input("a", 4)
        m.output("b", 5).assign(a + 1)


class TestResetAndRun:
    def test_design_with_reset_is_reset(self):
        sim = TreadleBackend().compile(elaborate(WithReset()))
        sim.step(5)  # accumulate some state
        result = reset_and_run(sim, cycles=3, reset_cycles=2)
        assert result.cycles == 3
        assert sim.peek("count") == 3  # reset wiped the earlier 5 cycles

    def test_design_without_reset_skips_the_reset_phase(self):
        sim = TreadleBackend().compile(elaborate(NoReset()))
        assert not has_port(sim, "reset")
        result = reset_and_run(sim, cycles=4)
        assert result.cycles == 4

    @pytest.mark.parametrize("cycles", [0, -1, -100])
    def test_non_positive_cycles_rejected(self, cycles):
        sim = TreadleBackend().compile(elaborate(NoReset()))
        with pytest.raises(ValueError, match="positive"):
            reset_and_run(sim, cycles=cycles)

    def test_negative_reset_cycles_rejected(self):
        sim = TreadleBackend().compile(elaborate(NoReset()))
        with pytest.raises(ValueError, match="non-negative"):
            reset_and_run(sim, cycles=1, reset_cycles=-1)

    def test_has_port(self):
        sim = TreadleBackend().compile(elaborate(WithReset()))
        assert has_port(sim, "reset") and has_port(sim, "count")
        assert not has_port(sim, "nonexistent")


class TestFailureTypes:
    def test_fault_hierarchy(self):
        for kind in (SimulationCrash, SimulationTimeout, ScanChainCorruption):
            assert issubclass(kind, SimulationFault)
        assert issubclass(SimulationFault, RuntimeError)

    def test_kind_of_classifies_errors(self):
        assert RunFailure.kind_of(SimulationTimeout("t")) == "timeout"
        assert RunFailure.kind_of(SimulationCrash("c")) == "crash"
        assert RunFailure.kind_of(ScanChainCorruption("s")) == "scan-corruption"
        assert RunFailure.kind_of(ValueError("v")) == "error"

    def test_format_mentions_the_essentials(self):
        failure = RunFailure("job9", "treadle", "timeout", attempt=2, cycle=41,
                             message="exceeded 1.5s")
        text = failure.format()
        assert "job9" in text and "treadle" in text
        assert "attempt 2" in text and "cycle 41" in text and "timeout" in text
