"""Compiled backend: codegen consistency and the coverage.dat converter."""

import io

from hypothesis import given, settings, strategies as st

from repro.backends import TreadleBackend, VerilatorBackend
from repro.backends.pycodegen import RUNTIME_HELPERS, gen_expr
from repro.backends.verilator import (
    convert_coverage_dat,
    parse_coverage_dat,
    write_coverage_dat,
)
from repro.hcl import Module, elaborate
from repro.ir import Ref, SIntType, UIntType, bit_width, eval_op, mask

from ..helpers import BIN_ARITH, BIN_BITS, BIN_CMP, UNARY, expressions


class TestCodegenMatchesOps:
    """The generated Python must agree with the reference op table."""

    @settings(max_examples=300, deadline=None)
    @given(
        expressions(
            leaves=[
                Ref("va", UIntType(8)),
                Ref("vb", SIntType(6)),
                Ref("vc", UIntType(1)),
            ],
            depth=3,
        ),
        st.integers(0, 255),
        st.integers(0, 63),
        st.integers(0, 1),
    )
    def test_random_expressions(self, expr, a, b, c):
        env = {"va": a, "vb": b, "vc": c}
        code = gen_expr(expr, lambda n: n, lambda n: n)
        namespace = dict(env)
        exec(RUNTIME_HELPERS, namespace)
        generated = eval(code, namespace)

        # reference: interpret through the op table
        from repro.backends.treadle import TreadleSimulation
        from repro.backends.model import CircuitModel

        def reference(node):
            from repro.ir import MemRead, Mux, PrimOp, SIntLiteral, UIntLiteral
            from repro.ir.types import value_of

            if isinstance(node, Ref):
                return env[node.name]
            if isinstance(node, UIntLiteral):
                return node.value
            if isinstance(node, SIntLiteral):
                return node.value & mask(node.width)
            if isinstance(node, PrimOp):
                args = [reference(x) for x in node.args]
                return eval_op(node.op, args, [x.tpe for x in node.args], node.consts)
            if isinstance(node, Mux):
                chosen = node.tval if reference(node.cond) else node.fval
                raw = reference(chosen)
                return value_of(raw, chosen.tpe) & mask(bit_width(node.type))
            raise TypeError(node)

        expected = reference(expr)
        assert generated == expected, f"{code} -> {generated}, expected {expected}"


class _CoverDesign(Module):
    def build(self, m):
        a = m.input("a", 4)
        out = m.output("o", 4)
        out <<= a
        m.cover(a == 1, "one")
        m.cover(a == 2, "two")


class TestCoverageDat:
    def run_counts(self):
        sim = VerilatorBackend().compile(elaborate(_CoverDesign()))
        for value in (1, 1, 2, 3):
            sim.poke("a", value)
            sim.step()
        return sim.cover_counts()

    def test_roundtrip(self):
        counts = self.run_counts()
        buffer = io.StringIO()
        write_coverage_dat(counts, buffer)
        parsed = parse_coverage_dat(buffer.getvalue())
        assert parsed == counts

    def test_converter_fills_missing(self):
        counts = self.run_counts()
        buffer = io.StringIO()
        write_coverage_dat(counts, buffer)
        converted = convert_coverage_dat(
            buffer.getvalue(), expected={"one", "two", "never_hit"}
        )
        assert converted["one"] == 2
        assert converted["never_hit"] == 0

    def test_hierarchical_names_roundtrip(self):
        counts = {"tile0.core.c1": 5, "tile1.core.c1": 7, "top_cover": 1}
        buffer = io.StringIO()
        write_coverage_dat(counts, buffer)
        assert parse_coverage_dat(buffer.getvalue()) == counts

    def test_ignores_junk_lines(self):
        assert parse_coverage_dat("# comment\nnot a record\n") == {}


class TestBuildRunTradeoff:
    def test_build_time_recorded(self):
        sim = VerilatorBackend().compile(elaborate(_CoverDesign()))
        assert sim.build_seconds > 0

    def test_generated_source_accessible(self):
        sim = VerilatorBackend().compile(elaborate(_CoverDesign()))
        assert "class GeneratedSim" in sim.source

    def test_value_probe(self):
        circuit = elaborate(_CoverDesign())
        sim = VerilatorBackend().compile(circuit, value_probes=("a",))
        for value in (3, 3, 5):
            sim.poke("a", value)
            sim.step()
        assert sim.value_histogram("a") == {3: 2, 5: 1}
