"""Formal engine: SAT solver, bit-blaster and BMC cover traces."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import TreadleBackend
from repro.backends.formal import (
    BoundedModelChecker,
    FormalUnsupported,
    GateBuilder,
    Solver,
    generate_cover_traces,
    make_lit,
    replay_trace,
)
from repro.backends.formal.encode import ExprEncoder, bits_to_value, const_bits
from repro.hcl import ChiselEnum, Module, elaborate
from repro.ir import Ref, SIntType, UIntType, bit_width, eval_op, mask
from repro.passes import lower

from ..helpers import expressions


class TestSatSolver:
    @settings(max_examples=150, deadline=None)
    @given(st.data())
    def test_against_brute_force(self, data):
        n = data.draw(st.integers(1, 7))
        n_clauses = data.draw(st.integers(1, 25))
        clauses = [
            [
                make_lit(data.draw(st.integers(1, n)), data.draw(st.booleans()))
                for _ in range(data.draw(st.integers(1, 3)))
            ]
            for _ in range(n_clauses)
        ]

        def satisfied(bits):
            return all(
                any(bits[(l >> 1) - 1] == (l % 2 == 0) for l in clause)
                for clause in clauses
            )

        expected = any(
            satisfied(bits) for bits in itertools.product([False, True], repeat=n)
        )

        solver = Solver()
        for _ in range(n):
            solver.new_var()
        feasible = all(solver.add_clause(c) for c in clauses)
        result = solver.solve() if feasible else None
        got = bool(result.sat) if result else False
        assert got == expected
        if got:
            model_bits = [result.model[v] for v in range(1, n + 1)]
            assert satisfied(model_bits)

    def test_assumptions(self):
        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([make_lit(a), make_lit(b)])
        solver.add_clause([make_lit(a, False), make_lit(b, False)])
        assert solver.solve([make_lit(a)]).model[b] is False
        assert not solver.solve([make_lit(a), make_lit(b)]).sat
        assert solver.solve([make_lit(b)]).model[a] is False

    def test_empty_clause_unsat(self):
        solver = Solver()
        solver.new_var()
        assert not solver.add_clause([])
        assert not solver.solve().sat


class TestEncoder:
    """Constant inputs fold completely: encoder output == op-table output."""

    @settings(max_examples=200, deadline=None)
    @given(
        expressions(
            leaves=[
                Ref("va", UIntType(8)),
                Ref("vb", SIntType(6)),
                Ref("vc", UIntType(1)),
            ],
            depth=3,
        ),
        st.integers(0, 255),
        st.integers(0, 63),
        st.integers(0, 1),
    )
    def test_constant_folding_matches_ops(self, expr, a, b, c):
        # skip division (documented as unsupported by the formal engine)
        from repro.ir import PrimOp
        from repro.ir.traversal import walk_expr

        if any(isinstance(e, PrimOp) and e.op in ("div", "rem") for e in walk_expr(expr)):
            with pytest.raises(FormalUnsupported):
                solver = Solver()
                gates = GateBuilder(solver)
                env = {
                    "va": const_bits(a, 8),
                    "vb": const_bits(b, 6),
                    "vc": const_bits(c, 1),
                }
                ExprEncoder(gates, env, {}).encode(expr)
            return

        solver = Solver()
        gates = GateBuilder(solver)
        env = {
            "va": const_bits(a, 8),
            "vb": const_bits(b, 6),
            "vc": const_bits(c, 1),
        }
        bits = ExprEncoder(gates, env, {}).encode(expr)
        assert all(bit in (0, 1) for bit in bits), "constants must fully fold"
        got = bits_to_value(bits, {})

        def reference(node):
            from repro.ir import MemRead, Mux, PrimOp, SIntLiteral, UIntLiteral
            from repro.ir.types import value_of

            if isinstance(node, Ref):
                return {"va": a, "vb": b, "vc": c}[node.name]
            if isinstance(node, UIntLiteral):
                return node.value
            if isinstance(node, SIntLiteral):
                return node.value & mask(node.width)
            if isinstance(node, PrimOp):
                args = [reference(x) for x in node.args]
                return eval_op(node.op, args, [x.tpe for x in node.args], node.consts)
            if isinstance(node, Mux):
                chosen = node.tval if reference(node.cond) else node.fval
                return value_of(reference(chosen), chosen.tpe) & mask(bit_width(node.type))
            raise TypeError(node)

        assert got == reference(expr)


class _Lock(Module):
    """A sequence lock: covers deep in the input space (BMC territory)."""

    def build(self, m):
        digit = m.input("digit", 4)
        opened = m.output("opened", 1)
        S = ChiselEnum("LockState", "s0 s1 s2 open")
        state = m.reg("state", enum=S)
        opened <<= state == S.open
        with m.switch(state):
            with m.is_(S.s0):
                with m.when(digit == 7):
                    state <<= S.s1
            with m.is_(S.s1):
                with m.when(digit == 3):
                    state <<= S.s2
                with m.elsewhen(digit != 7):
                    state <<= S.s0
            with m.is_(S.s2):
                with m.when(digit == 9):
                    state <<= S.open
                with m.otherwise():
                    state <<= S.s0
            with m.is_(S.open):
                state <<= S.open
        m.cover(state == S.open, "unlocked")
        m.cover((state == S.open) & (digit == 0xF), "unlocked_and_f")


class TestBmc:
    def test_finds_deep_cover(self):
        state = lower(elaborate(_Lock()), flatten=True)
        result = generate_cover_traces(state, bound=8)
        assert "unlocked" in result.reachable
        trace = result.traces["unlocked"]
        assert trace.cycle is not None and trace.cycle >= 4

    def test_unreachable_within_bound(self):
        state = lower(elaborate(_Lock()), flatten=True)
        result = generate_cover_traces(state, bound=3)
        # reset eats cycle 0; the combination needs 4+ cycles
        assert "unlocked" in result.unreachable

    def test_witness_replays_on_simulator(self):
        state = lower(elaborate(_Lock()), flatten=True)
        result = generate_cover_traces(state, bound=10)
        for name in result.reachable:
            sim = TreadleBackend().compile_state(state)
            counts = replay_trace(sim, result.traces[name])
            assert counts[name] >= 1, f"witness for {name} did not replay"

    def test_memory_designs_encode(self):
        class MemDesign(Module):
            def build(self, m):
                wen = m.input("wen")
                addr = m.input("addr", 2)
                data = m.input("data", 4)
                out = m.output("o", 4)
                mem = m.mem("mem", 4, 4)
                with m.when(wen):
                    mem[addr] = data
                out <<= mem[addr]
                m.cover(mem[0] == 5, "wrote_five")

        state = lower(elaborate(MemDesign()), flatten=True)
        result = generate_cover_traces(state, bound=4)
        assert "wrote_five" in result.reachable

    def test_oversized_memory_rejected(self):
        class Huge(Module):
            def build(self, m):
                addr = m.input("addr", 12)
                out = m.output("o", 32)
                mem = m.mem("mem", 32, 4096)
                out <<= mem[addr]
                m.cover(out == 0, "c")

        state = lower(elaborate(Huge()), flatten=True)
        with pytest.raises(FormalUnsupported):
            BoundedModelChecker(state, bound=2)

    def test_format_output(self):
        state = lower(elaborate(_Lock()), flatten=True)
        result = generate_cover_traces(state, bound=8)
        text = result.format()
        assert "reachable" in text and "unlocked" in text
