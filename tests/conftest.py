"""Shared test configuration.

Tests marked ``@pytest.mark.faults`` exercise deliberately-hanging
simulations; a regression in the executor's watchdog would turn them into
infinite hangs.  To make such regressions *fail* instead of stalling the
suite (and CI), every faults-marked test runs under a hard SIGALRM
deadline — no third-party timeout plugin required.
"""

import os
import signal

import pytest

#: hard per-test deadline for fault-injection tests, seconds
FAULTS_TEST_TIMEOUT = int(os.environ.get("REPRO_FAULTS_TIMEOUT", "60"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if item.get_closest_marker("faults") is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def on_timeout(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the {FAULTS_TEST_TIMEOUT}s fault-test "
            "deadline — the executor watchdog likely failed to fire"
        )

    previous = signal.signal(signal.SIGALRM, on_timeout)
    signal.alarm(FAULTS_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def isolation():
    """Executor isolation level under test.

    Defaults to thread mode; the CI process-isolation job exports
    ``REPRO_EXECUTOR_ISOLATION=process`` so the same fault-injection suite
    also proves the forked-worker supervisor end to end.
    """
    mode = os.environ.get("REPRO_EXECUTOR_ISOLATION", "thread")
    if mode == "process":
        from repro.runtime import process_isolation_available

        if not process_isolation_available():
            pytest.skip("process isolation requires the fork start method")
    return mode
