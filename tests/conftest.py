"""Shared test configuration.

Tests marked ``@pytest.mark.faults`` exercise deliberately-hanging
simulations; a regression in the executor's watchdog would turn them into
infinite hangs.  To make such regressions *fail* instead of stalling the
suite (and CI), every faults-marked test runs under a hard SIGALRM
deadline — no third-party timeout plugin required.
"""

import os
import signal

import pytest

#: hard per-test deadline for fault-injection tests, seconds
FAULTS_TEST_TIMEOUT = int(os.environ.get("REPRO_FAULTS_TIMEOUT", "60"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if item.get_closest_marker("faults") is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def on_timeout(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the {FAULTS_TEST_TIMEOUT}s fault-test "
            "deadline — the executor watchdog likely failed to fire"
        )

    previous = signal.signal(signal.SIGALRM, on_timeout)
    signal.alarm(FAULTS_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
