"""HCL value operator semantics, checked through the interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import TreadleBackend
from repro.hcl import HclError, Module, Value, cat, elaborate, mux, u


def evaluate(build_expr, a: int, b: int, out_width: int = 16) -> int:
    """Elaborate a tiny module computing build_expr(a, b) and simulate it."""

    class Harness(Module):
        def build(self, m):
            in_a = m.input("a", 8)
            in_b = m.input("b", 8)
            out = m.output("out", out_width)
            out <<= build_expr(in_a, in_b)

    sim = TreadleBackend().compile(elaborate(Harness()))
    sim.poke("a", a)
    sim.poke("b", b)
    return sim.peek("out")


class TestArithmetic:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_add_truncates_to_max_width(self, a, b):
        assert evaluate(lambda x, y: x + y, a, b, 8) == (a + b) & 0xFF

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_addw_grows(self, a, b):
        assert evaluate(lambda x, y: x.addw(y), a, b, 9) == a + b

    def test_sub_wraps(self):
        assert evaluate(lambda x, y: x - y, 1, 2, 8) == 0xFF

    def test_mul_truncates(self):
        assert evaluate(lambda x, y: x * y, 200, 3, 8) == (600) & 0xFF

    def test_mulw_full(self):
        assert evaluate(lambda x, y: x.mulw(y), 200, 3, 16) == 600

    def test_div_and_mod(self):
        assert evaluate(lambda x, y: x // y, 17, 5, 8) == 3
        assert evaluate(lambda x, y: x % y, 17, 5, 8) == 2

    def test_int_on_left(self):
        assert evaluate(lambda x, y: 10 + x, 5, 0, 8) == 15


class TestComparisonsAndBits:
    def test_comparisons(self):
        assert evaluate(lambda x, y: (x < y).zext(16), 3, 5) == 1
        assert evaluate(lambda x, y: (x >= y).zext(16), 3, 5) == 0
        assert evaluate(lambda x, y: (x == y).zext(16), 9, 9) == 1

    def test_bit_select(self):
        assert evaluate(lambda x, y: x[0].zext(16), 0b1, 0) == 1
        assert evaluate(lambda x, y: x[7].zext(16), 0x80, 0) == 1

    def test_slice(self):
        assert evaluate(lambda x, y: x[7:4], 0xAB, 0, 4) == 0xA

    def test_slice_requires_bounds(self):
        with pytest.raises(HclError):
            evaluate(lambda x, y: x[7:], 0, 0)

    def test_dynamic_index(self):
        assert evaluate(lambda x, y: x[y[2:0]].zext(16), 0b100, 2) == 1

    def test_negative_index(self):
        assert evaluate(lambda x, y: x[-1].zext(16), 0x80, 0) == 1

    def test_shifts(self):
        assert evaluate(lambda x, y: x << 2, 0x41, 0, 8) == 0x04
        assert evaluate(lambda x, y: x >> 3, 0x41, 0, 8) == 0x08
        assert evaluate(lambda x, y: x << y[1:0], 1, 3, 8) == 8

    def test_reductions(self):
        assert evaluate(lambda x, y: x.or_reduce().zext(16), 0x10, 0) == 1
        assert evaluate(lambda x, y: x.and_reduce().zext(16), 0xFF, 0) == 1
        assert evaluate(lambda x, y: x.xor_reduce().zext(16), 0x03, 0) == 0

    def test_bitwise(self):
        assert evaluate(lambda x, y: x & y, 0xF0, 0x3C, 8) == 0x30
        assert evaluate(lambda x, y: x | y, 0xF0, 0x0C, 8) == 0xFC
        assert evaluate(lambda x, y: x ^ y, 0xFF, 0x0F, 8) == 0xF0
        assert evaluate(lambda x, y: ~x, 0xF0, 0, 8) == 0x0F


class TestCombinators:
    def test_mux(self):
        assert evaluate(lambda x, y: mux(x == 1, y, 0), 1, 42, 8) == 42
        assert evaluate(lambda x, y: mux(x == 1, y, 0), 2, 42, 8) == 0

    def test_cat(self):
        assert evaluate(lambda x, y: cat(x[3:0], y[3:0]), 0xA, 0xB, 8) == 0xAB

    def test_pad_and_ext(self):
        assert evaluate(lambda x, y: x.zext(16), 0xFF, 0) == 0xFF
        assert evaluate(lambda x, y: x.as_sint().sext(16), 0xFF, 0) == 0xFFFF

    def test_sext_cannot_shrink(self):
        with pytest.raises(HclError):
            evaluate(lambda x, y: x.sext(4), 0, 0)


class TestGuards:
    def test_bool_conversion_rejected(self):
        with pytest.raises(HclError):
            evaluate(lambda x, y: x + (1 if x else 0), 0, 0)

    def test_lift_garbage_rejected(self):
        with pytest.raises(HclError):
            evaluate(lambda x, y: x + "nope", 0, 0)

    def test_literal_widths(self):
        assert u(5).width == 3
        assert u(5, 8).width == 8
        assert u(0).width == 1
