"""Enums, memories and Decoupled bundles in the HCL frontend."""

import pytest

from repro.backends import TreadleBackend
from repro.hcl import ChiselEnum, HclError, Module, elaborate
from repro.ir import DecoupledAnnotation


class TestChiselEnum:
    def test_width(self):
        assert ChiselEnum("E", "a").width == 1
        assert ChiselEnum("E", "a b").width == 1
        assert ChiselEnum("E", "a b c").width == 2
        assert ChiselEnum("E", ["s0", "s1", "s2", "s3", "s4"]).width == 3

    def test_values_sequential(self):
        e = ChiselEnum("E", "x y z")
        assert e.x.expr.value == 0
        assert e.z.expr.value == 2

    def test_duplicate_states_rejected(self):
        with pytest.raises(HclError):
            ChiselEnum("E", "a a")

    def test_empty_rejected(self):
        with pytest.raises(HclError):
            ChiselEnum("E", [])

    def test_unknown_state(self):
        e = ChiselEnum("E", "a b")
        with pytest.raises(AttributeError):
            e.c

    def test_iteration(self):
        e = ChiselEnum("E", "a b c")
        assert [c.name for c in e] == ["a", "b", "c"]
        assert len(e) == 3

    def test_switch_covers_states(self):
        e = ChiselEnum("E", "red green blue")

        class Light(Module):
            def build(self, m):
                state = m.reg("state", enum=e)
                out = m.output("o", 2)
                with m.switch(state):
                    with m.is_(e.red):
                        state <<= e.green
                    with m.is_(e.green):
                        state <<= e.blue
                    with m.default():
                        state <<= e.red
                out <<= state

        sim = TreadleBackend().compile(elaborate(Light()))
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        seen = []
        for _ in range(6):
            seen.append(sim.peek("o"))
            sim.step()
        assert seen == [0, 1, 2, 0, 1, 2]

    def test_mismatched_enum_init_rejected(self):
        e1 = ChiselEnum("E1", "a b")
        e2 = ChiselEnum("E2", "x y")

        class Bad(Module):
            def build(self, m):
                m.reg("r", enum=e1, init=e2.x)

        with pytest.raises(HclError):
            elaborate(Bad())


class TestMemories:
    def test_write_then_read(self):
        class MemTest(Module):
            def build(self, m):
                wen = m.input("wen")
                addr = m.input("addr", 3)
                din = m.input("din", 8)
                dout = m.output("dout", 8)
                mem = m.mem("mem", 8, 8)
                with m.when(wen):
                    mem[addr] = din
                dout <<= mem[addr]

        sim = TreadleBackend().compile(elaborate(MemTest()))
        sim.poke("wen", 1)
        for addr in range(8):
            sim.poke("addr", addr)
            sim.poke("din", addr * 10)
            sim.step()
        sim.poke("wen", 0)
        for addr in range(8):
            sim.poke("addr", addr)
            assert sim.peek("dout") == addr * 10

    def test_conditional_write_respects_path(self):
        class CondWrite(Module):
            def build(self, m):
                go = m.input("go")
                dout = m.output("dout", 8)
                mem = m.mem("mem", 8, 4)
                with m.when(go):
                    mem.write(0, 0xAB)
                dout <<= mem[0]

        sim = TreadleBackend().compile(elaborate(CondWrite()))
        sim.poke("go", 0)
        sim.step(2)
        assert sim.peek("dout") == 0
        sim.poke("go", 1)
        sim.step()
        assert sim.peek("dout") == 0xAB

    def test_mem_addr_width(self):
        class M(Module):
            def build(self, m):
                mem = m.mem("mem", 8, 6)  # non power of two
                assert mem.addr_width == 3
                out = m.output("o", 8)
                out <<= mem[0]

        elaborate(M())


class TestDecoupled:
    def test_annotations_emitted(self):
        class Pipe(Module):
            def build(self, m):
                inp = m.decoupled_input("in", 8)
                out = m.decoupled_output("out", 8)
                out.valid <<= inp.valid
                out.bits <<= inp.bits
                inp.ready <<= out.ready

        circuit = elaborate(Pipe())
        annos = [a for a in circuit.annotations if isinstance(a, DecoupledAnnotation)]
        assert {a.target for a in annos} == {"in", "out"}
        sink = next(a for a in annos if a.target == "in")
        assert sink.is_sink

    def test_fire_semantics(self):
        class FireCount(Module):
            def build(self, m):
                inp = m.decoupled_input("in", 4)
                count = m.output("count", 8)
                counter = m.reg("counter", 8, init=0)
                inp.ready <<= 1
                with m.when(inp.fire):
                    counter <<= counter + 1
                count <<= counter

        sim = TreadleBackend().compile(elaborate(FireCount()))
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        sim.poke("in_valid", 1)
        sim.step(3)
        sim.poke("in_valid", 0)
        sim.step(3)
        assert sim.peek("count") == 3
