"""Module builder behaviour: whens, registers, instances, covers."""

import pytest

from repro.backends import TreadleBackend
from repro.hcl import ChiselEnum, HclError, Module, elaborate
from repro.ir import Cover, DefRegister, EnumDefAnnotation, When
from repro.ir.traversal import walk_stmts


def compile_of(module):
    return TreadleBackend().compile(elaborate(module))


class TestWhenChains:
    def test_when_elsewhen_otherwise(self):
        class Prio(Module):
            def build(self, m):
                sel = m.input("sel", 2)
                out = m.output("out", 4)
                out <<= 0
                with m.when(sel == 0):
                    out <<= 1
                with m.elsewhen(sel == 1):
                    out <<= 2
                with m.elsewhen(sel == 2):
                    out <<= 3
                with m.otherwise():
                    out <<= 4

        sim = compile_of(Prio())
        for sel, expected in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            sim.poke("sel", sel)
            assert sim.peek("out") == expected

    def test_elsewhen_without_when(self):
        class Bad(Module):
            def build(self, m):
                x = m.input("x")
                with m.elsewhen(x):
                    pass

        with pytest.raises(HclError):
            elaborate(Bad())

    def test_otherwise_without_when(self):
        class Bad(Module):
            def build(self, m):
                with m.otherwise():
                    pass

        with pytest.raises(HclError):
            elaborate(Bad())

    def test_statement_breaks_chain(self):
        class Bad(Module):
            def build(self, m):
                x = m.input("x")
                out = m.output("o", 1)
                with m.when(x):
                    pass
                out <<= x  # breaks the chain
                with m.otherwise():
                    pass

        with pytest.raises(HclError):
            elaborate(Bad())

    def test_nested_whens(self):
        class Nested(Module):
            def build(self, m):
                a = m.input("a")
                b = m.input("b")
                out = m.output("out", 2)
                out <<= 0
                with m.when(a):
                    with m.when(b):
                        out <<= 3
                    with m.otherwise():
                        out <<= 1

        sim = compile_of(Nested())
        sim.poke("a", 1)
        sim.poke("b", 1)
        assert sim.peek("out") == 3
        sim.poke("b", 0)
        assert sim.peek("out") == 1
        sim.poke("a", 0)
        assert sim.peek("out") == 0


class TestRegisters:
    def test_register_holds_without_assignment(self):
        class Hold(Module):
            def build(self, m):
                en = m.input("en")
                out = m.output("out", 4)
                r = m.reg("r", 4, init=7)
                with m.when(en):
                    r <<= r + 1
                out <<= r

        sim = compile_of(Hold())
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        sim.poke("en", 0)
        sim.step(3)
        assert sim.peek("out") == 7
        sim.poke("en", 1)
        sim.step(2)
        assert sim.peek("out") == 9

    def test_register_without_width_rejected(self):
        class Bad(Module):
            def build(self, m):
                m.reg("r")

        with pytest.raises(HclError):
            elaborate(Bad())

    def test_enum_register_annotation(self):
        states = ChiselEnum("T", "a b c")

        class WithEnum(Module):
            def build(self, m):
                r = m.reg("state", enum=states)
                out = m.output("o", 2)
                out <<= r

        circuit = elaborate(WithEnum())
        annos = [a for a in circuit.annotations if isinstance(a, EnumDefAnnotation)]
        assert len(annos) == 1
        assert dict(annos[0].states) == {"a": 0, "b": 1, "c": 2}

    def test_no_reset_register(self):
        class NoReset(Module):
            def build(self, m):
                d = m.input("d", 4)
                out = m.output("o", 4)
                r = m.reg("r", 4)
                r <<= d
                out <<= r

        circuit = elaborate(NoReset())
        regs = [s for s in walk_stmts(circuit.top.body) if isinstance(s, DefRegister)]
        assert regs[0].reset is None


class TestInstancesAndNaming:
    def test_shared_signature_dedups(self):
        class Child(Module):
            def __init__(self, p):
                super().__init__()
                self.p = p

            def signature(self):
                return (self.p,)

            def build(self, m):
                o = m.output("o", 4)
                o <<= self.p

        class Top(Module):
            def build(self, m):
                a = m.instance("a", Child(3))
                b = m.instance("b", Child(3))
                c = m.instance("c", Child(4))
                out = m.output("o", 4)
                out <<= a.o + b.o + c.o

        circuit = elaborate(Top())
        child_modules = [n for n in circuit.module_names() if n.startswith("Child")]
        assert len(child_modules) == 2  # 3 shared, 4 distinct

    def test_driving_input_rejected(self):
        class Bad(Module):
            def build(self, m):
                x = m.input("x")
                x <<= 1

        with pytest.raises(HclError):
            elaborate(Bad())

    def test_duplicate_names_uniquified(self):
        class Dup(Module):
            def build(self, m):
                a = m.wire("w", 4)
                b = m.wire("w", 4)
                a <<= 1
                b <<= 2
                out = m.output("o", 4)
                out <<= a + b

        sim = compile_of(Dup())
        assert sim.peek("o") == 3

    def test_cover_names_unique(self):
        class Covers(Module):
            def build(self, m):
                x = m.input("x")
                m.cover(x)
                m.cover(x)
                out = m.output("o", 1)
                out <<= x

        circuit = elaborate(Covers())
        names = [s.name for s in walk_stmts(circuit.top.body) if isinstance(s, Cover)]
        assert len(set(names)) == 2

    def test_source_info_recorded(self):
        class WithInfo(Module):
            def build(self, m):
                x = m.input("x")
                out = m.output("o", 1)
                with m.when(x):  # this line's number is captured
                    out <<= 1
                with m.otherwise():
                    out <<= 0

        circuit = elaborate(WithInfo())
        whens = [s for s in walk_stmts(circuit.top.body) if isinstance(s, When)]
        assert whens and whens[0].info.file  # captured this test file
        assert whens[0].info.line > 0
