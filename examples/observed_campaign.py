"""Observed campaign: tracing and metrics around a fault-injected run.

Enables the ``obs`` telemetry facade, runs a campaign where two backends
misbehave on purpose — one crashes on every attempt (the breaker opens
and its remaining job is skipped), one crashes late enough that its last
checkpoint is salvaged — and then prints the artifacts an operator would
look at:

* the campaign report (what survived),
* the metrics that record each defence firing: attempts by result,
  retries, breaker transitions, salvaged jobs, breaker skips,
* the span trace, written as Chrome trace-event JSON for
  chrome://tracing or https://ui.perfetto.dev.

Run with::

    PYTHONPATH=src python examples/observed_campaign.py
"""

import tempfile
from pathlib import Path

from repro.backends import TreadleBackend, VerilatorBackend
from repro.coverage import all_cover_names, instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.runtime import (
    BreakerBoard,
    Checkpointer,
    Executor,
    FaultPlan,
    FaultyBackend,
    RunJob,
    obs,
)

CYCLES = 120


def stimulus(sim, cycle):
    sim.poke("req_valid", 1)
    sim.poke("req_bits", ((cycle % 11 + 2) << 8) | (cycle % 5 + 1))
    sim.poke("resp_ready", 1)


def main():
    obs.enable()

    state, _ = instrument(elaborate(Gcd(width=8)), metrics=["line", "fsm"])
    names = all_cover_names(state.circuit)

    # crashes immediately, on every attempt: retries burn, the breaker
    # opens after two failed jobs, the third is skipped without a sim
    hopeless = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=5, seed=31))
    # crashes late: the checkpoint at cycle 100 is salvaged (status: partial)
    late_crash = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=110, seed=32))

    jobs = [
        RunJob("healthy", "verilator",
               lambda: VerilatorBackend().compile_state(state), CYCLES, stimulus),
        RunJob("hopeless-1", "faulty-treadle",
               lambda: hopeless.compile_state(state), CYCLES, stimulus),
        RunJob("hopeless-2", "faulty-treadle",
               lambda: hopeless.compile_state(state), CYCLES, stimulus),
        RunJob("hopeless-3", "faulty-treadle",
               lambda: hopeless.compile_state(state), CYCLES, stimulus),
        RunJob("late-crash", "late-treadle",
               lambda: late_crash.compile_state(state), CYCLES, stimulus),
    ]

    with tempfile.TemporaryDirectory() as shard_dir:
        executor = Executor(
            timeout=30,
            retries=1,
            checkpointer=Checkpointer(shard_dir, every=25),
            breaker=BreakerBoard(failure_threshold=2),
        )
        result = executor.run_campaign(jobs, known_names=names, counter_width=16)

    print(result.format())

    print()
    print("== what the defences did (from --metrics-out) ==")

    def total(name, **labels):
        metric = obs.metrics.get(name)
        return int(metric.value(**labels)) if metric else 0

    attempts = obs.metrics.get("repro_attempts_total")
    for labels, value in attempts.samples():
        print(f"attempts backend={labels['backend']} "
              f"result={labels['result']}: {int(value)}")
    retries = sum(
        total("repro_retries_total", backend=b)
        for b in ("faulty-treadle", "late-treadle")
    )
    print(f"retries:             {retries}")
    print(f"breaker -> open:     {total('repro_breaker_transitions_total', backend='faulty-treadle', to='open')}")
    print(f"breaker skips:       {total('repro_breaker_skips_total', backend='faulty-treadle')}")
    print(f"salvaged jobs:       {total('repro_salvaged_jobs_total', backend='late-treadle')}")
    print(f"checkpoint writes:   {total('repro_checkpoint_writes_total', result='written', campaign='')}")

    trace_path = Path(tempfile.gettempdir()) / "observed_campaign_trace.json"
    obs.tracer.write(trace_path)
    spans = sum(1 for e in obs.tracer.events() if e.get("ph") == "X")
    print()
    print(f"wrote {spans} spans to {trace_path} — open in chrome://tracing")

    obs.disable()


if __name__ == "__main__":
    main()
