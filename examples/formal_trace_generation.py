"""Formal cover-trace generation — the §3.4/§5.5 flow.

Bounded model checking drives every cover point: for reachable points the
solver synthesizes an input trace (which replays on any simulator);
unreachable points expose dead code.  The read-only instruction cache
demonstration is the paper's own finding: the I$ and D$ share RTL, but the
I$ write path can never execute.

Run:  python examples/formal_trace_generation.py
"""

from repro.backends import TreadleBackend
from repro.backends.formal import generate_cover_traces, replay_trace
from repro.coverage import instrument
from repro.designs.riscv_mini.cache import Cache
from repro.hcl import Module, elaborate


class ReadOnlyCache(Module):
    """The cache wrapped exactly as riscv-mini wraps its I$: wen tied low."""

    def build(self, m):
        req_valid = m.input("req_valid")
        req_addr = m.input("req_addr", 6)
        resp_valid = m.output("resp_valid", 1)
        mem_resp_valid = m.input("mem_resp_valid")
        mem_resp_data = m.input("mem_resp_data", 8)

        cache = m.instance("icache", Cache(n_sets=2, addr_width=6, xlen=8))
        cache.cpu_req_valid <<= req_valid
        cache.cpu_req_addr <<= req_addr
        cache.cpu_req_data <<= 0
        cache.cpu_req_wen <<= 0  # read-only!
        cache.mem_req_ready <<= 1
        cache.mem_resp_valid <<= mem_resp_valid
        cache.mem_resp_data <<= mem_resp_data
        resp_valid <<= cache.cpu_resp_valid


def main() -> None:
    state, db = instrument(
        elaborate(ReadOnlyCache()), metrics=["line", "fsm"], flatten=True
    )
    print("running bounded model checking (k=10) over every cover point...")
    result = generate_cover_traces(state, bound=10)
    print(result.format())

    dead = [n for n in result.unreachable if "write" in n]
    print(f"\ndead code finding: {len(dead)} write-path points unreachable")
    print("(the same cache RTL with wen exposed reaches all of them — the")
    print(" instruction cache is read-only, exactly the paper's discovery)")

    print("\nreplaying one witness on the treadle backend:")
    name = result.reachable[0]
    sim = TreadleBackend().compile_state(state)
    counts = replay_trace(sim, result.traces[name])
    print(f"  {name}: covered {counts[name]}x after replay")


if __name__ == "__main__":
    main()
