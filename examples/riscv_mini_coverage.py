"""Coverage-driven CPU bring-up: run programs on riscv-mini, watch coverage.

The workflow a verification engineer would use: run a test program, look at
which lines/FSM states are still uncovered, write the next test, merge.

Run:  python examples/riscv_mini_coverage.py
"""

from repro.backends import VerilatorBackend
from repro.coverage import fsm_report, instrument, line_report, merge_counts
from repro.designs.riscv_mini import RiscvMini, assemble, run_program
from repro.hcl import elaborate

TESTS = {
    "arith": """
        addi x1, x0, 5
        addi x2, x0, 7
        add  x3, x1, x2
        sub  x4, x3, x1
        ebreak
    """,
    "memory": """
        addi x1, x0, 0x5A
        sw   x1, 0x40(x0)
        lw   x2, 0x40(x0)
        ebreak
    """,
    "control": """
        addi x1, x0, 3
    loop:
        addi x1, x1, -1
        bne  x1, x0, loop
        jal  x2, end
        addi x9, x0, 1
    end:
        ebreak
    """,
}


def main() -> None:
    circuit = elaborate(RiscvMini())
    state, db = instrument(circuit, metrics=["line", "fsm"])
    backend = VerilatorBackend()
    sim = backend.compile_state(state)

    merged: dict = {}
    for name, source in TESTS.items():
        fresh = sim.fork()
        result = run_program(fresh, assemble(source), max_cycles=4000)
        counts = fresh.cover_counts()
        merged = merge_counts(merged, counts) if merged else counts
        report = line_report(db, merged, state.circuit)
        print(
            f"after {name:<8}: {result.cycles:>5} cycles, "
            f"{result.retired:>3} instructions, cumulative line coverage "
            f"{report.percent:.1f}%"
        )

    print()
    report = line_report(db, merged, state.circuit)
    print(f"uncovered lines after the suite ({report.covered}/{report.total}):")
    for file, line in report.uncovered_lines()[:15]:
        print(f"  {file}:{line}")

    print()
    fsm = fsm_report(db, merged, state.circuit)
    print(fsm.format())


if __name__ == "__main__":
    main()
