"""Coverage-directed fuzzing of the I2C peripheral (the §5.4 flow).

Any instrumented metric can drive the fuzzer — here we race line coverage
against the rfuzz mux-toggle metric and a random baseline, tracking line
coverage of everything each campaign executed (Figure 11's setup).

Run:  python examples/fuzzing_i2c.py
"""

from repro.coverage import instrument, line_report
from repro.designs.i2c import I2cPeripheral
from repro.fuzz import AflFuzzer, FuzzHarness, metric_filter
from repro.hcl import elaborate

EXECUTIONS = 600


def main() -> None:
    circuit = elaborate(I2cPeripheral())
    state, db = instrument(circuit, metrics=["line", "mux_toggle"])
    track_line = metric_filter(db, state, "line")

    campaigns = {
        "line feedback": metric_filter(db, state, "line"),
        "mux-toggle feedback": metric_filter(db, state, "mux_toggle"),
        "no feedback (random)": None,
    }

    print(f"fuzzing the I2C peripheral, {EXECUTIONS} executions per campaign\n")
    results = {}
    for name, feedback in campaigns.items():
        harness = FuzzHarness(state, max_cycles=128)
        fuzzer = AflFuzzer(
            harness.execute,
            feedback=feedback,
            track=track_line,
            seeds=(b"\x00" * 32,),
            seed=1234,
        )
        stats = fuzzer.run(EXECUTIONS)
        results[name] = stats
        print(
            f"{name:<22}: {len(stats.covered):>3} line points covered, "
            f"queue grew to {stats.queue_size}"
        )

    best = max(results.values(), key=lambda s: len(s.covered))
    print("\ncoverage growth of the best campaign:")
    for execution, covered in best.coverage_curve:
        print(f"  after {execution:>4} executions: {covered} points")


if __name__ == "__main__":
    main()
