"""Resilient coverage campaign: timeouts, retries, checkpoints, quarantine.

Runs one instrumented design across four jobs on three backend families,
two of which misbehave on purpose:

* ``treadle`` and ``verilator`` — healthy,
* a fault-injected treadle that crashes at cycle 80 (its last checkpoint
  still contributes),
* a fault-injected essent whose counts come back corrupted (quarantined
  instead of poisoning the merge).

Run with::

    PYTHONPATH=src python examples/resilient_campaign.py
"""

import tempfile

from repro.backends import EssentBackend, TreadleBackend, VerilatorBackend
from repro.coverage import all_cover_names, instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.runtime import Checkpointer, Executor, FaultPlan, FaultyBackend, RunJob

CYCLES = 120


def stimulus(sim, cycle):
    sim.poke("req_valid", 1)
    sim.poke("req_bits", ((cycle % 11 + 2) << 8) | (cycle % 5 + 1))
    sim.poke("resp_ready", 1)


def main():
    state, _ = instrument(elaborate(Gcd(width=8)), metrics=["line", "fsm"])
    names = all_cover_names(state.circuit)

    crashing = FaultyBackend(TreadleBackend(), FaultPlan(crash_at=80, seed=21))
    corrupting = FaultyBackend(
        EssentBackend(), FaultPlan(corrupt_keys=2, negate_keys=1, seed=22)
    )
    jobs = [
        RunJob("healthy-treadle", "treadle",
               lambda: TreadleBackend().compile_state(state), CYCLES, stimulus),
        RunJob("healthy-verilator", "verilator",
               lambda: VerilatorBackend().compile_state(state), CYCLES, stimulus),
        RunJob("crashing-treadle", "faulty-treadle",
               lambda: crashing.compile_state(state), CYCLES, stimulus),
        RunJob("corrupting-essent", "faulty-essent",
               lambda: corrupting.compile_state(state), CYCLES, stimulus),
    ]

    with tempfile.TemporaryDirectory() as shard_dir:
        executor = Executor(
            timeout=30,             # per-attempt wall-clock watchdog
            retries=1,              # one retry with backoff + jitter
            checkpointer=Checkpointer(shard_dir, every=25),
        )
        result = executor.run_campaign(jobs, known_names=names, counter_width=16)

    print(result.format())
    print()
    print("quarantine report JSON:")
    print(result.quarantine.to_json())


if __name__ == "__main__":
    main()
