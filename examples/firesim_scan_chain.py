"""FPGA-accelerated coverage: scan chains, resources, and merging (§3.3, §5.2-5.3).

Shows the full FireSim-style flow:

1. instrument an SoC with line coverage,
2. run a software simulation first and *remove* the points it already
   covered (§5.3 — saving FPGA area),
3. insert the saturating-counter scan chain, estimate FPGA resources and
   F_max for several counter widths (Figures 9/10),
4. run the scan-chain design and clock the counts out through the chain.

Run:  python examples/firesim_scan_chain.py
"""

from repro.backends import FireSimBackend, VerilatorBackend
from repro.backends.firesim import (
    coverage_counter_resources,
    estimate_fmax,
    estimate_module,
)
from repro.coverage import covered_points, instrument
from repro.designs.soc import RocketLikeSoC
from repro.hcl import elaborate
from repro.ir import Cover


def main() -> None:
    circuit = elaborate(RocketLikeSoC(n_cores=2, addr_width=6, cache_sets=2))
    state, db = instrument(circuit, metrics=["line"], flatten=True)
    n_covers = len(state.cover_paths)
    print(f"SoC instrumented: {n_covers} cover statements after flattening")

    # -- step 1: software simulation covers the easy points -------------------
    sw = VerilatorBackend().compile_state(state)
    sw.poke("reset", 1)
    sw.step(2)
    sw.poke("reset", 0)
    sw.step(400)
    already = covered_points(sw.cover_counts(), threshold=10)
    print(f"software simulation covered {len(already)} points >= 10x; removing them")

    kept_flat_names = {
        flat for flat, canonical in state.cover_paths.items() if canonical not in already
    }
    state.circuit.top.body = [
        s
        for s in state.circuit.top.body
        if not (isinstance(s, Cover) and s.name not in kept_flat_names)
    ]

    # -- step 2: cost the instrumentation at several counter widths ------------
    base = estimate_module(state.circuit.top)
    remaining = len(kept_flat_names)
    print(f"\n{'width':>6} {'coverage LUTs':>14} {'F_max':>9}")
    for width in (1, 8, 16, 32):
        cov = coverage_counter_resources(remaining, width)
        fmax = estimate_fmax(base, remaining, width, seed="example")
        fmax_text = f"{fmax.fmax_mhz:.0f} MHz" if fmax.fmax_mhz else "FAILED"
        print(f"{width:>6} {cov.luts:>14.0f} {fmax_text:>9}")

    # -- step 3: run with the real scan chain ----------------------------------
    firesim = FireSimBackend(counter_width=16).compile_state(state)
    firesim.poke("reset", 1)
    firesim.step(2)
    firesim.poke("reset", 0)
    firesim.step(500)
    counts = firesim.cover_counts()  # pauses + scans the chain
    hit = sum(1 for v in counts.values() if v)
    print(
        f"\nscan-out complete: {len(counts)} counters "
        f"({firesim.info.length_bits} bits), {hit} points hit"
    )
    print(f"modeled scan-out time at 10 MHz: {firesim.scan_out_seconds() * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
