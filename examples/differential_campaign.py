"""Differential coverage campaign: quorum voting against a lying backend.

Runs the same instrumented design on three backend families and
cross-checks their per-cover counts:

* ``treadle`` and ``verilator`` — honest,
* a fault-injected essent that reports *plausible-but-wrong* counts:
  every key is in the cover namespace and every value a non-negative
  int, so shard validation alone would happily merge the lie.

The :class:`DifferentialRunner` outvotes the liar (2-of-3 quorum per
cover), merges only the agreed counts, and quarantines the lying leg
with a per-cover disagreement report.

Run with::

    PYTHONPATH=src python examples/differential_campaign.py
"""

from repro.backends import EssentBackend, TreadleBackend, VerilatorBackend
from repro.coverage import all_cover_names, instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.runtime import DifferentialRunner, FaultPlan, FaultyBackend

CYCLES = 120


def stimulus(sim, cycle):
    sim.poke("req_valid", 1)
    sim.poke("req_bits", ((cycle % 11 + 2) << 8) | (cycle % 5 + 1))
    sim.poke("resp_ready", 1)


def main():
    state, _ = instrument(elaborate(Gcd(width=8)), metrics=["line", "fsm"])
    names = all_cover_names(state.circuit)

    liar = FaultyBackend(
        EssentBackend(), FaultPlan(lie_keys=3, lie_delta=9, seed=31)
    )
    result = DifferentialRunner().run(
        "gcd-differential",
        {
            "treadle": lambda: TreadleBackend().compile_state(state),
            "verilator": lambda: VerilatorBackend().compile_state(state),
            "essent": lambda: liar.compile_state(state),
        },
        cycles=CYCLES,
        stimulus=stimulus,
        known_names=names,
    )

    print(result.format())
    print()
    print("disagreement report JSON:")
    print(result.report.to_json())
    print()
    print("quarantine report JSON:")
    print(result.quarantine.to_json())


if __name__ == "__main__":
    main()
