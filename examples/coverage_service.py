"""Coverage-as-a-service: submit, kill -9, recover, bit-identical counts.

Runs the whole crash-safety story in-process:

1. start a ``CoverageService`` on a temp state directory,
2. submit two campaigns over real HTTP (one long, one short),
3. wait until the long one is provably mid-run (a checkpoint shard
   exists), then abort the daemon without drain — the in-process
   equivalent of ``kill -9`` (no clean-shutdown record, no goodbye),
4. restart on the same state directory and watch recovery: the finished
   campaign's counts are adopted from its shard, the interrupted one is
   requeued and re-run,
5. show that the final counts are bit-identical to an uninterrupted
   reference run of the same specs — seeded stimulus makes the re-run
   deterministic.

Run with::

    PYTHONPATH=src python examples/coverage_service.py
"""

import json
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.coverage import instrument
from repro.designs.gcd import Gcd
from repro.hcl import elaborate
from repro.ir import print_circuit
from repro.runtime import Checkpointer, obs
from repro.runtime.service import (
    CampaignSpec,
    CoverageService,
    ServiceConfig,
    execute_spec,
)


def http(port, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def wait_done(port, campaign_id):
    while True:
        status = http(port, "GET", f"/status/{campaign_id}")
        if status["status"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.02)


def main() -> None:
    state, _db = instrument(elaborate(Gcd(width=8)), metrics=["line"])
    circuit_text = print_circuit(state.circuit)
    state_dir = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    specs = {
        "long": {"tenant": "alice", "circuit": circuit_text,
                 "cycles": 200_000, "seed": 11, "checkpoint_every": 10_000},
        "short": {"tenant": "bob", "circuit": circuit_text,
                  "cycles": 2_000, "seed": 22, "checkpoint_every": 500},
    }

    print("== reference: uninterrupted runs of the same specs ==")
    reference = {}
    for name, obj in specs.items():
        reference[name] = execute_spec(
            CampaignSpec.from_json_obj(obj), f"ref-{name}",
            Checkpointer(state_dir / f"ref-{name}"),
        )
        covered = sum(1 for v in reference[name].counts.values() if v)
        print(f"  {name}: {covered}/{len(reference[name].counts)} covered")

    print("\n== life 1: submit both, then pull the plug mid-run ==")
    service = CoverageService(
        ServiceConfig(state_dir=state_dir / "state", max_workers=2)
    ).start_in_thread()
    ids = {}
    for name, obj in specs.items():
        ids[name] = http(service.port, "POST", "/submit", obj)["id"]
        print(f"  submitted {name} -> {ids[name]}")
    shard_dir = service.shard_dir(ids["long"])
    while not list(shard_dir.glob("*.shard.json")):
        time.sleep(0.005)  # wait for a mid-run checkpoint to exist
    status = http(service.port, "GET", f"/status/{ids['long']}")
    print(f"  long campaign is {status['status']} "
          f"(checkpoint on disk) -- killing the daemon NOW")
    service.shutdown(drain=False)  # no drain, no clean-shutdown record
    service.campaigns[ids["long"]].cancel_event.set()  # stop orphan thread

    print("\n== life 2: restart on the same state directory ==")
    service = CoverageService(
        ServiceConfig(state_dir=state_dir / "state", max_workers=2)
    ).start_in_thread()
    health = http(service.port, "GET", "/healthz")
    print(f"  recovery: {health['recovery']}")
    for name in specs:
        final = wait_done(service.port, ids[name])
        report = http(service.port, "GET", f"/report/{ids[name]}")
        identical = report["counts"] == reference[name].counts
        print(f"  {name}: {final['status']} after restart; counts "
              f"bit-identical to reference: {identical}")
        assert identical
    service.shutdown(drain=True)
    obs.disable()
    obs.reset()
    print("\nevery accepted campaign survived the crash; nothing was lost")


if __name__ == "__main__":
    main()
