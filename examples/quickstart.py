"""Quickstart: build a circuit, instrument it, simulate, read the reports.

Run:  python examples/quickstart.py
"""

from repro.backends import TreadleBackend, VerilatorBackend
from repro.coverage import (
    fsm_report,
    instrument,
    line_report,
    merge_counts,
    toggle_report,
)
from repro.hcl import ChiselEnum, Module, elaborate

State = ChiselEnum("State", "idle busy done")


class Worker(Module):
    """A small state machine: counts up while busy, then signals done."""

    def build(self, m):
        start = m.input("start")
        done = m.output("done", 1)
        state = m.reg("state", enum=State)
        count = m.reg("count", 4, init=0)
        done <<= 0
        with m.switch(state):
            with m.is_(State.idle):
                with m.when(start):
                    state <<= State.busy
                    count <<= 0
            with m.is_(State.busy):
                count <<= count + 1
                with m.when(count == 9):
                    state <<= State.done
            with m.is_(State.done):
                done <<= 1
                state <<= State.idle


def main() -> None:
    # 1. elaborate the design and instrument it — every metric is a
    #    compiler pass that lowers to the single `cover` primitive
    circuit = elaborate(Worker())
    state, db = instrument(circuit, metrics=["line", "toggle", "fsm"])

    # 2. simulate on two very different backends
    interp = TreadleBackend().compile_state(state)  # zero build time
    compiled = VerilatorBackend().compile_state(state)  # compiled, fast

    for sim in (interp, compiled):
        sim.poke("reset", 1)
        sim.step()
        sim.poke("reset", 0)
        sim.poke("start", 1)
        sim.step(30)

    # 3. counts share one namespace -> merging is trivial (the paper's
    #    headline property)
    merged = merge_counts(interp.cover_counts(), compiled.cover_counts())

    # 4. simulator-independent report generators
    print(line_report(db, merged, state.circuit).format())
    print()
    print(fsm_report(db, merged, state.circuit).format())
    print()
    print(toggle_report(db, merged, state.circuit).format())


if __name__ == "__main__":
    main()
