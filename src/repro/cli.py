"""Command-line interface: instrument, simulate, report, emit, check.

Works on circuits in the textual IR form (see :mod:`repro.ir.printer`)::

    python -m repro check design.fir
    python -m repro verilog design.fir -o design.v
    python -m repro instrument design.fir -m line -m fsm -o instrumented.fir
    python -m repro simulate instrumented.fir --cycles 1000 --random-inputs \
        --counts counts.json
    python -m repro report instrumented.fir --counts counts.json --html out.html
    python -m repro bmc instrumented.fir --bound 20
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

from .coverage import (
    CoverageDB,
    InstanceTree,
    all_cover_names,
    apply_exclusions,
    counts_from_json,
    counts_to_json,
    fsm_report,
    instrument,
    line_report,
    merge_counts,
    ready_valid_report,
    toggle_report,
)
from .coverage.htmlreport import html_report
from .ir import parse_circuit, print_circuit
from .passes import CheckForms, CompileState, lower
from .verilog import emit_verilog

DB_SUFFIX = ".covdb.json"


def _load(path: str):
    return parse_circuit(Path(path).read_text())


def _bundled_designs() -> dict:
    """name -> elaborated circuit for every bundled example design."""
    from . import designs
    from .hcl import Module, elaborate

    out = {}
    for name in sorted(designs.__all__):
        obj = getattr(designs, name)
        if isinstance(obj, type) and issubclass(obj, Module) and obj is not Module:
            out[name] = elaborate(obj())
    return out


def _resolve_circuit(spec: str):
    """``spec`` is a ``.fir`` path or the name of a bundled design class."""
    path = Path(spec)
    if path.exists():
        return parse_circuit(path.read_text())
    from . import designs
    from .hcl import Module, elaborate

    obj = getattr(designs, spec, None)
    if isinstance(obj, type) and issubclass(obj, Module):
        return elaborate(obj())
    raise SystemExit(f"{spec}: not a circuit file and not a bundled design")


def _add_format_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (json is machine-readable; lint emits SARIF)",
    )


def _emit_result(args: argparse.Namespace, text: str, json_obj) -> None:
    """The one ``--format {text,json}`` implementation lint/bmc/reachability share."""
    if args.format == "json":
        payload = json_obj() if callable(json_obj) else json_obj
        _write(json.dumps(payload, indent=2, sort_keys=True) + "\n",
               getattr(args, "output", None))
    else:
        _write(text + "\n", getattr(args, "output", None))


def _write(text: str, path: str | None) -> None:
    if path:
        Path(path).write_text(text)
    else:
        sys.stdout.write(text)


def cmd_check(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    CheckForms().run(CompileState(circuit))
    modules = len(circuit.modules)
    print(f"OK: {circuit.main} ({modules} modules)")
    return 0


def cmd_print(args: argparse.Namespace) -> int:
    state = lower(_load(args.circuit), optimize=args.optimize,
                  flatten=args.flatten, check_passes=args.check_passes)
    _write(print_circuit(state.circuit), args.output)
    return 0


def cmd_verilog(args: argparse.Namespace) -> int:
    state = lower(_load(args.circuit), flatten=args.flatten,
                  check_passes=args.check_passes)
    _write(emit_verilog(state.circuit), args.output)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        RULES,
        Diagnostics,
        Severity,
        SuppressionIndex,
        lint_circuit,
    )

    if args.explain:
        spec = RULES.get(args.explain)
        if spec is None:
            print(f"unknown rule id {args.explain!r}; known rules:",
                  file=sys.stderr)
            for rule_id in sorted(RULES):
                print(f"  {rule_id}", file=sys.stderr)
            return 2
        print(spec.explain())
        return 0
    if not args.all_designs and not args.circuit:
        print("lint: give a circuit file/design name or --all-designs",
              file=sys.stderr)
        return 2
    if args.all_designs:
        circuits = _bundled_designs()
    else:
        circuits = {args.circuit: _resolve_circuit(args.circuit)}
    search = [Path(__file__).parent / "designs"]
    if not args.all_designs and Path(args.circuit).exists():
        search.append(Path(args.circuit).parent)
    suppressions = SuppressionIndex(search)
    combined = Diagnostics(suppressions)
    for _name, circuit in sorted(circuits.items()):
        if args.metric:
            # lint the instrumented circuit: this is how the
            # cover-redundant family surfaces the implication graph for
            # coverage covers (SARIF artifact in the minimize-smoke job)
            inst_state, _db = instrument(circuit, metrics=args.metric)
            circuit = inst_state.circuit
        combined.extend(
            lint_circuit(
                circuit,
                suppressions=suppressions,
                semantic_tier=not args.no_semantic,
            )
        )
    _emit_result(args, combined.format_text(), combined.to_sarif)
    return 1 if combined.at_least(Severity.WARNING) else 0


def cmd_reachability(args: argparse.Namespace) -> int:
    from .analysis import apply_verdicts, tiered_reachability

    circuit = _resolve_circuit(args.circuit)
    if args.metric:
        inst_state, _db = instrument(circuit, metrics=args.metric)
        circuit = inst_state.circuit
    state = lower(circuit, flatten=True)
    result = tiered_reachability(
        state, bound=args.bound, use_bmc=not args.no_bmc
    )
    _emit_result(args, result.format(), result.to_json_obj)
    if args.update_db:
        db = CoverageDB.from_json(
            Path(args.update_db).read_text(), source=args.update_db
        )
        added = apply_verdicts(db, result)
        Path(args.update_db).write_text(db.to_json())
        print(
            f"recorded {added} exclusion(s) in {args.update_db}",
            file=sys.stderr,
        )
    return 0


def cmd_instrument(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    state, db = instrument(circuit, metrics=args.metric or ["line"],
                           minimize=args.min_instrument)
    output = args.output or "instrumented.fir"
    Path(output).write_text(print_circuit(state.circuit))
    Path(output + DB_SUFFIX).write_text(db.to_json())
    n = sum(db.count(m) for m in db.metrics())
    summary = state.metadata.get("minimize")
    if summary is not None:
        print(
            f"wrote {output} (+{DB_SUFFIX}): {n} cover statements, "
            f"{summary.elided} elided to recipes "
            f"({summary.reduction_pct:.1f}% fewer counters)"
        )
    else:
        print(f"wrote {output} (+{DB_SUFFIX}): {n} cover statements")
    return 0


def _make_executor(args, checkpointer):
    from .runtime import BreakerBoard, Executor

    breaker = None
    if args.breaker_threshold:
        breaker = BreakerBoard(failure_threshold=args.breaker_threshold)
    return Executor(
        timeout=args.timeout,
        retries=args.retries,
        checkpointer=checkpointer,
        seed=args.seed,
        isolation=args.isolation,
        mem_limit_mb=args.mem_limit,
        cpu_limit_s=args.cpu_limit,
        breaker=breaker,
    )


def _write_observability(args) -> None:
    """Flush the trace/metrics files a ``simulate`` run asked for."""
    from .runtime import obs

    if args.trace_out:
        obs.tracer.write(args.trace_out)
        print(f"wrote trace: {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        if args.metrics_out.endswith(".json"):
            obs.metrics.write_json(args.metrics_out)
        else:
            obs.metrics.write_prometheus(args.metrics_out)
        print(f"wrote metrics: {args.metrics_out}", file=sys.stderr)


def cmd_simulate(args: argparse.Namespace) -> int:
    from .backends import ModelCache, set_default_cache
    from .runtime import obs

    observing = bool(args.trace_out or args.metrics_out)
    if observing:
        obs.enable()
    previous_cache = None
    caching = bool(args.model_cache_dir)
    if caching:
        previous_cache = set_default_cache(ModelCache(args.model_cache_dir))
    try:
        return _simulate(args)
    finally:
        # Write the observability files on every exit path — a failed
        # campaign is exactly when you want the trace.
        if caching:
            set_default_cache(previous_cache)
        if observing:
            _write_observability(args)
            obs.disable()


def _simulate(args: argparse.Namespace) -> int:
    from .backends import BACKENDS
    from .runtime import Checkpointer, DifferentialRunner, RunJob

    circuit = _load(args.circuit)
    min_db = None
    if args.min_instrument:
        # count only the minimal basis; the shards, checkpoint files, and
        # backend counters all carry fewer counters, and the recipes
        # rebuild the full counts (bit-identical) before anything is
        # written out
        from .analysis.implication import minimize_circuit

        min_state, min_db = minimize_circuit(circuit)
        circuit = min_state.circuit

    def reconstruct(counts):
        if min_db is None:
            return counts
        return min_db.reconstruct_counts(
            counts, InstanceTree(circuit), counter_width=args.counter_width
        )

    inputs = [
        p.name
        for p in circuit.top.inputs
        if p.name not in ("clock", "reset")
    ]
    widths = {p.name: getattr(p.type, "width", 1) for p in circuit.top.inputs}
    rng = random.Random(args.seed)

    def stimulus(sim, cycle):
        if args.random_inputs:
            for name in inputs:
                sim.poke(name, rng.getrandbits(widths.get(name, 1) or 1))

    def make_sim_for(backend_name):
        if backend_name == "treadle" and args.no_jit:
            backend = BACKENDS[backend_name](jit=False)
        else:
            backend = BACKENDS[backend_name]()

        def make_sim():
            rng.seed(args.seed)  # each attempt replays the same stimulus
            return backend.compile(circuit, counter_width=args.counter_width)

        return make_sim

    def warm_cache(factories):
        # Compile once in the parent before any fork: the workers inherit
        # the warm in-process cache copy-on-write, so every shard of the
        # campaign skips its own compile (exactly one per circuit/backend).
        from .backends import default_cache

        if args.isolation == "process" and default_cache() is not None:
            for factory in factories:
                factory()

    if args.backend == "swarm" and not args.differential:
        return _simulate_swarm(args, circuit, inputs, widths, reconstruct)

    checkpointer = None
    if args.checkpoint_every or args.resume or args.shard_dir:
        shard_dir = args.shard_dir or (args.circuit + ".shards")
        checkpointer = Checkpointer(Path(shard_dir), every=args.checkpoint_every or 0)
    executor = _make_executor(args, checkpointer)
    names = all_cover_names(circuit)

    if args.differential:
        backends = [b.strip() for b in args.differential.split(",") if b.strip()]
        unknown = sorted(set(backends) - set(BACKENDS))
        if len(backends) < 2 or unknown:
            print(
                f"--differential needs >= 2 known backends "
                f"(unknown: {', '.join(unknown) or 'none'})",
                file=sys.stderr,
            )
            return 2
        runner = DifferentialRunner(executor)
        leg_factories = {b: make_sim_for(b) for b in backends}
        warm_cache(leg_factories.values())
        min_tag = "-min" if args.min_instrument else ""
        diff = runner.run(
            job_id=f"{Path(args.circuit).stem}-s{args.seed}{min_tag}",
            make_sims=leg_factories,
            cycles=args.cycles,
            stimulus=stimulus,
            reset_cycles=args.reset_cycles,
            known_names=names,
            counter_width=args.counter_width,
        )
        if not diff.agreed:
            print(diff.report.format(), file=sys.stderr)
        if not diff.quarantine.clean:
            print(diff.quarantine.format(), file=sys.stderr)
        if not diff.merged:
            print("no quorum on any cover; refusing to write counts",
                  file=sys.stderr)
            return 1
        counts = reconstruct(diff.merged)
        if args.merge_with:
            counts = merge_counts(
                counts,
                counts_from_json(Path(args.merge_with).read_text(),
                                 source=args.merge_with),
            )
        _write(counts_to_json(counts) + "\n", args.counts)
        covered = sum(1 for c in counts.values() if c)
        print(
            f"differential over {', '.join(backends)} "
            f"({len(diff.report.voters)} voting): "
            f"{covered}/{len(counts)} points covered"
        )
        return 0

    min_tag = "-min" if args.min_instrument else ""
    job = RunJob(
        job_id=f"{Path(args.circuit).stem}-{args.backend}-s{args.seed}{min_tag}",
        backend_name=args.backend,
        make_sim=make_sim_for(args.backend),
        cycles=args.cycles,
        stimulus=stimulus,
        reset_cycles=args.reset_cycles,
    )
    warm_cache([job.make_sim])
    result = executor.run_campaign(
        [job],
        known_names=names,
        counter_width=args.counter_width,
        resume=args.resume,
    )
    for failure in result.failures:
        print(failure.format(), file=sys.stderr)
    if not result.quarantine.clean:
        print(result.quarantine.format(), file=sys.stderr)
    outcome = result.outcomes[0]
    if not outcome.contributed:
        print(f"job failed after {outcome.attempts} attempt(s); no counts recovered",
              file=sys.stderr)
        return 1
    if not result.quarantine.merged_job_ids:
        # The job ran, but its shard failed validation (corrupted counts):
        # writing an empty counts file and exiting 0 would launder the
        # corruption into "0 points covered".
        print("every shard was quarantined; refusing to write counts",
              file=sys.stderr)
        return 1
    counts = reconstruct(result.merged)
    if args.merge_with:
        counts = merge_counts(
            counts,
            counts_from_json(Path(args.merge_with).read_text(),
                             source=args.merge_with),
        )
    _write(counts_to_json(counts) + "\n", args.counts)
    covered = sum(1 for c in counts.values() if c)
    print(
        f"simulated {outcome.cycles_run} cycles ({outcome.status}): "
        f"{covered}/{len(counts)} points covered"
    )
    return 0


def _simulate_swarm(args, circuit, inputs, widths, reconstruct) -> int:
    """``--backend swarm``: N independently-seeded lanes in one process.

    Lane *l* replays the stimulus stream of ``--seed`` + *l*, so a swarm
    run is exactly ``--lanes`` scalar campaigns merged — the counts file
    it writes follows :func:`merge_counts` semantics and can be merged
    onward with scalar shards.
    """
    from .backends.swarm import SwarmBackend

    try:
        backend = SwarmBackend(lanes=args.lanes)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    sim = backend.compile(circuit, counter_width=args.counter_width)
    if args.reset_cycles and "reset" in {p.name for p in circuit.top.inputs}:
        sim.poke("reset", 1)
        sim.step(args.reset_cycles)
        sim.poke("reset", 0)
    if args.random_inputs:
        rngs = [
            random.Random(args.seed + lane) for lane in range(args.lanes)
        ]
        cycles_run = 0
        for _ in range(args.cycles):
            for name in inputs:
                width = widths.get(name, 1) or 1
                sim.poke_lanes(
                    name, [rng.getrandbits(width) for rng in rngs]
                )
            result = sim.step(1)
            cycles_run += result.cycles
            if result.stopped:
                break
    else:
        cycles_run = sim.step(args.cycles).cycles
    counts = reconstruct(sim.merged_cover_counts())
    if args.merge_with:
        counts = merge_counts(
            counts,
            counts_from_json(Path(args.merge_with).read_text(),
                             source=args.merge_with),
        )
    _write(counts_to_json(counts) + "\n", args.counts)
    covered = sum(1 for c in counts.values() if c)
    print(
        f"simulated {cycles_run} cycles x {args.lanes} lanes "
        f"({cycles_run * args.lanes} lane-cycles): "
        f"{covered}/{len(counts)} points covered"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the coverage-as-a-service daemon (see DESIGN.md §12)."""
    import asyncio

    from .runtime.service import CoverageService, ServiceConfig

    config = ServiceConfig(
        state_dir=Path(args.state_dir),
        host=args.host,
        port=args.port,
        max_workers=args.max_workers,
        max_queue=args.max_queue,
        tenant_quota=args.tenant_quota,
        journal_fsync=not args.no_journal_fsync,
        compact_every=args.compact_every,
        isolation=args.isolation,
        default_timeout=args.timeout,
        retries=args.retries,
        checkpoint_every=args.checkpoint_every,
        breaker_threshold=args.breaker_threshold,
        drain_grace=args.drain_grace,
        model_cache_dir=args.model_cache_dir,
        cluster_port=args.cluster_port,
        lease_s=args.lease_s,
        cluster_heartbeat_s=args.cluster_heartbeat_s,
        retry_after_s=args.retry_after,
        compact_max_bytes=args.compact_max_bytes,
        min_instrument=args.min_instrument,
    )
    asyncio.run(CoverageService(config).run())
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Attach a remote execution worker to a running coverage service."""
    from .runtime.cluster import ClusterWorker, WorkerConfig

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"--connect expects HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    config = WorkerConfig(
        host=host,
        port=int(port),
        slots=args.slots,
        state_dir=Path(args.state_dir) if args.state_dir else None,
        isolation=args.isolation,
        reconnect=args.reconnect,
        seed=args.seed,
        worker_id=args.worker_id,
        min_instrument=args.min_instrument,
    )
    worker = ClusterWorker(config)
    print(f"repro worker: {worker.id} connecting to {host}:{port}",
          flush=True)

    import signal as _signal

    def _stop(signum, frame):
        worker.stop()

    for sig in (_signal.SIGTERM, _signal.SIGINT):
        try:
            _signal.signal(sig, _stop)
        except (ValueError, OSError):  # non-main thread / platform quirks
            pass
    return worker.run()


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Coverage-directed fuzzing: instrument, then drive the AFL loop."""
    from .backends import BACKENDS
    from .fuzz import AflFuzzer, FuzzHarness, metric_filter

    circuit = _load(args.circuit)
    metrics = args.metric or ["line"]
    state, db = instrument(circuit, metrics=metrics)
    backend = None
    if args.backend:
        if args.backend == "swarm":
            backend = BACKENDS["swarm"](
                lanes=args.lanes if args.lanes > 1 else 64
            )
        else:
            backend = BACKENDS[args.backend]()
    try:
        harness = FuzzHarness(
            state,
            backend=backend,
            max_cycles=args.max_cycles,
            reset_cycles=args.reset_cycles,
            lanes=args.lanes,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.feedback == "none":
        feedback = None
    elif args.feedback == "all":
        feedback = lambda counts: counts  # noqa: E731 — identity filter
    else:
        if args.feedback not in metrics:
            print(
                f"--feedback {args.feedback} requires -m {args.feedback}",
                file=sys.stderr,
            )
            return 2
        feedback = metric_filter(db, state, args.feedback)
    fuzzer = AflFuzzer(
        harness.execute,
        feedback=feedback,
        seed=args.seed,
        execute_batch=harness.execute_batch,
    )
    stats = fuzzer.run(args.executions, batch=harness.lanes)
    if args.stats_out:
        payload = {
            "executions": stats.executions,
            "queue_size": stats.queue_size,
            "covered": sorted(stats.covered),
            "coverage_curve": stats.coverage_curve,
            "cycles_executed": harness.cycles_executed,
            "lanes": harness.lanes,
        }
        Path(args.stats_out).write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"{stats.executions} executions "
        f"({harness.cycles_executed} design cycles, {harness.lanes} lane(s)): "
        f"{len(stats.covered)} cover points hit, queue {stats.queue_size}"
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Pretty-print a metrics file written by ``simulate --metrics-out``.

    Accepts both formats the CLI writes: Prometheus text exposition
    (``.prom``) and the JSON snapshot (``.json``) — detected by content,
    not extension.
    """
    from .runtime.telemetry import MetricError, format_snapshot, parse_prometheus

    text = Path(args.metrics).read_text()
    if text.lstrip().startswith("{"):
        try:
            snapshot = json.loads(text)
        except json.JSONDecodeError as error:
            print(f"{args.metrics}: invalid JSON snapshot ({error})",
                  file=sys.stderr)
            return 1
    else:
        try:
            snapshot = parse_prometheus(text)
        except MetricError as error:
            print(f"{args.metrics}: {error}", file=sys.stderr)
            return 1
    print(format_snapshot(snapshot), end="")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    db_path = args.db or args.circuit + DB_SUFFIX
    db = CoverageDB.from_json(Path(db_path).read_text(), source=db_path)
    counts = counts_from_json(Path(args.counts).read_text(), source=args.counts)
    # counts written by a --min-instrument run are already reconstructed;
    # this covers basis-count files produced by other tooling (no-op when
    # the DB has no recipes or the keys are already present)
    counts = db.reconstruct_counts(counts, InstanceTree(circuit))
    if args.html:
        Path(args.html).write_text(html_report(db, counts, circuit))
        print(f"wrote {args.html}")
        return 0
    counts, excluded = apply_exclusions(counts, db)
    sections = []
    if "line" in db.entries:
        sections.append(line_report(db, counts, circuit).format())
    if "toggle" in db.entries:
        sections.append(toggle_report(db, counts, circuit).format())
    if "fsm" in db.entries:
        sections.append(fsm_report(db, counts, circuit).format())
    if "ready_valid" in db.entries:
        sections.append(ready_valid_report(db, counts, circuit).format())
    if excluded:
        lines = [
            f"excluded from denominator ({len(excluded)} points):"
        ]
        for name, reason in sorted(excluded.items()):
            lines.append(f"  - {name}: {reason}")
        sections.append("\n".join(lines))
    print("\n\n".join(sections))
    return 0


def cmd_bmc(args: argparse.Namespace) -> int:
    from .backends.formal import generate_cover_traces

    state = lower(_load(args.circuit), flatten=True)
    result = generate_cover_traces(state, bound=args.bound)

    def json_obj():
        return {
            "bound": result.bound,
            "reachable": {
                n: {"cycle": result.traces[n].cycle} for n in result.reachable
            },
            "unreachable": result.unreachable,
        }

    _emit_result(args, result.format(), json_obj)
    if args.expect_all_reachable and result.unreachable:
        print(
            f"{len(result.unreachable)} cover(s) not reachable within "
            f"{args.bound} cycles:",
            file=sys.stderr,
        )
        for name in result.unreachable:
            print(f"  {name}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="simulator independent coverage toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="validate a circuit file")
    p.add_argument("circuit")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("print", help="lower and pretty-print a circuit")
    p.add_argument("circuit")
    p.add_argument("-o", "--output")
    p.add_argument("--flatten", action="store_true")
    p.add_argument("--no-optimize", dest="optimize", action="store_false")
    p.add_argument("--check-passes", action="store_true",
                   help="re-lint after every pipeline pass; fail at the "
                        "stage that introduces a violation")
    p.set_defaults(fn=cmd_print)

    p = sub.add_parser("verilog", help="emit structural Verilog")
    p.add_argument("circuit")
    p.add_argument("-o", "--output")
    p.add_argument("--flatten", action="store_true")
    p.add_argument("--check-passes", action="store_true",
                   help="re-lint after every pipeline pass; fail at the "
                        "stage that introduces a violation")
    p.set_defaults(fn=cmd_verilog)

    p = sub.add_parser("lint", help="run the static analysis rules")
    p.add_argument("circuit", nargs="?",
                   help="a .fir file or a bundled design name (e.g. Gcd)")
    p.add_argument("--all-designs", action="store_true",
                   help="lint every bundled example design")
    p.add_argument("--no-semantic", action="store_true",
                   help="skip the abstract-interpretation tier")
    p.add_argument("-m", "--metric", action="append",
                   choices=["line", "toggle", "fsm", "ready_valid", "mux_toggle"],
                   help="instrument with these metrics before linting "
                        "(surfaces the cover-redundant implication graph)")
    p.add_argument("--explain", metavar="RULE-ID",
                   help="print a rule's catalog entry (description, "
                        "severity, example) and exit")
    p.add_argument("-o", "--output")
    _add_format_arg(p)
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "reachability",
        help="tiered cover reachability: static screen, then BMC residue",
    )
    p.add_argument("circuit",
                   help="a .fir file or a bundled design name (e.g. Gcd)")
    p.add_argument("-m", "--metric", action="append",
                   choices=["line", "toggle", "fsm", "ready_valid", "mux_toggle"],
                   help="instrument with these metrics before screening")
    p.add_argument("--bound", type=int, default=20)
    p.add_argument("--no-bmc", action="store_true",
                   help="static tier only; residue stays 'unknown'")
    p.add_argument("--update-db", metavar="COVDB",
                   help="record statically-unreachable covers as exclusions "
                        "in this coverage DB")
    p.add_argument("-o", "--output")
    _add_format_arg(p)
    p.set_defaults(fn=cmd_reachability)

    p = sub.add_parser("instrument", help="add coverage instrumentation")
    p.add_argument("circuit")
    p.add_argument("-m", "--metric", action="append",
                   choices=["line", "toggle", "fsm", "ready_valid", "mux_toggle"])
    p.add_argument("--min-instrument", action="store_true",
                   help="materialize only a minimal spanning basis of "
                        "counters; elided covers get reconstruction "
                        "recipes in the coverage DB and reports rebuild "
                        "them bit-identically")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_instrument)

    p = sub.add_parser("simulate", help="run a simulation, dump cover counts")
    p.add_argument("circuit")
    p.add_argument("--backend",
                   choices=["treadle", "verilator", "essent", "c", "swarm"],
                   default="verilator")
    p.add_argument("--cycles", type=int, default=1000)
    p.add_argument("--lanes", type=int, default=64,
                   help="swarm pack width: with --backend swarm, run this "
                        "many independently-seeded stimulus lanes in one "
                        "packed simulation and merge their counts")
    p.add_argument("--no-jit", action="store_true",
                   help="run the treadle backend as the pure tree-walking "
                        "interpreter instead of its compiled fast path "
                        "(the semantics reference; ~100x slower)")
    p.add_argument("--min-instrument", action="store_true",
                   help="count only the statically minimal cover basis "
                        "(fewer counters in the backend, shards, and "
                        "checkpoint files) and reconstruct the full "
                        "counts bit-identically before writing")
    p.add_argument("--model-cache-dir", metavar="DIR",
                   help="content-addressed compiled-model cache: compiled "
                        "models are pickled here and reused across shards, "
                        "differential legs, forked workers, and future runs "
                        "of the same circuit")
    p.add_argument("--reset-cycles", type=int, default=1)
    p.add_argument("--random-inputs", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--counter-width", type=int, default=None)
    p.add_argument("--counts", help="write counts JSON here (default stdout)")
    p.add_argument("--merge-with", help="merge with an existing counts JSON")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-attempt wall-clock budget in seconds")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts after a crash/hang (with backoff)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="snapshot live counts to a shard file every K cycles")
    p.add_argument("--resume", action="store_true",
                   help="skip jobs whose shard on disk is already complete")
    p.add_argument("--shard-dir",
                   help="shard directory (default: <circuit>.shards)")
    p.add_argument("--isolation", choices=["thread", "process"],
                   default="thread",
                   help="attempt containment: 'process' runs each attempt "
                        "in a supervised forked worker that is SIGKILLed "
                        "when it hangs (thread-mode hangs leak a daemon "
                        "thread)")
    p.add_argument("--mem-limit", type=int, default=None, metavar="MB",
                   help="RLIMIT_AS cap per worker process (requires "
                        "--isolation process)")
    p.add_argument("--cpu-limit", type=int, default=None, metavar="SECONDS",
                   help="RLIMIT_CPU cap per worker process (requires "
                        "--isolation process)")
    p.add_argument("--breaker-threshold", type=int, default=0,
                   help="open a per-backend circuit breaker after this many "
                        "consecutive job failures (0 disables)")
    p.add_argument("--differential", metavar="BACKEND,BACKEND[,...]",
                   help="run the same job on each listed backend and "
                        "quorum-merge the counts; disagreeing backends are "
                        "reported and quarantined")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Chrome trace-event JSON of the run "
                        "(open in chrome://tracing or ui.perfetto.dev)")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="write campaign metrics: Prometheus text, or a "
                        "JSON snapshot if FILE ends in .json")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser(
        "fuzz",
        help="coverage-directed fuzzing: instrument, then run the "
             "AFL-style loop with cover counts as feedback (§5.4)",
    )
    p.add_argument("circuit")
    p.add_argument("-m", "--metric", action="append",
                   choices=["line", "toggle", "fsm", "ready_valid",
                            "mux_toggle"],
                   help="metric(s) to instrument before fuzzing "
                        "(default: line)")
    p.add_argument("--feedback",
                   choices=["all", "none", "line", "toggle", "fsm",
                            "ready_valid", "mux_toggle"],
                   default="all",
                   help="which metric's counts steer the search: a metric "
                        "name (must also be instrumented), 'all' counters, "
                        "or 'none' for the random-fuzzing baseline")
    p.add_argument("--executions", type=int, default=256,
                   help="fuzz-input execution budget")
    p.add_argument("--lanes", type=int, default=1,
                   help="pack this many queue entries per simulation via "
                        "the bit-parallel swarm backend (1 = scalar)")
    p.add_argument("--backend",
                   choices=["treadle", "verilator", "essent", "c", "swarm"],
                   help="execution backend (default: swarm when --lanes > "
                        "1, else verilator)")
    p.add_argument("--seed", type=int, default=0,
                   help="mutation RNG seed")
    p.add_argument("--max-cycles", type=int, default=512,
                   help="cap on decoded cycles per fuzz input")
    p.add_argument("--reset-cycles", type=int, default=1)
    p.add_argument("--stats-out", metavar="FILE",
                   help="write the coverage curve and campaign stats as "
                        "JSON")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="run the crash-safe coverage service daemon (WAL journal, "
             "bounded admission, per-tenant fair scheduling)",
    )
    p.add_argument("--state-dir", required=True, metavar="DIR",
                   help="journal + checkpoint-shard directory; the daemon "
                        "recovers all accepted campaigns from here on start")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 picks a free port; the bound address "
                        "is printed on stdout)")
    p.add_argument("--max-workers", type=int, default=2,
                   help="campaigns executing concurrently")
    p.add_argument("--max-queue", type=int, default=64,
                   help="bounded admission queue; a full queue rejects "
                        "submits with 429 instead of growing without bound")
    p.add_argument("--tenant-quota", type=int, default=16,
                   help="max queued+running campaigns per tenant (429 past it)")
    p.add_argument("--no-journal-fsync", action="store_true",
                   help="skip fsync on journal appends (faster; a power cut "
                        "may then lose the latest acknowledged records)")
    p.add_argument("--compact-every", type=int, default=256,
                   help="rewrite the journal as a snapshot after this many "
                        "appended records")
    p.add_argument("--isolation", choices=["thread", "process"],
                   default="thread",
                   help="attempt containment for campaign jobs; 'process' "
                        "SIGKILLs a worker that overruns its deadline")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-attempt wall-clock budget in seconds "
                        "for campaigns that set no deadline_s")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts per campaign after a crash/hang")
    p.add_argument("--checkpoint-every", type=int, default=500,
                   help="default shard checkpoint period in cycles for "
                        "campaigns that set no checkpoint_every")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive failures that open a backend's circuit "
                        "breaker; its campaigns are then deferred, not failed")
    p.add_argument("--drain-grace", type=float, default=30.0,
                   help="seconds SIGTERM waits for running campaigns before "
                        "interrupting them at a cycle boundary")
    p.add_argument("--model-cache-dir", metavar="DIR",
                   help="content-addressed compiled-model cache shared by "
                        "all campaigns")
    p.add_argument("--cluster-port", type=int, default=None, metavar="PORT",
                   help="accept remote 'repro worker' connections on this "
                        "TCP port (0 picks a free port; omit to disable "
                        "the cluster and run purely on the local pool)")
    p.add_argument("--lease-s", type=float, default=10.0,
                   help="remote shard lease duration; a worker silent this "
                        "long is presumed dead and its shard re-dispatched "
                        "under a new fencing token")
    p.add_argument("--cluster-heartbeat-s", type=float, default=2.0,
                   help="heartbeat period workers are told to use")
    p.add_argument("--retry-after", type=float, default=1.0, metavar="S",
                   help="Retry-After hint stamped on 429/503 rejections")
    p.add_argument("--compact-max-bytes", type=int, default=4 << 20,
                   help="auto-compact the WAL journal once it grows past "
                        "this many bytes (0 disables size-based compaction)")
    p.add_argument("--min-instrument", action="store_true",
                   help="default submitted campaigns to minimal-basis cover "
                        "counting (specs may still opt out explicitly); "
                        "reported counts are reconstructed bit-identically")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="attach a remote execution worker to a 'repro serve' cluster "
             "coordinator (lease-fenced shards, streamed count deltas)",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="the coordinator's cluster address (the serve "
                        "daemon prints it when --cluster-port is set)")
    p.add_argument("--slots", type=int, default=2,
                   help="campaign shards this worker runs concurrently")
    p.add_argument("--state-dir", metavar="DIR",
                   help="scratch directory for shard checkpoints "
                        "(default: a private temp dir)")
    p.add_argument("--isolation", choices=["thread", "process"],
                   default="thread",
                   help="attempt containment for shard jobs")
    p.add_argument("--reconnect", type=int, default=0, metavar="N",
                   help="reconnection attempts after losing the coordinator "
                        "(0 = exit on first loss)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for reconnect backoff jitter")
    p.add_argument("--worker-id", default="",
                   help="stable worker name (default: pid-derived)")
    p.add_argument("--min-instrument", action="store_true",
                   help="run leased shards with minimal-basis cover counting "
                        "even when the spec does not request it; the final "
                        "counts a shard reports are reconstructed and "
                        "bit-identical either way")
    p.set_defaults(fn=cmd_worker)

    p = sub.add_parser(
        "stats", help="pretty-print a metrics file from simulate --metrics-out"
    )
    p.add_argument("metrics", help="metrics file (.prom text or .json snapshot)")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("report", help="generate coverage reports from counts")
    p.add_argument("circuit")
    p.add_argument("--counts", required=True)
    p.add_argument("--db", help=f"coverage DB (default: <circuit>{DB_SUFFIX})")
    p.add_argument("--html", help="write an HTML report to this path")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("bmc", help="formal cover trace generation")
    p.add_argument("circuit")
    p.add_argument("--bound", type=int, default=20)
    p.add_argument("--expect-all-reachable", action="store_true",
                   help="exit 1 (naming the covers on stderr) if any "
                        "queried cover has no witness within the bound")
    p.add_argument("-o", "--output")
    _add_format_arg(p)
    p.set_defaults(fn=cmd_bmc)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
