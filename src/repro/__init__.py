"""Simulator independent coverage for RTL hardware languages.

A Python reproduction of the ASPLOS 2023 paper: automated coverage
metrics as compiler passes over a FIRRTL-like IR, lowered to one
``cover`` primitive that five very different backends implement.

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.hcl` — the Chisel-like construction language
* :mod:`repro.coverage` — instrumentation passes and report generators
* :mod:`repro.backends` — treadle / verilator / essent / firesim / formal
* :mod:`repro.designs` — the benchmark designs
"""

from .backends import TreadleBackend, VerilatorBackend
from .coverage import instrument, merge_counts
from .hcl import ChiselEnum, Module, elaborate

__version__ = "1.0.0"

__all__ = [
    "ChiselEnum",
    "Module",
    "TreadleBackend",
    "VerilatorBackend",
    "__version__",
    "elaborate",
    "instrument",
    "merge_counts",
]
