"""Coverage-directed fuzzing: AFL-style engine + rfuzz-style harness."""

from .afl import AflFuzzer, FuzzStats, QueueEntry, bitmap_of, bucket
from .harness import FuzzHarness, metric_filter
from . import mutations

__all__ = [
    "AflFuzzer",
    "FuzzHarness",
    "FuzzStats",
    "QueueEntry",
    "bitmap_of",
    "bucket",
    "metric_filter",
    "mutations",
]
