"""AFL-style input mutations.

A faithful-in-spirit subset of AFL's mutation stages: deterministic
bit/byte flips, arithmetic on bytes/words, interesting-value substitution,
and a stacked "havoc" stage.  Inputs are plain byte strings.
"""

from __future__ import annotations

import random
from typing import Iterator

INTERESTING_8 = [0, 1, 2, 4, 8, 16, 32, 64, 100, 127, 128, 255]
INTERESTING_16 = [0, 1, 255, 256, 512, 1000, 4096, 32767, 32768, 65535]


def bitflips(data: bytes) -> Iterator[bytes]:
    """Deterministic single-bit flips."""
    for bit in range(len(data) * 8):
        out = bytearray(data)
        out[bit // 8] ^= 1 << (bit % 8)
        yield bytes(out)


def byteflips(data: bytes) -> Iterator[bytes]:
    """Deterministic whole-byte flips."""
    for i in range(len(data)):
        out = bytearray(data)
        out[i] ^= 0xFF
        yield bytes(out)


def arith8(data: bytes, limit: int = 16) -> Iterator[bytes]:
    """Deterministic +/- arithmetic on each byte."""
    for i in range(len(data)):
        for delta in range(1, limit + 1):
            for signed_delta in (delta, -delta):
                out = bytearray(data)
                out[i] = (out[i] + signed_delta) & 0xFF
                yield bytes(out)


def interesting8(data: bytes) -> Iterator[bytes]:
    """Deterministic interesting-value substitution per byte."""
    for i in range(len(data)):
        for value in INTERESTING_8:
            if data[i] == value:
                continue
            out = bytearray(data)
            out[i] = value
            yield bytes(out)


def havoc(data: bytes, rng: random.Random, stack_max: int = 6) -> bytes:
    """Random stacked mutations (AFL's havoc stage)."""
    out = bytearray(data) if data else bytearray([0])
    for _ in range(1 << rng.randint(1, stack_max.bit_length())):
        choice = rng.randint(0, 7)
        pos = rng.randrange(len(out))
        if choice == 0:
            out[pos // 1] ^= 1 << rng.randint(0, 7)
        elif choice == 1:
            out[pos] = rng.choice(INTERESTING_8)
        elif choice == 2:
            out[pos] = (out[pos] + rng.randint(1, 35)) & 0xFF
        elif choice == 3:
            out[pos] = (out[pos] - rng.randint(1, 35)) & 0xFF
        elif choice == 4:
            out[pos] = rng.randint(0, 255)
        elif choice == 5 and len(out) > 2:
            # delete a random chunk
            length = rng.randint(1, max(len(out) // 4, 1))
            start = rng.randrange(max(len(out) - length, 1))
            del out[start : start + length]
        elif choice == 6:
            # duplicate a random chunk
            length = rng.randint(1, max(len(out) // 4, 1))
            start = rng.randrange(max(len(out) - length, 1))
            chunk = out[start : start + length]
            insert_at = rng.randrange(len(out) + 1)
            out[insert_at:insert_at] = chunk
        else:
            # overwrite with a copy from elsewhere
            length = rng.randint(1, max(len(out) // 4, 1))
            src = rng.randrange(max(len(out) - length, 1))
            dst = rng.randrange(max(len(out) - length, 1))
            out[dst : dst + length] = out[src : src + length]
        if not out:
            out = bytearray([0])
    return bytes(out)
