"""AFL-style coverage-directed mutational fuzzing engine (§5.4).

Reproduces the paper's setup: the AFL algorithm (queue of interesting
inputs, deterministic + havoc mutation stages, bucketized coverage bitmap)
driven by cover counts from any instrumented metric.  "The coverage counts
serve as direct feedback to AFL instead of going to a report generator."

Counts are bucketized into AFL's 8 hit-count classes before novelty
detection, so seeing a branch 5 times vs 6 times is not "new", but 1 vs 8
is — the classic AFL heuristic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..backends.api import CoverCounts
from . import mutations

#: AFL hit-count buckets: 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+
_BUCKET_LIMITS = (1, 2, 3, 7, 15, 31, 127)


def bucket(count: int) -> int:
    """Classify a hit count into an AFL bucket (0 = not hit)."""
    if count <= 0:
        return 0
    for index, limit in enumerate(_BUCKET_LIMITS, start=1):
        if count <= limit:
            return index
    return 8


def bitmap_of(counts: CoverCounts) -> frozenset:
    """The (cover, bucket) pairs an execution touched."""
    return frozenset((name, bucket(c)) for name, c in counts.items() if c > 0)


@dataclass
class QueueEntry:
    data: bytes
    coverage: frozenset
    execution: int


@dataclass
class FuzzStats:
    """Progress log: one record per execution."""

    executions: int = 0
    queue_size: int = 0
    #: (execution index, cumulative covered point count) whenever it grew
    coverage_curve: list[tuple[int, int]] = field(default_factory=list)
    covered: set = field(default_factory=set)

    def record(self, execution: int, counts: CoverCounts) -> bool:
        grew = False
        for name, count in counts.items():
            if count > 0 and name not in self.covered:
                self.covered.add(name)
                grew = True
        if grew:
            self.coverage_curve.append((execution, len(self.covered)))
        return grew

    def coverage_at(self, execution: int) -> int:
        """Cumulative covered points after ``execution`` runs."""
        result = 0
        for exec_index, covered in self.coverage_curve:
            if exec_index > execution:
                break
            result = covered
        return result


class AflFuzzer:
    """The fuzzing loop.

    Args:
        execute: byte string -> cover counts for that run.
        feedback: filters counts down to the metric driving the search
            (identity = use everything).  ``None`` disables feedback
            entirely — the random-fuzzing baseline.
        track: filters counts down to the metric used for *evaluation*
            (Figure 11 tracks line coverage regardless of feedback).
        execute_batch: list of byte strings -> index-aligned list of
            cover counts (e.g. ``FuzzHarness.execute_batch`` over swarm
            lanes).  Enables ``run(..., batch=N)``.
    """

    def __init__(
        self,
        execute: Callable[[bytes], CoverCounts],
        feedback: Optional[Callable[[CoverCounts], CoverCounts]] = None,
        track: Optional[Callable[[CoverCounts], CoverCounts]] = None,
        seeds: Iterable[bytes] = (b"\x00" * 16,),
        seed: int = 0,
        execute_batch: Optional[
            Callable[[list[bytes]], list[CoverCounts]]
        ] = None,
    ) -> None:
        self.execute = execute
        self.execute_batch = execute_batch
        self.feedback = feedback
        self.track = track if track is not None else (lambda c: c)
        self.rng = random.Random(seed)
        self.queue: list[QueueEntry] = []
        self.seen_bitmap: set = set()
        self.stats = FuzzStats()
        self._seeds = list(seeds)

    def _ingest(self, data: bytes, counts: CoverCounts) -> bool:
        """Account one executed input; returns True on new coverage."""
        self.stats.executions += 1
        execution = self.stats.executions
        self.stats.record(execution, self.track(counts))
        if self.feedback is None:
            return False
        coverage = bitmap_of(self.feedback(counts))
        new_pairs = coverage - self.seen_bitmap
        if new_pairs:
            self.seen_bitmap.update(new_pairs)
            self.queue.append(QueueEntry(data, coverage, execution))
            self.stats.queue_size = len(self.queue)
            return True
        return False

    def _run_one(self, data: bytes) -> bool:
        """Execute an input; returns True if it found new coverage."""
        return self._ingest(data, self.execute(data))

    def _run_batch(self, batch: list[bytes]) -> None:
        """Execute a batch in one backend call, ingest in queue order."""
        for data, counts in zip(batch, self.execute_batch(batch)):
            self._ingest(data, counts)

    def run(self, max_executions: int, batch: int = 1) -> FuzzStats:
        """Fuzz until the execution budget is exhausted.

        ``batch`` > 1 (requires ``execute_batch``) groups that many
        pending inputs per backend call — swarm lanes make them one
        packed simulation.  Mutations for a batch are derived from the
        queue as it stood when the batch was assembled, so the schedule
        can diverge from ``batch=1`` even though per-input counts are
        bit-identical; coverage feedback still lands before the next
        batch is drawn.
        """
        if batch > 1 and self.execute_batch is not None:
            return self._run_batched(max_executions, batch)
        for seed_data in self._seeds:
            if self.stats.executions >= max_executions:
                return self.stats
            self._run_one(seed_data)
        if self.feedback is None:
            # no feedback: pure random mutation of the seeds
            while self.stats.executions < max_executions:
                base = self.rng.choice(self._seeds)
                self._run_one(mutations.havoc(base, self.rng))
            return self.stats
        if not self.queue:
            self.queue.append(QueueEntry(self._seeds[0], frozenset(), 0))
        cursor = 0
        while self.stats.executions < max_executions:
            entry = self.queue[cursor % len(self.queue)]
            cursor += 1
            # a light deterministic stage on fresh queue entries
            for mutated in mutations.bitflips(entry.data):
                if self.stats.executions >= max_executions:
                    return self.stats
                self._run_one(mutated)
                break  # only a taste — havoc drives most progress
            for _ in range(16):
                if self.stats.executions >= max_executions:
                    return self.stats
                self._run_one(mutations.havoc(entry.data, self.rng))
        return self.stats

    def _run_batched(self, max_executions: int, batch: int) -> FuzzStats:
        """The ``run`` loop restructured around ``execute_batch`` calls."""
        pending: list[bytes] = []

        def budget() -> int:
            return max_executions - self.stats.executions - len(pending)

        def flush(limit: int = 1) -> None:
            while len(pending) >= limit and pending:
                self._run_batch(pending[:batch])
                del pending[:batch]

        for seed_data in self._seeds:
            if budget() <= 0:
                break
            pending.append(seed_data)
            flush(batch)
        flush()
        if self.feedback is None:
            while budget() > 0:
                base = self.rng.choice(self._seeds)
                pending.append(mutations.havoc(base, self.rng))
                flush(batch)
            flush()
            return self.stats
        if not self.queue:
            self.queue.append(QueueEntry(self._seeds[0], frozenset(), 0))
        cursor = 0
        while budget() > 0:
            entry = self.queue[cursor % len(self.queue)]
            cursor += 1
            for mutated in mutations.bitflips(entry.data):
                if budget() <= 0:
                    break
                pending.append(mutated)
                break  # only a taste — havoc drives most progress
            for _ in range(16):
                if budget() <= 0:
                    break
                pending.append(mutations.havoc(entry.data, self.rng))
            flush(batch)
        flush()
        return self.stats
