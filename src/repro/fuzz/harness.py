"""rfuzz-style fuzzing harness: bytes in, coverage counts out (§5.4).

Following rfuzz and RTL Fuzz Lab, a fuzz input is an opaque byte string
that the harness deterministically decodes into per-cycle values for every
top-level input port: each clock cycle consumes ``ceil(total_input_bits/8)``
bytes, sliced bitwise across the ports.  The design is reset once, then
driven until the input bytes run out (a partial trailing chunk is
zero-padded and still counts as a cycle, so every appended byte changes
the decoded stimulus).

The *feedback* function is pluggable: because every metric is just cover
statements behind the shared API, any instrumented metric — line, toggle,
FSM, ready/valid, rfuzz's own mux toggle — can serve as the fuzzer's
coverage map.  That interchangeability is the point of §5.4.

When the backend is a :class:`~repro.backends.swarm.SwarmBackend`,
:meth:`FuzzHarness.execute_batch` packs up to ``lanes`` queue entries
into one swarm simulation: each input becomes one lane, lanes retire as
their bytes run out (or their design stops), and the per-lane counts are
bit-identical to running each input through :meth:`FuzzHarness.execute`
scalar-style — the batch is purely a throughput multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..backends.api import CoverCounts
from ..coverage.common import CoverageDB, InstanceTree
from ..passes.base import CompileState


@dataclass
class PortSpec:
    name: str
    width: int


class FuzzHarness:
    """Compiles the instrumented design once; executes byte-string inputs.

    ``lanes`` > 1 selects the bit-parallel swarm backend (when ``backend``
    is None) so :meth:`execute_batch` runs that many inputs per settle.
    A backend that cannot ``fork()`` its compiled template is routed
    through the content-addressed model cache, so N executions still cost
    exactly one compile.
    """

    def __init__(
        self,
        state: CompileState,
        backend=None,
        max_cycles: int = 512,
        reset_cycles: int = 1,
        lanes: int = 1,
    ) -> None:
        if backend is None:
            if lanes > 1:
                from ..backends.swarm import SwarmBackend

                backend = SwarmBackend(lanes=lanes)
            else:
                from ..backends.verilator import VerilatorBackend

                backend = VerilatorBackend()
        from ..backends.model import build_model
        from ..backends.modelcache import ModelCache, default_cache

        self._model = build_model(state)
        self._backend = backend
        # Arm an in-memory model cache before the first compile: if the
        # template turns out not to fork(), every execution re-enters
        # backend.compile_state, and without a cache each one would be a
        # full recompile inside the fuzz loop.
        if (
            hasattr(backend, "compile_state")
            and getattr(backend, "_cache", False) is None
            and default_cache() is None
        ):
            backend._cache = ModelCache()
        self._template = backend.compile_state(state) if hasattr(backend, "compile_state") else None
        self._state = state
        self.max_cycles = max_cycles
        self.reset_cycles = reset_cycles
        self.lanes = (
            getattr(backend, "lanes", 1)
            if hasattr(self._template, "poke_lanes")
            else 1
        )
        self._input_names = {p.name for p in self._model.inputs}
        self.ports = [
            PortSpec(p.name, self._model.widths[p.name])
            for p in self._model.inputs
            if p.name not in ("clock", "reset")
        ]
        self.bits_per_cycle = sum(p.width for p in self.ports)
        self.bytes_per_cycle = max((self.bits_per_cycle + 7) // 8, 1)
        self.executions = 0
        self.cycles_executed = 0

    def decode(self, data: bytes) -> list[dict[str, int]]:
        """Deterministically decode bytes into per-cycle input vectors.

        Ceil division: a partial trailing chunk is zero-padded into a
        full cycle rather than dropped, so appending a single byte to an
        input always changes the decoded stimulus.
        """
        vectors = []
        n_cycles = -(-len(data) // self.bytes_per_cycle)
        n_cycles = min(max(n_cycles, 1), self.max_cycles)
        for cycle in range(n_cycles):
            chunk = data[cycle * self.bytes_per_cycle : (cycle + 1) * self.bytes_per_cycle]
            value = int.from_bytes(chunk.ljust(self.bytes_per_cycle, b"\0"), "little")
            frame = {}
            offset = 0
            for port in self.ports:
                frame[port.name] = (value >> offset) & ((1 << port.width) - 1)
                offset += port.width
            vectors.append(frame)
        return vectors

    def _fresh_sim(self):
        template = self._template
        if template is not None and hasattr(template, "fork"):
            return template.fork()
        if hasattr(self._backend, "compile_state"):
            # warm by construction: __init__ armed a model cache before
            # the template compile, so this is a cache hit, not a rebuild
            return self._backend.compile_state(self._state)
        raise RuntimeError("backend cannot create simulations from a compile state")

    def _reset(self, sim) -> None:
        if self.reset_cycles and "reset" in self._input_names:
            sim.poke("reset", 1)
            sim.step(self.reset_cycles)
            sim.poke("reset", 0)

    def execute(self, data: bytes) -> CoverCounts:
        """Run one fuzz input from reset; returns this run's cover counts."""
        sim = self._fresh_sim()
        self._reset(sim)
        vectors = self.decode(data)
        for frame in vectors:
            for name, value in frame.items():
                sim.poke(name, value)
            result = sim.step(1)
            self.cycles_executed += 1
            if result.stopped:
                break
        self.executions += 1
        return sim.cover_counts()

    def execute_batch(self, batch: list[bytes]) -> list[CoverCounts]:
        """Counts for each input, packing ``lanes`` inputs per swarm step.

        On a scalar backend this degrades to a loop over
        :meth:`execute`; either way the returned list is index-aligned
        with ``batch`` and bit-identical between the two paths.
        """
        if self.lanes <= 1:
            return [self.execute(data) for data in batch]
        results: list[CoverCounts] = []
        for start in range(0, len(batch), self.lanes):
            results.extend(self._execute_swarm(batch[start : start + self.lanes]))
        return results

    def _execute_swarm(self, chunk: list[bytes]) -> list[CoverCounts]:
        """One packed run: lane *l* replays ``chunk[l]`` scalar-exactly."""
        sim = self._fresh_sim()
        n = len(chunk)
        for lane in range(n, sim.lanes):
            sim.retire_lane(lane)
        self._reset(sim)
        frames = [self.decode(data) for data in chunk]
        done = [False] * n
        cycle = 0
        while True:
            live = []
            for lane in range(n):
                if done[lane]:
                    continue
                if cycle >= len(frames[lane]):
                    # bytes ran out: freeze the lane's counts, exactly
                    # where the scalar run would have returned them
                    sim.retire_lane(lane)
                    done[lane] = True
                    continue
                live.append(lane)
            if not live:
                break
            for port in self.ports:
                sim.poke_lanes(
                    port.name,
                    [
                        frames[lane][cycle][port.name]
                        if not done[lane] and cycle < len(frames[lane])
                        else 0
                        for lane in range(n)
                    ],
                )
            sim.step(1)
            # every live lane attempted this cycle — including a lane
            # that turns out to have already stopped, matching the
            # scalar loop's step-then-check accounting
            self.cycles_executed += len(live)
            for lane in live:
                if not sim.lane_active(lane):
                    done[lane] = True
            cycle += 1
        self.executions += n
        return [sim.cover_counts(lane) for lane in range(n)]


def metric_filter(db: CoverageDB, state: CompileState, metric: str) -> Callable[[CoverCounts], CoverCounts]:
    """Build a filter keeping only the covers one metric contributed.

    Canonical count keys resolve through the instance tree back to
    (module, local-name) pairs, which are then matched against the metric's
    metadata — mixing and matching feedback metrics is a dictionary filter.
    """
    tree = InstanceTree(state.circuit)
    wanted: set[str] = set()
    for module, cover_name, _payload in db.covers_of(metric):
        wanted.add(f"{module}\x00{cover_name}")

    def filter_counts(counts: CoverCounts) -> CoverCounts:
        out = {}
        for key, count in counts.items():
            module, local = tree.resolve(key)
            if f"{module}\x00{local}" in wanted:
                out[key] = count
        return out

    return filter_counts
