"""rfuzz-style fuzzing harness: bytes in, coverage counts out (§5.4).

Following rfuzz and RTL Fuzz Lab, a fuzz input is an opaque byte string
that the harness deterministically decodes into per-cycle values for every
top-level input port: each clock cycle consumes ``ceil(total_input_bits/8)``
bytes, sliced bitwise across the ports.  The design is reset once, then
driven until the input bytes run out.

The *feedback* function is pluggable: because every metric is just cover
statements behind the shared API, any instrumented metric — line, toggle,
FSM, ready/valid, rfuzz's own mux toggle — can serve as the fuzzer's
coverage map.  That interchangeability is the point of §5.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..backends.api import CoverCounts
from ..coverage.common import CoverageDB, InstanceTree
from ..passes.base import CompileState


@dataclass
class PortSpec:
    name: str
    width: int


class FuzzHarness:
    """Compiles the instrumented design once; executes byte-string inputs."""

    def __init__(
        self,
        state: CompileState,
        backend=None,
        max_cycles: int = 512,
        reset_cycles: int = 1,
    ) -> None:
        if backend is None:
            from ..backends.verilator import VerilatorBackend

            backend = VerilatorBackend()
        from ..backends.model import build_model

        self._model = build_model(state)
        self._backend = backend
        self._template = backend.compile_state(state) if hasattr(backend, "compile_state") else None
        self._state = state
        self.max_cycles = max_cycles
        self.reset_cycles = reset_cycles
        self.ports = [
            PortSpec(p.name, self._model.widths[p.name])
            for p in self._model.inputs
            if p.name not in ("clock", "reset")
        ]
        self.bits_per_cycle = sum(p.width for p in self.ports)
        self.bytes_per_cycle = max((self.bits_per_cycle + 7) // 8, 1)
        self.executions = 0
        self.cycles_executed = 0

    def decode(self, data: bytes) -> list[dict[str, int]]:
        """Deterministically decode bytes into per-cycle input vectors."""
        vectors = []
        n_cycles = min(max(len(data) // self.bytes_per_cycle, 1), self.max_cycles)
        for cycle in range(n_cycles):
            chunk = data[cycle * self.bytes_per_cycle : (cycle + 1) * self.bytes_per_cycle]
            value = int.from_bytes(chunk.ljust(self.bytes_per_cycle, b"\0"), "little")
            frame = {}
            offset = 0
            for port in self.ports:
                frame[port.name] = (value >> offset) & ((1 << port.width) - 1)
                offset += port.width
            vectors.append(frame)
        return vectors

    def _fresh_sim(self):
        template = self._template
        if template is not None and hasattr(template, "fork"):
            return template.fork()
        if hasattr(self._backend, "compile_state"):
            return self._backend.compile_state(self._state)
        raise RuntimeError("backend cannot create simulations from a compile state")

    def execute(self, data: bytes) -> CoverCounts:
        """Run one fuzz input from reset; returns this run's cover counts."""
        sim = self._fresh_sim()
        if self.reset_cycles:
            sim.poke("reset", 1)
            sim.step(self.reset_cycles)
            sim.poke("reset", 0)
        vectors = self.decode(data)
        for frame in vectors:
            for name, value in frame.items():
                sim.poke(name, value)
            result = sim.step(1)
            self.cycles_executed += 1
            if result.stopped:
                break
        self.executions += 1
        return sim.cover_counts()


def metric_filter(db: CoverageDB, state: CompileState, metric: str) -> Callable[[CoverCounts], CoverCounts]:
    """Build a filter keeping only the covers one metric contributed.

    Canonical count keys resolve through the instance tree back to
    (module, local-name) pairs, which are then matched against the metric's
    metadata — mixing and matching feedback metrics is a dictionary filter.
    """
    tree = InstanceTree(state.circuit)
    wanted: set[str] = set()
    for module, cover_name, _payload in db.covers_of(metric):
        wanted.add(f"{module}\x00{cover_name}")

    def filter_counts(counts: CoverCounts) -> CoverCounts:
        out = {}
        for key, count in counts.items():
            module, local = tree.resolve(key)
            if f"{module}\x00{local}" in wanted:
                out[key] = count
        return out

    return filter_counts
