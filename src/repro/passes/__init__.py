"""Compiler passes over the IR.

The standard lowering pipeline is::

    CheckForms -> [coverage passes that need high form] -> ExpandWhens
    -> ConstProp -> DeadCodeElimination -> [toggle coverage]
    -> (optionally) InlineInstances

Use :func:`lower` for the common case.
"""

from .base import CompileState, Pass, PassError, PassManager, compile_circuit
from .check import CheckForms
from .constprop import ConstProp, make_literal, simplify_deep, simplify_expr
from .dce import DeadCodeElimination
from .expand_whens import ExpandWhens, has_whens
from .flatten import InlineInstances, sort_statements

from ..ir.nodes import Circuit


def lower(
    circuit: Circuit,
    optimize: bool = True,
    flatten: bool = False,
    check_passes: bool = False,
) -> CompileState:
    """Run the standard lowering pipeline over ``circuit``.

    ``check_passes=True`` interleaves a strict lint pass after every
    pipeline stage, so a transform that introduces a violation (e.g. a
    combinational loop) fails at the stage that caused it.
    """
    passes: list[Pass] = [CheckForms(), ExpandWhens()]
    if optimize:
        passes += [ConstProp(), DeadCodeElimination()]
    if flatten:
        passes.append(InlineInstances())
    interleave: Pass | None = None
    if check_passes:
        # local import: repro.analysis imports from repro.passes.base
        from ..analysis import LintPass

        interleave = LintPass(strict=True)
    return compile_circuit(circuit, passes, interleave=interleave)


__all__ = [
    "CheckForms",
    "CompileState",
    "ConstProp",
    "DeadCodeElimination",
    "ExpandWhens",
    "InlineInstances",
    "Pass",
    "PassError",
    "PassManager",
    "compile_circuit",
    "has_whens",
    "lower",
    "make_literal",
    "simplify_deep",
    "simplify_expr",
    "sort_statements",
]
