"""Inline the instance hierarchy into a single flat module.

The compiled simulator backends and the FireSim scan-chain pass operate on a
flat netlist.  Flattening renames module-local signals with an instance-path
prefix and records, for every cover/stop statement, the mapping from its new
flat name to the canonical hierarchical coverage key (``inst.path.name``) —
this map is what keeps coverage counts mergeable across hierarchical and
flat backends (§3 of the paper).

Requires low form (no ``When`` blocks, single connect per target).
"""

from __future__ import annotations

from typing import Union

from ..ir.namespace import Namespace
from ..ir.nodes import (
    Circuit,
    Connect,
    Cover,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    MemRead,
    MemWrite,
    Module,
    Ref,
    Stmt,
    Stop,
    When,
)
from ..ir.traversal import map_expr, references, stmt_exprs, walk_stmts
from .base import CompileState, Pass, PassError


class _Inliner:
    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        top = circuit.top
        self.ns = Namespace(p.name for p in top.ports)
        self.out: list[Stmt] = []
        self.cover_paths: dict[str, str] = {}

    def inline(
        self,
        module: Module,
        path: str,
        prefix: str,
        rename: dict[str, Expr],
        mem_rename: dict[str, str],
    ) -> None:
        """Emit ``module``'s body with ``rename`` applied to port references.

        ``path`` is the dotted instance path (for coverage keys); ``prefix``
        is the flat-name prefix for local signals.
        """
        body = module.body
        if any(isinstance(s, When) for s in walk_stmts(body)):
            raise PassError(f"flatten requires low form, {module.name} has whens")

        # pass 1: allocate flat names for all locals and find instance drivers
        instances: dict[str, str] = {}
        inst_inputs: dict[tuple[str, str], Expr] = {}
        inst_out_wires: dict[tuple[str, str], str] = {}
        for stmt in body:
            if isinstance(stmt, (DefNode, DefWire, DefRegister)):
                rename[stmt.name] = Ref(self.ns.fresh(prefix + stmt.name), _type_of(stmt))
            elif isinstance(stmt, DefMemory):
                mem_rename[stmt.name] = self.ns.fresh(prefix + stmt.name)
            elif isinstance(stmt, DefInstance):
                instances[stmt.name] = stmt.module
                child = self.circuit.module(stmt.module)
                for port in child.ports:
                    if port.direction == "output":
                        wire = self.ns.fresh(f"{prefix}{stmt.name}_{port.name}")
                        inst_out_wires[(stmt.name, port.name)] = wire
            elif isinstance(stmt, Connect) and isinstance(stmt.loc, InstPort):
                inst_inputs[(stmt.loc.instance, stmt.loc.port)] = stmt.expr

        def rw(expr: Expr) -> Expr:
            def fn(e: Expr) -> Expr:
                if isinstance(e, Ref):
                    replacement = rename.get(e.name)
                    return replacement if replacement is not None else e
                if isinstance(e, InstPort):
                    key = (e.instance, e.port)
                    if key in inst_out_wires:
                        return Ref(inst_out_wires[key], e.type)
                    # reading a child *input* port: substitute its driver
                    driver = inst_inputs.get(key)
                    if driver is None:
                        raise PassError(f"instance input {e} read but never driven")
                    return fn_expr(driver)
                if isinstance(e, MemRead):
                    return MemRead(mem_rename.get(e.mem, e.mem), e.addr, e.type)
                return e

            def fn_expr(e: Expr) -> Expr:
                return map_expr(e, fn)

            return fn_expr(expr)

        # pass 2: emit statements
        for stmt in body:
            if isinstance(stmt, DefNode):
                target = rename[stmt.name]
                assert isinstance(target, Ref)
                self.out.append(DefNode(target.name, rw(stmt.value), stmt.info))
            elif isinstance(stmt, DefWire):
                target = rename[stmt.name]
                assert isinstance(target, Ref)
                self.out.append(DefWire(target.name, stmt.type, stmt.info))
            elif isinstance(stmt, DefRegister):
                target = rename[stmt.name]
                assert isinstance(target, Ref)
                self.out.append(
                    DefRegister(
                        target.name,
                        stmt.type,
                        rw(stmt.clock),
                        None if stmt.reset is None else rw(stmt.reset),
                        None if stmt.init is None else rw(stmt.init),
                        stmt.info,
                    )
                )
            elif isinstance(stmt, DefMemory):
                self.out.append(
                    DefMemory(mem_rename[stmt.name], stmt.data_type, stmt.depth, stmt.info)
                )
            elif isinstance(stmt, DefInstance):
                child = self.circuit.module(stmt.module)
                child_rename: dict[str, Expr] = {}
                for port in child.ports:
                    if port.direction == "input":
                        driver = inst_inputs.get((stmt.name, port.name))
                        if driver is None:
                            raise PassError(
                                f"input {stmt.name}.{port.name} of {child.name} never driven"
                            )
                        child_rename[port.name] = rw(driver)
                    else:
                        wire = inst_out_wires[(stmt.name, port.name)]
                        self.out.append(DefWire(wire, port.type, stmt.info))
                        child_rename[port.name] = Ref(wire, port.type)
                self.inline(
                    child,
                    f"{path}{stmt.name}.",
                    f"{prefix}{stmt.name}_",
                    child_rename,
                    {},
                )
            elif isinstance(stmt, Connect):
                if isinstance(stmt.loc, InstPort):
                    continue  # folded into child port substitution
                target = rename.get(stmt.loc.name)
                if target is None:
                    # top-level port
                    self.out.append(Connect(stmt.loc, rw(stmt.expr), stmt.info))
                else:
                    if not isinstance(target, Ref):
                        raise PassError(f"connect to substituted input {stmt.loc}")
                    self.out.append(Connect(target, rw(stmt.expr), stmt.info))
            elif isinstance(stmt, MemWrite):
                self.out.append(
                    MemWrite(
                        mem_rename[stmt.mem],
                        rw(stmt.addr),
                        rw(stmt.data),
                        rw(stmt.en),
                        rw(stmt.clock),
                        stmt.info,
                    )
                )
            elif isinstance(stmt, Cover):
                flat = self.ns.fresh(prefix + stmt.name)
                self.cover_paths[flat] = f"{path}{stmt.name}"
                self.out.append(Cover(flat, rw(stmt.clock), rw(stmt.pred), rw(stmt.en), stmt.info))
            elif isinstance(stmt, Stop):
                flat = self.ns.fresh(prefix + stmt.name)
                self.cover_paths[flat] = f"{path}{stmt.name}"
                self.out.append(
                    Stop(flat, rw(stmt.clock), rw(stmt.pred), rw(stmt.en), stmt.exit_code, stmt.info)
                )
            else:
                raise PassError(f"flatten: unexpected statement {stmt!r}")


def _type_of(stmt: Union[DefNode, DefWire, DefRegister]):
    if isinstance(stmt, DefNode):
        return stmt.value.tpe
    return stmt.type


def sort_statements(body: list[Stmt]) -> list[Stmt]:
    """Order statements declaration-before-use.

    Wires and memories first, then nodes/registers topologically sorted by
    their definition-time dependencies, then effects (connects, writes,
    covers, stops) in original order.
    """
    decls: list[Stmt] = []
    defs: list[Stmt] = []
    effects: list[Stmt] = []
    for stmt in body:
        if isinstance(stmt, (DefWire, DefMemory, DefInstance)):
            decls.append(stmt)
        elif isinstance(stmt, (DefNode, DefRegister)):
            defs.append(stmt)
        else:
            effects.append(stmt)

    by_name = {s.name: s for s in defs}  # type: ignore[attr-defined]
    order: list[Stmt] = []
    visiting: set[str] = set()
    done: set[str] = set()

    def deps_of(stmt: Stmt) -> list[str]:
        names: list[str] = []
        if isinstance(stmt, DefNode):
            names.extend(references(stmt.value))
        elif isinstance(stmt, DefRegister):
            names.extend(references(stmt.clock))
            if stmt.reset is not None:
                names.extend(references(stmt.reset))
            if stmt.init is not None:
                names.extend(references(stmt.init))
        return [d for d in names if d in by_name]

    def visit(name: str) -> None:
        if name in done:
            return
        if name in visiting:
            raise PassError(f"combinational cycle through {name!r}")
        visiting.add(name)
        for dep in deps_of(by_name[name]):
            visit(dep)
        visiting.discard(name)
        done.add(name)
        order.append(by_name[name])

    for stmt in defs:
        visit(stmt.name)  # type: ignore[attr-defined]
    return decls + order + effects


class InlineInstances(Pass):
    """Flatten the whole hierarchy into a single module."""

    def run(self, state: CompileState) -> CompileState:
        circuit = state.circuit
        top = circuit.top
        inliner = _Inliner(circuit)
        identity: dict[str, Expr] = {}
        inliner.inline(top, "", "", identity, {})
        # top-level covers map to themselves
        body = sort_statements(inliner.out)
        flat = Module(top.name, list(top.ports), body, top.info)
        new_circuit = Circuit(top.name, [flat], circuit.annotations)
        cover_paths = dict(state.cover_paths or {})
        cover_paths.update(inliner.cover_paths)
        return CompileState(new_circuit, cover_paths, state.metadata)
