"""Dead code elimination (low form).

Removes nodes, wires and registers whose values can never influence an
observable effect.  Observables are: module outputs, cover/stop statements,
memory writes (they may feed live reads), and anything connected into a
child instance.  ``DontTouchAnnotation`` pins signals alive.

The toggle-coverage pass runs *after* optimization passes like this one
(§4.2 of the paper), so DCE directly determines the toggle cover-point set.
"""

from __future__ import annotations

from ..ir.annotations import DontTouchAnnotation
from ..ir.nodes import (
    Circuit,
    Connect,
    Cover,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    InstPort,
    MemWrite,
    Module,
    Ref,
    Stop,
)
from ..ir.traversal import references, stmt_exprs
from .base import CompileState, Pass


class DeadCodeElimination(Pass):
    """Remove definitions that cannot affect observable behaviour."""

    def run(self, state: CompileState) -> CompileState:
        keep = {
            (a.module, a.target)
            for a in state.circuit.annotations
            if isinstance(a, DontTouchAnnotation)
        }
        modules = [self._run_module(m, keep) for m in state.circuit.modules]
        circuit = Circuit(state.circuit.main, modules, state.circuit.annotations)
        return CompileState(circuit, state.cover_paths, state.metadata)

    def _run_module(self, module: Module, keep: set) -> Module:
        # index: which statements define/drive which names
        drivers: dict[str, list] = {}
        for stmt in module.body:
            if isinstance(stmt, DefNode):
                drivers.setdefault(stmt.name, []).append(stmt)
            elif isinstance(stmt, Connect) and isinstance(stmt.loc, Ref):
                drivers.setdefault(stmt.loc.name, []).append(stmt)
            elif isinstance(stmt, DefRegister):
                drivers.setdefault(stmt.name, []).append(stmt)
            elif isinstance(stmt, MemWrite):
                drivers.setdefault(stmt.mem, []).append(stmt)

        output_names = {p.name for p in module.ports if p.direction == "output"}
        live: set[str] = set()
        worklist: list[str] = []

        def mark_expr(expr) -> None:
            for name in references(expr):
                if name not in live:
                    live.add(name)
                    worklist.append(name)

        # roots
        for stmt in module.body:
            if isinstance(stmt, (Cover, Stop)):
                for e in stmt_exprs(stmt):
                    mark_expr(e)
            elif isinstance(stmt, Connect):
                if isinstance(stmt.loc, InstPort):
                    mark_expr(stmt.expr)
                    live.add(stmt.loc.instance)
                elif stmt.loc.name in output_names:
                    mark_expr(stmt.expr)
            elif isinstance(stmt, DefInstance):
                # instances may contain covers/stops; always keep them
                live.add(stmt.name)
        for mod_name, target in keep:
            if mod_name == module.name:
                live.add(target)
                worklist.append(target)

        # transitive closure
        while worklist:
            name = worklist.pop()
            for stmt in drivers.get(name, []):
                if isinstance(stmt, DefNode):
                    mark_expr(stmt.value)
                elif isinstance(stmt, Connect):
                    mark_expr(stmt.expr)
                elif isinstance(stmt, DefRegister):
                    mark_expr(stmt.clock)
                    if stmt.reset is not None:
                        mark_expr(stmt.reset)
                    if stmt.init is not None:
                        mark_expr(stmt.init)
                elif isinstance(stmt, MemWrite):
                    for e in stmt_exprs(stmt):
                        mark_expr(e)

        def is_live_stmt(stmt) -> bool:
            if isinstance(stmt, DefNode):
                return stmt.name in live
            if isinstance(stmt, (DefWire, DefRegister, DefMemory)):
                return stmt.name in live
            if isinstance(stmt, DefInstance):
                return True
            if isinstance(stmt, Connect):
                if isinstance(stmt.loc, InstPort):
                    return True
                return stmt.loc.name in live or stmt.loc.name in output_names
            if isinstance(stmt, MemWrite):
                return stmt.mem in live
            return True  # covers, stops

        body = [s for s in module.body if is_live_stmt(s)]
        return Module(module.name, list(module.ports), body, module.info)
