"""Lower ``when`` blocks to multiplexers (the FIRRTL ``ExpandWhens`` pass).

This is the lowering stage the paper's line-coverage pass relies on (§4.1):
the *dominating branch condition* of every statement becomes an explicit
enable.  Concretely:

* ``Connect`` statements under conditions merge into mux trees with
  last-connect semantics; each wire/output/register/instance-input ends up
  with exactly one connect.
* ``Cover``/``Stop``/``MemWrite`` predicates get the full path condition
  ANDed into their enables — a bare ``cover(true)`` placed inside a branch
  becomes a counter for exactly that branch.
* Registers keep their value on unassigned paths (they default to
  themselves); wires and outputs must be assigned on every path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..ir.nodes import (
    Circuit,
    Connect,
    Cover,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    MemWrite,
    Module,
    Mux,
    Ref,
    Stmt,
    Stop,
    When,
    and_,
    not_,
)
from ..ir.types import ClockType, Type, bit_width, is_signed
from .base import CompileState, Pass, PassError

TargetKey = Union[str, tuple[str, str]]


@dataclass
class _Target:
    loc: Union[Ref, InstPort]
    default: Optional[Expr]
    kind: str  # wire | reg | output | instport
    info: object


def _merge(pred: Expr, conseq: Optional[Expr], alt: Optional[Expr]) -> Optional[Expr]:
    """Combine branch values; a missing side is treated as don't-care."""
    if conseq is None:
        return alt
    if alt is None:
        return conseq
    if conseq is alt or conseq == alt:
        return conseq
    if isinstance(conseq.tpe, ClockType) or isinstance(alt.tpe, ClockType):
        raise PassError("conditional connect of a clock signal")
    return Mux.make(pred, conseq, alt)


class _ModuleLowerer:
    def __init__(self, circuit: Circuit, module: Module) -> None:
        self.circuit = circuit
        self.module = module
        self.out: list[Stmt] = []
        self.targets: dict[TargetKey, _Target] = {}
        self.env: dict[TargetKey, Expr] = {}
        self.instances: dict[str, str] = {}
        for port in module.ports:
            if port.direction == "output":
                self.targets[port.name] = _Target(port.ref(), None, "output", port.info)

    @staticmethod
    def key_of(loc: Union[Ref, InstPort]) -> TargetKey:
        if isinstance(loc, Ref):
            return loc.name
        return (loc.instance, loc.port)

    def process(self, body: list[Stmt], pred: Optional[Expr]) -> None:
        for stmt in body:
            if isinstance(stmt, DefNode):
                self.out.append(stmt)
            elif isinstance(stmt, DefWire):
                self.targets[stmt.name] = _Target(Ref(stmt.name, stmt.type), None, "wire", stmt.info)
                self.out.append(stmt)
            elif isinstance(stmt, DefRegister):
                self.targets[stmt.name] = _Target(
                    Ref(stmt.name, stmt.type), Ref(stmt.name, stmt.type), "reg", stmt.info
                )
                self.out.append(stmt)
            elif isinstance(stmt, DefMemory):
                self.out.append(stmt)
            elif isinstance(stmt, DefInstance):
                self.instances[stmt.name] = stmt.module
                child = self.circuit.module(stmt.module)
                for port in child.ports:
                    if port.direction == "input":
                        loc = InstPort(stmt.name, port.name, port.type)
                        self.targets[self.key_of(loc)] = _Target(loc, None, "instport", stmt.info)
                self.out.append(stmt)
            elif isinstance(stmt, Connect):
                key = self.key_of(stmt.loc)
                if key not in self.targets:
                    raise PassError(
                        f"[{self.module.name}] connect to non-connectable {stmt.loc}"
                    )
                self.env[key] = stmt.expr
            elif isinstance(stmt, MemWrite):
                en = and_(stmt.en, pred) if pred is not None else stmt.en
                self.out.append(
                    MemWrite(stmt.mem, stmt.addr, stmt.data, en, stmt.clock, stmt.info)
                )
            elif isinstance(stmt, Cover):
                en = and_(stmt.en, pred) if pred is not None else stmt.en
                self.out.append(Cover(stmt.name, stmt.clock, stmt.pred, en, stmt.info))
            elif isinstance(stmt, Stop):
                en = and_(stmt.en, pred) if pred is not None else stmt.en
                self.out.append(
                    Stop(stmt.name, stmt.clock, stmt.pred, en, stmt.exit_code, stmt.info)
                )
            elif isinstance(stmt, When):
                self._process_when(stmt, pred)
            else:
                raise PassError(f"[{self.module.name}] unexpected statement {stmt!r}")

    def _process_when(self, stmt: When, pred: Optional[Expr]) -> None:
        saved = dict(self.env)
        conseq_pred = and_(pred, stmt.pred) if pred is not None else stmt.pred
        self.process(stmt.conseq, conseq_pred)
        env_conseq = self.env
        self.env = dict(saved)
        if stmt.alt:
            alt_pred = and_(pred, not_(stmt.pred)) if pred is not None else not_(stmt.pred)
            self.process(stmt.alt, alt_pred)
        env_alt = self.env
        merged = dict(saved)
        for key in set(env_conseq) | set(env_alt):
            conseq_v = env_conseq.get(key)
            alt_v = env_alt.get(key)
            if conseq_v is None and alt_v is None:
                continue
            if conseq_v is alt_v:
                merged[key] = conseq_v  # type: ignore[assignment]
                continue
            base = saved.get(key, self.targets[key].default)
            value = _merge(stmt.pred, conseq_v if conseq_v is not None else base,
                           alt_v if alt_v is not None else base)
            if value is not None:
                merged[key] = value
        self.env = merged

    def finalize(self) -> Module:
        for key, target in self.targets.items():
            value = self.env.get(key, target.default)
            if value is None:
                if isinstance(target.loc.tpe, ClockType):
                    raise PassError(
                        f"[{self.module.name}] clock {target.loc} is never connected"
                    )
                raise PassError(
                    f"[{self.module.name}] {target.kind} {target.loc} is not fully initialized"
                )
            if target.kind == "reg" and isinstance(value, Ref) and value.name == key:
                # register that always keeps its value: emit the identity
                # connect anyway so backends see a uniform single-driver form
                pass
            value = _coerce(value, target.loc.tpe, self.module.name)
            self.out.append(Connect(target.loc, value, target.info))  # type: ignore[arg-type]
        return Module(self.module.name, list(self.module.ports), self.out, self.module.info)


def _coerce(expr: Expr, tpe: Type, module: str) -> Expr:
    """Pad ``expr`` up to the width of ``tpe`` (connects never truncate)."""
    if isinstance(tpe, ClockType):
        if not isinstance(expr.tpe, ClockType):
            raise PassError(f"[{module}] connecting non-clock to clock")
        return expr
    from ..ir.nodes import prim

    if is_signed(expr.tpe) != is_signed(tpe):
        raise PassError(f"[{module}] signedness mismatch in connect: {expr.tpe} -> {tpe}")
    have, want = bit_width(expr.tpe), bit_width(tpe)
    if have == want:
        return expr
    if have > want:
        raise PassError(f"[{module}] connect would truncate {have} -> {want} bits")
    return prim("pad", expr, consts=[want])


class ExpandWhens(Pass):
    """Lower all ``When`` blocks; produce single-connect (low) form."""

    def run(self, state: CompileState) -> CompileState:
        modules = []
        for module in state.circuit.modules:
            lowerer = _ModuleLowerer(state.circuit, module)
            lowerer.process(module.body, None)
            modules.append(lowerer.finalize())
        circuit = Circuit(state.circuit.main, modules, state.circuit.annotations)
        return CompileState(circuit, state.cover_paths, state.metadata)


def has_whens(module: Module) -> bool:
    """True when the module still contains ``When`` statements."""
    from ..ir.traversal import walk_stmts

    return any(isinstance(s, When) for s in walk_stmts(module.body))
