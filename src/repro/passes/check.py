"""Well-formedness checks for IR circuits.

Run early (after elaboration) and optionally between passes as a debugging
aid.  Checks: unique declarations, def-before-use, type sanity on connects
and predicates, clock typing, and instance/port validity.

Violations are collected through the diagnostics engine
(:mod:`repro.analysis.diagnostics`) so one run reports *every* problem
with its ``@[file:line]`` locator, instead of dying on the first.  The
pass stays strict for its callers: if anything was found, ``run`` raises
:class:`PassError` at the end carrying the full report.
"""

from __future__ import annotations

from typing import Optional

from ..ir.nodes import (
    Circuit,
    Connect,
    Cover,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    MemRead,
    MemWrite,
    Module,
    Mux,
    NO_INFO,
    PrimOp,
    Ref,
    SIntLiteral,
    SourceInfo,
    Stmt,
    Stop,
    UIntLiteral,
    When,
)
from ..ir.types import ClockType, bit_width, is_signed
from .base import CompileState, Pass, PassError


def _register_check_rules() -> None:
    # Local import: repro.analysis.diagnostics imports nothing from
    # repro.passes, but keeping the dependency out of module import time
    # preserves the existing import graph for everything that pulls in
    # repro.passes without ever running CheckForms.
    from ..analysis.diagnostics import RULES, Severity, register_rule

    if "check-undeclared" in RULES:
        return
    register_rule(
        "check-undeclared",
        Severity.ERROR,
        "use before declaration",
        "A reference names a signal, memory, instance, or module that was "
        "never declared (or not declared yet: the IR requires "
        "def-before-use).",
        category="check",
    )
    register_rule(
        "check-type",
        Severity.ERROR,
        "type error",
        "An expression or statement violates the IR's typing rules: "
        "mismatched reference types, non-1-bit predicates, clocks used as "
        "data, signedness or width violations on connects.",
        category="check",
    )
    register_rule(
        "check-duplicate",
        Severity.ERROR,
        "duplicate declaration",
        "Two declarations (signals, memories, instances, modules, or "
        "cover/stop labels) share one name; references would be ambiguous.",
        category="check",
    )
    register_rule(
        "check-structure",
        Severity.ERROR,
        "malformed structure",
        "The circuit shape itself is invalid: unknown statement or "
        "expression kinds, a missing main module, bad memory geometry, or "
        "a connect driving something that cannot be driven.",
        category="check",
    )


class _CheckFailed(Exception):
    """Internal: aborts the current statement, checking continues after."""


class _ModuleChecker:
    def __init__(self, circuit: Circuit, module: Module, diags) -> None:
        self.circuit = circuit
        self.module = module
        self.diags = diags
        self.types: dict[str, object] = {p.name: p.type for p in module.ports}
        self.mems: dict[str, DefMemory] = {}
        self.instances: dict[str, str] = {}
        self._info: SourceInfo = NO_INFO

    def fail(self, message: str, rule: str = "check-structure") -> None:
        self.diags.emit(
            rule,
            message,
            module=self.module.name,
            info=self._info,
        )
        raise _CheckFailed

    # -- expressions ---------------------------------------------------------

    def check_expr(self, expr: Expr) -> None:
        if isinstance(expr, Ref):
            if expr.name not in self.types:
                self.fail(
                    f"use of undeclared signal {expr.name!r}",
                    "check-undeclared",
                )
            declared = self.types[expr.name]
            if declared != expr.type:
                self.fail(
                    f"reference {expr.name!r} has type {expr.type}, "
                    f"declared as {declared}",
                    "check-type",
                )
        elif isinstance(expr, InstPort):
            module_name = self.instances.get(expr.instance)
            if module_name is None:
                self.fail(
                    f"use of undeclared instance {expr.instance!r}",
                    "check-undeclared",
                )
            child = self.circuit.module(module_name)
            try:
                port = child.port(expr.port)
            except KeyError:
                self.fail(
                    f"instance port {expr.instance}.{expr.port} does not "
                    f"exist on module {module_name!r}",
                    "check-undeclared",
                )
            if port.type != expr.type:
                self.fail(
                    f"instance port {expr.instance}.{expr.port} has type "
                    f"{expr.type}, declared as {port.type}",
                    "check-type",
                )
        elif isinstance(expr, (UIntLiteral, SIntLiteral)):
            pass
        elif isinstance(expr, PrimOp):
            for a in expr.args:
                self.check_expr(a)
                if isinstance(a.tpe, ClockType):
                    self.fail(
                        f"clock used as data operand in {expr.op}",
                        "check-type",
                    )
        elif isinstance(expr, Mux):
            self.check_expr(expr.cond)
            self.check_expr(expr.tval)
            self.check_expr(expr.fval)
            if bit_width(expr.cond.tpe) != 1:
                self.fail("mux condition must be one bit", "check-type")
        elif isinstance(expr, MemRead):
            if expr.mem not in self.mems:
                self.fail(
                    f"read of undeclared memory {expr.mem!r}",
                    "check-undeclared",
                )
            self.check_expr(expr.addr)
        else:
            self.fail(f"unknown expression kind: {expr!r}")

    def check_pred(self, expr: Expr, what: str) -> None:
        self.check_expr(expr)
        if bit_width(expr.tpe) != 1 or is_signed(expr.tpe):
            self.fail(f"{what} must be UInt<1>, got {expr.tpe}", "check-type")

    def check_clock(self, expr: Expr) -> None:
        self.check_expr(expr)
        if not isinstance(expr.tpe, ClockType):
            self.fail(f"expected a clock, got {expr.tpe}", "check-type")

    # -- statements ----------------------------------------------------------

    def declare(self, name: str, tpe: object) -> None:
        if name in self.types or name in self.mems or name in self.instances:
            self.fail(
                f"duplicate declaration of {name!r}", "check-duplicate"
            )
        self.types[name] = tpe

    def _declare_best_effort(self, stmt: Stmt) -> None:
        """Register a failed statement's declaration anyway.

        Checking continues past a bad statement; without this, every later
        use of the name it declared would cascade into a spurious
        ``check-undeclared``.
        """
        if isinstance(stmt, DefNode):
            self.types.setdefault(stmt.name, stmt.value.tpe)
        elif isinstance(stmt, (DefWire, DefRegister)):
            self.types.setdefault(stmt.name, stmt.type)
        elif isinstance(stmt, DefMemory):
            self.mems.setdefault(stmt.name, stmt)
        elif isinstance(stmt, DefInstance):
            self.instances.setdefault(stmt.name, stmt.module)

    def check_stmt_collect(self, stmt: Stmt) -> None:
        """Check one statement; a violation is recorded, not propagated."""
        try:
            self.check_stmt(stmt)
        except _CheckFailed:
            self._declare_best_effort(stmt)

    def check_stmt(self, stmt: Stmt) -> None:
        self._info = getattr(stmt, "info", NO_INFO) or NO_INFO
        if isinstance(stmt, DefNode):
            self.check_expr(stmt.value)
            self.declare(stmt.name, stmt.value.tpe)
        elif isinstance(stmt, DefWire):
            self.declare(stmt.name, stmt.type)
        elif isinstance(stmt, DefRegister):
            self.declare(stmt.name, stmt.type)
            self.check_clock(stmt.clock)
            if (stmt.reset is None) != (stmt.init is None):
                self.fail(
                    f"register {stmt.name!r} has reset without init "
                    "(or vice versa)",
                    "check-type",
                )
            if stmt.reset is not None:
                self.check_pred(stmt.reset, "register reset")
            if stmt.init is not None:
                self.check_expr(stmt.init)
        elif isinstance(stmt, DefMemory):
            if stmt.name in self.types or stmt.name in self.mems:
                self.fail(
                    f"duplicate declaration of {stmt.name!r}",
                    "check-duplicate",
                )
            if stmt.depth < 1:
                self.fail(f"memory {stmt.name!r} has bad depth {stmt.depth}")
            self.mems[stmt.name] = stmt
        elif isinstance(stmt, DefInstance):
            if stmt.name in self.types or stmt.name in self.instances:
                self.fail(
                    f"duplicate declaration of {stmt.name!r}",
                    "check-duplicate",
                )
            try:
                self.circuit.module(stmt.module)
            except KeyError:
                self.fail(
                    f"instance of unknown module {stmt.module!r}",
                    "check-undeclared",
                )
            self.instances[stmt.name] = stmt.module
        elif isinstance(stmt, Connect):
            self.check_expr(stmt.loc)
            self.check_expr(stmt.expr)
            loc_t, expr_t = stmt.loc.tpe, stmt.expr.tpe
            if isinstance(loc_t, ClockType) != isinstance(expr_t, ClockType):
                self.fail(
                    f"clock/data mismatch in connect to {stmt.loc}",
                    "check-type",
                )
            if not isinstance(loc_t, ClockType):
                if is_signed(loc_t) != is_signed(expr_t):
                    self.fail(
                        f"signedness mismatch in connect to {stmt.loc}",
                        "check-type",
                    )
                if bit_width(expr_t) > bit_width(loc_t):
                    self.fail(
                        f"connect to {stmt.loc} would truncate "
                        f"({bit_width(expr_t)} -> {bit_width(loc_t)} bits)",
                        "check-type",
                    )
            if isinstance(stmt.loc, Ref):
                # ports: only outputs are assignable; wires/regs always
                for p in self.module.ports:
                    if p.name == stmt.loc.name and p.direction == "input":
                        self.fail(f"connect drives module input {p.name!r}")
            if isinstance(stmt.loc, InstPort):
                child = self.circuit.module(self.instances[stmt.loc.instance])
                if child.port(stmt.loc.port).direction == "output":
                    self.fail(f"connect drives instance output {stmt.loc}")
        elif isinstance(stmt, MemWrite):
            if stmt.mem not in self.mems:
                self.fail(
                    f"write to undeclared memory {stmt.mem!r}",
                    "check-undeclared",
                )
            self.check_expr(stmt.addr)
            self.check_expr(stmt.data)
            self.check_pred(stmt.en, "memory write enable")
            self.check_clock(stmt.clock)
        elif isinstance(stmt, When):
            self.check_pred(stmt.pred, "when predicate")
            for inner in stmt.conseq:
                self.check_stmt_collect(inner)
            for inner in stmt.alt:
                self.check_stmt_collect(inner)
        elif isinstance(stmt, (Cover, Stop)):
            self.check_clock(stmt.clock)
            self.check_pred(stmt.pred, f"{type(stmt).__name__.lower()} predicate")
            self.check_pred(stmt.en, f"{type(stmt).__name__.lower()} enable")
        else:
            self.fail(f"unknown statement kind: {stmt!r}")


def check_circuit(circuit: Circuit, diags=None):
    """Collect every well-formedness violation in ``circuit``.

    Returns the :class:`~repro.analysis.diagnostics.Diagnostics` holding
    whatever was found (empty = well-formed).  This is the report-all
    engine behind :class:`CheckForms`; lint-style callers can use it
    directly without the raise-at-end behaviour.
    """
    from ..analysis.diagnostics import Diagnostics

    _register_check_rules()
    if diags is None:
        diags = Diagnostics()

    def circuit_fail(message: str, rule: str = "check-structure",
                     module: Optional[str] = None) -> None:
        diags.emit(rule, message, module=module or circuit.main)

    names = circuit.module_names()
    if len(set(names)) != len(names):
        circuit_fail("duplicate module names in circuit", "check-duplicate")
    try:
        circuit.top
    except KeyError:
        circuit_fail(f"main module {circuit.main!r} not found",
                     "check-undeclared")
        return diags
    from ..ir.traversal import walk_stmts

    for module in circuit.modules:
        checker = _ModuleChecker(circuit, module, diags)
        for stmt in module.body:
            checker.check_stmt_collect(stmt)
        seen: set[str] = set()
        for stmt in walk_stmts(module.body):
            if isinstance(stmt, (Cover, Stop)):
                if stmt.name in seen:
                    diags.emit(
                        "check-duplicate",
                        f"duplicate cover/stop name {stmt.name!r}",
                        module=module.name,
                        info=getattr(stmt, "info", NO_INFO) or NO_INFO,
                    )
                seen.add(stmt.name)
    return diags


class CheckForms(Pass):
    """Structural well-formedness verification.

    Collects *all* violations (see :func:`check_circuit`) and raises one
    :class:`PassError` carrying the full multi-line report, so a broken
    circuit surfaces every problem in a single compile instead of one per
    run.
    """

    def run(self, state: CompileState) -> CompileState:
        diags = check_circuit(state.circuit)
        errors = diags.errors
        if errors:
            listing = "\n".join(d.format() for d in errors)
            raise PassError(
                f"{len(errors)} well-formedness error(s):\n{listing}"
            )
        return state
