"""Well-formedness checks for IR circuits.

Run early (after elaboration) and optionally between passes as a debugging
aid.  Checks: unique declarations, def-before-use, type sanity on connects
and predicates, clock typing, and instance/port validity.
"""

from __future__ import annotations

from ..ir.nodes import (
    Circuit,
    Connect,
    Cover,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    MemRead,
    MemWrite,
    Module,
    Mux,
    PrimOp,
    Ref,
    SIntLiteral,
    Stmt,
    Stop,
    UIntLiteral,
    When,
)
from ..ir.types import ClockType, bit_width, is_signed
from .base import CompileState, Pass, PassError


class _ModuleChecker:
    def __init__(self, circuit: Circuit, module: Module) -> None:
        self.circuit = circuit
        self.module = module
        self.types: dict[str, object] = {p.name: p.type for p in module.ports}
        self.mems: dict[str, DefMemory] = {}
        self.instances: dict[str, str] = {}

    def fail(self, message: str) -> None:
        raise PassError(f"[{self.module.name}] {message}")

    # -- expressions ---------------------------------------------------------

    def check_expr(self, expr: Expr) -> None:
        if isinstance(expr, Ref):
            if expr.name not in self.types:
                self.fail(f"use of undeclared signal {expr.name!r}")
            declared = self.types[expr.name]
            if declared != expr.type:
                self.fail(
                    f"reference {expr.name!r} has type {expr.type}, declared as {declared}"
                )
        elif isinstance(expr, InstPort):
            module_name = self.instances.get(expr.instance)
            if module_name is None:
                self.fail(f"use of undeclared instance {expr.instance!r}")
            child = self.circuit.module(module_name)
            port = child.port(expr.port)  # raises KeyError if missing
            if port.type != expr.type:
                self.fail(
                    f"instance port {expr.instance}.{expr.port} has type "
                    f"{expr.type}, declared as {port.type}"
                )
        elif isinstance(expr, (UIntLiteral, SIntLiteral)):
            pass
        elif isinstance(expr, PrimOp):
            for a in expr.args:
                self.check_expr(a)
                if isinstance(a.tpe, ClockType):
                    self.fail(f"clock used as data operand in {expr.op}")
        elif isinstance(expr, Mux):
            self.check_expr(expr.cond)
            self.check_expr(expr.tval)
            self.check_expr(expr.fval)
            if bit_width(expr.cond.tpe) != 1:
                self.fail("mux condition must be one bit")
        elif isinstance(expr, MemRead):
            if expr.mem not in self.mems:
                self.fail(f"read of undeclared memory {expr.mem!r}")
            self.check_expr(expr.addr)
        else:
            self.fail(f"unknown expression kind: {expr!r}")

    def check_pred(self, expr: Expr, what: str) -> None:
        self.check_expr(expr)
        if bit_width(expr.tpe) != 1 or is_signed(expr.tpe):
            self.fail(f"{what} must be UInt<1>, got {expr.tpe}")

    def check_clock(self, expr: Expr) -> None:
        self.check_expr(expr)
        if not isinstance(expr.tpe, ClockType):
            self.fail(f"expected a clock, got {expr.tpe}")

    # -- statements ----------------------------------------------------------

    def declare(self, name: str, tpe: object) -> None:
        if name in self.types or name in self.mems or name in self.instances:
            self.fail(f"duplicate declaration of {name!r}")
        self.types[name] = tpe

    def check_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, DefNode):
            self.check_expr(stmt.value)
            self.declare(stmt.name, stmt.value.tpe)
        elif isinstance(stmt, DefWire):
            self.declare(stmt.name, stmt.type)
        elif isinstance(stmt, DefRegister):
            self.declare(stmt.name, stmt.type)
            self.check_clock(stmt.clock)
            if (stmt.reset is None) != (stmt.init is None):
                self.fail(f"register {stmt.name!r} has reset without init (or vice versa)")
            if stmt.reset is not None:
                self.check_pred(stmt.reset, "register reset")
            if stmt.init is not None:
                self.check_expr(stmt.init)
        elif isinstance(stmt, DefMemory):
            if stmt.name in self.types or stmt.name in self.mems:
                self.fail(f"duplicate declaration of {stmt.name!r}")
            if stmt.depth < 1:
                self.fail(f"memory {stmt.name!r} has bad depth {stmt.depth}")
            self.mems[stmt.name] = stmt
        elif isinstance(stmt, DefInstance):
            if stmt.name in self.types or stmt.name in self.instances:
                self.fail(f"duplicate declaration of {stmt.name!r}")
            try:
                self.circuit.module(stmt.module)
            except KeyError:
                self.fail(f"instance of unknown module {stmt.module!r}")
            self.instances[stmt.name] = stmt.module
        elif isinstance(stmt, Connect):
            self.check_expr(stmt.loc)
            self.check_expr(stmt.expr)
            loc_t, expr_t = stmt.loc.tpe, stmt.expr.tpe
            if isinstance(loc_t, ClockType) != isinstance(expr_t, ClockType):
                self.fail(f"clock/data mismatch in connect to {stmt.loc}")
            if not isinstance(loc_t, ClockType):
                if is_signed(loc_t) != is_signed(expr_t):
                    self.fail(f"signedness mismatch in connect to {stmt.loc}")
                if bit_width(expr_t) > bit_width(loc_t):
                    self.fail(
                        f"connect to {stmt.loc} would truncate "
                        f"({bit_width(expr_t)} -> {bit_width(loc_t)} bits)"
                    )
            if isinstance(stmt.loc, Ref):
                # ports: only outputs are assignable; wires/regs always
                for p in self.module.ports:
                    if p.name == stmt.loc.name and p.direction == "input":
                        self.fail(f"connect drives module input {p.name!r}")
            if isinstance(stmt.loc, InstPort):
                child = self.circuit.module(self.instances[stmt.loc.instance])
                if child.port(stmt.loc.port).direction == "output":
                    self.fail(f"connect drives instance output {stmt.loc}")
        elif isinstance(stmt, MemWrite):
            if stmt.mem not in self.mems:
                self.fail(f"write to undeclared memory {stmt.mem!r}")
            self.check_expr(stmt.addr)
            self.check_expr(stmt.data)
            self.check_pred(stmt.en, "memory write enable")
            self.check_clock(stmt.clock)
        elif isinstance(stmt, When):
            self.check_pred(stmt.pred, "when predicate")
            for inner in stmt.conseq:
                self.check_stmt(inner)
            for inner in stmt.alt:
                self.check_stmt(inner)
        elif isinstance(stmt, (Cover, Stop)):
            self.check_clock(stmt.clock)
            self.check_pred(stmt.pred, f"{type(stmt).__name__.lower()} predicate")
            self.check_pred(stmt.en, f"{type(stmt).__name__.lower()} enable")
        else:
            self.fail(f"unknown statement kind: {stmt!r}")


class CheckForms(Pass):
    """Structural well-formedness verification."""

    def run(self, state: CompileState) -> CompileState:
        circuit = state.circuit
        names = circuit.module_names()
        if len(set(names)) != len(names):
            raise PassError("duplicate module names in circuit")
        try:
            circuit.top
        except KeyError:
            raise PassError(f"main module {circuit.main!r} not found") from None
        cover_names: dict[str, set[str]] = {}
        for module in circuit.modules:
            checker = _ModuleChecker(circuit, module)
            for stmt in module.body:
                checker.check_stmt(stmt)
            seen = cover_names.setdefault(module.name, set())
            from ..ir.traversal import walk_stmts

            for stmt in walk_stmts(module.body):
                if isinstance(stmt, (Cover, Stop)):
                    if stmt.name in seen:
                        raise PassError(
                            f"[{module.name}] duplicate cover/stop name {stmt.name!r}"
                        )
                    seen.add(stmt.name)
        return state
