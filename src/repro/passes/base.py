"""Pass framework: compile state, passes and the pass manager."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..ir.nodes import Circuit

# Telemetry is imported lazily: a top-level import would cycle
# (passes/__init__ → runtime/__init__ → validate → coverage → passes).
_obs = None


def _get_obs():
    global _obs
    if _obs is None:
        from ..runtime.telemetry import obs as _o
        _obs = _o
    return _obs


class PassError(Exception):
    """Raised when a pass detects malformed input or an internal invariant fails."""


@dataclass
class CompileState:
    """The unit of data flowing through the compiler.

    Attributes:
        circuit: the current IR.
        cover_paths: optional map from module-local (possibly flattened)
            cover statement names to canonical hierarchical coverage keys
            (``inst.path.name``).  Populated by the flattening pass.
        metadata: free-form side tables keyed by pass name (coverage passes
            deposit their report-generator metadata here).
    """

    circuit: Circuit
    cover_paths: Optional[dict[str, str]] = None
    metadata: dict[str, Any] = field(default_factory=dict)


class Pass:
    """A circuit-to-circuit transformation or analysis."""

    #: Human-readable pass name (defaults to the class name).
    name: str = ""

    def run(self, state: CompileState) -> CompileState:
        raise NotImplementedError

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if not cls.name:
            cls.name = cls.__name__


class PassManager:
    """Runs a pipeline of passes, recording per-pass history.

    ``interleave`` names an analysis pass to re-run after every pipeline
    pass — the ``--check-passes`` mode: interleaving a strict
    :class:`~repro.analysis.LintPass` pins the transform that introduced
    a violation to the exact pipeline position, instead of discovering it
    at the end with no attribution.
    """

    def __init__(self, passes: Iterable[Pass] = (),
                 interleave: Optional[Pass] = None) -> None:
        self.passes: list[Pass] = list(passes)
        self.interleave = interleave
        self.history: list[str] = []

    def add(self, p: Pass) -> "PassManager":
        self.passes.append(p)
        return self

    def _pipeline(self) -> list[Pass]:
        if self.interleave is None:
            return list(self.passes)
        seq: list[Pass] = []
        for p in self.passes:
            seq.append(p)
            seq.append(self.interleave)
        return seq

    def run(self, state: CompileState) -> CompileState:
        obs = _get_obs()
        if obs.enabled:
            import time
            for p in self._pipeline():
                with obs.span("pass:" + p.name, cat="compile"):
                    started = time.perf_counter()
                    state = p.run(state)
                    obs.observe(
                        "repro_pass_duration_seconds",
                        time.perf_counter() - started,
                        **{"pass": p.name},
                    )
                self.history.append(p.name)
            return state
        for p in self._pipeline():
            state = p.run(state)
            self.history.append(p.name)
        return state


def compile_circuit(circuit: Circuit, passes: Iterable[Pass],
                    interleave: Optional[Pass] = None) -> CompileState:
    """Convenience wrapper: run ``passes`` over a fresh compile state."""
    return PassManager(passes, interleave=interleave).run(CompileState(circuit))
