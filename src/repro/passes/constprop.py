"""Constant propagation and expression simplification (low form).

Folds literal primops/muxes, propagates single-definition node values that
are literals or plain references, and applies algebraic identities.  Runs to
a bounded fixpoint.  This is also the engine the FSM coverage pass reuses to
simplify next-state expressions (§4.3).
"""

from __future__ import annotations

from typing import Optional

from ..ir.nodes import (
    Circuit,
    Connect,
    DefNode,
    Expr,
    Module,
    Mux,
    PrimOp,
    Ref,
    SIntLiteral,
    UIntLiteral,
)
from ..ir.ops import eval_op
from ..ir.traversal import is_literal, literal_value, map_expr, map_module_exprs
from ..ir.types import SIntType, UIntType, bit_width, is_signed, to_signed
from .base import CompileState, Pass

MAX_ITERATIONS = 8


def make_literal(raw: int, tpe) -> Expr:
    """Build a literal of ``tpe`` from a raw bit pattern."""
    if is_signed(tpe):
        return SIntLiteral(to_signed(raw, bit_width(tpe)), bit_width(tpe))
    return UIntLiteral(raw & ((1 << bit_width(tpe)) - 1), bit_width(tpe))


def _is_true(expr: Expr) -> bool:
    return isinstance(expr, UIntLiteral) and expr.value == 1 and expr.width == 1


def _is_false(expr: Expr) -> bool:
    return isinstance(expr, UIntLiteral) and expr.value == 0


def _is_zero(expr: Expr) -> bool:
    return is_literal(expr) and literal_value(expr) == 0


def simplify_expr(expr: Expr) -> Expr:
    """One-step local simplification of ``expr`` (children assumed simplified)."""
    if isinstance(expr, Mux):
        if _is_true(expr.cond):
            return _fit(expr.tval, expr)
        if _is_false(expr.cond):
            return _fit(expr.fval, expr)
        if expr.tval == expr.fval:
            return _fit(expr.tval, expr)
        # mux(c, 1, 0) == c for 1-bit results
        if (
            bit_width(expr.tpe) == 1
            and not is_signed(expr.tpe)
            and _is_true(expr.tval)
            and _is_false(expr.fval)
        ):
            return expr.cond
        return expr
    if not isinstance(expr, PrimOp):
        return expr
    args = expr.args
    if all(is_literal(a) for a in args):
        raw = eval_op(expr.op, [literal_value(a) for a in args], [a.tpe for a in args], expr.consts)
        return make_literal(raw, expr.type)
    if expr.op == "and":
        a, b = args
        if _is_false(a) or _is_false(b):
            return make_literal(0, expr.type)
        if _is_true(a) and bit_width(expr.type) == 1:
            return b
        if _is_true(b) and bit_width(expr.type) == 1:
            return a
    elif expr.op == "or":
        a, b = args
        if _is_zero(a) and bit_width(b.tpe) == bit_width(expr.type) and not is_signed(b.tpe):
            return b
        if _is_zero(b) and bit_width(a.tpe) == bit_width(expr.type) and not is_signed(a.tpe):
            return a
        if bit_width(expr.type) == 1 and (_is_true(a) or _is_true(b)):
            return make_literal(1, expr.type)
    elif expr.op == "not":
        inner = args[0]
        if isinstance(inner, PrimOp) and inner.op == "not" and inner.type == expr.type:
            return inner.args[0]
    elif expr.op == "bits":
        hi, lo = expr.consts
        inner = args[0]
        if lo == 0 and hi == bit_width(inner.tpe) - 1 and not is_signed(inner.tpe):
            return inner
        if isinstance(inner, PrimOp) and inner.op == "bits":
            # bits(bits(x, h2, l2), hi, lo) == bits(x, l2+hi, l2+lo)
            _, l2 = inner.consts
            return PrimOp("bits", inner.args, (l2 + hi, l2 + lo), expr.type)
    elif expr.op == "pad":
        inner = args[0]
        if bit_width(inner.tpe) >= expr.consts[0] and inner.tpe == expr.type:
            return inner
    elif expr.op in ("asUInt", "asSInt"):
        inner = args[0]
        if inner.tpe == expr.type:
            return inner
    elif expr.op in ("eq", "neq"):
        a, b = args
        if a == b:
            return make_literal(1 if expr.op == "eq" else 0, expr.type)
    return expr


def _fit(expr: Expr, template: Expr) -> Expr:
    """Adjust ``expr`` to the exact type of ``template`` (pad if narrower)."""
    if expr.tpe == template.tpe:
        return expr
    if bit_width(expr.tpe) <= bit_width(template.tpe) and is_signed(expr.tpe) == is_signed(template.tpe):
        return simplify_expr(PrimOp.make("pad", (expr,), (bit_width(template.tpe),)))
    return template  # cannot represent; keep the original


def simplify_deep(expr: Expr) -> Expr:
    """Bottom-up full simplification of an expression tree."""
    return map_expr(expr, simplify_expr)


class ConstProp(Pass):
    """Propagate constants and copies through node definitions (low form)."""

    def run(self, state: CompileState) -> CompileState:
        modules = [self._run_module(m) for m in state.circuit.modules]
        circuit = Circuit(state.circuit.main, modules, state.circuit.annotations)
        return CompileState(circuit, state.cover_paths, state.metadata)

    def _run_module(self, module: Module) -> Module:
        current = module
        for _ in range(MAX_ITERATIONS):
            subst = self._build_substitution(current)

            def rewrite(expr: Expr) -> Expr:
                if isinstance(expr, Ref) and expr.name in subst:
                    return subst[expr.name]
                return simplify_expr(expr)

            new = map_module_exprs(current, rewrite)
            if _modules_equal(new, current):
                return new
            current = new
        return current

    @staticmethod
    def _build_substitution(module: Module) -> dict[str, Expr]:
        """Nodes whose value is a literal or a plain ref can be inlined."""
        subst: dict[str, Expr] = {}
        for stmt in module.body:
            if isinstance(stmt, DefNode) and (is_literal(stmt.value) or isinstance(stmt.value, Ref)):
                subst[stmt.name] = stmt.value
        # resolve chains node_a -> node_b -> literal
        changed = True
        while changed:
            changed = False
            for name, value in list(subst.items()):
                if isinstance(value, Ref) and value.name in subst and subst[value.name] != value:
                    subst[name] = subst[value.name]
                    changed = True
        return subst


def _modules_equal(a: Module, b: Module) -> bool:
    from ..ir.printer import print_circuit

    return print_circuit(Circuit(a.name, [a])) == print_circuit(Circuit(b.name, [b]))
