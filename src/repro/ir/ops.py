"""Primitive operation table: typing and evaluation rules.

This module is the *single source of truth* for primop semantics.  The
interpreter backend evaluates ops through :func:`eval_op`; the compiled
backends generate Python code that must agree with these rules (guarded by
cross-backend property tests).

Values are represented as raw, non-negative bit patterns.  Signed operands
are interpreted as two's complement based on their declared type.  Results
are always returned as raw patterns truncated to the result width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from .types import (
    SIntType,
    Type,
    UIntType,
    bit_width,
    from_signed,
    is_signed,
    mask,
    to_signed,
    truncate,
    value_of,
)


@dataclass(frozen=True)
class OpSpec:
    """Typing and evaluation rules for one primitive operation."""

    name: str
    n_args: int
    n_consts: int
    result_type: Callable[[Sequence[Type], Sequence[int]], Type]
    evaluate: Callable[[Sequence[int], Sequence[Type], Sequence[int]], int]


def _w(tpe: Type) -> int:
    return bit_width(tpe)


def _same_sign_class(types: Sequence[Type]) -> bool:
    return all(is_signed(t) for t in types) or all(not is_signed(t) for t in types)


def _arith_type(types: Sequence[Type], extra: int) -> Type:
    width = max(_w(t) for t in types) + extra
    if is_signed(types[0]):
        return SIntType(width)
    return UIntType(width)


def _tdiv(a: int, b: int) -> int:
    """Division truncating toward zero (like Verilog/FIRRTL), x/0 == 0."""
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _trem(a: int, b: int) -> int:
    """Remainder with sign of the dividend, x%0 == x."""
    if b == 0:
        return a
    return a - _tdiv(a, b) * b


def _encode(value: int, tpe: Type) -> int:
    if is_signed(tpe):
        return from_signed(value, _w(tpe))
    return truncate(value, _w(tpe))


def _make_arith(name: str, fn: Callable[[int, int], int], extra: int) -> OpSpec:
    def result_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
        return _arith_type(types, extra)

    def evaluate(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
        a = value_of(args[0], types[0])
        b = value_of(args[1], types[1])
        return _encode(fn(a, b), result_type(types, consts))

    return OpSpec(name, 2, 0, result_type, evaluate)


def _make_cmp(name: str, fn: Callable[[int, int], bool]) -> OpSpec:
    def result_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
        return UIntType(1)

    def evaluate(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
        a = value_of(args[0], types[0])
        b = value_of(args[1], types[1])
        return 1 if fn(a, b) else 0

    return OpSpec(name, 2, 0, result_type, evaluate)


def _make_bitwise(name: str, fn: Callable[[int, int], int]) -> OpSpec:
    def result_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
        return UIntType(max(_w(t) for t in types))

    def evaluate(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
        width = max(_w(t) for t in types)
        # sign-extend operands to the common width before the raw bit op
        a = from_signed(value_of(args[0], types[0]), width)
        b = from_signed(value_of(args[1], types[1]), width)
        return fn(a, b) & mask(width)

    return OpSpec(name, 2, 0, result_type, evaluate)


def _div_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    if is_signed(types[0]):
        return SIntType(_w(types[0]) + 1)
    return UIntType(_w(types[0]))


def _div_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    a = value_of(args[0], types[0])
    b = value_of(args[1], types[1])
    return _encode(_tdiv(a, b), _div_type(types, consts))


def _rem_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    width = min(_w(types[0]), _w(types[1]))
    if is_signed(types[0]):
        return SIntType(max(width, 1))
    return UIntType(max(width, 1))


def _rem_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    a = value_of(args[0], types[0])
    b = value_of(args[1], types[1])
    return _encode(_trem(a, b), _rem_type(types, consts))


def _not_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    return UIntType(_w(types[0]))


def _not_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    width = _w(types[0])
    raw = from_signed(value_of(args[0], types[0]), width)
    return ~raw & mask(width)


def _neg_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    return SIntType(_w(types[0]) + 1)


def _neg_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    return _encode(-value_of(args[0], types[0]), _neg_type(types, consts))


def _as_uint_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    return UIntType(max(_w(types[0]), 1))


def _as_uint_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    return truncate(args[0], max(_w(types[0]), 1))


def _as_sint_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    return SIntType(max(_w(types[0]), 1))


def _as_sint_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    return truncate(args[0], max(_w(types[0]), 1))


def _cat_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    return UIntType(_w(types[0]) + _w(types[1]))


def _cat_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    lo_width = _w(types[1])
    hi = truncate(args[0], _w(types[0]))
    lo = truncate(args[1], lo_width)
    return (hi << lo_width) | lo


def _bits_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    hi, lo = consts
    if hi < lo or lo < 0 or hi >= _w(types[0]):
        raise ValueError(f"bits({hi},{lo}) out of range for width {_w(types[0])}")
    return UIntType(hi - lo + 1)


def _bits_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    hi, lo = consts
    return (args[0] >> lo) & mask(hi - lo + 1)


def _head_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    (n,) = consts
    if n < 0 or n > _w(types[0]):
        raise ValueError(f"head({n}) out of range for width {_w(types[0])}")
    return UIntType(n)


def _head_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    (n,) = consts
    width = _w(types[0])
    return (args[0] >> (width - n)) & mask(n)


def _tail_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    (n,) = consts
    if n < 0 or n >= _w(types[0]):
        raise ValueError(f"tail({n}) out of range for width {_w(types[0])}")
    return UIntType(_w(types[0]) - n)


def _tail_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    (n,) = consts
    return args[0] & mask(_w(types[0]) - n)


def _shl_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    (n,) = consts
    width = _w(types[0]) + n
    return SIntType(width) if is_signed(types[0]) else UIntType(width)


def _shl_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    (n,) = consts
    return (args[0] << n) & mask(_w(types[0]) + n)


def _shr_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    (n,) = consts
    width = max(_w(types[0]) - n, 1)
    return SIntType(width) if is_signed(types[0]) else UIntType(width)


def _shr_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    (n,) = consts
    return _encode(value_of(args[0], types[0]) >> n, _shr_type(types, consts))


def _dshl_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    width = _w(types[0]) + (1 << _w(types[1])) - 1
    return SIntType(width) if is_signed(types[0]) else UIntType(width)


def _dshl_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    shift = truncate(args[1], _w(types[1]))
    result_type = _dshl_type(types, consts)
    return _encode(value_of(args[0], types[0]) << shift, result_type)


def _dshr_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    return types[0]


def _dshr_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    shift = truncate(args[1], _w(types[1]))
    return _encode(value_of(args[0], types[0]) >> shift, types[0])


def _make_reduce(name: str, fn: Callable[[int, int], int]) -> OpSpec:
    def result_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
        return UIntType(1)

    def evaluate(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
        width = _w(types[0])
        raw = truncate(args[0], width)
        if name == "andr":
            return 1 if raw == mask(width) else 0
        if name == "orr":
            return 1 if raw != 0 else 0
        return bin(raw).count("1") & 1  # xorr

    return OpSpec(name, 1, 0, result_type, evaluate)


def _pad_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    (n,) = consts
    width = max(_w(types[0]), n)
    return SIntType(width) if is_signed(types[0]) else UIntType(width)


def _pad_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    return _encode(value_of(args[0], types[0]), _pad_type(types, consts))


OPS: dict[str, OpSpec] = {}


def _register(spec: OpSpec) -> None:
    OPS[spec.name] = spec


_register(_make_arith("add", lambda a, b: a + b, 1))
_register(_make_arith("sub", lambda a, b: a - b, 1))


def _mul_type(types: Sequence[Type], consts: Sequence[int]) -> Type:
    width = _w(types[0]) + _w(types[1])
    return SIntType(width) if is_signed(types[0]) else UIntType(width)


def _mul_eval(args: Sequence[int], types: Sequence[Type], consts: Sequence[int]) -> int:
    a = value_of(args[0], types[0])
    b = value_of(args[1], types[1])
    return _encode(a * b, _mul_type(types, consts))


_register(OpSpec("mul", 2, 0, _mul_type, _mul_eval))
_register(OpSpec("div", 2, 0, _div_type, _div_eval))
_register(OpSpec("rem", 2, 0, _rem_type, _rem_eval))
_register(_make_cmp("lt", lambda a, b: a < b))
_register(_make_cmp("leq", lambda a, b: a <= b))
_register(_make_cmp("gt", lambda a, b: a > b))
_register(_make_cmp("geq", lambda a, b: a >= b))
_register(_make_cmp("eq", lambda a, b: a == b))
_register(_make_cmp("neq", lambda a, b: a != b))
_register(_make_bitwise("and", lambda a, b: a & b))
_register(_make_bitwise("or", lambda a, b: a | b))
_register(_make_bitwise("xor", lambda a, b: a ^ b))
_register(OpSpec("not", 1, 0, _not_type, _not_eval))
_register(OpSpec("neg", 1, 0, _neg_type, _neg_eval))
_register(OpSpec("asUInt", 1, 0, _as_uint_type, _as_uint_eval))
_register(OpSpec("asSInt", 1, 0, _as_sint_type, _as_sint_eval))
_register(OpSpec("cat", 2, 0, _cat_type, _cat_eval))
_register(OpSpec("bits", 1, 2, _bits_type, _bits_eval))
_register(OpSpec("head", 1, 1, _head_type, _head_eval))
_register(OpSpec("tail", 1, 1, _tail_type, _tail_eval))
_register(OpSpec("shl", 1, 1, _shl_type, _shl_eval))
_register(OpSpec("shr", 1, 1, _shr_type, _shr_eval))
_register(OpSpec("dshl", 2, 0, _dshl_type, _dshl_eval))
_register(OpSpec("dshr", 2, 0, _dshr_type, _dshr_eval))
_register(_make_reduce("andr", lambda a, b: a & b))
_register(_make_reduce("orr", lambda a, b: a | b))
_register(_make_reduce("xorr", lambda a, b: a ^ b))
_register(OpSpec("pad", 1, 1, _pad_type, _pad_eval))


def result_type(op: str, types: Sequence[Type], consts: Sequence[int] = ()) -> Type:
    """Compute the result type of applying ``op`` to operands of ``types``."""
    spec = OPS.get(op)
    if spec is None:
        raise KeyError(f"unknown primop: {op}")
    if len(types) != spec.n_args:
        raise ValueError(f"{op} expects {spec.n_args} operands, got {len(types)}")
    if len(consts) != spec.n_consts:
        raise ValueError(f"{op} expects {spec.n_consts} constants, got {len(consts)}")
    return spec.result_type(types, consts)


def eval_op(op: str, args: Sequence[int], types: Sequence[Type], consts: Sequence[int] = ()) -> int:
    """Evaluate ``op`` over raw bit patterns, returning a raw result."""
    return OPS[op].evaluate(args, types, consts)
