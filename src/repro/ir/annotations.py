"""Circuit annotations.

Annotations carry frontend knowledge across compilation — the reproduction of
Chisel/FIRRTL's annotation system.  The FSM coverage pass keys on
:class:`EnumDefAnnotation` (emitted by ``repro.hcl.ChiselEnum`` state
registers) and the ready/valid coverage pass keys on
:class:`DecoupledAnnotation` (emitted by ``repro.hcl.Decoupled`` ports).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Annotation:
    """Base class: every annotation targets a module-local element."""

    module: str
    target: str


@dataclass(frozen=True)
class EnumDefAnnotation(Annotation):
    """Marks a register as holding values of a ChiselEnum.

    ``states`` maps state names to their encodings; the FSM coverage pass
    uses this to enumerate legal states and analyze transitions.
    """

    enum_name: str = ""
    states: tuple[tuple[str, int], ...] = field(default_factory=tuple)

    def state_names(self) -> dict[int, str]:
        return {value: name for name, value in self.states}


@dataclass(frozen=True)
class DecoupledAnnotation(Annotation):
    """Marks a module port bundle as a DecoupledIO interface.

    ``target`` is the bundle prefix; ``ready``/``valid`` name the flattened
    handshake signals.  ``is_sink`` is true when the module consumes data
    (ready is an output).
    """

    ready: str = ""
    valid: str = ""
    is_sink: bool = False


@dataclass(frozen=True)
class DontTouchAnnotation(Annotation):
    """Prevents optimization passes from removing or renaming the target."""


@dataclass(frozen=True)
class CoverageMetadataAnnotation(Annotation):
    """Attaches arbitrary coverage-pass metadata to a cover statement.

    ``target`` is the cover statement's name; ``kind`` identifies the pass
    that produced it (``line``, ``toggle``, ``fsm``, ``ready_valid``, ...);
    ``data`` is a free-form string payload (pass specific, JSON-encoded).
    """

    kind: str = ""
    data: str = ""


_ANNOTATION_TYPES = {}


def _register(cls):
    _ANNOTATION_TYPES[cls.__name__] = cls
    return cls


for _cls in (EnumDefAnnotation, DecoupledAnnotation, DontTouchAnnotation,
             CoverageMetadataAnnotation):
    _register(_cls)


def annotation_to_dict(anno: Annotation) -> dict:
    """JSON-compatible encoding (for the textual circuit form)."""
    data = {"type": type(anno).__name__, "module": anno.module, "target": anno.target}
    if isinstance(anno, EnumDefAnnotation):
        data["enum_name"] = anno.enum_name
        data["states"] = [[name, value] for name, value in anno.states]
    elif isinstance(anno, DecoupledAnnotation):
        data.update(ready=anno.ready, valid=anno.valid, is_sink=anno.is_sink)
    elif isinstance(anno, CoverageMetadataAnnotation):
        data.update(kind=anno.kind, data=anno.data)
    return data


def annotation_from_dict(data: dict) -> Annotation:
    """Inverse of :func:`annotation_to_dict`."""
    cls = _ANNOTATION_TYPES[data["type"]]
    if cls is EnumDefAnnotation:
        return EnumDefAnnotation(
            data["module"],
            data["target"],
            data.get("enum_name", ""),
            tuple((name, value) for name, value in data.get("states", [])),
        )
    if cls is DecoupledAnnotation:
        return DecoupledAnnotation(
            data["module"],
            data["target"],
            data.get("ready", ""),
            data.get("valid", ""),
            data.get("is_sink", False),
        )
    if cls is CoverageMetadataAnnotation:
        return CoverageMetadataAnnotation(
            data["module"], data["target"], data.get("kind", ""), data.get("data", "")
        )
    return DontTouchAnnotation(data["module"], data["target"])


def annotations_for(circuit_annotations: list, module: str, cls: type | None = None) -> list:
    """Filter a circuit's annotations by module and (optionally) class."""
    out = []
    for anno in circuit_annotations:
        if anno.module != module:
            continue
        if cls is not None and not isinstance(anno, cls):
            continue
        out.append(anno)
    return out
