"""Serialize IR circuits to a FIRRTL-like textual form.

The format is round-trippable through :mod:`repro.ir.parser` (guarded by
property tests).  Unlike FIRRTL we use braces instead of significant
indentation, which keeps the parser simple and the output diff-friendly.
"""

from __future__ import annotations

from io import StringIO

from .nodes import (
    Circuit,
    Connect,
    Cover,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    MemRead,
    MemWrite,
    Module,
    Mux,
    Port,
    PrimOp,
    Ref,
    SIntLiteral,
    SourceInfo,
    Stmt,
    Stop,
    UIntLiteral,
    When,
)

_INDENT = "  "


def print_expr(expr: Expr) -> str:
    """Render one expression."""
    if isinstance(expr, Ref):
        return expr.name
    if isinstance(expr, InstPort):
        return f"{expr.instance}.{expr.port}"
    if isinstance(expr, UIntLiteral):
        return f'UInt<{expr.width}>("h{expr.value:x}")'
    if isinstance(expr, SIntLiteral):
        return f"SInt<{expr.width}>({expr.value})"
    if isinstance(expr, PrimOp):
        operands = [print_expr(a) for a in expr.args] + [str(c) for c in expr.consts]
        return f"{expr.op}({', '.join(operands)})"
    if isinstance(expr, Mux):
        return f"mux({print_expr(expr.cond)}, {print_expr(expr.tval)}, {print_expr(expr.fval)})"
    if isinstance(expr, MemRead):
        return f"{expr.mem}[{print_expr(expr.addr)}]"
    raise TypeError(f"cannot print expression: {expr!r}")


def _info_suffix(info: SourceInfo) -> str:
    text = str(info)
    return f" {text}" if text else ""


def _print_stmt(stmt: Stmt, out: StringIO, depth: int) -> None:
    pad = _INDENT * depth
    if isinstance(stmt, DefNode):
        out.write(f"{pad}node {stmt.name} = {print_expr(stmt.value)}{_info_suffix(stmt.info)}\n")
    elif isinstance(stmt, DefWire):
        out.write(f"{pad}wire {stmt.name} : {stmt.type}{_info_suffix(stmt.info)}\n")
    elif isinstance(stmt, DefRegister):
        line = f"{pad}reg {stmt.name} : {stmt.type}, {print_expr(stmt.clock)}"
        if stmt.reset is not None and stmt.init is not None:
            line += f" reset => ({print_expr(stmt.reset)}, {print_expr(stmt.init)})"
        out.write(line + _info_suffix(stmt.info) + "\n")
    elif isinstance(stmt, DefMemory):
        out.write(f"{pad}mem {stmt.name} : {stmt.data_type}[{stmt.depth}]{_info_suffix(stmt.info)}\n")
    elif isinstance(stmt, DefInstance):
        out.write(f"{pad}inst {stmt.name} of {stmt.module}{_info_suffix(stmt.info)}\n")
    elif isinstance(stmt, Connect):
        out.write(f"{pad}{print_expr(stmt.loc)} <= {print_expr(stmt.expr)}{_info_suffix(stmt.info)}\n")
    elif isinstance(stmt, MemWrite):
        out.write(
            f"{pad}write {stmt.mem}[{print_expr(stmt.addr)}] <= {print_expr(stmt.data)}"
            f" when {print_expr(stmt.en)} on {print_expr(stmt.clock)}{_info_suffix(stmt.info)}\n"
        )
    elif isinstance(stmt, When):
        out.write(f"{pad}when {print_expr(stmt.pred)} {{{_info_suffix(stmt.info)}\n")
        for inner in stmt.conseq:
            _print_stmt(inner, out, depth + 1)
        if stmt.alt:
            out.write(f"{pad}}} else {{\n")
            for inner in stmt.alt:
                _print_stmt(inner, out, depth + 1)
        out.write(f"{pad}}}\n")
    elif isinstance(stmt, Cover):
        out.write(
            f"{pad}cover({print_expr(stmt.clock)}, {print_expr(stmt.pred)}, "
            f"{print_expr(stmt.en)}) : {stmt.name}{_info_suffix(stmt.info)}\n"
        )
    elif isinstance(stmt, Stop):
        out.write(
            f"{pad}stop({print_expr(stmt.clock)}, {print_expr(stmt.pred)}, "
            f"{print_expr(stmt.en)}, {stmt.exit_code}) : {stmt.name}{_info_suffix(stmt.info)}\n"
        )
    else:
        raise TypeError(f"cannot print statement: {stmt!r}")


def print_module(module: Module, out: StringIO, depth: int = 1) -> None:
    pad = _INDENT * depth
    out.write(f"{pad}module {module.name} {{\n")
    for port in module.ports:
        out.write(f"{pad}{_INDENT}{port.direction} {port.name} : {port.type}{_info_suffix(port.info)}\n")
    if module.ports and module.body:
        out.write("\n")
    for stmt in module.body:
        _print_stmt(stmt, out, depth + 1)
    out.write(f"{pad}}}\n")


def print_circuit(circuit: Circuit) -> str:
    """Render a whole circuit.

    Annotations serialize into a trailing comment line (the tokenizer skips
    comments, so older readers still parse the circuit; our parser restores
    them).
    """
    out = StringIO()
    out.write(f"circuit {circuit.main} {{\n")
    for i, module in enumerate(circuit.modules):
        if i:
            out.write("\n")
        print_module(module, out)
    out.write("}\n")
    if circuit.annotations:
        import json

        from .annotations import annotation_to_dict

        payload = json.dumps([annotation_to_dict(a) for a in circuit.annotations])
        out.write(f"; ANNOTATIONS: {payload}\n")
    return out.getvalue()
