"""Generic traversal and rewriting helpers over IR nodes.

Passes are written against these helpers so that adding a new statement or
expression kind only requires updating this module.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .nodes import (
    Connect,
    Cover,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    MemRead,
    MemWrite,
    Module,
    Mux,
    PrimOp,
    Ref,
    SIntLiteral,
    Stmt,
    Stop,
    UIntLiteral,
    When,
)

ExprFn = Callable[[Expr], Expr]


def map_expr_children(expr: Expr, fn: ExprFn) -> Expr:
    """Apply ``fn`` to the direct sub-expressions of ``expr``."""
    if isinstance(expr, PrimOp):
        new_args = tuple(fn(a) for a in expr.args)
        if new_args == expr.args:
            return expr
        return PrimOp(expr.op, new_args, expr.consts, expr.type)
    if isinstance(expr, Mux):
        cond, tval, fval = fn(expr.cond), fn(expr.tval), fn(expr.fval)
        if (cond, tval, fval) == (expr.cond, expr.tval, expr.fval):
            return expr
        return Mux(cond, tval, fval, expr.type)
    if isinstance(expr, MemRead):
        addr = fn(expr.addr)
        if addr is expr.addr:
            return expr
        return MemRead(expr.mem, addr, expr.type)
    return expr


def map_expr(expr: Expr, fn: ExprFn) -> Expr:
    """Bottom-up rewrite: apply ``fn`` to every node, children first."""
    return fn(map_expr_children(expr, lambda e: map_expr(e, fn)))


def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression (pre-order)."""
    yield expr
    if isinstance(expr, PrimOp):
        for a in expr.args:
            yield from walk_expr(a)
    elif isinstance(expr, Mux):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.tval)
        yield from walk_expr(expr.fval)
    elif isinstance(expr, MemRead):
        yield from walk_expr(expr.addr)


def stmt_exprs(stmt: Stmt) -> list[Expr]:
    """The expressions directly referenced by one statement."""
    if isinstance(stmt, DefNode):
        return [stmt.value]
    if isinstance(stmt, Connect):
        return [stmt.expr]
    if isinstance(stmt, DefRegister):
        out = [stmt.clock]
        if stmt.reset is not None:
            out.append(stmt.reset)
        if stmt.init is not None:
            out.append(stmt.init)
        return out
    if isinstance(stmt, MemWrite):
        return [stmt.addr, stmt.data, stmt.en, stmt.clock]
    if isinstance(stmt, When):
        return [stmt.pred]
    if isinstance(stmt, (Cover, Stop)):
        return [stmt.clock, stmt.pred, stmt.en]
    return []


def map_stmt_exprs(stmt: Stmt, fn: ExprFn) -> Stmt:
    """Return ``stmt`` with ``fn`` applied to each directly-held expression.

    ``When`` bodies are *not* descended into — callers handle block structure.
    """
    if isinstance(stmt, DefNode):
        return DefNode(stmt.name, fn(stmt.value), stmt.info)
    if isinstance(stmt, Connect):
        return Connect(stmt.loc, fn(stmt.expr), stmt.info)
    if isinstance(stmt, DefRegister):
        return DefRegister(
            stmt.name,
            stmt.type,
            fn(stmt.clock),
            None if stmt.reset is None else fn(stmt.reset),
            None if stmt.init is None else fn(stmt.init),
            stmt.info,
        )
    if isinstance(stmt, MemWrite):
        return MemWrite(stmt.mem, fn(stmt.addr), fn(stmt.data), fn(stmt.en), fn(stmt.clock), stmt.info)
    if isinstance(stmt, When):
        return When(fn(stmt.pred), stmt.conseq, stmt.alt, stmt.info)
    if isinstance(stmt, Cover):
        return Cover(stmt.name, fn(stmt.clock), fn(stmt.pred), fn(stmt.en), stmt.info)
    if isinstance(stmt, Stop):
        return Stop(stmt.name, fn(stmt.clock), fn(stmt.pred), fn(stmt.en), stmt.exit_code, stmt.info)
    return stmt


def walk_stmts(body: Iterable[Stmt]) -> Iterator[Stmt]:
    """Yield every statement in ``body``, descending into ``When`` blocks."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, When):
            yield from walk_stmts(stmt.conseq)
            yield from walk_stmts(stmt.alt)


def map_module_exprs(module: Module, fn: ExprFn) -> Module:
    """Rewrite every expression in ``module`` bottom-up with ``fn``."""

    def rewrite_block(body: list[Stmt]) -> list[Stmt]:
        out: list[Stmt] = []
        for stmt in body:
            new = map_stmt_exprs(stmt, lambda e: map_expr(e, fn))
            if isinstance(new, When):
                new = When(new.pred, rewrite_block(stmt.conseq), rewrite_block(stmt.alt), new.info)
            out.append(new)
        return out

    return Module(module.name, list(module.ports), rewrite_block(module.body), module.info)


def declared_names(module: Module) -> set[str]:
    """All names declared in a module (ports, wires, nodes, regs, mems, insts)."""
    names = {p.name for p in module.ports}
    for stmt in walk_stmts(module.body):
        if isinstance(stmt, (DefNode, DefWire, DefRegister, DefMemory, DefInstance)):
            names.add(stmt.name)
    return names


def references(expr: Expr) -> Iterator[str]:
    """Names of signals referenced by ``expr`` (including memory names)."""
    for e in walk_expr(expr):
        if isinstance(e, Ref):
            yield e.name
        elif isinstance(e, InstPort):
            yield e.instance
        elif isinstance(e, MemRead):
            yield e.mem


def is_literal(expr: Expr) -> bool:
    return isinstance(expr, (UIntLiteral, SIntLiteral))


def literal_value(expr: Expr) -> int:
    """The raw bit pattern of a literal expression."""
    if isinstance(expr, UIntLiteral):
        return expr.value
    if isinstance(expr, SIntLiteral):
        return expr.value & ((1 << expr.width) - 1)
    raise TypeError(f"not a literal: {expr!r}")
