"""IR node definitions: expressions, statements, modules and circuits.

The IR is a FIRRTL-like register-transfer representation:

* *High form* permits ``When`` blocks with last-connect semantics.
* *Low form* (after :class:`repro.passes.expand_whens.ExpandWhens`) contains
  exactly one connect per wire/register/output, no ``When`` blocks, and all
  ``Cover``/``Stop``/``MemWrite`` predicates carry their full path condition.

Expressions are immutable (frozen dataclasses) and therefore hashable, which
the optimization passes exploit for memoization and CSE.  Statements own
mutable lists, so passes rebuild statement lists rather than mutate nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from . import ops
from .types import BOOL, ClockType, ResetType, SIntType, Type, UIntType, bit_width, mask


@dataclass(frozen=True)
class SourceInfo:
    """Where in the frontend source a node came from (for line coverage)."""

    file: str = ""
    line: int = 0

    def __str__(self) -> str:
        if not self.file:
            return ""
        return f"@[{self.file}:{self.line}]"


NO_INFO = SourceInfo()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of all IR expressions."""

    __slots__ = ()

    @property
    def tpe(self) -> Type:
        raise NotImplementedError


@dataclass(frozen=True)
class Ref(Expr):
    """Reference to a named signal (port, wire, node or register)."""

    name: str
    type: Type

    @property
    def tpe(self) -> Type:
        return self.type

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class InstPort(Expr):
    """Reference to a port of a child module instance (``inst.port``)."""

    instance: str
    port: str
    type: Type

    @property
    def tpe(self) -> Type:
        return self.type

    def __str__(self) -> str:
        return f"{self.instance}.{self.port}"


@dataclass(frozen=True)
class UIntLiteral(Expr):
    """An unsigned literal with an explicit width."""

    value: int
    width: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("UIntLiteral value must be non-negative")
        if self.value > mask(self.width):
            raise ValueError(f"value {self.value} does not fit in {self.width} bits")

    @property
    def tpe(self) -> Type:
        return UIntType(self.width)

    def __str__(self) -> str:
        return f'UInt<{self.width}>("h{self.value:x}")'


@dataclass(frozen=True)
class SIntLiteral(Expr):
    """A signed literal with an explicit width."""

    value: int
    width: int

    def __post_init__(self) -> None:
        lo, hi = -(1 << (self.width - 1)), (1 << (self.width - 1)) - 1
        if not lo <= self.value <= hi:
            raise ValueError(f"value {self.value} does not fit in SInt<{self.width}>")

    @property
    def tpe(self) -> Type:
        return SIntType(self.width)

    def __str__(self) -> str:
        return f"SInt<{self.width}>({self.value})"


@dataclass(frozen=True)
class PrimOp(Expr):
    """Application of a primitive operation (see :mod:`repro.ir.ops`)."""

    op: str
    args: tuple[Expr, ...]
    consts: tuple[int, ...] = ()
    type: Type = field(default=BOOL)

    @staticmethod
    def make(op: str, args: Iterable[Expr], consts: Iterable[int] = ()) -> "PrimOp":
        """Build a primop, computing its result type from the op table."""
        args_t = tuple(args)
        consts_t = tuple(consts)
        tpe = ops.result_type(op, [a.tpe for a in args_t], consts_t)
        return PrimOp(op, args_t, consts_t, tpe)

    @property
    def tpe(self) -> Type:
        return self.type

    def __str__(self) -> str:
        operands = ", ".join([str(a) for a in self.args] + [str(c) for c in self.consts])
        return f"{self.op}({operands})"


@dataclass(frozen=True)
class Mux(Expr):
    """2:1 multiplexer: ``cond ? tval : fval``.

    Operand widths may differ; the result takes the wider type and narrower
    operands are implicitly sign/zero extended.
    """

    cond: Expr
    tval: Expr
    fval: Expr
    type: Type = field(default=BOOL)

    @staticmethod
    def make(cond: Expr, tval: Expr, fval: Expr) -> "Mux":
        t, f = tval.tpe, fval.tpe
        signed = isinstance(t, SIntType)
        if signed != isinstance(f, SIntType):
            raise TypeError(f"mux arms disagree on signedness: {t} vs {f}")
        width = max(bit_width(t), bit_width(f))
        tpe: Type = SIntType(width) if signed else UIntType(width)
        return Mux(cond, tval, fval, tpe)

    @property
    def tpe(self) -> Type:
        return self.type

    def __str__(self) -> str:
        return f"mux({self.cond}, {self.tval}, {self.fval})"


@dataclass(frozen=True)
class MemRead(Expr):
    """Combinational read of a memory at ``addr``."""

    mem: str
    addr: Expr
    type: Type = field(default=BOOL)

    @property
    def tpe(self) -> Type:
        return self.type

    def __str__(self) -> str:
        return f"{self.mem}[{self.addr}]"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of all IR statements."""

    __slots__ = ()


@dataclass
class DefNode(Stmt):
    """An immutable named intermediate value (single static assignment)."""

    name: str
    value: Expr
    info: SourceInfo = NO_INFO


@dataclass
class DefWire(Stmt):
    """A wire: connected via ``Connect`` with last-connect semantics."""

    name: str
    type: Type
    info: SourceInfo = NO_INFO


@dataclass
class DefRegister(Stmt):
    """A register updated on the rising edge of ``clock``.

    When ``reset`` is given, the register synchronously loads ``init`` while
    reset is asserted.  The next value is established through ``Connect``
    statements (last-connect semantics under ``When`` scoping).
    """

    name: str
    type: Type
    clock: Expr
    reset: Optional[Expr] = None
    init: Optional[Expr] = None
    info: SourceInfo = NO_INFO


@dataclass
class DefMemory(Stmt):
    """A word-addressed memory with combinational reads, synchronous writes."""

    name: str
    data_type: Type
    depth: int
    info: SourceInfo = NO_INFO

    @property
    def addr_width(self) -> int:
        return max((self.depth - 1).bit_length(), 1)


@dataclass
class DefInstance(Stmt):
    """Instantiation of a child module."""

    name: str
    module: str
    info: SourceInfo = NO_INFO


@dataclass
class Connect(Stmt):
    """Drive ``loc`` (a ``Ref`` or input-``InstPort``) with ``expr``."""

    loc: Union[Ref, InstPort]
    expr: Expr
    info: SourceInfo = NO_INFO


@dataclass
class MemWrite(Stmt):
    """Synchronous memory write, gated by ``en`` (ANDed with path conditions)."""

    mem: str
    addr: Expr
    data: Expr
    en: Expr
    clock: Expr
    info: SourceInfo = NO_INFO


@dataclass
class When(Stmt):
    """Conditional scope with last-connect semantics (high form only)."""

    pred: Expr
    conseq: list[Stmt] = field(default_factory=list)
    alt: list[Stmt] = field(default_factory=list)
    info: SourceInfo = NO_INFO


@dataclass
class Cover(Stmt):
    """The simulator-independent cover primitive.

    Every backend implements exactly this: on each rising edge of ``clock``
    where ``en & pred`` is true, increment a saturating counter.  ``name``
    uniquely identifies the statement within its module; simulators report
    counts keyed by the instance path joined with this name.
    """

    name: str
    clock: Expr
    pred: Expr
    en: Expr
    info: SourceInfo = NO_INFO


@dataclass
class Stop(Stmt):
    """Halt simulation with ``exit_code`` when ``en & pred`` at a clock edge."""

    name: str
    clock: Expr
    pred: Expr
    en: Expr
    exit_code: int = 0
    info: SourceInfo = NO_INFO


# ---------------------------------------------------------------------------
# Modules and circuits
# ---------------------------------------------------------------------------

INPUT = "input"
OUTPUT = "output"


@dataclass
class Port:
    """A module port with a direction (``input`` or ``output``)."""

    name: str
    direction: str
    type: Type
    info: SourceInfo = NO_INFO

    def __post_init__(self) -> None:
        if self.direction not in (INPUT, OUTPUT):
            raise ValueError(f"bad port direction: {self.direction}")

    def ref(self) -> Ref:
        return Ref(self.name, self.type)


@dataclass
class Module:
    """A module: ports plus a statement body."""

    name: str
    ports: list[Port] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
    info: SourceInfo = NO_INFO

    def port(self, name: str) -> Port:
        for p in self.ports:
            if p.name == name:
                return p
        raise KeyError(f"module {self.name} has no port {name}")

    @property
    def inputs(self) -> list[Port]:
        return [p for p in self.ports if p.direction == INPUT]

    @property
    def outputs(self) -> list[Port]:
        return [p for p in self.ports if p.direction == OUTPUT]


@dataclass
class Circuit:
    """A circuit: a set of modules with a designated top, plus annotations."""

    main: str
    modules: list[Module] = field(default_factory=list)
    annotations: list = field(default_factory=list)

    def module(self, name: str) -> Module:
        for m in self.modules:
            if m.name == name:
                return m
        raise KeyError(f"circuit has no module {name}")

    @property
    def top(self) -> Module:
        return self.module(self.main)

    def module_names(self) -> list[str]:
        return [m.name for m in self.modules]


# Convenience constructors ---------------------------------------------------


def u(value: int, width: int) -> UIntLiteral:
    """Shorthand for an unsigned literal."""
    return UIntLiteral(value, width)


def s(value: int, width: int) -> SIntLiteral:
    """Shorthand for a signed literal."""
    return SIntLiteral(value, width)


TRUE = UIntLiteral(1, 1)
FALSE = UIntLiteral(0, 1)


def prim(op: str, *args: Expr, consts: Iterable[int] = ()) -> PrimOp:
    """Shorthand for :meth:`PrimOp.make`."""
    return PrimOp.make(op, args, consts)


def and_(*preds: Expr) -> Expr:
    """Conjunction of 1-bit predicates, folding constants."""
    acc: Optional[Expr] = None
    for p in preds:
        if isinstance(p, UIntLiteral) and p.value == 1 and p.width == 1:
            continue
        if isinstance(p, UIntLiteral) and p.value == 0:
            return FALSE
        acc = p if acc is None else prim("and", acc, p)
    return acc if acc is not None else TRUE


def not_(pred: Expr) -> Expr:
    """Negation of a 1-bit predicate, folding constants."""
    if isinstance(pred, UIntLiteral) and pred.width == 1:
        return FALSE if pred.value == 1 else TRUE
    return prim("not", pred)


def is_clock(tpe: Type) -> bool:
    return isinstance(tpe, ClockType)


def is_reset(tpe: Type) -> bool:
    return isinstance(tpe, (ResetType, UIntType))
