"""Parser for the textual IR form produced by :mod:`repro.ir.printer`.

Parsing proceeds in two passes over one token stream: the first collects
every module's port signature (so instance-port references can be typed even
when the child module is defined later in the file), the second builds the
full IR.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from .nodes import (
    Circuit,
    Connect,
    Cover,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    MemRead,
    MemWrite,
    Module,
    Mux,
    NO_INFO,
    Port,
    PrimOp,
    Ref,
    SIntLiteral,
    SourceInfo,
    Stmt,
    Stop,
    UIntLiteral,
    When,
)
from .types import CLOCK, RESET, SIntType, Type, UIntType


class ParseError(Exception):
    """Raised on malformed IR text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<info>@\[[^\]]*\])
  | (?P<str>"[^"]*")
  | (?P<num>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<sym><=|=>|[{}()\[\],:<>.=])
  | (?P<ws>\s+)
  | (?P<comment>;[^\n]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # info | str | num | ident | sym
    text: str
    pos: int


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = m.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, m.group(), pos))
        pos = m.end()
    return tokens


class _Stream:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.i = 0

    def peek(self, offset: int = 0) -> Optional[Token]:
        j = self.i + offset
        return self.tokens[j] if j < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self.i += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise ParseError(f"expected {text!r}, got {tok.text!r} at offset {tok.pos}")
        return tok

    def expect_kind(self, kind: str) -> Token:
        tok = self.next()
        if tok.kind != kind:
            raise ParseError(f"expected {kind}, got {tok.text!r} at offset {tok.pos}")
        return tok

    def at(self, text: str, offset: int = 0) -> bool:
        tok = self.peek(offset)
        return tok is not None and tok.text == text


def _parse_info(ts: _Stream) -> SourceInfo:
    tok = ts.peek()
    if tok is None or tok.kind != "info":
        return NO_INFO
    ts.next()
    inner = tok.text[2:-1]
    if ":" in inner:
        file, _, line = inner.rpartition(":")
        try:
            return SourceInfo(file, int(line))
        except ValueError:
            return SourceInfo(inner, 0)
    return SourceInfo(inner, 0)


def _parse_type(ts: _Stream) -> Type:
    tok = ts.expect_kind("ident")
    if tok.text == "Clock":
        return CLOCK
    if tok.text == "Reset":
        return RESET
    if tok.text in ("UInt", "SInt"):
        ts.expect("<")
        width = int(ts.expect_kind("num").text)
        ts.expect(">")
        return UIntType(width) if tok.text == "UInt" else SIntType(width)
    raise ParseError(f"unknown type {tok.text!r} at offset {tok.pos}")


class _ModuleParser:
    """Parses one module body given the circuit-wide port signatures."""

    def __init__(self, ts: _Stream, module_ports: dict[str, dict[str, tuple[str, Type]]]) -> None:
        self.ts = ts
        self.module_ports = module_ports
        self.types: dict[str, Type] = {}
        self.mems: dict[str, Type] = {}
        self.instances: dict[str, str] = {}

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> Expr:
        ts = self.ts
        tok = ts.peek()
        if tok is None:
            raise ParseError("unexpected end of input in expression")
        if tok.kind == "ident" and tok.text in ("UInt", "SInt") and ts.at("<", 1):
            return self._parse_literal()
        if tok.kind == "ident" and ts.at("(", 1):
            return self._parse_apply()
        if tok.kind == "ident":
            return self._parse_ref()
        raise ParseError(f"cannot parse expression at {tok.text!r} (offset {tok.pos})")

    def _parse_literal(self) -> Expr:
        ts = self.ts
        kind = ts.next().text
        ts.expect("<")
        width = int(ts.expect_kind("num").text)
        ts.expect(">")
        ts.expect("(")
        tok = ts.next()
        if tok.kind == "str":
            body = tok.text.strip('"')
            value = int(body[1:], 16) if body.startswith("h") else int(body)
        elif tok.kind == "num":
            value = int(tok.text)
        else:
            raise ParseError(f"bad literal value {tok.text!r}")
        ts.expect(")")
        if kind == "UInt":
            return UIntLiteral(value, width)
        return SIntLiteral(value, width)

    def _parse_apply(self) -> Expr:
        ts = self.ts
        name = ts.next().text
        ts.expect("(")
        operands: list[Expr] = []
        consts: list[int] = []
        while not ts.at(")"):
            tok = ts.peek()
            assert tok is not None
            if tok.kind == "num":
                consts.append(int(ts.next().text))
            else:
                operands.append(self.parse_expr())
            if ts.at(","):
                ts.next()
        ts.expect(")")
        if name == "mux":
            if len(operands) != 3:
                raise ParseError("mux expects three operands")
            return Mux.make(operands[0], operands[1], operands[2])
        return PrimOp.make(name, operands, consts)

    def _parse_ref(self) -> Expr:
        ts = self.ts
        name = ts.next().text
        if ts.at("."):
            ts.next()
            port = ts.expect_kind("ident").text
            module = self.instances.get(name)
            if module is None:
                raise ParseError(f"reference to undeclared instance {name!r}")
            ports = self.module_ports.get(module, {})
            if port not in ports:
                raise ParseError(f"module {module!r} has no port {port!r}")
            return InstPort(name, port, ports[port][1])
        if ts.at("["):
            ts.next()
            addr = self.parse_expr()
            ts.expect("]")
            if name not in self.mems:
                raise ParseError(f"read of undeclared memory {name!r}")
            return MemRead(name, addr, self.mems[name])
        if name not in self.types:
            raise ParseError(f"reference to undeclared signal {name!r}")
        return Ref(name, self.types[name])

    # -- statements ---------------------------------------------------------

    def parse_block(self) -> list[Stmt]:
        ts = self.ts
        ts.expect("{")
        body: list[Stmt] = []
        while not ts.at("}"):
            body.append(self.parse_stmt())
        ts.expect("}")
        return body

    def parse_stmt(self) -> Stmt:
        ts = self.ts
        tok = ts.peek()
        assert tok is not None
        keyword = tok.text if tok.kind == "ident" else ""

        def ident_at(offset: int) -> bool:
            t = ts.peek(offset)
            return t is not None and t.kind == "ident"

        if keyword == "node" and ident_at(1) and ts.at("=", 2):
            return self._parse_node()
        if keyword == "wire" and ident_at(1) and ts.at(":", 2):
            return self._parse_wire()
        if keyword == "reg" and ident_at(1) and ts.at(":", 2):
            return self._parse_reg()
        if keyword == "mem" and ident_at(1) and ts.at(":", 2):
            return self._parse_mem()
        if keyword == "inst" and ident_at(1) and ts.at("of", 2):
            return self._parse_inst()
        if keyword == "when" and not (ts.at("<=", 1) or ts.at(".", 1) or ts.at("[", 1)):
            return self._parse_when()
        if keyword == "cover" and ts.at("(", 1):
            return self._parse_cover()
        if keyword == "stop" and ts.at("(", 1):
            return self._parse_stop()
        if keyword == "write" and ident_at(1) and ts.at("[", 2):
            return self._parse_write()
        return self._parse_connect()

    def _declare(self, name: str, tpe: Type) -> None:
        self.types[name] = tpe

    def _parse_node(self) -> Stmt:
        ts = self.ts
        ts.expect("node")
        name = ts.expect_kind("ident").text
        ts.expect("=")
        value = self.parse_expr()
        info = _parse_info(ts)
        self._declare(name, value.tpe)
        return DefNode(name, value, info)

    def _parse_wire(self) -> Stmt:
        ts = self.ts
        ts.expect("wire")
        name = ts.expect_kind("ident").text
        ts.expect(":")
        tpe = _parse_type(ts)
        info = _parse_info(ts)
        self._declare(name, tpe)
        return DefWire(name, tpe, info)

    def _parse_reg(self) -> Stmt:
        ts = self.ts
        ts.expect("reg")
        name = ts.expect_kind("ident").text
        ts.expect(":")
        tpe = _parse_type(ts)
        ts.expect(",")
        self._declare(name, tpe)
        clock = self.parse_expr()
        reset = init = None
        if ts.at("reset") and ts.at("=>", 1):
            ts.next()
            ts.expect("=>")
            ts.expect("(")
            reset = self.parse_expr()
            ts.expect(",")
            init = self.parse_expr()
            ts.expect(")")
        info = _parse_info(ts)
        return DefRegister(name, tpe, clock, reset, init, info)

    def _parse_mem(self) -> Stmt:
        ts = self.ts
        ts.expect("mem")
        name = ts.expect_kind("ident").text
        ts.expect(":")
        tpe = _parse_type(ts)
        ts.expect("[")
        depth = int(ts.expect_kind("num").text)
        ts.expect("]")
        info = _parse_info(ts)
        self.mems[name] = tpe
        return DefMemory(name, tpe, depth, info)

    def _parse_inst(self) -> Stmt:
        ts = self.ts
        ts.expect("inst")
        name = ts.expect_kind("ident").text
        ts.expect("of")
        module = ts.expect_kind("ident").text
        info = _parse_info(ts)
        self.instances[name] = module
        return DefInstance(name, module, info)

    def _parse_when(self) -> Stmt:
        ts = self.ts
        ts.expect("when")
        pred = self.parse_expr()
        # info comes right after the opening brace in the printed form
        ts.expect("{")
        info = _parse_info(ts)
        conseq: list[Stmt] = []
        while not ts.at("}"):
            conseq.append(self.parse_stmt())
        ts.expect("}")
        alt: list[Stmt] = []
        if ts.at("else"):
            ts.next()
            alt = self.parse_block()
        return When(pred, conseq, alt, info)

    def _parse_cover(self) -> Stmt:
        ts = self.ts
        ts.expect("cover")
        ts.expect("(")
        clock = self.parse_expr()
        ts.expect(",")
        pred = self.parse_expr()
        ts.expect(",")
        en = self.parse_expr()
        ts.expect(")")
        ts.expect(":")
        name = ts.expect_kind("ident").text
        info = _parse_info(ts)
        return Cover(name, clock, pred, en, info)

    def _parse_stop(self) -> Stmt:
        ts = self.ts
        ts.expect("stop")
        ts.expect("(")
        clock = self.parse_expr()
        ts.expect(",")
        pred = self.parse_expr()
        ts.expect(",")
        en = self.parse_expr()
        ts.expect(",")
        exit_code = int(ts.expect_kind("num").text)
        ts.expect(")")
        ts.expect(":")
        name = ts.expect_kind("ident").text
        info = _parse_info(ts)
        return Stop(name, clock, pred, en, exit_code, info)

    def _parse_write(self) -> Stmt:
        ts = self.ts
        ts.expect("write")
        mem = ts.expect_kind("ident").text
        ts.expect("[")
        addr = self.parse_expr()
        ts.expect("]")
        ts.expect("<=")
        data = self.parse_expr()
        ts.expect("when")
        en = self.parse_expr()
        ts.expect("on")
        clock = self.parse_expr()
        info = _parse_info(ts)
        return MemWrite(mem, addr, data, en, clock, info)

    def _parse_connect(self) -> Stmt:
        ts = self.ts
        loc = self.parse_expr()
        if not isinstance(loc, (Ref, InstPort)):
            raise ParseError(f"bad connect target: {loc}")
        ts.expect("<=")
        expr = self.parse_expr()
        info = _parse_info(ts)
        return Connect(loc, expr, info)


def _scan_module_ports(tokens: list[Token]) -> dict[str, dict[str, tuple[str, Type]]]:
    """First pass: collect every module's port name → (direction, type)."""
    signatures: dict[str, dict[str, tuple[str, Type]]] = {}
    ts = _Stream(tokens)
    while ts.peek() is not None:
        tok = ts.next()
        if tok.text != "module":
            continue
        name_tok = ts.peek()
        if name_tok is None or name_tok.kind != "ident" or not ts.at("{", 1):
            continue
        name = ts.next().text
        ts.expect("{")
        ports: dict[str, tuple[str, Type]] = {}
        while True:
            tok = ts.peek()
            if tok is None or tok.text not in ("input", "output"):
                break
            direction = ts.next().text
            port_name = ts.expect_kind("ident").text
            ts.expect(":")
            tpe = _parse_type(ts)
            _parse_info(ts)
            ports[port_name] = (direction, tpe)
        signatures[name] = ports
    return signatures


def parse_circuit(text: str) -> Circuit:
    """Parse the textual IR form back into a :class:`Circuit`."""
    annotations = []
    for line in text.splitlines():
        if line.startswith("; ANNOTATIONS: "):
            import json

            from .annotations import annotation_from_dict

            annotations = [
                annotation_from_dict(d)
                for d in json.loads(line[len("; ANNOTATIONS: "):])
            ]
    tokens = tokenize(text)
    module_ports = _scan_module_ports(tokens)
    ts = _Stream(tokens)
    ts.expect("circuit")
    main = ts.expect_kind("ident").text
    ts.expect("{")
    modules: list[Module] = []
    while not ts.at("}"):
        ts.expect("module")
        name = ts.expect_kind("ident").text
        ts.expect("{")
        parser = _ModuleParser(ts, module_ports)
        ports: list[Port] = []
        while ts.at("input") or ts.at("output"):
            direction = ts.next().text
            port_name = ts.expect_kind("ident").text
            ts.expect(":")
            tpe = _parse_type(ts)
            info = _parse_info(ts)
            ports.append(Port(port_name, direction, tpe, info))
            parser._declare(port_name, tpe)
        body: list[Stmt] = []
        while not ts.at("}"):
            body.append(parser.parse_stmt())
        ts.expect("}")
        modules.append(Module(name, ports, body))
    ts.expect("}")
    return Circuit(main, modules, annotations)
