"""Ground types for the RTL intermediate representation.

The IR deliberately mirrors *lowered* FIRRTL: only ground types exist at this
level.  Aggregates (bundles, vectors) are a frontend concept — the HCL in
:mod:`repro.hcl` flattens them to underscore-separated ground signals, exactly
like the FIRRTL ``LowerTypes`` pass does.
"""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class for all IR types."""

    __slots__ = ()


@dataclass(frozen=True)
class UIntType(Type):
    """An unsigned integer of a fixed, known width (in bits)."""

    width: int

    def __post_init__(self) -> None:
        if self.width < 0:
            raise ValueError(f"UInt width must be non-negative, got {self.width}")

    def __str__(self) -> str:
        return f"UInt<{self.width}>"


@dataclass(frozen=True)
class SIntType(Type):
    """A signed (two's complement) integer of a fixed, known width."""

    width: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"SInt width must be positive, got {self.width}")

    def __str__(self) -> str:
        return f"SInt<{self.width}>"


@dataclass(frozen=True)
class ClockType(Type):
    """A clock signal.  Only usable as the clock operand of sequential nodes."""

    def __str__(self) -> str:
        return "Clock"


@dataclass(frozen=True)
class ResetType(Type):
    """A synchronous reset.  Behaves like a 1-bit unsigned value."""

    def __str__(self) -> str:
        return "Reset"


#: Canonical one-bit unsigned type, used for predicates.
BOOL = UIntType(1)
CLOCK = ClockType()
RESET = ResetType()


def bit_width(tpe: Type) -> int:
    """Return the number of bits a value of ``tpe`` occupies."""
    if isinstance(tpe, (UIntType, SIntType)):
        return tpe.width
    if isinstance(tpe, (ClockType, ResetType)):
        return 1
    raise TypeError(f"unknown type: {tpe!r}")


def is_signed(tpe: Type) -> bool:
    """True when values of ``tpe`` are interpreted as two's complement."""
    return isinstance(tpe, SIntType)


def is_one_bit(tpe: Type) -> bool:
    """True when ``tpe`` may be used where a predicate is expected."""
    return bit_width(tpe) == 1 and not is_signed(tpe)


def mask(width: int) -> int:
    """All-ones bit mask of ``width`` bits."""
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to its low ``width`` bits (raw bit pattern)."""
    return value & mask(width)


def to_signed(raw: int, width: int) -> int:
    """Interpret a raw ``width``-bit pattern as a two's complement integer."""
    if width == 0:
        return 0
    raw &= mask(width)
    if raw & (1 << (width - 1)):
        return raw - (1 << width)
    return raw


def from_signed(value: int, width: int) -> int:
    """Encode a (possibly negative) integer as a raw ``width``-bit pattern."""
    return value & mask(width)


def value_of(raw: int, tpe: Type) -> int:
    """Interpret raw bits according to ``tpe`` (sign-extend SInt)."""
    if is_signed(tpe):
        return to_signed(raw, bit_width(tpe))
    return truncate(raw, bit_width(tpe))


def same_type_class(a: Type, b: Type) -> bool:
    """True when ``a`` and ``b`` share signedness/kind (widths may differ)."""
    if isinstance(a, UIntType) and isinstance(b, UIntType):
        return True
    if isinstance(a, SIntType) and isinstance(b, SIntType):
        return True
    if isinstance(a, (ClockType,)) and isinstance(b, (ClockType,)):
        return True
    if isinstance(a, (ResetType, UIntType)) and isinstance(b, (ResetType, UIntType)):
        return True
    return False
