"""Unique-name allocation within a module scope."""

from __future__ import annotations

import re
from typing import Iterable

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def sanitize(name: str) -> str:
    """Turn an arbitrary string into a legal identifier."""
    cleaned = re.sub(r"[^A-Za-z0-9_$]", "_", name) or "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


class Namespace:
    """Allocates names guaranteed not to collide with existing ones."""

    def __init__(self, existing: Iterable[str] = ()) -> None:
        self._taken: set[str] = set(existing)

    def contains(self, name: str) -> bool:
        return name in self._taken

    def reserve(self, name: str) -> str:
        """Claim ``name`` exactly; error if already taken."""
        if name in self._taken:
            raise ValueError(f"name already taken: {name}")
        self._taken.add(name)
        return name

    def fresh(self, hint: str) -> str:
        """Return a new unique name derived from ``hint``."""
        base = sanitize(hint)
        if base not in self._taken:
            self._taken.add(base)
            return base
        i = 0
        while f"{base}_{i}" in self._taken:
            i += 1
        name = f"{base}_{i}"
        self._taken.add(name)
        return name


def is_identifier(name: str) -> bool:
    """True when ``name`` is a legal IR identifier."""
    return bool(_IDENT.match(name))
