"""A small standard library of reusable hardware components.

The Chisel-stdlib-flavoured building blocks the benchmark designs share:
queues, arbiters, counters, shift registers, edge detectors, an LFSR.
Everything uses Decoupled handshakes where data flows, so the ready/valid
coverage pass has realistic material to key on.
"""

from __future__ import annotations

from ..hcl import Module, ModuleBuilder, cat, mux, reduce_or


class Queue(Module):
    """A FIFO with Decoupled enqueue/dequeue (Chisel's ``Queue``)."""

    def __init__(self, width: int = 8, depth: int = 4) -> None:
        super().__init__()
        if depth < 2 or depth & (depth - 1):
            raise ValueError("queue depth must be a power of two >= 2")
        self.width = width
        self.depth = depth

    def signature(self):
        return ("Queue", self.width, self.depth)

    def build(self, m: ModuleBuilder) -> None:
        enq = m.decoupled_input("enq", self.width)
        deq = m.decoupled_output("deq", self.width)
        count_out = m.output("count", self.depth.bit_length())

        ptr_width = (self.depth - 1).bit_length()
        ram = m.mem("ram", self.width, self.depth)
        enq_ptr = m.reg("enq_ptr", ptr_width, init=0)
        deq_ptr = m.reg("deq_ptr", ptr_width, init=0)
        maybe_full = m.reg("maybe_full", 1, init=0)

        ptr_match = enq_ptr == deq_ptr
        empty = ptr_match & (maybe_full == 0)
        full = ptr_match & (maybe_full == 1)

        enq.ready <<= ~full
        deq.valid <<= ~empty
        deq.bits <<= ram[deq_ptr]

        do_enq = enq.fire
        do_deq = deq.fire
        with m.when(do_enq):
            ram[enq_ptr] = enq.bits
            enq_ptr <<= enq_ptr + 1
        with m.when(do_deq):
            deq_ptr <<= deq_ptr + 1
        with m.when(do_enq != do_deq):
            maybe_full <<= do_enq

        level = (enq_ptr - deq_ptr) & ((1 << ptr_width) - 1)
        count_out <<= mux(full, self.depth, level.zext(self.depth.bit_length()))


class Arbiter(Module):
    """Priority arbiter over N Decoupled inputs (lowest index wins)."""

    def __init__(self, n: int = 2, width: int = 8) -> None:
        super().__init__()
        if n < 1:
            raise ValueError("arbiter needs at least one input")
        self.n = n
        self.width = width

    def signature(self):
        return ("Arbiter", self.n, self.width)

    def build(self, m: ModuleBuilder) -> None:
        inputs = [m.decoupled_input(f"in{i}", self.width) for i in range(self.n)]
        out = m.decoupled_output("out", self.width)
        chosen_out = m.output("chosen", max(self.n.bit_length(), 1))

        out.valid <<= reduce_or([inp.valid for inp in inputs])
        bits = inputs[-1].bits
        chosen = m.lit(self.n - 1, max(self.n.bit_length(), 1))
        for i in reversed(range(self.n - 1)):
            bits = mux(inputs[i].valid, inputs[i].bits, bits)
            chosen = mux(inputs[i].valid, m.lit(i, max(self.n.bit_length(), 1)), chosen)
        out.bits <<= bits
        chosen_out <<= chosen

        higher_valid = m.lit(0, 1)
        for i, inp in enumerate(inputs):
            inp.ready <<= out.ready & ~higher_valid
            higher_valid = higher_valid | inp.valid


class RoundRobinArbiter(Module):
    """Round-robin arbiter: the last granted input gets lowest priority."""

    def __init__(self, n: int = 2, width: int = 8) -> None:
        super().__init__()
        self.n = n
        self.width = width

    def signature(self):
        return ("RoundRobinArbiter", self.n, self.width)

    def build(self, m: ModuleBuilder) -> None:
        n = self.n
        sel_width = max((n - 1).bit_length(), 1)
        inputs = [m.decoupled_input(f"in{i}", self.width) for i in range(n)]
        out = m.decoupled_output("out", self.width)
        last = m.reg("last_grant", sel_width, init=0)

        # rotated priority, via two sweeps: first the inputs strictly after
        # the previous grant, then wrap around to the rest
        grant = m.wire("grant", sel_width)
        grant_value = last
        found = m.lit(0, 1)
        for sweep in (1, 2):
            for i in range(n):
                is_after = (m.lit(i, sel_width) > last) if sweep == 1 else (m.lit(i, sel_width) <= last)
                take = inputs[i].valid & is_after & ~found
                grant_value = mux(take, m.lit(i, sel_width), grant_value)
                found = found | take
        grant <<= grant_value

        out.valid <<= reduce_or([inp.valid for inp in inputs])
        bits = inputs[0].bits
        for i in range(1, n):
            bits = mux(grant == i, inputs[i].bits, bits)
        out.bits <<= bits
        for i, inp in enumerate(inputs):
            inp.ready <<= out.ready & (grant == i) & inp.valid
        with m.when(out.fire):
            last <<= grant


class Counter(Module):
    """Free-running counter with enable and wrap output."""

    def __init__(self, width: int = 8, limit: int | None = None) -> None:
        super().__init__()
        self.width = width
        self.limit = limit if limit is not None else (1 << width) - 1

    def signature(self):
        return ("Counter", self.width, self.limit)

    def build(self, m: ModuleBuilder) -> None:
        en = m.input("en")
        value = m.output("value", self.width)
        wrap = m.output("wrap", 1)
        count = m.reg("count", self.width, init=0)
        at_limit = count == self.limit
        wrap <<= en & at_limit
        with m.when(en):
            with m.when(at_limit):
                count <<= 0
            with m.otherwise():
                count <<= count + 1
        value <<= count


class ShiftRegister(Module):
    """N-stage shift register with enable."""

    def __init__(self, width: int = 1, stages: int = 4) -> None:
        super().__init__()
        self.width = width
        self.stages = stages

    def signature(self):
        return ("ShiftRegister", self.width, self.stages)

    def build(self, m: ModuleBuilder) -> None:
        din = m.input("din", self.width)
        en = m.input("en")
        dout = m.output("dout", self.width)
        taps = m.output("taps", self.width * self.stages)
        regs = [m.reg(f"stage{i}", self.width, init=0) for i in range(self.stages)]
        with m.when(en):
            previous = din
            for reg in regs:
                reg <<= previous
                previous = reg
        dout <<= regs[-1]
        taps <<= cat(*reversed(regs))


class EdgeDetector(Module):
    """Rising/falling edge pulses for a 1-bit input."""

    def build(self, m: ModuleBuilder) -> None:
        signal = m.input("signal")
        rise = m.output("rise", 1)
        fall = m.output("fall", 1)
        last = m.reg("last", 1, init=0)
        last <<= signal
        rise <<= signal & ~last
        fall <<= ~signal & last


class Lfsr(Module):
    """Galois LFSR (maximal for the default taps at 16 bits)."""

    def __init__(self, width: int = 16, taps: int = 0xB400) -> None:
        super().__init__()
        self.width = width
        self.taps = taps

    def signature(self):
        return ("Lfsr", self.width, self.taps)

    def build(self, m: ModuleBuilder) -> None:
        en = m.input("en")
        out = m.output("value", self.width)
        state = m.reg("state", self.width, init=1)
        lsb = state[0]
        shifted = state >> 1
        with m.when(en):
            with m.when(lsb == 1):
                state <<= shifted ^ self.taps
            with m.otherwise():
                state <<= shifted
        out <<= state


class PopCount(Module):
    """Combinational population count."""

    def __init__(self, width: int = 8) -> None:
        super().__init__()
        self.width = width

    def signature(self):
        return ("PopCount", self.width)

    def build(self, m: ModuleBuilder) -> None:
        din = m.input("din", self.width)
        out_width = self.width.bit_length()
        dout = m.output("dout", out_width)
        total = m.lit(0, out_width)
        for i in range(self.width):
            total = total + din[i].zext(out_width)
        dout <<= total


class PulseStretcher(Module):
    """Stretches a single-cycle pulse to ``length`` cycles."""

    def __init__(self, length: int = 4) -> None:
        super().__init__()
        self.length = length

    def signature(self):
        return ("PulseStretcher", self.length)

    def build(self, m: ModuleBuilder) -> None:
        pulse = m.input("pulse")
        stretched = m.output("stretched", 1)
        width = max(self.length.bit_length(), 1)
        remaining = m.reg("remaining", width, init=0)
        with m.when(pulse):
            remaining <<= self.length
        with m.elsewhen(remaining > 0):
            remaining <<= remaining - 1
        stretched <<= (remaining > 0) | pulse
