"""NeuroProc analog: a time-multiplexed spiking neural network processor.

Modeled after the "Power-efficient Hardware Platform for Spiking Neural
Networks" design the paper benchmarks (NeuroProc, Table 2): leaky
integrate-and-fire (LIF) neurons evaluated sequentially by a shared update
pipeline, weights in a memory, input spikes arriving as a bit vector, and
output spikes emitted per evaluation pass.  The workload character matches
the original: very long runs (one pass per neuron per timestep), mostly
regular datapath activity.
"""

from __future__ import annotations

from ..hcl import ChiselEnum, Module, ModuleBuilder, mux

ProcState = ChiselEnum("ProcState", "idle accumulate leak fire next_neuron done")


class NeuroProc(Module):
    """Sequential LIF neuron processor.

    Each timestep: for every neuron, accumulate weighted input spikes,
    apply leak, threshold-fire, reset on spike.

    Parameters give the benchmark its scale: ``n_neurons * n_inputs``
    accumulate cycles per timestep.
    """

    def __init__(
        self,
        n_neurons: int = 16,
        n_inputs: int = 16,
        width: int = 16,
        threshold: int = 1000,
        leak_shift: int = 4,
    ) -> None:
        super().__init__()
        if n_neurons & (n_neurons - 1) or n_inputs & (n_inputs - 1):
            raise ValueError("neuron/input counts must be powers of two")
        self.n_neurons = n_neurons
        self.n_inputs = n_inputs
        self.width = width
        self.threshold = threshold
        self.leak_shift = leak_shift

    def signature(self):
        return (
            "NeuroProc",
            self.n_neurons,
            self.n_inputs,
            self.width,
            self.threshold,
            self.leak_shift,
        )

    def build(self, m: ModuleBuilder) -> None:
        n_bits = self.n_neurons.bit_length() - 1 or 1
        i_bits = self.n_inputs.bit_length() - 1 or 1
        width = self.width

        # control
        start = m.input("start")
        busy = m.output("busy", 1)
        done_out = m.output("done", 1)

        # input spike vector for this timestep
        in_spikes = m.input("in_spikes", self.n_inputs)
        # weight write port (configuration)
        w_en = m.input("w_en")
        w_addr = m.input("w_addr", n_bits + i_bits)
        w_data = m.input("w_data", width)

        out_spikes = m.output("out_spikes", self.n_neurons)
        spike_count = m.output("spike_count", n_bits + 1)

        weights = m.mem("weights", width, self.n_neurons * self.n_inputs)
        potentials = m.mem("potentials", width, self.n_neurons)

        state = m.reg("state", enum=ProcState)
        neuron = m.reg("neuron", n_bits, init=0)
        input_idx = m.reg("input_idx", i_bits, init=0)
        acc = m.reg("acc", width, init=0)
        spikes = m.reg("spikes", self.n_neurons, init=0)
        n_spiked = m.reg("n_spiked", n_bits + 1, init=0)

        with m.when(w_en):
            weights[w_addr] = w_data

        busy <<= ~((state == ProcState.idle) | (state == ProcState.done))
        done_out <<= state == ProcState.done
        out_spikes <<= spikes
        spike_count <<= n_spiked

        w_index = (neuron.zext(n_bits + i_bits) << i_bits) | input_idx.zext(n_bits + i_bits)
        spike_in = in_spikes[input_idx]

        with m.switch(state):
            with m.is_(ProcState.idle):
                with m.when(start):
                    neuron <<= 0
                    input_idx <<= 0
                    spikes <<= 0
                    n_spiked <<= 0
                    state <<= ProcState.accumulate
                    acc <<= potentials[0]
            with m.is_(ProcState.accumulate):
                with m.when(spike_in):
                    acc <<= acc + weights[w_index]
                with m.when(input_idx == self.n_inputs - 1):
                    state <<= ProcState.leak
                with m.otherwise():
                    input_idx <<= input_idx + 1
            with m.is_(ProcState.leak):
                acc <<= acc - (acc >> self.leak_shift)
                state <<= ProcState.fire
            with m.is_(ProcState.fire):
                with m.when(acc >= self.threshold):
                    spikes <<= spikes | (m.lit(1, self.n_neurons) << neuron)
                    n_spiked <<= n_spiked + 1
                    potentials[neuron] = 0
                    m.cover(n_spiked == self.n_neurons - 1, "all_spiked")
                with m.otherwise():
                    potentials[neuron] = acc
                state <<= ProcState.next_neuron
            with m.is_(ProcState.next_neuron):
                with m.when(neuron == self.n_neurons - 1):
                    state <<= ProcState.done
                with m.otherwise():
                    neuron <<= neuron + 1
                    input_idx <<= 0
                    acc <<= potentials[neuron + 1]
                    state <<= ProcState.accumulate
            with m.is_(ProcState.done):
                with m.when(~start):
                    state <<= ProcState.idle

        m.cover((state == ProcState.fire) & (acc >= self.threshold), "neuron_fired")
