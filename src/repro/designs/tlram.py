"""TLRAM analog: a TileLink-ish memory-mapped RAM (from RocketChip).

The paper's TLRAM benchmark is RocketChip's TileLink RAM device.  This
analog implements the same shape: an A-channel (requests: get/put) and a
D-channel (responses) as Decoupled bundles, a one-deep response register
slice, and byte-masked writes.  Almost no control branching — which is why
the paper's Table 2 shows just 8 line cover points for it but thousands of
toggle points.
"""

from __future__ import annotations

from ..hcl import Module, ModuleBuilder, cat, mux

# TileLink-ish opcodes (A channel)
A_PUT_FULL = 0
A_PUT_PARTIAL = 1
A_GET = 4
# D channel
D_ACCESS_ACK = 0
D_ACCESS_ACK_DATA = 1


class TlRam(Module):
    """Memory-mapped RAM with request/response channels and byte masks."""

    def __init__(self, addr_width: int = 8, data_width: int = 32) -> None:
        super().__init__()
        if data_width % 8:
            raise ValueError("data width must be a multiple of 8")
        self.addr_width = addr_width
        self.data_width = data_width

    def signature(self):
        return ("TlRam", self.addr_width, self.data_width)

    def build(self, m: ModuleBuilder) -> None:
        aw, dw = self.addr_width, self.data_width
        n_bytes = dw // 8

        # A channel: opcode | mask | addr | data, flattened
        a_valid = m.input("a_valid")
        a_ready = m.output("a_ready", 1)
        a_opcode = m.input("a_opcode", 3)
        a_address = m.input("a_address", aw)
        a_mask = m.input("a_mask", n_bytes)
        a_data = m.input("a_data", dw)

        # D channel
        d_valid = m.output("d_valid", 1)
        d_ready = m.input("d_ready")
        d_opcode = m.output("d_opcode", 3)
        d_data = m.output("d_data", dw)

        ram = m.mem("ram", dw, 1 << aw)

        resp_pending = m.reg("resp_pending", 1, init=0)
        resp_opcode = m.reg("resp_opcode", 3, init=0)
        resp_data = m.reg("resp_data", dw, init=0)

        a_fire = a_valid & a_ready & 1
        a_ready <<= ~resp_pending | d_ready

        is_get = a_opcode == A_GET
        old_word = ram[a_address]
        # byte-masked merge for partial puts
        merged = m.lit(0, dw)
        merged_parts = []
        for byte in range(n_bytes):
            hi, lo = byte * 8 + 7, byte * 8
            new_byte = a_data[hi:lo]
            keep_byte = old_word[hi:lo]
            merged_parts.append(mux(a_mask[byte], new_byte, keep_byte))
        merged = cat(*reversed(merged_parts))

        with m.when(a_fire):
            with m.when(is_get):
                resp_opcode <<= D_ACCESS_ACK_DATA
                resp_data <<= old_word
            with m.otherwise():
                ram[a_address] = merged
                resp_opcode <<= D_ACCESS_ACK
                resp_data <<= 0
            resp_pending <<= 1
        with m.elsewhen(d_valid & d_ready):
            resp_pending <<= 0

        d_valid <<= resp_pending
        d_opcode <<= resp_opcode
        d_data <<= resp_data
