"""Direct-mapped cache generator (the riscv-mini cache analog).

One parameterized ``Cache`` module is instantiated twice in the SoC — once
as the instruction cache and once as the data cache.  This mirrors the
structure the paper's §5.5 experiment keys on: *the RTL for the instruction
and data caches are the same, but the instruction cache is read-only, and
thus the code blocks for write accesses are never exercised* — formal
cover-trace generation flags the I$ write branches as unreachable.

Geometry: word-sized blocks, direct mapped, write-through, allocate on
read miss.

CPU side (flattened Decoupled):
    ``cpu_req_{valid,ready,addr,data,wen}`` in, ``cpu_resp_{valid,data}`` out.
Memory side (request fire, then a later response pulse):
    ``mem_req_{valid,ready,addr,data,wen}`` out,
    ``mem_resp_{valid,data}`` in.
Addresses are word addresses.
"""

from __future__ import annotations

from ...hcl import ChiselEnum, Module, ModuleBuilder, mux

CacheState = ChiselEnum(
    "CacheState", "idle read_miss read_wait write_through write_wait respond"
)


class Cache(Module):
    """Direct-mapped write-through cache with word blocks."""

    def __init__(self, n_sets: int = 8, addr_width: int = 10, xlen: int = 32) -> None:
        super().__init__()
        if n_sets & (n_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self.n_sets = n_sets
        self.addr_width = addr_width
        self.xlen = xlen

    def signature(self):
        return ("Cache", self.n_sets, self.addr_width, self.xlen)

    def build(self, m: ModuleBuilder) -> None:
        xlen = self.xlen
        addr_width = self.addr_width
        index_bits = self.n_sets.bit_length() - 1
        assert index_bits >= 1, "cache needs at least two sets"

        # CPU interface
        cpu_req_valid = m.input("cpu_req_valid")
        cpu_req_ready = m.output("cpu_req_ready", 1)
        cpu_req_addr = m.input("cpu_req_addr", addr_width)
        cpu_req_data = m.input("cpu_req_data", xlen)
        cpu_req_wen = m.input("cpu_req_wen")
        cpu_resp_valid = m.output("cpu_resp_valid", 1)
        cpu_resp_data = m.output("cpu_resp_data", xlen)

        # memory interface
        mem_req_valid = m.output("mem_req_valid", 1)
        mem_req_ready = m.input("mem_req_ready")
        mem_req_addr = m.output("mem_req_addr", addr_width)
        mem_req_data = m.output("mem_req_data", xlen)
        mem_req_wen = m.output("mem_req_wen", 1)
        mem_resp_valid = m.input("mem_resp_valid")
        mem_resp_data = m.input("mem_resp_data", xlen)

        hit_out = m.output("hit", 1)

        tags_width = addr_width - index_bits
        tags = m.mem("tags", tags_width, self.n_sets)
        valids = m.mem("valids", 1, self.n_sets)
        data = m.mem("data", xlen, self.n_sets)

        state = m.reg("state", enum=CacheState)
        req_addr = m.reg("req_addr", addr_width, init=0)
        req_data = m.reg("req_data", xlen, init=0)
        resp_data = m.reg("resp_data", xlen, init=0)

        index = req_addr[index_bits - 1 : 0]
        tag = req_addr[addr_width - 1 : index_bits]
        live_index = cpu_req_addr[index_bits - 1 : 0]
        live_tag = cpu_req_addr[addr_width - 1 : index_bits]
        live_hit = (valids[live_index] == 1) & (tags[live_index] == live_tag)

        cpu_req_ready <<= state == CacheState.idle
        cpu_resp_valid <<= state == CacheState.respond
        cpu_resp_data <<= resp_data
        mem_req_valid <<= 0
        mem_req_addr <<= req_addr
        mem_req_data <<= req_data
        mem_req_wen <<= 0
        hit_out <<= 0

        with m.switch(state):
            with m.is_(CacheState.idle):
                with m.when(cpu_req_valid):
                    req_addr <<= cpu_req_addr
                    req_data <<= cpu_req_data
                    with m.when(cpu_req_wen):
                        # write path: update the line if present, then write
                        # through to memory.  THIS is the branch a read-only
                        # instruction cache never executes (paper §5.5).
                        with m.when(live_hit):
                            data[live_index] = cpu_req_data
                        state <<= CacheState.write_through
                    with m.otherwise():
                        with m.when(live_hit):
                            hit_out <<= 1
                            resp_data <<= data[live_index]
                            state <<= CacheState.respond
                        with m.otherwise():
                            state <<= CacheState.read_miss
            with m.is_(CacheState.read_miss):
                mem_req_valid <<= 1
                mem_req_wen <<= 0
                with m.when(mem_req_ready):
                    state <<= CacheState.read_wait
            with m.is_(CacheState.read_wait):
                with m.when(mem_resp_valid):
                    # allocate on read miss
                    tags[index] = tag
                    valids[index] = 1
                    data[index] = mem_resp_data
                    resp_data <<= mem_resp_data
                    state <<= CacheState.respond
            with m.is_(CacheState.write_through):
                mem_req_valid <<= 1
                mem_req_wen <<= 1
                with m.when(mem_req_ready):
                    state <<= CacheState.write_wait
            with m.is_(CacheState.write_wait):
                with m.when(mem_resp_valid):
                    resp_data <<= req_data
                    state <<= CacheState.respond
            with m.is_(CacheState.respond):
                state <<= CacheState.idle

        m.cover((state == CacheState.idle) & cpu_req_valid & ~cpu_req_wen & ~live_hit, "read_miss")
        m.cover((state == CacheState.idle) & cpu_req_valid & live_hit, "hit_request")
