"""Register file, immediate generator and branch condition units."""

from __future__ import annotations

from ...hcl import Module, ModuleBuilder, cat, mux

# immediate formats
IMM_I = 0
IMM_S = 1
IMM_B = 2
IMM_U = 3
IMM_J = 4
IMM_WIDTH = 3

# branch functions (funct3 encodings)
BR_EQ = 0b000
BR_NE = 0b001
BR_LT = 0b100
BR_GE = 0b101
BR_LTU = 0b110
BR_GEU = 0b111


class RegFile(Module):
    """32 x xlen register file; x0 reads as zero."""

    def __init__(self, xlen: int = 32) -> None:
        super().__init__()
        self.xlen = xlen

    def signature(self):
        return ("RegFile", self.xlen)

    def build(self, m: ModuleBuilder) -> None:
        raddr1 = m.input("raddr1", 5)
        raddr2 = m.input("raddr2", 5)
        rdata1 = m.output("rdata1", self.xlen)
        rdata2 = m.output("rdata2", self.xlen)
        wen = m.input("wen")
        waddr = m.input("waddr", 5)
        wdata = m.input("wdata", self.xlen)

        regs = m.mem("regs", self.xlen, 32)
        rdata1 <<= mux(raddr1 == 0, 0, regs[raddr1])
        rdata2 <<= mux(raddr2 == 0, 0, regs[raddr2])
        with m.when(wen & (waddr != 0)):
            regs[waddr] = wdata


class ImmGen(Module):
    """Immediate extraction for the five RV32I formats."""

    has_reset = False

    def __init__(self, xlen: int = 32) -> None:
        super().__init__()
        self.xlen = xlen

    def signature(self):
        return ("ImmGen", self.xlen)

    def build(self, m: ModuleBuilder) -> None:
        inst = m.input("inst", 32)
        sel = m.input("sel", IMM_WIDTH)
        imm = m.output("imm", self.xlen)

        sign = inst[31]
        imm_i = cat(inst[31:20].as_sint().sext(32))
        imm_s = cat(inst[31:25], inst[11:7]).as_sint().sext(32)
        imm_b = cat(inst[31], inst[7], inst[30:25], inst[11:8], m.lit(0, 1)).as_sint().sext(32)
        imm_u = cat(inst[31:12], m.lit(0, 12))
        imm_j = cat(
            inst[31], inst[19:12], inst[20], inst[30:21], m.lit(0, 1)
        ).as_sint().sext(32)

        result = imm_i
        result = mux(sel == IMM_S, imm_s, result)
        result = mux(sel == IMM_B, imm_b, result)
        result = mux(sel == IMM_U, imm_u, result)
        result = mux(sel == IMM_J, imm_j, result)
        imm <<= result


class BranchCond(Module):
    """Branch condition evaluation (funct3-encoded comparisons)."""

    has_reset = False

    def __init__(self, xlen: int = 32) -> None:
        super().__init__()
        self.xlen = xlen

    def signature(self):
        return ("BranchCond", self.xlen)

    def build(self, m: ModuleBuilder) -> None:
        rs1 = m.input("rs1", self.xlen)
        rs2 = m.input("rs2", self.xlen)
        funct = m.input("funct", 3)
        taken = m.output("taken", 1)

        eq = rs1 == rs2
        lt = rs1.as_sint() < rs2.as_sint()
        ltu = rs1 < rs2

        result = m.lit(0, 1)
        result = mux(funct == BR_EQ, eq, result)
        result = mux(funct == BR_NE, ~eq, result)
        result = mux(funct == BR_LT, lt, result)
        result = mux(funct == BR_GE, ~lt, result)
        result = mux(funct == BR_LTU, ltu, result)
        result = mux(funct == BR_GEU, ~ltu, result)
        taken <<= result
