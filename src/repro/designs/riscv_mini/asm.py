"""A tiny RV32I assembler and program runner for the riscv-mini analog.

Supports the instruction subset the core implements, with labels for
branches and jumps.  Good enough to write the test programs and the
"RISC-V test suite"-like workloads the §5.3 merging experiment needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

REGS = {f"x{i}": i for i in range(32)}
REGS.update(
    {
        "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
        "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
        "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
        "a6": 16, "a7": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21,
        "s6": 22, "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
        "t3": 28, "t4": 29, "t5": 30, "t6": 31,
    }
)


class AsmError(Exception):
    """Raised on malformed assembly."""


def _reg(name: str) -> int:
    try:
        return REGS[name.strip()]
    except KeyError:
        raise AsmError(f"unknown register {name!r}") from None


def _r_type(funct7: int, rs2: int, rs1: int, funct3: int, rd: int, opcode: int) -> int:
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def _i_type(imm: int, rs1: int, funct3: int, rd: int, opcode: int) -> int:
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def _s_type(imm: int, rs2: int, rs1: int, funct3: int, opcode: int) -> int:
    imm &= 0xFFF
    return (
        ((imm >> 5) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
    )


def _b_type(imm: int, rs2: int, rs1: int, funct3: int, opcode: int) -> int:
    imm &= 0x1FFF
    return (
        (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
    )


def _u_type(imm: int, rd: int, opcode: int) -> int:
    return ((imm & 0xFFFFF) << 12) | (rd << 7) | opcode


def _j_type(imm: int, rd: int, opcode: int) -> int:
    imm &= 0x1FFFFF
    return (
        (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (rd << 7)
        | opcode
    )


_R_OPS = {
    "add": (0b0000000, 0b000), "sub": (0b0100000, 0b000),
    "sll": (0b0000000, 0b001), "slt": (0b0000000, 0b010),
    "sltu": (0b0000000, 0b011), "xor": (0b0000000, 0b100),
    "srl": (0b0000000, 0b101), "sra": (0b0100000, 0b101),
    "or": (0b0000000, 0b110), "and": (0b0000000, 0b111),
}
_I_OPS = {
    "addi": 0b000, "slti": 0b010, "sltiu": 0b011,
    "xori": 0b100, "ori": 0b110, "andi": 0b111,
}
_SHIFT_OPS = {"slli": (0b0000000, 0b001), "srli": (0b0000000, 0b101), "srai": (0b0100000, 0b101)}
_BRANCH_OPS = {"beq": 0b000, "bne": 0b001, "blt": 0b100, "bge": 0b101, "bltu": 0b110, "bgeu": 0b111}


def assemble(source: Union[str, Sequence[str]]) -> list[int]:
    """Assemble a program; returns the list of 32-bit instruction words."""
    lines = source.splitlines() if isinstance(source, str) else list(source)
    # pass 1: labels
    labels: dict[str, int] = {}
    cleaned: list[str] = []
    for raw in lines:
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        while ":" in line:
            label, _, rest = line.partition(":")
            labels[label.strip()] = len(cleaned) * 4
            line = rest.strip()
        if line:
            cleaned.append(line)

    def value(token: str, pc: int, relative: bool) -> int:
        token = token.strip()
        if token in labels:
            return labels[token] - pc if relative else labels[token]
        try:
            return int(token, 0)
        except ValueError:
            raise AsmError(f"bad immediate or unknown label {token!r}") from None

    words: list[int] = []
    for index, line in enumerate(cleaned):
        pc = index * 4
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        args = [a.strip() for a in rest.split(",")] if rest.strip() else []
        if mnemonic in _R_OPS:
            funct7, funct3 = _R_OPS[mnemonic]
            words.append(_r_type(funct7, _reg(args[2]), _reg(args[1]), funct3, _reg(args[0]), 0b0110011))
        elif mnemonic in _I_OPS:
            words.append(_i_type(value(args[2], pc, False), _reg(args[1]), _I_OPS[mnemonic], _reg(args[0]), 0b0010011))
        elif mnemonic in _SHIFT_OPS:
            funct7, funct3 = _SHIFT_OPS[mnemonic]
            shamt = value(args[2], pc, False) & 0x1F
            words.append(_i_type((funct7 << 5) | shamt, _reg(args[1]), funct3, _reg(args[0]), 0b0010011))
        elif mnemonic in _BRANCH_OPS:
            offset = value(args[2], pc, True)
            words.append(_b_type(offset, _reg(args[1]), _reg(args[0]), _BRANCH_OPS[mnemonic], 0b1100011))
        elif mnemonic == "lw":
            imm, rs1 = _mem_operand(args[1])
            words.append(_i_type(imm, rs1, 0b010, _reg(args[0]), 0b0000011))
        elif mnemonic == "sw":
            imm, rs1 = _mem_operand(args[1])
            words.append(_s_type(imm, _reg(args[0]), rs1, 0b010, 0b0100011))
        elif mnemonic == "lui":
            words.append(_u_type(value(args[1], pc, False), _reg(args[0]), 0b0110111))
        elif mnemonic == "auipc":
            words.append(_u_type(value(args[1], pc, False), _reg(args[0]), 0b0010111))
        elif mnemonic == "jal":
            if len(args) == 1:
                args = ["ra", args[0]]
            words.append(_j_type(value(args[1], pc, True), _reg(args[0]), 0b1101111))
        elif mnemonic == "jalr":
            if len(args) == 1:
                args = ["ra", args[0], "0"]
            words.append(_i_type(value(args[2], pc, False), _reg(args[1]), 0b000, _reg(args[0]), 0b1100111))
        elif mnemonic == "j":
            words.append(_j_type(value(args[0], pc, True), 0, 0b1101111))
        elif mnemonic == "nop":
            words.append(0x13)
        elif mnemonic == "mv":
            words.append(_i_type(0, _reg(args[1]), 0b000, _reg(args[0]), 0b0010011))
        elif mnemonic == "li":
            imm = value(args[1], pc, False)
            if -2048 <= imm < 2048:
                words.append(_i_type(imm, 0, 0b000, _reg(args[0]), 0b0010011))
            else:
                upper = (imm + 0x800) >> 12
                lower = imm - (upper << 12)
                words.append(_u_type(upper, _reg(args[0]), 0b0110111))
                words.append(_i_type(lower, _reg(args[0]), 0b000, _reg(args[0]), 0b0010011))
                # note: a second word shifts subsequent labels; keep li small
                # in label-heavy code or use lui+addi explicitly
        elif mnemonic == "ebreak" or mnemonic == "ecall":
            words.append(_i_type(1 if mnemonic == "ebreak" else 0, 0, 0, 0, 0b1110011))
        else:
            raise AsmError(f"unknown mnemonic {mnemonic!r}")
    return words


def _mem_operand(text: str) -> tuple[int, int]:
    """Parse ``imm(reg)``."""
    text = text.strip()
    if "(" not in text or not text.endswith(")"):
        raise AsmError(f"bad memory operand {text!r}")
    imm_text, _, reg_text = text[:-1].partition("(")
    imm = int(imm_text, 0) if imm_text.strip() else 0
    return imm, _reg(reg_text)


@dataclass
class RunResult:
    """Outcome of running a program on the riscv-mini simulation."""

    cycles: int
    halted: bool
    illegal: bool
    retired: int
    pc: int


def load_program(sim, words: Sequence[int], base_word: int = 0) -> None:
    """Write a program into main memory through the loader port."""
    sim.poke("init_en", 1)
    for offset, word in enumerate(words):
        sim.poke("init_addr", base_word + offset)
        sim.poke("init_data", word)
        sim.step(1)
    sim.poke("init_en", 0)


def run_program(sim, words: Sequence[int], max_cycles: int = 20_000) -> RunResult:
    """Reset, load, and run until the core halts (or the cycle budget ends)."""
    sim.poke("reset", 1)
    sim.step(2)
    sim.poke("reset", 0)
    load_program(sim, words)
    cycles = 0
    while cycles < max_cycles and not sim.peek("halted"):
        sim.step(1)
        cycles += 1
    return RunResult(
        cycles=cycles,
        halted=bool(sim.peek("halted")),
        illegal=bool(sim.peek("illegal")),
        retired=sim.peek("retired"),
        pc=sim.peek("pc"),
    )
