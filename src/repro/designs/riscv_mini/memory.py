"""Main memory and the two-master memory arbiter for the riscv-mini SoC."""

from __future__ import annotations

from ...hcl import ChiselEnum, Module, ModuleBuilder, mux

MemState = ChiselEnum("MemState", "idle busy respond")


class MainMemory(Module):
    """Word-addressed backing memory with a fixed access latency.

    Protocol: accepts a request when ``req_ready``; after ``latency``
    cycles pulses ``resp_valid`` for one cycle (read data valid then; a
    write is acknowledged by the same pulse).

    The ``init_*`` port writes words directly — the program loader.
    """

    def __init__(self, addr_width: int = 10, xlen: int = 32, latency: int = 2) -> None:
        super().__init__()
        self.addr_width = addr_width
        self.xlen = xlen
        self.latency = latency

    def signature(self):
        return ("MainMemory", self.addr_width, self.xlen, self.latency)

    def build(self, m: ModuleBuilder) -> None:
        req_valid = m.input("req_valid")
        req_ready = m.output("req_ready", 1)
        req_addr = m.input("req_addr", self.addr_width)
        req_data = m.input("req_data", self.xlen)
        req_wen = m.input("req_wen")
        resp_valid = m.output("resp_valid", 1)
        resp_data = m.output("resp_data", self.xlen)

        init_en = m.input("init_en")
        init_addr = m.input("init_addr", self.addr_width)
        init_data = m.input("init_data", self.xlen)

        storage = m.mem("storage", self.xlen, 1 << self.addr_width)
        state = m.reg("state", enum=MemState)
        counter_width = max(self.latency.bit_length(), 1)
        wait = m.reg("wait", counter_width, init=0)
        addr = m.reg("addr", self.addr_width, init=0)
        wdata = m.reg("wdata", self.xlen, init=0)
        wen = m.reg("wen", 1, init=0)
        rdata = m.reg("rdata", self.xlen, init=0)

        with m.when(init_en):
            storage[init_addr] = init_data

        req_ready <<= state == MemState.idle
        resp_valid <<= state == MemState.respond
        resp_data <<= rdata

        with m.switch(state):
            with m.is_(MemState.idle):
                with m.when(req_valid):
                    addr <<= req_addr
                    wdata <<= req_data
                    wen <<= req_wen
                    wait <<= self.latency
                    state <<= MemState.busy
            with m.is_(MemState.busy):
                with m.when(wait == 0):
                    with m.when(wen):
                        storage[addr] = wdata
                        rdata <<= wdata
                    with m.otherwise():
                        rdata <<= storage[addr]
                    state <<= MemState.respond
                with m.otherwise():
                    wait <<= wait - 1
            with m.is_(MemState.respond):
                state <<= MemState.idle


class MemArbiter(Module):
    """Two-master (I$/D$) arbiter for one MainMemory port.

    The data cache has priority; responses route back to the master that
    issued the outstanding request.
    """

    def __init__(self, addr_width: int = 10, xlen: int = 32) -> None:
        super().__init__()
        self.addr_width = addr_width
        self.xlen = xlen

    def signature(self):
        return ("MemArbiter", self.addr_width, self.xlen)

    def build(self, m: ModuleBuilder) -> None:
        aw, xlen = self.addr_width, self.xlen
        # master 0: data cache (priority); master 1: instruction cache
        req_valid = [m.input(f"m{i}_req_valid") for i in range(2)]
        req_ready = [m.output(f"m{i}_req_ready", 1) for i in range(2)]
        req_addr = [m.input(f"m{i}_req_addr", aw) for i in range(2)]
        req_data = [m.input(f"m{i}_req_data", xlen) for i in range(2)]
        req_wen = [m.input(f"m{i}_req_wen") for i in range(2)]
        resp_valid = [m.output(f"m{i}_resp_valid", 1) for i in range(2)]
        resp_data = [m.output(f"m{i}_resp_data", xlen) for i in range(2)]

        out_req_valid = m.output("out_req_valid", 1)
        out_req_ready = m.input("out_req_ready")
        out_req_addr = m.output("out_req_addr", aw)
        out_req_data = m.output("out_req_data", xlen)
        out_req_wen = m.output("out_req_wen", 1)
        out_resp_valid = m.input("out_resp_valid")
        out_resp_data = m.input("out_resp_data", xlen)

        busy = m.reg("busy", 1, init=0)
        owner = m.reg("owner", 1, init=0)

        pick0 = req_valid[0]
        grant_valid = req_valid[0] | req_valid[1]
        out_req_valid <<= grant_valid & ~busy
        out_req_addr <<= mux(pick0, req_addr[0], req_addr[1])
        out_req_data <<= mux(pick0, req_data[0], req_data[1])
        out_req_wen <<= mux(pick0, req_wen[0], req_wen[1])
        req_ready[0] <<= out_req_ready & ~busy
        req_ready[1] <<= out_req_ready & ~busy & ~req_valid[0]

        accept = grant_valid & out_req_ready & ~busy
        with m.when(accept):
            busy <<= 1
            owner <<= ~pick0
        with m.when(out_resp_valid):
            busy <<= 0

        resp_valid[0] <<= out_resp_valid & busy & (owner == 0)
        resp_valid[1] <<= out_resp_valid & busy & (owner == 1)
        resp_data[0] <<= out_resp_data
        resp_data[1] <<= out_resp_data

        m.cover(req_valid[0] & req_valid[1], "contention")
