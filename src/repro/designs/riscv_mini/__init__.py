"""The riscv-mini analog: a multicycle RV32I-subset SoC with split caches."""

from .alu import Alu
from .asm import AsmError, RunResult, assemble, load_program, run_program
from .cache import Cache, CacheState
from .core import Core, CoreState
from .datapath import BranchCond, ImmGen, RegFile
from .memory import MainMemory, MemArbiter
from .top import RiscvMini

__all__ = [
    "Alu",
    "AsmError",
    "BranchCond",
    "Cache",
    "CacheState",
    "Core",
    "CoreState",
    "ImmGen",
    "MainMemory",
    "MemArbiter",
    "RegFile",
    "RiscvMini",
    "RunResult",
    "assemble",
    "load_program",
    "run_program",
]
