"""The riscv-mini SoC top: core + I$/D$ (shared RTL) + arbiter + memory."""

from __future__ import annotations

from ...hcl import Module, ModuleBuilder

from .cache import Cache
from .core import Core
from .memory import MainMemory, MemArbiter


class RiscvMini(Module):
    """Core with split caches over one backing memory.

    The instruction and data caches are the *same generator* with the same
    parameters — one IR module, two instances.  The I$ write port is tied
    off (read-only), which is exactly the structure the paper's §5.5
    formal experiment discovers dead code in.
    """

    def __init__(
        self,
        addr_width: int = 10,
        xlen: int = 32,
        cache_sets: int = 8,
        mem_latency: int = 2,
    ) -> None:
        super().__init__()
        self.addr_width = addr_width
        self.xlen = xlen
        self.cache_sets = cache_sets
        self.mem_latency = mem_latency

    def signature(self):
        return ("RiscvMini", self.addr_width, self.xlen, self.cache_sets, self.mem_latency)

    def build(self, m: ModuleBuilder) -> None:
        aw, xlen = self.addr_width, self.xlen

        halted = m.output("halted", 1)
        illegal = m.output("illegal", 1)
        pc = m.output("pc", xlen)
        retired = m.output("retired", 32)

        init_en = m.input("init_en")
        init_addr = m.input("init_addr", aw)
        init_data = m.input("init_data", xlen)

        core = m.instance("core", Core(aw, xlen))
        cache_gen = Cache(self.cache_sets, aw, xlen)
        icache = m.instance("icache", cache_gen)
        dcache = m.instance("dcache", Cache(self.cache_sets, aw, xlen))
        arbiter = m.instance("arb", MemArbiter(aw, xlen))
        memory = m.instance("mem", MainMemory(aw, xlen, self.mem_latency))

        # core <-> icache (read only: wen tied to zero)
        icache.cpu_req_valid <<= core.icache_req_valid
        core.icache_req_ready <<= icache.cpu_req_ready
        icache.cpu_req_addr <<= core.icache_req_addr
        icache.cpu_req_data <<= 0
        icache.cpu_req_wen <<= 0  # <- the read-only tie-off
        core.icache_resp_valid <<= icache.cpu_resp_valid
        core.icache_resp_data <<= icache.cpu_resp_data

        # core <-> dcache
        dcache.cpu_req_valid <<= core.dcache_req_valid
        core.dcache_req_ready <<= dcache.cpu_req_ready
        dcache.cpu_req_addr <<= core.dcache_req_addr
        dcache.cpu_req_data <<= core.dcache_req_data
        dcache.cpu_req_wen <<= core.dcache_req_wen
        core.dcache_resp_valid <<= dcache.cpu_resp_valid
        core.dcache_resp_data <<= dcache.cpu_resp_data

        # caches <-> arbiter (dcache is master 0, priority)
        arbiter.m0_req_valid <<= dcache.mem_req_valid
        dcache.mem_req_ready <<= arbiter.m0_req_ready
        arbiter.m0_req_addr <<= dcache.mem_req_addr
        arbiter.m0_req_data <<= dcache.mem_req_data
        arbiter.m0_req_wen <<= dcache.mem_req_wen
        dcache.mem_resp_valid <<= arbiter.m0_resp_valid
        dcache.mem_resp_data <<= arbiter.m0_resp_data

        arbiter.m1_req_valid <<= icache.mem_req_valid
        icache.mem_req_ready <<= arbiter.m1_req_ready
        arbiter.m1_req_addr <<= icache.mem_req_addr
        arbiter.m1_req_data <<= icache.mem_req_data
        arbiter.m1_req_wen <<= icache.mem_req_wen
        icache.mem_resp_valid <<= arbiter.m1_resp_valid
        icache.mem_resp_data <<= arbiter.m1_resp_data

        # arbiter <-> memory
        memory.req_valid <<= arbiter.out_req_valid
        arbiter.out_req_ready <<= memory.req_ready
        memory.req_addr <<= arbiter.out_req_addr
        memory.req_data <<= arbiter.out_req_data
        memory.req_wen <<= arbiter.out_req_wen
        arbiter.out_resp_valid <<= memory.resp_valid
        arbiter.out_resp_data <<= memory.resp_data

        memory.init_en <<= init_en
        memory.init_addr <<= init_addr
        memory.init_data <<= init_data

        halted <<= core.halted
        illegal <<= core.illegal
        pc <<= core.pc
        retired <<= core.retired
