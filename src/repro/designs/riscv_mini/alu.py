"""ALU for the riscv-mini analog core."""

from __future__ import annotations

from ...hcl import Module, ModuleBuilder, mux

# ALU operation encodings (internal control signals)
ALU_ADD = 0
ALU_SUB = 1
ALU_AND = 2
ALU_OR = 3
ALU_XOR = 4
ALU_SLT = 5
ALU_SLTU = 6
ALU_SLL = 7
ALU_SRL = 8
ALU_SRA = 9
ALU_COPY_B = 10

ALU_OP_WIDTH = 4


class Alu(Module):
    """Combinational 32-bit ALU (two's complement, RV32I operations)."""

    def __init__(self, xlen: int = 32) -> None:
        super().__init__()
        self.xlen = xlen

    def signature(self):
        return ("Alu", self.xlen)

    has_reset = False

    def build(self, m: ModuleBuilder) -> None:
        xlen = self.xlen
        a = m.input("a", xlen)
        b = m.input("b", xlen)
        op = m.input("op", ALU_OP_WIDTH)
        out = m.output("out", xlen)

        shamt = b[4:0]
        slt = m.node("slt", a.as_sint() < b.as_sint())
        sltu = m.node("sltu", a < b)
        sra = m.node("sra", ((a.as_sint() >> shamt).as_uint()).bits(xlen - 1, 0))

        result = b  # ALU_COPY_B default
        result = mux(op == ALU_ADD, a + b, result)
        result = mux(op == ALU_SUB, a - b, result)
        result = mux(op == ALU_AND, a & b, result)
        result = mux(op == ALU_OR, a | b, result)
        result = mux(op == ALU_XOR, a ^ b, result)
        result = mux(op == ALU_SLT, slt.zext(xlen), result)
        result = mux(op == ALU_SLTU, sltu.zext(xlen), result)
        result = mux(op == ALU_SLL, a << shamt, result)
        result = mux(op == ALU_SRL, a >> shamt, result)
        result = mux(op == ALU_SRA, sra, result)
        out <<= result
