"""Multicycle RV32I-subset core (the riscv-mini analog).

A compact state-machine core: FETCH -> (wait) -> EXECUTE -> (optional
memory access) -> back to FETCH.  Decoding is written as nested ``when``
chains so the line-coverage pass has a realistic branch structure to
instrument, and the state register uses a ChiselEnum so FSM coverage can
analyze it.

Supported instructions: LUI, AUIPC, JAL, JALR, BEQ/BNE/BLT/BGE/BLTU/BGEU,
LW, SW, all OP-IMM and OP arithmetic, and EBREAK (halts the core).
Unknown opcodes raise the ``illegal`` flag and halt.
"""

from __future__ import annotations

from ...hcl import ChiselEnum, Module, ModuleBuilder, mux

from .alu import (
    ALU_ADD,
    ALU_AND,
    ALU_COPY_B,
    ALU_OP_WIDTH,
    ALU_OR,
    ALU_SLL,
    ALU_SLT,
    ALU_SLTU,
    ALU_SRA,
    ALU_SRL,
    ALU_SUB,
    ALU_XOR,
    Alu,
)
from .datapath import (
    BR_EQ,
    BranchCond,
    IMM_B,
    IMM_I,
    IMM_J,
    IMM_S,
    IMM_U,
    IMM_WIDTH,
    ImmGen,
    RegFile,
)

CoreState = ChiselEnum("CoreState", "fetch fetch_wait execute mem_wait halted")

# opcodes
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_OP = 0b0110011
OP_SYSTEM = 0b1110011


class Core(Module):
    """The CPU core, talking to I$ and D$ over cache request ports."""

    def __init__(self, addr_width: int = 10, xlen: int = 32) -> None:
        super().__init__()
        self.addr_width = addr_width
        self.xlen = xlen

    def signature(self):
        return ("Core", self.addr_width, self.xlen)

    def build(self, m: ModuleBuilder) -> None:
        xlen = self.xlen
        aw = self.addr_width

        # instruction cache port
        ic_req_valid = m.output("icache_req_valid", 1)
        ic_req_ready = m.input("icache_req_ready")
        ic_req_addr = m.output("icache_req_addr", aw)
        ic_resp_valid = m.input("icache_resp_valid")
        ic_resp_data = m.input("icache_resp_data", xlen)

        # data cache port
        dc_req_valid = m.output("dcache_req_valid", 1)
        dc_req_ready = m.input("dcache_req_ready")
        dc_req_addr = m.output("dcache_req_addr", aw)
        dc_req_data = m.output("dcache_req_data", xlen)
        dc_req_wen = m.output("dcache_req_wen", 1)
        dc_resp_valid = m.input("dcache_resp_valid")
        dc_resp_data = m.input("dcache_resp_data", xlen)

        halted_out = m.output("halted", 1)
        illegal_out = m.output("illegal", 1)
        pc_out = m.output("pc", xlen)
        retired_out = m.output("retired", 32)

        alu = m.instance("alu", Alu(xlen))
        imm_gen = m.instance("immgen", ImmGen(xlen))
        br = m.instance("brcond", BranchCond(xlen))
        rf = m.instance("regfile", RegFile(xlen))

        state = m.reg("state", enum=CoreState)
        pc = m.reg("pc", xlen, init=0)
        inst = m.reg("inst", xlen, init=0x13)  # NOP (addi x0,x0,0)
        illegal = m.reg("illegal", 1, init=0)
        retired = m.reg("retired", 32, init=0)
        load_dest = m.reg("load_dest", 5, init=0)

        # decode fields
        opcode = inst[6:0]
        rd = inst[11:7]
        funct3 = inst[14:12]
        rs1 = inst[19:15]
        rs2 = inst[24:20]
        funct7 = inst[31:25]

        rf.raddr1 <<= rs1
        rf.raddr2 <<= rs2
        rv1 = rf.rdata1
        rv2 = rf.rdata2

        # immediate select
        imm_sel = m.wire("imm_sel", IMM_WIDTH)
        imm_sel <<= IMM_I
        with m.when(opcode == OP_STORE):
            imm_sel <<= IMM_S
        with m.elsewhen(opcode == OP_BRANCH):
            imm_sel <<= IMM_B
        with m.elsewhen((opcode == OP_LUI) | (opcode == OP_AUIPC)):
            imm_sel <<= IMM_U
        with m.elsewhen(opcode == OP_JAL):
            imm_sel <<= IMM_J
        imm_gen.inst <<= inst
        imm_gen.sel <<= imm_sel
        imm = imm_gen.imm

        # ALU operation decode (for OP/OP-IMM)
        alu_op = m.wire("alu_op", ALU_OP_WIDTH)
        alu_op <<= ALU_ADD
        is_op = opcode == OP_OP
        is_imm = opcode == OP_IMM
        with m.when(is_op | is_imm):
            with m.when(funct3 == 0b000):
                with m.when(is_op & (funct7 == 0b0100000)):
                    alu_op <<= ALU_SUB
                with m.otherwise():
                    alu_op <<= ALU_ADD
            with m.elsewhen(funct3 == 0b001):
                alu_op <<= ALU_SLL
            with m.elsewhen(funct3 == 0b010):
                alu_op <<= ALU_SLT
            with m.elsewhen(funct3 == 0b011):
                alu_op <<= ALU_SLTU
            with m.elsewhen(funct3 == 0b100):
                alu_op <<= ALU_XOR
            with m.elsewhen(funct3 == 0b101):
                with m.when(funct7 == 0b0100000):
                    alu_op <<= ALU_SRA
                with m.otherwise():
                    alu_op <<= ALU_SRL
            with m.elsewhen(funct3 == 0b110):
                alu_op <<= ALU_OR
            with m.otherwise():
                alu_op <<= ALU_AND
        with m.elsewhen(opcode == OP_LUI):
            alu_op <<= ALU_COPY_B

        # ALU operand select
        use_imm = ~is_op & ~(opcode == OP_BRANCH)
        alu.a <<= mux(
            (opcode == OP_AUIPC) | (opcode == OP_JAL), pc, rv1
        )
        alu.b <<= mux(use_imm, imm, rv2)
        alu.op <<= alu_op
        alu_out = alu.out

        br.rs1 <<= rv1
        br.rs2 <<= rv2
        br.funct <<= funct3

        # register write port defaults
        rf.wen <<= 0
        rf.waddr <<= rd
        rf.wdata <<= alu_out

        # cache port defaults
        word_pc = pc[aw + 1 : 2]
        ic_req_valid <<= 0
        ic_req_addr <<= word_pc
        dc_req_valid <<= 0
        dc_req_addr <<= alu_out[aw + 1 : 2]
        dc_req_data <<= rv2
        dc_req_wen <<= 0

        halted_out <<= state == CoreState.halted
        illegal_out <<= illegal
        pc_out <<= pc
        retired_out <<= retired

        pc_plus4 = pc + 4

        with m.switch(state):
            with m.is_(CoreState.fetch):
                ic_req_valid <<= 1
                with m.when(ic_req_ready):
                    state <<= CoreState.fetch_wait
            with m.is_(CoreState.fetch_wait):
                with m.when(ic_resp_valid):
                    inst <<= ic_resp_data
                    state <<= CoreState.execute
            with m.is_(CoreState.execute):
                retired <<= retired + 1
                state <<= CoreState.fetch
                pc <<= pc_plus4
                with m.when((opcode == OP_LUI) | (opcode == OP_AUIPC)):
                    rf.wen <<= 1
                with m.elsewhen(opcode == OP_JAL):
                    rf.wen <<= 1
                    rf.wdata <<= pc_plus4
                    pc <<= alu_out & ~1
                with m.elsewhen(opcode == OP_JALR):
                    rf.wen <<= 1
                    rf.wdata <<= pc_plus4
                    pc <<= (rv1 + imm) & ~1
                with m.elsewhen(opcode == OP_BRANCH):
                    with m.when(br.taken):
                        pc <<= pc + imm
                        m.cover(funct3 == BR_EQ, "beq_taken")
                with m.elsewhen(opcode == OP_LOAD):
                    dc_req_valid <<= 1
                    dc_req_wen <<= 0
                    load_dest <<= rd
                    pc <<= pc  # hold until memory completes
                    with m.when(dc_req_ready):
                        state <<= CoreState.mem_wait
                        pc <<= pc_plus4
                    with m.otherwise():
                        state <<= CoreState.execute
                        retired <<= retired
                with m.elsewhen(opcode == OP_STORE):
                    dc_req_valid <<= 1
                    dc_req_wen <<= 1
                    pc <<= pc
                    with m.when(dc_req_ready):
                        state <<= CoreState.mem_wait
                        pc <<= pc_plus4
                    with m.otherwise():
                        state <<= CoreState.execute
                        retired <<= retired
                with m.elsewhen(opcode == OP_IMM):
                    rf.wen <<= 1
                with m.elsewhen(opcode == OP_OP):
                    rf.wen <<= 1
                with m.elsewhen(opcode == OP_SYSTEM):
                    # EBREAK/ECALL: halt the core
                    state <<= CoreState.halted
                    pc <<= pc
                with m.otherwise():
                    illegal <<= 1
                    state <<= CoreState.halted
                    pc <<= pc
            with m.is_(CoreState.mem_wait):
                with m.when(dc_resp_valid):
                    state <<= CoreState.fetch
                    with m.when(inst[6:0] == OP_LOAD):
                        rf.wen <<= 1
                        rf.waddr <<= load_dest
                        rf.wdata <<= dc_resp_data
            with m.is_(CoreState.halted):
                state <<= CoreState.halted

        m.cover(state == CoreState.halted, "halted")
        m.cover(illegal == 1, "illegal_inst")
