"""I2C slave peripheral — the fuzzing target of §5.4 (Figure 11).

A register-file peripheral behind an I2C slave interface: START/STOP
detection, 7-bit address matching, register-pointer writes, and multi-byte
reads/writes with ACK generation.  Deep sequential protocol state makes it
a classic coverage-directed-fuzzing target: random inputs rarely produce a
valid START + address match, so feedback quality directly shows in how far
the fuzzer gets — which is exactly what Figure 11 measures.

Inputs are the raw ``scl``/``sda_in`` lines; ``sda_out``/``sda_oe`` drive
the open-drain data line.
"""

from __future__ import annotations

from ..hcl import ChiselEnum, Module, ModuleBuilder, cat, mux

I2cState = ChiselEnum(
    "I2cState",
    "idle addr addr_ack reg_ptr reg_ack write_data write_ack read_data read_ack",
)


class I2cPeripheral(Module):
    """I2C slave with an 8-register file."""

    def __init__(self, device_address: int = 0x42, n_regs: int = 8) -> None:
        super().__init__()
        if n_regs & (n_regs - 1):
            raise ValueError("register count must be a power of two")
        self.device_address = device_address
        self.n_regs = n_regs

    def signature(self):
        return ("I2cPeripheral", self.device_address, self.n_regs)

    def build(self, m: ModuleBuilder) -> None:
        reg_bits = self.n_regs.bit_length() - 1

        scl = m.input("scl")
        sda_in = m.input("sda_in")
        sda_out = m.output("sda_out", 1)
        sda_oe = m.output("sda_oe", 1)

        # observability for tests/fuzzing
        state_out = m.output("dbg_state", I2cState.width)
        reg0 = m.output("dbg_reg0", 8)
        transfers = m.output("dbg_transfers", 8)

        regs = m.mem("regs", 8, self.n_regs)

        state = m.reg("state", enum=I2cState)
        scl_last = m.reg("scl_last", 1, init=1)
        sda_last = m.reg("sda_last", 1, init=1)
        shift = m.reg("shift", 8, init=0)
        bit_count = m.reg("bit_count", 4, init=0)
        reg_ptr = m.reg("reg_ptr", reg_bits, init=0)
        is_read = m.reg("is_read", 1, init=0)
        drive_low = m.reg("drive_low", 1, init=0)
        xfer_count = m.reg("xfer_count", 8, init=0)

        scl_last <<= scl
        sda_last <<= sda_in
        scl_rise = scl & ~scl_last
        scl_fall = ~scl & scl_last

        # START: SDA falls while SCL high; STOP: SDA rises while SCL high
        start_cond = scl & scl_last & sda_last & ~sda_in
        stop_cond = scl & scl_last & ~sda_last & sda_in

        sda_out <<= 0
        sda_oe <<= drive_low
        state_out <<= state.as_uint()
        reg0 <<= regs[0]
        transfers <<= xfer_count

        with m.when(stop_cond):
            state <<= I2cState.idle
            drive_low <<= 0
        with m.elsewhen(start_cond):
            state <<= I2cState.addr
            bit_count <<= 0
            shift <<= 0
            drive_low <<= 0
        with m.otherwise():
            with m.switch(state):
                with m.is_(I2cState.idle):
                    drive_low <<= 0
                with m.is_(I2cState.addr):
                    with m.when(scl_rise):
                        shift <<= cat(shift[6:0], sda_in)
                        bit_count <<= bit_count + 1
                    with m.when(scl_fall & (bit_count == 8)):
                        bit_count <<= 0
                        with m.when(shift[7:1] == self.device_address):
                            is_read <<= shift[0]
                            drive_low <<= 1  # ACK
                            state <<= I2cState.addr_ack
                        with m.otherwise():
                            state <<= I2cState.idle
                with m.is_(I2cState.addr_ack):
                    with m.when(scl_fall):
                        drive_low <<= 0
                        with m.when(is_read):
                            shift <<= regs[reg_ptr]
                            state <<= I2cState.read_data
                        with m.otherwise():
                            state <<= I2cState.reg_ptr
                with m.is_(I2cState.reg_ptr):
                    with m.when(scl_rise):
                        shift <<= cat(shift[6:0], sda_in)
                        bit_count <<= bit_count + 1
                    with m.when(scl_fall & (bit_count == 8)):
                        bit_count <<= 0
                        reg_ptr <<= shift[reg_bits - 1 : 0]
                        drive_low <<= 1  # ACK
                        state <<= I2cState.reg_ack
                with m.is_(I2cState.reg_ack):
                    with m.when(scl_fall):
                        drive_low <<= 0
                        state <<= I2cState.write_data
                with m.is_(I2cState.write_data):
                    with m.when(scl_rise):
                        shift <<= cat(shift[6:0], sda_in)
                        bit_count <<= bit_count + 1
                    with m.when(scl_fall & (bit_count == 8)):
                        bit_count <<= 0
                        regs[reg_ptr] = shift
                        xfer_count <<= xfer_count + 1
                        drive_low <<= 1  # ACK
                        state <<= I2cState.write_ack
                        m.cover(reg_ptr == self.n_regs - 1, "write_last_reg")
                with m.is_(I2cState.write_ack):
                    with m.when(scl_fall):
                        drive_low <<= 0
                        reg_ptr <<= reg_ptr + 1  # auto-increment
                        state <<= I2cState.write_data
                with m.is_(I2cState.read_data):
                    drive_low <<= ~shift[7]  # msb first, open drain
                    with m.when(scl_fall):
                        shift <<= cat(shift[6:0], m.lit(0, 1))
                        bit_count <<= bit_count + 1
                        with m.when(bit_count == 7):
                            bit_count <<= 0
                            drive_low <<= 0
                            xfer_count <<= xfer_count + 1
                            state <<= I2cState.read_ack
                with m.is_(I2cState.read_ack):
                    with m.when(scl_rise):
                        # master NACK ends the read burst
                        with m.when(sda_in):
                            state <<= I2cState.idle
                        with m.otherwise():
                            reg_ptr <<= reg_ptr + 1
                            shift <<= regs[reg_ptr + 1]
                            state <<= I2cState.read_data

        m.cover(start_cond, "start_detected")
        m.cover(stop_cond, "stop_detected")
        m.cover(state == I2cState.write_data, "in_write")
        m.cover(state == I2cState.read_data, "in_read")
