"""The classic GCD unit — the quickstart example design."""

from __future__ import annotations

from ..hcl import ChiselEnum, Module, ModuleBuilder

GcdState = ChiselEnum("GcdState", "idle run done")


class Gcd(Module):
    """Euclid's algorithm by repeated subtraction, Decoupled in/out."""

    def __init__(self, width: int = 16) -> None:
        super().__init__()
        self.width = width

    def signature(self):
        return ("Gcd", self.width)

    def build(self, m: ModuleBuilder) -> None:
        width = self.width
        req = m.decoupled_input("req", 2 * width)
        resp = m.decoupled_output("resp", width)

        state = m.reg("state", enum=GcdState)
        x = m.reg("x", width, init=0)
        y = m.reg("y", width, init=0)

        req.ready <<= state == GcdState.idle
        resp.valid <<= state == GcdState.done
        resp.bits <<= x

        with m.switch(state):
            with m.is_(GcdState.idle):
                with m.when(req.fire):
                    x <<= req.bits[width - 1 : 0]
                    y <<= req.bits[2 * width - 1 : width]
                    state <<= GcdState.run
            with m.is_(GcdState.run):
                with m.when(y == 0):
                    state <<= GcdState.done
                with m.elsewhen(x < y):
                    x <<= y
                    y <<= x
                with m.otherwise():
                    x <<= x - y
            with m.is_(GcdState.done):
                with m.when(resp.fire):
                    state <<= GcdState.idle

        m.cover((state == GcdState.run) & (x == y), "equal_operands")
