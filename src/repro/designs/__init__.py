"""Benchmark designs: the paper's workloads re-built in our HCL."""

from .gcd import Gcd
from .i2c import I2cPeripheral
from .lib import (
    Arbiter,
    Counter,
    EdgeDetector,
    Lfsr,
    PopCount,
    PulseStretcher,
    Queue,
    RoundRobinArbiter,
    ShiftRegister,
)
from .neuroproc import NeuroProc
from .riscv_mini import RiscvMini
from .serv import SerialAlu, SerialGcd
from .soc import BoomLikeSoC, ClintLike, RocketLikeSoC, SyntheticOoOCore, UartLike
from .tlram import TlRam

__all__ = [
    "Arbiter",
    "BoomLikeSoC",
    "ClintLike",
    "Counter",
    "EdgeDetector",
    "Gcd",
    "I2cPeripheral",
    "Lfsr",
    "NeuroProc",
    "PopCount",
    "PulseStretcher",
    "Queue",
    "RiscvMini",
    "RocketLikeSoC",
    "RoundRobinArbiter",
    "SerialAlu",
    "SerialGcd",
    "ShiftRegister",
    "SyntheticOoOCore",
    "TlRam",
    "UartLike",
]
