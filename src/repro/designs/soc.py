"""SoC generators for the FireSim-scale experiments (Figures 9, 10, §5.2).

Two configurations mirror the paper's targets:

* :class:`RocketLikeSoC` — N in-order scalar cores (our riscv-mini tile,
  reused whole) plus peripherals, like the quad-core Rocket config.
* :class:`BoomLikeSoC` — one wide, synthetic out-of-order core whose
  unrolled ROB/issue structures generate substantially more control logic
  (and therefore more line-coverage points) than the in-order tile, like
  the BOOM config.

Both are *generators*: the parameters scale the number of branch blocks and
thus the number of cover statements the line-coverage pass emits after
flattening — the independent variable of the Figure 9/10 resource study.  The paper's
counts (8060 / 12059 covers) correspond to larger parameterizations than
the defaults here; the benches report the shape at a Python-tractable scale
and evaluate the analytical resource model at paper scale.
"""

from __future__ import annotations

from ..hcl import ChiselEnum, Module, ModuleBuilder, mux, reduce_or

from .riscv_mini.top import RiscvMini


class UartLike(Module):
    """A UART-ish peripheral: tx shift register with a baud divider."""

    def __init__(self, divider: int = 16) -> None:
        super().__init__()
        self.divider = divider

    def signature(self):
        return ("UartLike", self.divider)

    def build(self, m: ModuleBuilder) -> None:
        wr_valid = m.input("wr_valid")
        wr_data = m.input("wr_data", 8)
        wr_ready = m.output("wr_ready", 1)
        tx = m.output("tx", 1)

        baud = m.reg("baud", max(self.divider.bit_length(), 1), init=0)
        shifting = m.reg("shifting", 1, init=0)
        bits_left = m.reg("bits_left", 4, init=0)
        shift = m.reg("shift", 10, init=0x3FF)

        tick = baud == self.divider - 1
        with m.when(tick):
            baud <<= 0
        with m.otherwise():
            baud <<= baud + 1

        wr_ready <<= ~shifting
        tx <<= shift[0]

        with m.when(~shifting & wr_valid):
            # start bit, data, stop bit
            shift <<= (m.lit(1, 10) << 9) | (wr_data.zext(10) << 1)
            bits_left <<= 10
            shifting <<= 1
        with m.elsewhen(shifting & tick):
            shift <<= (shift >> 1) | (m.lit(1, 10) << 9)
            bits_left <<= bits_left - 1
            with m.when(bits_left == 1):
                shifting <<= 0


class ClintLike(Module):
    """Core-local interruptor analog: timer compare per hart."""

    def __init__(self, n_harts: int = 4) -> None:
        super().__init__()
        self.n_harts = n_harts

    def signature(self):
        return ("ClintLike", self.n_harts)

    def build(self, m: ModuleBuilder) -> None:
        set_cmp_en = m.input("set_cmp_en")
        set_cmp_hart = m.input("set_cmp_hart", max(self.n_harts.bit_length(), 1))
        set_cmp_value = m.input("set_cmp_value", 32)
        timer_irq = m.output("timer_irq", self.n_harts)

        mtime = m.reg("mtime", 32, init=0)
        mtime <<= mtime + 1
        irqs = []
        for hart in range(self.n_harts):
            cmp_reg = m.reg(f"mtimecmp_{hart}", 32, init=0xFFFFFFFF)
            with m.when(set_cmp_en & (set_cmp_hart == hart)):
                cmp_reg <<= set_cmp_value
            irqs.append(mtime >= cmp_reg)
        value = irqs[0].zext(self.n_harts)
        for i in range(1, self.n_harts):
            value = value | (irqs[i].zext(self.n_harts) << i)
        timer_irq <<= value


OoOState = ChiselEnum("OoOState", "fetch rename dispatch issue complete commit flush")


class SyntheticOoOCore(Module):
    """A synthetic out-of-order core skeleton (the BOOM stand-in).

    Not a functional CPU — a *coverage-realistic* one: per-ROB-entry
    valid/busy/complete state machines, per-issue-slot grant logic and a
    branch-mispredict flush path, all unrolled, so the line-coverage pass
    sees the branch-block density of a real OoO core.  The instruction
    stream is driven by an LFSR so the logic genuinely toggles in
    simulation.
    """

    def __init__(self, rob_entries: int = 16, issue_width: int = 2) -> None:
        super().__init__()
        self.rob_entries = rob_entries
        self.issue_width = issue_width

    def signature(self):
        return ("SyntheticOoOCore", self.rob_entries, self.issue_width)

    def build(self, m: ModuleBuilder) -> None:
        n = self.rob_entries
        ptr_bits = max((n - 1).bit_length(), 1)

        stall_in = m.input("stall")
        mispredict_in = m.input("mispredict")
        committed = m.output("committed", 32)
        occupancy = m.output("occupancy", ptr_bits + 1)

        state = m.reg("state", enum=OoOState)
        lfsr = m.reg("lfsr", 16, init=1)
        head = m.reg("head", ptr_bits, init=0)
        tail = m.reg("tail", ptr_bits, init=0)
        count = m.reg("count", ptr_bits + 1, init=0)
        commit_count = m.reg("commit_count", 32, init=0)

        lfsr_lsb = lfsr[0]
        with m.when(lfsr_lsb == 1):
            lfsr <<= (lfsr >> 1) ^ 0xB400
        with m.otherwise():
            lfsr <<= lfsr >> 1

        valids = [m.reg(f"rob_valid_{i}", 1, init=0) for i in range(n)]
        busys = [m.reg(f"rob_busy_{i}", 1, init=0) for i in range(n)]
        dones = [m.reg(f"rob_done_{i}", 1, init=0) for i in range(n)]
        is_branch = [m.reg(f"rob_br_{i}", 1, init=0) for i in range(n)]

        full = count == n
        empty = count == 0
        occupancy <<= count
        committed <<= commit_count

        # allocate at tail when not stalled/full
        alloc = ~stall_in & ~full
        with m.when(alloc):
            tail <<= tail + 1
            count <<= count + 1
            for i in range(n):
                with m.when(tail == i):
                    valids[i] <<= 1
                    busys[i] <<= 1
                    dones[i] <<= 0
                    is_branch[i] <<= lfsr[3] & lfsr[7]

        # completion: pseudo-random per-entry completion events
        for i in range(n):
            with m.when(valids[i] & busys[i]):
                with m.when(lfsr[i % 16] ^ lfsr[(i + 5) % 16]):
                    busys[i] <<= 0
                    dones[i] <<= 1

        # commit at head when done; mispredicted branches flush
        head_done = reduce_or(
            [dones[i] & (head == i) & valids[i] for i in range(n)]
        )
        head_is_branch = reduce_or(
            [is_branch[i] & (head == i) & valids[i] for i in range(n)]
        )
        do_commit = head_done & ~empty
        flush = do_commit & head_is_branch & mispredict_in
        with m.when(do_commit):
            commit_count <<= commit_count + 1
            head <<= head + 1
            with m.when(~alloc):
                count <<= count - 1
            for i in range(n):
                with m.when(head == i):
                    valids[i] <<= 0
        with m.when(flush):
            # squash everything younger than head
            head <<= 0
            tail <<= 0
            count <<= 0
            for i in range(n):
                valids[i] <<= 0
                busys[i] <<= 0
                dones[i] <<= 0
            # the nesting under pipeline_flush is intentional: the two
            # covers answer different questions (any flush vs flush at
            # capacity), so keep both counters materialized
            # lint: disable-next-line=cover-redundant-implied
            m.cover(count == n, "flush_when_full")

        with m.switch(state):
            with m.is_(OoOState.fetch):
                with m.when(~stall_in):
                    state <<= OoOState.rename
            with m.is_(OoOState.rename):
                state <<= OoOState.dispatch
            with m.is_(OoOState.dispatch):
                with m.when(full):
                    state <<= OoOState.issue
                with m.otherwise():
                    state <<= OoOState.fetch
            with m.is_(OoOState.issue):
                with m.when(~full):
                    state <<= OoOState.complete
            with m.is_(OoOState.complete):
                state <<= OoOState.commit
            with m.is_(OoOState.commit):
                with m.when(flush):
                    state <<= OoOState.flush
                with m.otherwise():
                    state <<= OoOState.fetch
            with m.is_(OoOState.flush):
                state <<= OoOState.fetch

        m.cover(full, "rob_full")
        m.cover(flush, "pipeline_flush")


class RocketLikeSoC(Module):
    """N in-order tiles + peripherals — the 4xRocket configuration."""

    def __init__(
        self,
        n_cores: int = 4,
        addr_width: int = 8,
        cache_sets: int = 8,
    ) -> None:
        super().__init__()
        self.n_cores = n_cores
        self.addr_width = addr_width
        self.cache_sets = cache_sets

    def signature(self):
        return ("RocketLikeSoC", self.n_cores, self.addr_width, self.cache_sets)

    def build(self, m: ModuleBuilder) -> None:
        all_halted = m.output("all_halted", 1)
        total_retired = m.output("total_retired", 32)

        init_en = m.input("init_en")
        init_addr = m.input("init_addr", self.addr_width)
        init_data = m.input("init_data", 32)

        tile_gen = RiscvMini(self.addr_width, 32, self.cache_sets)
        tiles = [m.instance(f"tile{i}", tile_gen) for i in range(self.n_cores)]
        for tile in tiles:
            tile.init_en <<= init_en
            tile.init_addr <<= init_addr
            tile.init_data <<= init_data

        uart = m.instance("uart", UartLike())
        clint = m.instance("clint", ClintLike(self.n_cores))
        uart.wr_valid <<= tiles[0].halted
        uart.wr_data <<= tiles[0].pc[7:0]
        clint.set_cmp_en <<= 0
        clint.set_cmp_hart <<= 0
        clint.set_cmp_value <<= 0

        halted = tiles[0].halted
        retired = tiles[0].retired
        for tile in tiles[1:]:
            halted = halted & tile.halted
            retired = retired + tile.retired
        all_halted <<= halted
        total_retired <<= retired


class BoomLikeSoC(Module):
    """One wide synthetic OoO core + a tile + peripherals — the BOOM config."""

    def __init__(
        self,
        rob_entries: int = 32,
        issue_width: int = 4,
        addr_width: int = 8,
    ) -> None:
        super().__init__()
        self.rob_entries = rob_entries
        self.issue_width = issue_width
        self.addr_width = addr_width

    def signature(self):
        return ("BoomLikeSoC", self.rob_entries, self.issue_width, self.addr_width)

    def build(self, m: ModuleBuilder) -> None:
        all_halted = m.output("all_halted", 1)
        committed = m.output("committed", 32)
        init_en = m.input("init_en")
        init_addr = m.input("init_addr", self.addr_width)
        init_data = m.input("init_data", 32)
        mispredict = m.input("mispredict")

        core = m.instance("boom", SyntheticOoOCore(self.rob_entries, self.issue_width))
        tile = m.instance("frontend_tile", RiscvMini(self.addr_width, 32, 8))
        uart = m.instance("uart", UartLike())

        tile.init_en <<= init_en
        tile.init_addr <<= init_addr
        tile.init_data <<= init_data
        core.stall <<= 0
        core.mispredict <<= mispredict
        uart.wr_valid <<= core.committed[0]
        uart.wr_data <<= core.committed[7:0]

        all_halted <<= tile.halted
        committed <<= core.committed
