"""serv-chisel analog: a bit-serial ALU datapath.

SERV is "the award-winning bit-serial RISC-V core"; the paper benchmarks a
Chisel port of it.  The defining property is that the datapath is one bit
wide: a 32-bit operation takes 32 clock cycles, trading throughput for a
tiny area.  This analog implements a bit-serial ALU engine with the same
character: operands stream in LSB first, results stream out, and a small
FSM sequences init/run/done phases.  Run time is dominated by many cycles
of low-activity shifting — the workload profile that makes serv a good
simulator benchmark.
"""

from __future__ import annotations

from ..hcl import ChiselEnum, Module, ModuleBuilder, mux

SerialState = ChiselEnum("SerialState", "idle run done")

# operations
SOP_ADD = 0
SOP_SUB = 1
SOP_AND = 2
SOP_OR = 3
SOP_XOR = 4
SOP_SLT = 5


class SerialAlu(Module):
    """Bit-serial ALU: one result bit per cycle, LSB first."""

    def __init__(self, xlen: int = 32) -> None:
        super().__init__()
        self.xlen = xlen

    def signature(self):
        return ("SerialAlu", self.xlen)

    def build(self, m: ModuleBuilder) -> None:
        xlen = self.xlen
        count_width = xlen.bit_length()

        start = m.input("start")
        op = m.input("op", 3)
        a = m.input("a", xlen)
        b = m.input("b", xlen)
        busy = m.output("busy", 1)
        done = m.output("done", 1)
        result = m.output("result", xlen)

        state = m.reg("state", enum=SerialState)
        sh_a = m.reg("sh_a", xlen, init=0)
        sh_b = m.reg("sh_b", xlen, init=0)
        sh_r = m.reg("sh_r", xlen, init=0)
        carry = m.reg("carry", 1, init=0)
        count = m.reg("count", count_width, init=0)
        op_reg = m.reg("op_reg", 3, init=0)

        bit_a = sh_a[0]
        bit_b_raw = sh_b[0]
        # subtraction: invert b and start with carry-in 1
        is_sub = (op_reg == SOP_SUB) | (op_reg == SOP_SLT)
        bit_b = mux(is_sub, ~bit_b_raw, bit_b_raw)

        sum_bit = bit_a ^ bit_b ^ carry
        carry_next = (bit_a & bit_b) | (carry & (bit_a ^ bit_b))

        logic_bit = bit_a & bit_b_raw
        logic_bit = mux(op_reg == SOP_OR, bit_a | bit_b_raw, logic_bit)
        logic_bit = mux(op_reg == SOP_XOR, bit_a ^ bit_b_raw, logic_bit)

        use_sum = (op_reg == SOP_ADD) | (op_reg == SOP_SUB) | (op_reg == SOP_SLT)
        result_bit = mux(use_sum, sum_bit, logic_bit)

        busy <<= state == SerialState.run
        done <<= state == SerialState.done
        result <<= sh_r

        with m.switch(state):
            with m.is_(SerialState.idle):
                with m.when(start):
                    sh_a <<= a
                    sh_b <<= b
                    sh_r <<= 0
                    op_reg <<= op
                    carry <<= mux((op == SOP_SUB) | (op == SOP_SLT), 1, 0)
                    count <<= 0
                    state <<= SerialState.run
            with m.is_(SerialState.run):
                sh_a <<= sh_a >> 1
                sh_b <<= sh_b >> 1
                sh_r <<= (result_bit.zext(xlen) << (xlen - 1)) | (sh_r >> 1)
                carry <<= carry_next
                count <<= count + 1
                with m.when(count == xlen - 1):
                    state <<= SerialState.done
            with m.is_(SerialState.done):
                # SLT: the final sign of (a - b) decides; overwrite result
                with m.when(op_reg == SOP_SLT):
                    # sign(a) != sign(b) ? sign(a) : msb(a-b)
                    sign_bit = sh_r[xlen - 1]
                    sh_r <<= sign_bit.zext(xlen)
                state <<= SerialState.idle

        m.cover((state == SerialState.run) & carry, "carry_active")
        m.cover((state == SerialState.done) & (op_reg == SOP_SLT), "slt_done")


class SerialGcd(Module):
    """A GCD engine built on the bit-serial ALU — the serv-style workload.

    Computes gcd(a, b) by repeated serial subtraction; each subtraction
    costs xlen cycles, so even small inputs run for thousands of cycles.
    """

    def __init__(self, xlen: int = 32) -> None:
        super().__init__()
        self.xlen = xlen

    def signature(self):
        return ("SerialGcd", self.xlen)

    def build(self, m: ModuleBuilder) -> None:
        xlen = self.xlen
        req = m.decoupled_input("req", 2 * xlen)
        resp = m.decoupled_output("resp", xlen)

        Phase = ChiselEnum(f"GcdPhase{xlen}", "idle compare subtract swap emit")
        phase = m.reg("phase", enum=Phase)
        va = m.reg("va", xlen, init=0)
        vb = m.reg("vb", xlen, init=0)

        alu = m.instance("alu", SerialAlu(xlen))
        alu.start <<= 0
        alu.op <<= SOP_SUB
        alu.a <<= va
        alu.b <<= vb

        req.ready <<= phase == Phase.idle
        resp.valid <<= phase == Phase.emit
        resp.bits <<= va

        with m.switch(phase):
            with m.is_(Phase.idle):
                with m.when(req.fire):
                    va <<= req.bits[xlen - 1 : 0]
                    vb <<= req.bits[2 * xlen - 1 : xlen]
                    phase <<= Phase.compare
            with m.is_(Phase.compare):
                with m.when(vb == 0):
                    phase <<= Phase.emit
                with m.elsewhen(va < vb):
                    phase <<= Phase.swap
                with m.otherwise():
                    alu.start <<= 1
                    phase <<= Phase.subtract
            with m.is_(Phase.subtract):
                with m.when(alu.done):
                    va <<= alu.result
                    phase <<= Phase.compare
            with m.is_(Phase.swap):
                va <<= vb
                vb <<= va
                phase <<= Phase.compare
            with m.is_(Phase.emit):
                with m.when(resp.fire):
                    phase <<= Phase.idle
