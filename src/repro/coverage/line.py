"""Branch and line coverage (§4.1 of the paper).

The instrumentation pass runs on *high form*, before ``ExpandWhens``: it
places a bare ``cover(true)`` statement at the head of every branch block
(and one at the module root).  Lowering then turns the dominating branch
condition of each block into the cover's enable — exactly the mechanism the
paper describes ("the FIRRTL compiler automatically turns the dominating
branch condition of a statement into an enable signal").

While inserting covers the pass scans the statements directly inside each
branch and records their source file/line, building the map the report
generator uses to turn branch counts into annotated line coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.namespace import Namespace
from ..ir.nodes import (
    TRUE,
    Circuit,
    Cover,
    Module,
    Ref,
    Stmt,
    Stop,
    When,
)
from ..ir.traversal import declared_names, walk_stmts
from ..ir.types import ClockType
from ..passes.base import CompileState, Pass
from .common import CoverageDB, CoverCounts, InstanceTree, aggregate_by_module

METRIC = "line"


def find_clock(module: Module) -> Optional[Ref]:
    """The module's clock port, if any."""
    for port in module.ports:
        if isinstance(port.type, ClockType):
            return port.ref()
    return None


class LineCoveragePass(Pass):
    """Insert one cover statement per branch block (requires high form)."""

    def __init__(self, db: Optional[CoverageDB] = None) -> None:
        self.db = db if db is not None else CoverageDB()

    def run(self, state: CompileState) -> CompileState:
        for module in state.circuit.modules:
            self._instrument_module(module)
        state.metadata[METRIC] = self.db
        return state

    def _instrument_module(self, module: Module) -> None:
        clock = find_clock(module)
        if clock is None:
            return
        ns = Namespace(declared_names(module))
        for stmt in walk_stmts(module.body):
            if isinstance(stmt, (Cover, Stop)):
                ns.fresh(stmt.name)

        def lines_of(block: list[Stmt]) -> list[list]:
            seen = []
            for stmt in block:
                info = getattr(stmt, "info", None)
                if info is not None and info.file:
                    entry = [info.file, info.line]
                    if entry not in seen:
                        seen.append(entry)
            return seen

        def instrument_block(block: list[Stmt], kind: str) -> list[Stmt]:
            name = ns.fresh("l")
            cover = Cover(name, clock, TRUE, TRUE)
            self.db.add(METRIC, module.name, name, {"kind": kind, "lines": lines_of(block)})
            out: list[Stmt] = [cover]
            for stmt in block:
                if isinstance(stmt, When):
                    stmt.conseq = instrument_block(stmt.conseq, "branch")
                    stmt.alt = instrument_block(stmt.alt, "else") if stmt.alt else []
                out.append(stmt)
            return out

        module.body = instrument_block(module.body, "root")


@dataclass
class FileLineCoverage:
    """Line counts for one source file."""

    file: str
    counts: dict[int, int] = field(default_factory=dict)

    @property
    def covered(self) -> int:
        return sum(1 for c in self.counts.values() if c > 0)

    @property
    def total(self) -> int:
        return len(self.counts)


@dataclass
class LineCoverageReport:
    """The simulator-independent line coverage report (ASCII)."""

    files: dict[str, FileLineCoverage]
    branch_counts: dict[tuple[str, str], int]

    @property
    def covered(self) -> int:
        return sum(f.covered for f in self.files.values())

    @property
    def total(self) -> int:
        return sum(f.total for f in self.files.values())

    @property
    def percent(self) -> float:
        return 100.0 * self.covered / self.total if self.total else 100.0

    def uncovered_lines(self) -> list[tuple[str, int]]:
        out = []
        for file, data in sorted(self.files.items()):
            out.extend((file, line) for line, c in sorted(data.counts.items()) if c == 0)
        return out

    def format(self, sources: Optional[dict[str, list[str]]] = None) -> str:
        """Render an annotated ASCII report.

        ``sources`` optionally maps file names to their text lines so the
        report can inline the source (like the paper's annotated output).
        """
        out = [f"line coverage: {self.covered}/{self.total} lines ({self.percent:.1f}%)"]
        for file, data in sorted(self.files.items()):
            out.append(f"\n=== {file} ({data.covered}/{data.total}) ===")
            text = sources.get(file) if sources else None
            for line, count in sorted(data.counts.items()):
                marker = f"{count:>8}" if count else "   ----"
                if text and 0 < line <= len(text):
                    out.append(f"{marker} | {line:>4} | {text[line - 1].rstrip()}")
                else:
                    out.append(f"{marker} | line {line}")
        return "\n".join(out)


def line_report(db: CoverageDB, counts: CoverCounts, circuit: Circuit) -> LineCoverageReport:
    """Build the line coverage report from simulator counts.

    Counts from multiple instances of the same module are summed, so a line
    is covered if any instance executed it.
    """
    from .common import excluded_module_covers

    tree = InstanceTree(circuit)
    # minimal-basis runs report basis counters only: rebuild elided covers
    counts = db.reconstruct_counts(counts, tree)
    by_module = aggregate_by_module(counts, tree)
    excluded = excluded_module_covers(db, tree)
    files: dict[str, FileLineCoverage] = {}
    branch_counts: dict[tuple[str, str], int] = {}
    for module, cover_name, payload in db.covers_of(METRIC):
        if (module, cover_name) in excluded:
            continue  # statically unreachable at every instance
        count = by_module.get((module, cover_name), 0)
        branch_counts[(module, cover_name)] = count
        for file, line in payload["lines"]:
            data = files.setdefault(file, FileLineCoverage(file))
            data.counts[line] = data.counts.get(line, 0) + count
    return LineCoverageReport(files, branch_counts)
