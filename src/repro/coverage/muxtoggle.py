"""Mux toggle coverage — the rfuzz feedback metric (§5.4 of the paper).

For every 2:1 multiplexer select signal in the lowered design, two cover
statements observe the select being 1 and being 0.  This is the coverage
definition used by rfuzz ("Coverage-Directed Fuzz Testing of RTL on
FPGAs"); the paper re-implements it as a compiler pass so it can be swapped
against line coverage as fuzzing feedback.

Runs on low form.  Structurally identical select expressions are
deduplicated (one pair of covers per distinct select).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.namespace import Namespace
from ..ir.nodes import TRUE, Circuit, Cover, Expr, Module, Mux, not_
from ..ir.printer import print_expr
from ..ir.traversal import declared_names, stmt_exprs, walk_expr, walk_stmts
from ..passes.base import CompileState, Pass, PassError
from ..passes.expand_whens import has_whens
from .common import CoverageDB
from .line import find_clock

METRIC = "mux_toggle"


class MuxToggleCoveragePass(Pass):
    """Two covers (taken / not taken) per distinct mux select."""

    def __init__(self, db: Optional[CoverageDB] = None) -> None:
        self.db = db if db is not None else CoverageDB()

    def run(self, state: CompileState) -> CompileState:
        for module in state.circuit.modules:
            if has_whens(module):
                raise PassError("mux toggle coverage requires low form")
            self._instrument(module)
        state.metadata[METRIC] = self.db
        return state

    def _instrument(self, module: Module) -> None:
        clock = find_clock(module)
        if clock is None:
            return
        selects: dict[str, Expr] = {}
        for stmt in walk_stmts(module.body):
            for root in stmt_exprs(stmt):
                for expr in walk_expr(root):
                    if isinstance(expr, Mux):
                        selects.setdefault(print_expr(expr.cond), expr.cond)
        if not selects:
            return
        ns = Namespace(declared_names(module))
        for stmt in walk_stmts(module.body):
            if isinstance(stmt, Cover):
                ns.fresh(stmt.name)
        for index, (text, cond) in enumerate(sorted(selects.items())):
            for suffix, pred in (("T", cond), ("F", not_(cond))):
                name = ns.fresh(f"mt_{index}_{suffix}")
                module.body.append(Cover(name, clock, pred, TRUE))
                self.db.add(
                    METRIC,
                    module.name,
                    name,
                    {"select": text, "polarity": suffix, "index": index},
                )


@dataclass
class MuxToggleReport:
    """Seen-both-polarities summary per mux select."""

    selects: dict[tuple[str, int], dict[str, int]]  # (module, index) -> {T: n, F: n}

    @property
    def total(self) -> int:
        return len(self.selects)

    @property
    def toggled(self) -> int:
        return sum(1 for d in self.selects.values() if d.get("T", 0) > 0 and d.get("F", 0) > 0)

    def format(self) -> str:
        lines = [f"mux toggle coverage: {self.toggled}/{self.total} selects saw both polarities"]
        return "\n".join(lines)


def mux_toggle_report(db: CoverageDB, counts, circuit: Circuit) -> MuxToggleReport:
    from .common import InstanceTree, aggregate_by_module

    tree = InstanceTree(circuit)
    # minimal-basis runs report basis counters only: rebuild elided covers
    counts = db.reconstruct_counts(counts, tree)
    by_module = aggregate_by_module(counts, tree)
    selects: dict[tuple[str, int], dict[str, int]] = {}
    for module, cover_name, payload in db.covers_of(METRIC):
        key = (module, payload["index"])
        selects.setdefault(key, {})[payload["polarity"]] = by_module.get(
            (module, cover_name), 0
        )
    return MuxToggleReport(selects)
