"""Toggle coverage (§4.2 of the paper).

Runs on *low form*, after optimization passes (constant propagation, DCE)
have removed logic that could never toggle.  For every selected signal the
pass adds:

* a shadow register holding the previous cycle's value,
* an XOR detecting per-bit changes,
* a ``seen`` register that suppresses the first cycle (when the previous
  value is not yet meaningful), and
* one cover statement per bit.

The global alias analysis (:mod:`repro.coverage.alias`) ensures each group
of always-equal signals is instrumented exactly once — e.g. the global
reset is counted only in the top-level module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..ir.namespace import Namespace
from ..ir.nodes import (
    TRUE,
    Circuit,
    Connect,
    Cover,
    DefInstance,
    DefNode,
    DefRegister,
    DefWire,
    InstPort,
    Module,
    Ref,
    Stmt,
    prim,
)
from ..ir.traversal import declared_names, walk_stmts
from ..ir.types import ClockType, Type, UIntType, bit_width, is_signed
from ..passes.base import CompileState, Pass, PassError
from ..passes.expand_whens import has_whens
from .alias import AliasInfo, analyze_aliases
from .common import CoverageDB
from .line import find_clock

METRIC = "toggle"

#: default signal categories to instrument (paper: user selectable)
DEFAULT_CATEGORIES = ("io", "reg", "wire")


@dataclass
class _Candidate:
    name: str
    tpe: Type
    category: str


class ToggleCoveragePass(Pass):
    """Per-bit toggle instrumentation with global alias analysis.

    Args:
        db: coverage metadata sink.
        categories: any of ``io``, ``reg``, ``wire``, ``node``.
        use_alias_analysis: disable only for the ablation benchmark.
    """

    def __init__(
        self,
        db: Optional[CoverageDB] = None,
        categories: Iterable[str] = DEFAULT_CATEGORIES,
        use_alias_analysis: bool = True,
    ) -> None:
        self.db = db if db is not None else CoverageDB()
        self.categories = tuple(categories)
        self.use_alias_analysis = use_alias_analysis

    def run(self, state: CompileState) -> CompileState:
        circuit = state.circuit
        for module in circuit.modules:
            if has_whens(module):
                raise PassError("toggle coverage requires low form (run ExpandWhens first)")
        alias = analyze_aliases(circuit) if self.use_alias_analysis else AliasInfo()
        for module in circuit.modules:
            self._instrument_module(circuit, module, alias)
        state.metadata[METRIC] = self.db
        return state

    # -- per module ------------------------------------------------------------

    def _select(self, module: Module) -> dict[str, _Candidate]:
        selected: dict[str, _Candidate] = {}
        if "io" in self.categories:
            for port in module.ports:
                if not isinstance(port.type, ClockType):
                    selected[port.name] = _Candidate(port.name, port.type, "io")
        for stmt in module.body:
            if isinstance(stmt, DefRegister) and "reg" in self.categories:
                selected[stmt.name] = _Candidate(stmt.name, stmt.type, "reg")
            elif isinstance(stmt, DefWire) and "wire" in self.categories:
                selected[stmt.name] = _Candidate(stmt.name, stmt.type, "wire")
            elif isinstance(stmt, DefNode) and "node" in self.categories:
                selected[stmt.name] = _Candidate(stmt.name, stmt.value.tpe, "node")
        return selected

    def _instrument_module(self, circuit: Circuit, module: Module, alias: AliasInfo) -> None:
        clock = find_clock(module)
        if clock is None:
            return
        skipped = set(alias.skipped(module.name))
        selected = self._select(module)

        # promote group representatives so every skipped signal stays covered
        types: dict[str, Type] = {p.name: p.type for p in module.ports}
        for stmt in module.body:
            if isinstance(stmt, DefNode):
                types[stmt.name] = stmt.value.tpe
            elif isinstance(stmt, (DefWire, DefRegister)):
                types[stmt.name] = stmt.type
        child_skip: dict[str, set[str]] = {
            m.name: alias.skipped(m.name) for m in circuit.modules
        }
        instances = {
            s.name: s.module for s in module.body if isinstance(s, DefInstance)
        }
        changed = True
        while changed:
            changed = False
            for stmt in module.body:
                if not isinstance(stmt, Connect):
                    continue
                loc, expr = stmt.loc, stmt.expr
                if isinstance(loc, Ref) and isinstance(expr, Ref):
                    # a <= b with a selected-but-skipped: b must be covered
                    if (
                        loc.name in selected
                        and loc.name in skipped
                        and expr.name not in selected
                        and not isinstance(expr.tpe, ClockType)
                    ):
                        selected[expr.name] = _Candidate(expr.name, types[expr.name], "alias_rep")
                        changed = True
                elif isinstance(loc, InstPort) and isinstance(expr, Ref):
                    child = instances[loc.instance]
                    if (
                        loc.port in child_skip.get(child, set())
                        and expr.name not in selected
                        and not isinstance(expr.tpe, ClockType)
                    ):
                        selected[expr.name] = _Candidate(expr.name, types[expr.name], "alias_rep")
                        changed = True

        final = [c for name, c in selected.items() if name not in skipped or c.category == "alias_rep"]
        if not final:
            return
        self._insert_hardware(module, clock, final)

    def _insert_hardware(self, module: Module, clock: Ref, candidates: list[_Candidate]) -> None:
        ns = Namespace(declared_names(module))
        for stmt in walk_stmts(module.body):
            if isinstance(stmt, Cover):
                ns.fresh(stmt.name)
        additions: list[Stmt] = []

        # enable register: 0 in the first cycle, 1 afterwards
        seen_name = ns.fresh("t_seen")
        seen = Ref(seen_name, UIntType(1))
        additions.append(DefRegister(seen_name, UIntType(1), clock))
        additions.append(Connect(seen, TRUE))

        for cand in candidates:
            width = bit_width(cand.tpe)
            signal = Ref(cand.name, cand.tpe)
            raw = prim("asUInt", signal) if is_signed(cand.tpe) else signal
            prev_name = ns.fresh(f"t_prev_{cand.name}")
            prev = Ref(prev_name, UIntType(width))
            additions.append(DefRegister(prev_name, UIntType(width), clock))
            additions.append(Connect(prev, raw))
            diff_name = ns.fresh(f"t_diff_{cand.name}")
            additions.append(DefNode(diff_name, prim("xor", raw, prev)))
            diff = Ref(diff_name, UIntType(width))
            for bit in range(width):
                cover_name = ns.fresh(f"t_{cand.name}_{bit}")
                pred = prim("bits", diff, consts=[bit, bit])
                additions.append(Cover(cover_name, clock, pred, seen))
                self.db.add(
                    METRIC,
                    module.name,
                    cover_name,
                    {"signal": cand.name, "bit": bit, "category": cand.category, "width": width},
                )
        module.body.extend(additions)


@dataclass
class ToggleCoverageReport:
    """Per-signal toggle summary."""

    signals: dict[tuple[str, str], dict[int, int]]  # (module, signal) -> bit -> count

    @property
    def total_bits(self) -> int:
        return sum(len(bits) for bits in self.signals.values())

    @property
    def toggled_bits(self) -> int:
        return sum(1 for bits in self.signals.values() for c in bits.values() if c > 0)

    @property
    def percent(self) -> float:
        return 100.0 * self.toggled_bits / self.total_bits if self.total_bits else 100.0

    def stuck_bits(self) -> list[tuple[str, str, int]]:
        """Bits that never toggled — stuck at 0 or 1 for the whole run."""
        out = []
        for (module, signal), bits in sorted(self.signals.items()):
            out.extend((module, signal, bit) for bit, c in sorted(bits.items()) if c == 0)
        return out

    def format(self) -> str:
        lines = [
            f"toggle coverage: {self.toggled_bits}/{self.total_bits} bits "
            f"({self.percent:.1f}%)"
        ]
        for (module, signal), bits in sorted(self.signals.items()):
            toggled = sum(1 for c in bits.values() if c > 0)
            mark = " " if toggled == len(bits) else "!"
            lines.append(f" {mark} {module}.{signal}: {toggled}/{len(bits)} bits toggled")
        return "\n".join(lines)


def toggle_report(db: CoverageDB, counts, circuit: Circuit) -> ToggleCoverageReport:
    """Build the toggle report from simulator counts (summed over instances)."""
    from .common import InstanceTree, aggregate_by_module, excluded_module_covers

    tree = InstanceTree(circuit)
    # minimal-basis runs report basis counters only: rebuild elided covers
    counts = db.reconstruct_counts(counts, tree)
    by_module = aggregate_by_module(counts, tree)
    excluded = excluded_module_covers(db, tree)
    signals: dict[tuple[str, str], dict[int, int]] = {}
    for module, cover_name, payload in db.covers_of(METRIC):
        if (module, cover_name) in excluded:
            continue  # untoggleable bit: out of the denominator
        key = (module, payload["signal"])
        signals.setdefault(key, {})[payload["bit"]] = by_module.get((module, cover_name), 0)
    return ToggleCoverageReport(signals)
