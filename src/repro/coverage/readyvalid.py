"""Ready/valid (DecoupledIO) coverage — the paper's custom metric (§4.4).

For every Decoupled interface annotation the pass adds a single cover
statement counting cycles in which a transfer fires (``ready && valid``).
The paper highlights this metric as evidence that ecosystem-specific
metrics are cheap to add on top of the cover primitive (~3 hours, 78+26
lines of Scala; comparable proportions here).

Works on high or low form — the predicate only references module ports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.annotations import DecoupledAnnotation
from ..ir.namespace import Namespace
from ..ir.nodes import TRUE, Circuit, Cover, Module, prim
from ..ir.traversal import declared_names, walk_stmts
from ..passes.base import CompileState, Pass
from .common import CoverageDB
from .line import find_clock

METRIC = "ready_valid"


class ReadyValidCoveragePass(Pass):
    """One fire-counter per Decoupled interface."""

    def __init__(self, db: Optional[CoverageDB] = None) -> None:
        self.db = db if db is not None else CoverageDB()

    def run(self, state: CompileState) -> CompileState:
        circuit = state.circuit
        for module in circuit.modules:
            annos = [
                a
                for a in circuit.annotations
                if isinstance(a, DecoupledAnnotation) and a.module == module.name
            ]
            if annos:
                self._instrument(module, annos)
        state.metadata[METRIC] = self.db
        return state

    def _instrument(self, module: Module, annos: list[DecoupledAnnotation]) -> None:
        clock = find_clock(module)
        if clock is None:
            return
        ns = Namespace(declared_names(module))
        for stmt in walk_stmts(module.body):
            if isinstance(stmt, Cover):
                ns.fresh(stmt.name)
        for anno in annos:
            try:
                ready = module.port(anno.ready).ref()
                valid = module.port(anno.valid).ref()
            except KeyError:
                continue
            name = ns.fresh(f"rv_{anno.target}_fire")
            pred = prim("and", ready, valid)
            module.body.append(Cover(name, clock, pred, TRUE))
            self.db.add(
                METRIC,
                module.name,
                name,
                {
                    "bundle": anno.target,
                    "ready": anno.ready,
                    "valid": anno.valid,
                    "direction": "sink" if anno.is_sink else "source",
                },
            )


@dataclass
class ReadyValidReport:
    """Fire counts per Decoupled interface."""

    bundles: dict[tuple[str, str], int]  # (module, bundle) -> fire count

    @property
    def total(self) -> int:
        return len(self.bundles)

    @property
    def fired(self) -> int:
        return sum(1 for c in self.bundles.values() if c > 0)

    def format(self) -> str:
        lines = [f"ready/valid coverage: {self.fired}/{self.total} interfaces fired"]
        for (module, bundle), count in sorted(self.bundles.items()):
            mark = " " if count else "!"
            lines.append(f"  {mark} {module}.{bundle}: {count} transfers")
        return "\n".join(lines)


def ready_valid_report(db: CoverageDB, counts, circuit: Circuit) -> ReadyValidReport:
    from .common import InstanceTree, aggregate_by_module, excluded_module_covers

    tree = InstanceTree(circuit)
    # minimal-basis runs report basis counters only: rebuild elided covers
    counts = db.reconstruct_counts(counts, tree)
    by_module = aggregate_by_module(counts, tree)
    excluded = excluded_module_covers(db, tree)
    bundles: dict[tuple[str, str], int] = {}
    for module, cover_name, payload in db.covers_of(METRIC):
        if (module, cover_name) in excluded:
            continue  # statically unreachable at every instance
        bundles[(module, payload["bundle"])] = by_module.get((module, cover_name), 0)
    return ReadyValidReport(bundles)
