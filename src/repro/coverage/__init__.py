"""Automated coverage metrics as compiler passes (the paper's contribution).

Each metric is (a) an instrumentation pass that adds ``cover`` statements
plus metadata to the circuit and (b) a report generator that joins the
metadata with the counts any backend reports.  :func:`instrument` wires the
passes into the lowering pipeline in the order each metric requires:

* line coverage runs on high form, *before* ``ExpandWhens`` (it relies on
  branch conditions becoming cover enables during lowering),
* toggle/FSM/mux-toggle run on low form, *after* optimization.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..ir.nodes import Circuit
from ..passes import (
    CheckForms,
    CompileState,
    ConstProp,
    DeadCodeElimination,
    ExpandWhens,
    InlineInstances,
    Pass,
    PassManager,
)
from .alias import AliasInfo, analyze_aliases
from .common import (
    COVERAGE_DB_VERSION,
    CoverageDB,
    CoverageDBError,
    InstanceTree,
    InvalidCountsError,
    aggregate_by_module,
    all_cover_names,
    apply_exclusions,
    checked_merge_counts,
    count_issues,
    counts_from_json,
    counts_to_json,
    covered_points,
    excluded_module_covers,
    filter_covered,
    merge_counts,
)
from .fsm import FsmCoveragePass, FsmCoverageReport, fsm_report
from .line import LineCoveragePass, LineCoverageReport, line_report
from .muxtoggle import MuxToggleCoveragePass, MuxToggleReport, mux_toggle_report
from .readyvalid import ReadyValidCoveragePass, ReadyValidReport, ready_valid_report
from .toggle import ToggleCoveragePass, ToggleCoverageReport, toggle_report

#: metrics accepted by :func:`instrument`
ALL_METRICS = ("line", "toggle", "fsm", "ready_valid", "mux_toggle")

# Telemetry is imported lazily: a top-level import would cycle
# (runtime/__init__ → validate → coverage.common → this package → passes).
_obs = None


def _get_obs():
    global _obs
    if _obs is None:
        from ..runtime.telemetry import obs as _o
        _obs = _o
    return _obs


def instrument(
    circuit: Circuit,
    metrics: Iterable[str] = ("line",),
    db: Optional[CoverageDB] = None,
    optimize: bool = True,
    flatten: bool = False,
    toggle_categories: Iterable[str] = ("io", "reg", "wire"),
    use_alias_analysis: bool = True,
    minimize: bool = False,
) -> tuple[CompileState, CoverageDB]:
    """Instrument ``circuit`` with the requested coverage metrics.

    Returns the lowered (optionally flattened) compile state plus the
    coverage metadata database the report generators consume.

    With ``minimize=True`` the cover-implication minimizer
    (:mod:`repro.analysis.implication`) runs after every metric pass:
    only a spanning basis of counters is materialized, the rest are
    recorded as reconstruction recipes in the returned DB, and
    :meth:`CoverageDB.reconstruct_counts` (called by every report
    generator) rebuilds the full counts — bit-identical to full
    instrumentation.  Reachability exclusions already present in ``db``
    compose in: covers dead at every instance are elided outright.
    """
    import copy

    requested = list(metrics)
    unknown = [m for m in requested if m not in ALL_METRICS]
    if unknown:
        raise ValueError(f"unknown metrics: {unknown}; choose from {ALL_METRICS}")
    db = db if db is not None else CoverageDB()
    # instrumentation passes mutate module bodies; never touch the caller's IR
    circuit = copy.deepcopy(circuit)

    pipeline: list[Pass] = [CheckForms()]
    if "line" in requested:
        pipeline.append(LineCoveragePass(db))
    if "ready_valid" in requested:
        pipeline.append(ReadyValidCoveragePass(db))
    pipeline.append(ExpandWhens())
    if optimize:
        pipeline += [ConstProp(), DeadCodeElimination()]
    if "fsm" in requested:
        pipeline.append(FsmCoveragePass(db))
    if "mux_toggle" in requested:
        pipeline.append(MuxToggleCoveragePass(db))
    if "toggle" in requested:
        pipeline.append(
            ToggleCoveragePass(db, toggle_categories, use_alias_analysis)
        )
    if minimize:
        from ..analysis.implication import MinimizeCoversPass

        # after every cover-inserting pass, before flatten: recipes are
        # module-local, so reconstruction applies at every instance path
        pipeline.append(MinimizeCoversPass(db))
    if flatten:
        pipeline.append(InlineInstances())

    with _get_obs().span(
        "instrument", cat="compile",
        circuit=circuit.main, metrics=",".join(requested),
    ):
        state = PassManager(pipeline).run(CompileState(circuit))
    return state, db


__all__ = [
    "ALL_METRICS",
    "AliasInfo",
    "apply_exclusions",
    "excluded_module_covers",
    "COVERAGE_DB_VERSION",
    "CoverageDB",
    "CoverageDBError",
    "InvalidCountsError",
    "FsmCoveragePass",
    "FsmCoverageReport",
    "InstanceTree",
    "LineCoveragePass",
    "LineCoverageReport",
    "MuxToggleCoveragePass",
    "MuxToggleReport",
    "ReadyValidCoveragePass",
    "ReadyValidReport",
    "ToggleCoveragePass",
    "ToggleCoverageReport",
    "aggregate_by_module",
    "all_cover_names",
    "analyze_aliases",
    "checked_merge_counts",
    "count_issues",
    "counts_from_json",
    "counts_to_json",
    "covered_points",
    "filter_covered",
    "fsm_report",
    "instrument",
    "line_report",
    "merge_counts",
    "mux_toggle_report",
    "ready_valid_report",
    "toggle_report",
]
