"""Global alias analysis for toggle coverage (§4.2 of the paper).

Finds groups of signals that are guaranteed to always carry the same value,
so the toggle pass instruments only one representative per group.  The
motivating example from the paper: a global reset fanning out through every
module's ``reset`` input port should be instrumented exactly once, in the
top-level module.

Two sources of aliasing are tracked:

* *intra-module*: ``Connect(Ref a, Ref b)`` — the driven signal ``a``
  always equals ``b``.
* *cross-module*: a child input port that is driven by a plain named signal
  in **every** instantiation of that child module is an alias of the parent
  signal; a parent signal directly driven from a child instance output
  aliases that output.

Requires low form (single connect per target).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.nodes import (
    Circuit,
    Connect,
    DefInstance,
    InstPort,
    Module,
    Ref,
)
from ..ir.types import ClockType


@dataclass
class AliasInfo:
    """Result of the analysis.

    ``skip[module]`` is the set of module-local signal names whose toggle
    activity is fully represented by another signal (possibly in another
    module) and which therefore need no instrumentation.
    ``groups`` lists the alias classes found, for reporting/ablation.
    """

    skip: dict[str, set[str]] = field(default_factory=dict)
    groups: list[list[str]] = field(default_factory=list)

    def skipped(self, module: str) -> set[str]:
        return self.skip.get(module, set())

    @property
    def total_skipped(self) -> int:
        return sum(len(s) for s in self.skip.values())


def analyze_aliases(circuit: Circuit) -> AliasInfo:
    """Run the global alias analysis over a lowered circuit."""
    info = AliasInfo()
    instantiation_count: dict[str, int] = {}
    # (child_module, port) -> number of instantiations where the driver is a
    # plain named signal
    plain_driven: dict[tuple[str, str], int] = {}

    for module in circuit.modules:
        skip = info.skip.setdefault(module.name, set())
        groups: dict[str, list[str]] = {}
        from ..ir.nodes import DefRegister

        registers = {s.name for s in module.body if isinstance(s, DefRegister)}
        for stmt in module.body:
            if isinstance(stmt, DefInstance):
                instantiation_count[stmt.module] = instantiation_count.get(stmt.module, 0) + 1
            elif isinstance(stmt, Connect):
                loc, expr = stmt.loc, stmt.expr
                if isinstance(loc, Ref) and isinstance(expr, Ref):
                    if isinstance(loc.tpe, ClockType):
                        continue
                    if loc.name in registers:
                        # a register connect sets its *next* value, one
                        # cycle later — never an alias
                        continue
                    # a <= b: a is redundant, b represents the group
                    skip.add(loc.name)
                    groups.setdefault(expr.name, [expr.name]).append(loc.name)
                elif isinstance(loc, Ref) and isinstance(expr, InstPort):
                    # parent signal mirrors a child output: child covers it
                    skip.add(loc.name)
                    groups.setdefault(str(expr), [str(expr)]).append(loc.name)
                elif isinstance(loc, InstPort) and isinstance(expr, (Ref, InstPort)):
                    key = (_instance_module(module, loc.instance), loc.port)
                    plain_driven[key] = plain_driven.get(key, 0) + 1
        for members in groups.values():
            if len(members) > 1:
                info.groups.append([f"{module.name}.{m}" for m in members])

    # child input ports aliased in every instantiation need no instrumentation
    for module in circuit.modules:
        if module.name == circuit.main:
            continue
        count = instantiation_count.get(module.name, 0)
        if count == 0:
            continue
        skip = info.skip.setdefault(module.name, set())
        for port in module.ports:
            if port.direction != "input" or isinstance(port.type, ClockType):
                continue
            if plain_driven.get((module.name, port.name), 0) == count:
                skip.add(port.name)
    return info


def _instance_module(module: Module, instance: str) -> str:
    for stmt in module.body:
        if isinstance(stmt, DefInstance) and stmt.name == instance:
            return stmt.module
    raise KeyError(f"no instance {instance!r} in {module.name}")
