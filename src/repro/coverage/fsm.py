"""Finite state machine coverage (§4.3 of the paper).

Keyed on the ``EnumDefAnnotation`` that ChiselEnum state registers carry.
For every annotated register the pass:

1. inlines node/wire definitions into the register's next-state expression,
2. for each legal state, substitutes the state constant and constant-folds
   the expression (the paper's "apply constant propagation, replacing the
   reset and state symbols with their assignments"),
3. collects the possible next states: a literal contributes itself, a mux
   contributes both arms, and anything else *over-approximates to all
   states* — the analysis is conservative and may only over-report
   transitions (the §5.5 experiment shows formal verification catching
   exactly these over-approximated transitions),
4. adds one cover statement per state and per possible transition.

Runs on low form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.annotations import EnumDefAnnotation
from ..ir.namespace import Namespace
from ..ir.nodes import (
    TRUE,
    Circuit,
    Connect,
    Cover,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    Module,
    Mux,
    Ref,
    UIntLiteral,
    and_,
    not_,
    prim,
)
from ..ir.traversal import declared_names, map_expr, walk_expr, walk_stmts
from ..ir.types import bit_width
from ..passes.base import CompileState, Pass, PassError
from ..passes.constprop import simplify_deep
from ..passes.expand_whens import has_whens
from .common import CoverageDB
from .line import find_clock

METRIC = "fsm"

#: node-count budget for inlined next-state expressions; beyond this we
#: over-approximate rather than risk exponential blowup
MAX_INLINED_NODES = 200_000


@dataclass
class FsmInfo:
    """Analysis result for one state register."""

    module: str
    register: str
    enum_name: str
    states: dict[str, int]
    start: Optional[str]
    transitions: list[tuple[str, str]] = field(default_factory=list)
    over_approximated: bool = False


class _Inliner:
    """Substitute node/wire definitions into an expression, with a budget."""

    def __init__(self, module: Module) -> None:
        self.defs: dict[str, Expr] = {}
        for stmt in module.body:
            if isinstance(stmt, DefNode):
                self.defs[stmt.name] = stmt.value
            elif isinstance(stmt, Connect) and isinstance(stmt.loc, Ref):
                # wires: their single connect is their definition
                self.defs.setdefault(stmt.loc.name, stmt.expr)
        for stmt in module.body:
            if isinstance(stmt, DefRegister):
                self.defs.pop(stmt.name, None)  # registers are state, not defs
        self.budget = MAX_INLINED_NODES
        self._memo: dict[int, Expr] = {}

    def inline(self, expr: Expr) -> Optional[Expr]:
        """Fully inlined expression, or None when the budget is exceeded."""
        import sys

        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(100_000)
            return self._inline(expr)
        except (_BudgetExceeded, RecursionError):
            return None
        finally:
            sys.setrecursionlimit(limit)

    def _inline(self, expr: Expr) -> Expr:
        self.budget -= 1
        if self.budget <= 0:
            raise _BudgetExceeded()
        if isinstance(expr, Ref) and expr.name in self.defs:
            return self._inline(self.defs[expr.name])
        from ..ir.traversal import map_expr_children

        return map_expr_children(expr, self._inline)


class _BudgetExceeded(Exception):
    pass


def possible_next_values(expr: Expr) -> Optional[set[int]]:
    """Literal values the simplified expression can take; None = unknown."""
    if isinstance(expr, UIntLiteral):
        return {expr.value}
    if isinstance(expr, Mux):
        t = possible_next_values(expr.tval)
        f = possible_next_values(expr.fval)
        if t is None or f is None:
            return None
        return t | f
    return None


class FsmCoveragePass(Pass):
    """Analyze annotated state registers; add state and transition covers."""

    def __init__(self, db: Optional[CoverageDB] = None) -> None:
        self.db = db if db is not None else CoverageDB()
        self.infos: list[FsmInfo] = []

    def run(self, state: CompileState) -> CompileState:
        circuit = state.circuit
        for module in circuit.modules:
            if has_whens(module):
                raise PassError("FSM coverage requires low form (run ExpandWhens first)")
            annos = [
                a
                for a in circuit.annotations
                if isinstance(a, EnumDefAnnotation) and a.module == module.name
            ]
            for anno in annos:
                info = self._analyze(module, anno)
                if info is not None:
                    self.infos.append(info)
                    self._instrument(module, anno, info)
        state.metadata[METRIC] = self.db
        return state

    # -- analysis ---------------------------------------------------------------

    def _analyze(self, module: Module, anno: EnumDefAnnotation) -> Optional[FsmInfo]:
        reg = _find_register(module, anno.target)
        if reg is None:
            return None
        connect = _find_connect(module, anno.target)
        next_expr = connect.expr if connect is not None else Ref(reg.name, reg.type)
        states = dict(anno.states)
        by_value = {v: k for k, v in states.items()}
        width = bit_width(reg.type)

        start = None
        if reg.init is not None and isinstance(reg.init, UIntLiteral):
            start = by_value.get(reg.init.value)

        inlined = _Inliner(module).inline(next_expr)
        info = FsmInfo(module.name, reg.name, anno.enum_name, states, start)
        all_states = sorted(states.values())

        for from_name, from_value in states.items():
            if inlined is None:
                dests: Optional[set[int]] = None
            else:
                substituted = map_expr(
                    inlined,
                    lambda e: UIntLiteral(from_value, width)
                    if isinstance(e, Ref) and e.name == reg.name
                    else e,
                )
                simplified = simplify_deep(substituted)
                dests = possible_next_values(simplified)
            if dests is None:
                # conservative over-approximation: all states reachable
                dests = set(all_states)
                info.over_approximated = True
            for dest in sorted(dests):
                dest_name = by_value.get(dest)
                if dest_name is not None:
                    info.transitions.append((from_name, dest_name))
        return info

    # -- instrumentation -----------------------------------------------------------

    def _instrument(self, module: Module, anno: EnumDefAnnotation, info: FsmInfo) -> None:
        clock = find_clock(module)
        if clock is None:
            return
        reg = _find_register(module, anno.target)
        assert reg is not None
        connect = _find_connect(module, anno.target)
        next_expr = connect.expr if connect is not None else Ref(reg.name, reg.type)
        width = bit_width(reg.type)
        state_ref = Ref(reg.name, reg.type)

        ns = Namespace(declared_names(module))
        for stmt in walk_stmts(module.body):
            if isinstance(stmt, Cover):
                ns.fresh(stmt.name)

        additions = []
        for name, value in info.states.items():
            cover_name = ns.fresh(f"fsm_{reg.name}_{name}")
            pred = prim("eq", state_ref, UIntLiteral(value, width))
            additions.append(Cover(cover_name, clock, pred, TRUE))
            self.db.add(
                METRIC,
                module.name,
                cover_name,
                {"kind": "state", "register": reg.name, "enum": info.enum_name, "state": name},
            )
        not_reset = not_(reg.reset) if reg.reset is not None else TRUE
        for from_name, to_name in info.transitions:
            cover_name = ns.fresh(f"fsm_{reg.name}_{from_name}_to_{to_name}")
            pred = and_(
                prim("eq", state_ref, UIntLiteral(info.states[from_name], width)),
                prim("eq", next_expr, UIntLiteral(info.states[to_name], width)),
                not_reset,
            )
            additions.append(Cover(cover_name, clock, pred, TRUE))
            self.db.add(
                METRIC,
                module.name,
                cover_name,
                {
                    "kind": "transition",
                    "register": reg.name,
                    "enum": info.enum_name,
                    "from": from_name,
                    "to": to_name,
                },
            )
        module.body.extend(additions)


def _find_register(module: Module, name: str) -> Optional[DefRegister]:
    for stmt in module.body:
        if isinstance(stmt, DefRegister) and stmt.name == name:
            return stmt
    return None


def _find_connect(module: Module, name: str) -> Optional[Connect]:
    for stmt in module.body:
        if isinstance(stmt, Connect) and isinstance(stmt.loc, Ref) and stmt.loc.name == name:
            return stmt
    return None


@dataclass
class FsmCoverageReport:
    """State/transition coverage per FSM."""

    fsms: dict[tuple[str, str], dict]  # (module, register) -> report data

    def format(self) -> str:
        lines = []
        for (module, register), data in sorted(self.fsms.items()):
            states, transitions = data["states"], data["transitions"]
            covered_s = sum(1 for c in states.values() if c > 0)
            covered_t = sum(1 for c in transitions.values() if c > 0)
            lines.append(
                f"FSM {module}.{register} ({data['enum']}): "
                f"{covered_s}/{len(states)} states, "
                f"{covered_t}/{len(transitions)} transitions covered"
            )
            for name, count in sorted(states.items()):
                mark = " " if count else "!"
                lines.append(f"  {mark} state {name}: {count}")
            for (from_name, to_name), count in sorted(transitions.items()):
                mark = " " if count else "!"
                lines.append(f"  {mark} {from_name} -> {to_name}: {count}")
        return "\n".join(lines)


def fsm_report(db: CoverageDB, counts, circuit: Circuit) -> FsmCoverageReport:
    from .common import InstanceTree, aggregate_by_module, excluded_module_covers

    tree = InstanceTree(circuit)
    # minimal-basis runs report basis counters only: rebuild elided covers
    counts = db.reconstruct_counts(counts, tree)
    by_module = aggregate_by_module(counts, tree)
    excluded = excluded_module_covers(db, tree)
    fsms: dict[tuple[str, str], dict] = {}
    for module, cover_name, payload in db.covers_of(METRIC):
        if (module, cover_name) in excluded:
            continue  # statically unreachable at every instance
        key = (module, payload["register"])
        data = fsms.setdefault(
            key, {"enum": payload["enum"], "states": {}, "transitions": {}}
        )
        count = by_module.get((module, cover_name), 0)
        if payload["kind"] == "state":
            data["states"][payload["state"]] = count
        else:
            data["transitions"][(payload["from"], payload["to"])] = count
    return FsmCoverageReport(fsms)
