"""Value coverage and the ``cover-values`` limitation study (§6, Figure 12).

The paper's one admitted limitation: covering *every value* of a w-bit
signal with the single cover primitive requires ``2**w`` cover statements —
an exponential blowup — whereas a hypothetical ``cover-values`` primitive
lowers to an array-indexed counter in software or a block RAM on the FPGA.

This module provides both sides of that comparison:

* :class:`CoverValuesNaivePass` — the blowup: one cover per value.
* *value probes* — the efficient implementation, supported natively by the
  treadle and verilator backends (``watch_values`` /
  ``value_probes``): one histogram per signal, one array update per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..ir.namespace import Namespace
from ..ir.nodes import TRUE, Cover, Module, Ref, UIntLiteral, prim
from ..ir.traversal import declared_names, walk_stmts
from ..ir.types import UIntType, bit_width
from ..passes.base import CompileState, Pass, PassError
from .common import CoverageDB
from .line import find_clock

METRIC = "cover_values"

#: refuse to emit more covers than this per signal (the blowup guard)
MAX_NAIVE_COVERS = 1 << 16


class CoverValuesNaivePass(Pass):
    """Lower value coverage to plain cover statements (exponential!).

    ``targets`` maps module names to signal names whose full value range
    should be covered.  This is deliberately the *bad* implementation the
    paper warns about; its cost is what the Figure 12 bench measures.
    """

    def __init__(self, targets: dict[str, Iterable[str]], db: Optional[CoverageDB] = None) -> None:
        self.targets = {m: list(sigs) for m, sigs in targets.items()}
        self.db = db if db is not None else CoverageDB()

    def run(self, state: CompileState) -> CompileState:
        for module in state.circuit.modules:
            signals = self.targets.get(module.name)
            if signals:
                self._instrument(module, signals)
        state.metadata[METRIC] = self.db
        return state

    def _instrument(self, module: Module, signals: list[str]) -> None:
        clock = find_clock(module)
        if clock is None:
            raise PassError(f"module {module.name} has no clock")
        types = {p.name: p.type for p in module.ports}
        for stmt in module.body:
            if hasattr(stmt, "name") and hasattr(stmt, "type"):
                types[stmt.name] = stmt.type
            elif hasattr(stmt, "name") and hasattr(stmt, "value"):
                types[stmt.name] = stmt.value.tpe
        ns = Namespace(declared_names(module))
        for stmt in walk_stmts(module.body):
            if isinstance(stmt, Cover):
                ns.fresh(stmt.name)
        for signal in signals:
            tpe = types.get(signal)
            if tpe is None:
                raise PassError(f"no signal {signal!r} in {module.name}")
            width = bit_width(tpe)
            if (1 << width) > MAX_NAIVE_COVERS:
                raise PassError(
                    f"cover-values on {signal} would need {1 << width} covers; "
                    f"use a backend value probe instead"
                )
            ref = Ref(signal, tpe)
            for value in range(1 << width):
                name = ns.fresh(f"cv_{signal}_{value}")
                pred = prim("eq", ref, UIntLiteral(value, width))
                module.body.append(Cover(name, clock, pred, TRUE))
                self.db.add(
                    METRIC, module.name, name, {"signal": signal, "value": value}
                )


@dataclass
class ValueCoverageReport:
    """Values seen per signal (from either implementation)."""

    signal: str
    width: int
    histogram: dict[int, int]

    @property
    def seen(self) -> int:
        return sum(1 for c in self.histogram.values() if c > 0)

    @property
    def total(self) -> int:
        return 1 << self.width

    def format(self) -> str:
        return (
            f"value coverage of {self.signal}: {self.seen}/{self.total} values seen"
        )


def naive_report(db: CoverageDB, counts, module: str, signal: str, width: int) -> ValueCoverageReport:
    """Assemble a value report from the naive per-value cover counts."""
    histogram: dict[int, int] = {}
    for mod, cover_name, payload in db.covers_of(METRIC):
        if mod == module and payload["signal"] == signal:
            # counts are keyed canonically; naive use assumes top-level module
            histogram[payload["value"]] = counts.get(cover_name, 0)
    return ValueCoverageReport(signal, width, histogram)


def probe_report(signal: str, width: int, histogram: dict[int, int]) -> ValueCoverageReport:
    """Assemble a value report from a backend value probe."""
    return ValueCoverageReport(signal, width, dict(histogram))
