"""HTML coverage reports.

The paper ships bare-bones ASCII reports and notes that "interactive HTML
reports, or similar, ... would significantly increase the amount of code
in the report generators."  This module is that extension: a static,
dependency-free HTML page combining line, toggle, FSM and ready/valid
results, with per-file annotated source when available.
"""

from __future__ import annotations

import html
from typing import Optional

from ..ir.nodes import Circuit
from .common import CoverageDB, CoverCounts, apply_exclusions
from .fsm import fsm_report
from .line import line_report
from .readyvalid import ready_valid_report
from .toggle import toggle_report

_STYLE = """
body { font-family: monospace; margin: 2em; background: #fafafa; }
h1, h2 { font-family: sans-serif; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #ccc; padding: 2px 8px; text-align: left; }
.covered { background: #d4f7d4; }
.uncovered { background: #f7d4d4; }
.count { text-align: right; color: #555; }
.bar { display: inline-block; height: 0.8em; background: #4a4; }
.summary { font-size: 1.1em; }
"""


def _percent_bar(percent: float) -> str:
    return (
        f'<span class="bar" style="width:{percent:.0f}px"></span>'
        f" {percent:.1f}%"
    )


def _line_section(db: CoverageDB, counts: CoverCounts, circuit: Circuit,
                  sources: Optional[dict[str, list[str]]]) -> list[str]:
    report = line_report(db, counts, circuit)
    out = [f'<h2>Line coverage</h2><p class="summary">'
           f'{report.covered}/{report.total} lines {_percent_bar(report.percent)}</p>']
    for file, data in sorted(report.files.items()):
        out.append(f"<h3>{html.escape(file)} ({data.covered}/{data.total})</h3>")
        out.append("<table>")
        text = sources.get(file) if sources else None
        for line, count in sorted(data.counts.items()):
            cls = "covered" if count else "uncovered"
            source = (
                html.escape(text[line - 1].rstrip())
                if text and 0 < line <= len(text)
                else ""
            )
            out.append(
                f'<tr class="{cls}"><td class="count">{count}</td>'
                f"<td>{line}</td><td><pre style='margin:0'>{source}</pre></td></tr>"
            )
        out.append("</table>")
    return out


def _toggle_section(db: CoverageDB, counts: CoverCounts, circuit: Circuit) -> list[str]:
    report = toggle_report(db, counts, circuit)
    if not report.signals:
        return []
    out = [f'<h2>Toggle coverage</h2><p class="summary">'
           f'{report.toggled_bits}/{report.total_bits} bits '
           f'{_percent_bar(report.percent)}</p><table>'
           "<tr><th>signal</th><th>bits toggled</th><th>stuck bits</th></tr>"]
    for (module, signal), bits in sorted(report.signals.items()):
        toggled = sum(1 for c in bits.values() if c > 0)
        stuck = ", ".join(str(b) for b, c in sorted(bits.items()) if c == 0)
        cls = "covered" if toggled == len(bits) else "uncovered"
        out.append(
            f'<tr class="{cls}"><td>{html.escape(module)}.{html.escape(signal)}</td>'
            f"<td>{toggled}/{len(bits)}</td><td>{stuck or '&mdash;'}</td></tr>"
        )
    out.append("</table>")
    return out


def _fsm_section(db: CoverageDB, counts: CoverCounts, circuit: Circuit) -> list[str]:
    report = fsm_report(db, counts, circuit)
    if not report.fsms:
        return []
    out = ["<h2>FSM coverage</h2>"]
    for (module, register), data in sorted(report.fsms.items()):
        out.append(
            f"<h3>{html.escape(module)}.{html.escape(register)} "
            f"({html.escape(data['enum'])})</h3><table>"
            "<tr><th>kind</th><th>element</th><th>count</th></tr>"
        )
        for state, count in sorted(data["states"].items()):
            cls = "covered" if count else "uncovered"
            out.append(
                f'<tr class="{cls}"><td>state</td><td>{html.escape(state)}</td>'
                f'<td class="count">{count}</td></tr>'
            )
        for (src, dst), count in sorted(data["transitions"].items()):
            cls = "covered" if count else "uncovered"
            out.append(
                f'<tr class="{cls}"><td>transition</td>'
                f"<td>{html.escape(src)} &rarr; {html.escape(dst)}</td>"
                f'<td class="count">{count}</td></tr>'
            )
        out.append("</table>")
    return out


def _ready_valid_section(db: CoverageDB, counts: CoverCounts, circuit: Circuit) -> list[str]:
    report = ready_valid_report(db, counts, circuit)
    if not report.bundles:
        return []
    out = [f'<h2>Ready/valid coverage</h2><p class="summary">'
           f"{report.fired}/{report.total} interfaces fired</p><table>"
           "<tr><th>interface</th><th>transfers</th></tr>"]
    for (module, bundle), count in sorted(report.bundles.items()):
        cls = "covered" if count else "uncovered"
        out.append(
            f'<tr class="{cls}"><td>{html.escape(module)}.{html.escape(bundle)}</td>'
            f'<td class="count">{count}</td></tr>'
        )
    out.append("</table>")
    return out


def html_report(
    db: CoverageDB,
    counts: CoverCounts,
    circuit: Circuit,
    sources: Optional[dict[str, list[str]]] = None,
    title: str = "Coverage report",
) -> str:
    """Render a combined HTML coverage report.

    ``sources`` optionally maps file names to source lines for annotated
    line coverage.  The output is a single self-contained page.
    """
    from .common import InstanceTree

    # minimal-basis runs report basis counters only: rebuild elided covers
    counts = db.reconstruct_counts(counts, InstanceTree(circuit))
    counts, excluded = apply_exclusions(counts, db)
    summary = (
        f"<p>{len(counts)} cover points, "
        f"{sum(1 for c in counts.values() if c)} covered"
    )
    if excluded:
        summary += (
            f" ({len(excluded)} excluded from the denominator as "
            "statically unreachable)"
        )
    summary += "</p>"
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        summary,
    ]
    if "line" in db.entries:
        parts.extend(_line_section(db, counts, circuit, sources))
    if "toggle" in db.entries:
        parts.extend(_toggle_section(db, counts, circuit))
    if "fsm" in db.entries:
        parts.extend(_fsm_section(db, counts, circuit))
    if "ready_valid" in db.entries:
        parts.extend(_ready_valid_section(db, counts, circuit))
    if excluded:
        parts.append(
            "<h2>Excluded cover points</h2>"
            "<p>Proven unreachable by the static screen; counting them "
            "as coverable would deflate every percentage above.</p><table>"
            "<tr><th>cover point</th><th>reason</th></tr>"
        )
        for name, reason in sorted(excluded.items()):
            parts.append(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{html.escape(reason)}</td></tr>"
            )
        parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts)
