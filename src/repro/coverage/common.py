"""Common coverage library: metadata database, counts, merging, filtering.

This is the "Common Library" row of the paper's Table 1.  The two data
structures that cross the compiler/simulator boundary are:

* :class:`CoverageDB` — metadata emitted by instrumentation passes, keyed by
  ``(metric, module, cover_name)``.  Pure compile-time information.
* cover counts — ``dict[str, int]`` from canonical hierarchical cover names
  (``inst.path.name``) to saturating counts.  Pure run-time information.

Because counts share one namespace across every backend, merging results
from different simulators (§5.3) is dictionary addition with saturation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..ir.nodes import Circuit, Cover, DefInstance
from ..ir.traversal import walk_stmts
from ..backends.api import CoverCounts, saturate

#: CoverageDB serialization format version this library reads and writes
COVERAGE_DB_VERSION = 1


class CoverageDBError(ValueError):
    """A coverage database file is malformed or from an unknown version."""


class InvalidCountsError(ValueError):
    """Cover counts contain values that cannot be merged (see the issues)."""

    def __init__(self, message: str, issues: Optional[list[str]] = None) -> None:
        super().__init__(message)
        self.issues = issues or []


@dataclass
class CoverageDB:
    """Metadata produced by instrumentation passes.

    ``entries[metric][module][cover_name]`` is a JSON-compatible payload
    whose schema is metric specific (see each pass module).

    ``exclusions`` maps *canonical* hierarchical cover keys
    (``inst.path.name``) to a human-readable reason the point is excluded
    from coverage denominators — typically a static unreachability proof
    from :mod:`repro.analysis.reachability`.  Canonical (not module-level)
    keys matter: a module instantiated twice can be dead in one instance
    and live in the other (the paper's read-only-I$ finding, §5.5).

    ``recipes`` is the minimal-basis reconstruction table written by
    :class:`~repro.analysis.implication.MinimizeCoversPass`:
    ``recipes[module][elided_cover]`` is a list of signed
    ``[coefficient, basis_cover]`` terms (module-local names) whose
    clamped sum reproduces the elided cover's count at every instance
    path.  An empty list marks a statically dead cover (reconstructs as
    0).  See :meth:`reconstruct_counts` and DESIGN.md §15.
    """

    entries: dict[str, dict[str, dict[str, Any]]] = field(default_factory=dict)
    exclusions: dict[str, str] = field(default_factory=dict)
    recipes: dict[str, dict[str, list]] = field(default_factory=dict)

    def add(self, metric: str, module: str, cover_name: str, payload: Any) -> None:
        self.entries.setdefault(metric, {}).setdefault(module, {})[cover_name] = payload

    def add_recipe(self, module: str, cover_name: str, terms: Iterable) -> None:
        """Record how an elided cover is reconstructed from basis counts."""
        self.recipes.setdefault(module, {})[cover_name] = [
            [int(coefficient), str(basis)] for coefficient, basis in terms
        ]

    def reconstruct_counts(
        self,
        counts: CoverCounts,
        tree: "InstanceTree",
        counter_width: Optional[int] = None,
    ) -> CoverCounts:
        """Fill in elided covers from basis counts via the recipe table.

        For every instance path of every module with recipes, the elided
        cover's canonical key gets the recipe's term sum, clamped at the
        ``counter_width`` saturation limit when one is given (which makes
        reconstruction bit-identical to a materialized saturating
        counter — see the soundness note in
        :mod:`repro.analysis.implication`).  Keys already present in
        ``counts`` are kept untouched, so merging full and minimized
        shards stays safe and repeated reconstruction is idempotent.
        A no-op (returning a copy) when the DB carries no recipes.
        """
        out: CoverCounts = dict(counts)
        if not self.recipes:
            return out
        limit = (1 << counter_width) - 1 if counter_width is not None else None
        for module, module_recipes in self.recipes.items():
            for path in tree.instance_paths(module):
                for name, terms in module_recipes.items():
                    key = f"{path}{name}"
                    if key in out:
                        continue
                    total = 0
                    for coefficient, basis in terms:
                        total += coefficient * out.get(f"{path}{basis}", 0)
                    if limit is not None:
                        total = max(0, min(total, limit))
                    out[key] = total
        return out

    def exclude(self, cover_key: str, reason: str) -> None:
        """Mark a canonical cover key as excluded from denominators."""
        self.exclusions[cover_key] = reason

    def is_excluded(self, cover_key: str) -> bool:
        return cover_key in self.exclusions

    def get(self, metric: str, module: str) -> dict[str, Any]:
        return self.entries.get(metric, {}).get(module, {})

    def metrics(self) -> list[str]:
        return sorted(self.entries)

    def covers_of(self, metric: str) -> Iterable[tuple[str, str, Any]]:
        """Yield (module, cover_name, payload) for one metric."""
        for module, covers in self.entries.get(metric, {}).items():
            for name, payload in covers.items():
                yield module, name, payload

    def count(self, metric: str) -> int:
        """Number of cover statements a metric declared (module level)."""
        return sum(len(covers) for covers in self.entries.get(metric, {}).values())

    def merge(self, other: "CoverageDB") -> "CoverageDB":
        """Union of two databases.

        The same ``(metric, module, cover_name)`` key may appear in both
        sides only with an *identical* payload (e.g. two instrumentation
        runs over the same module).  Differing payloads mean the databases
        describe different circuits — silently keeping either side would
        mis-locate every report line for that cover, so the collision
        raises :class:`CoverageDBError` naming the key instead.
        """
        merged = CoverageDB(
            json.loads(json.dumps(self.entries)),
            dict(self.exclusions),
            json.loads(json.dumps(self.recipes)),
        )
        for metric, modules in other.entries.items():
            for module, covers in modules.items():
                existing = merged.entries.get(metric, {}).get(module, {})
                for name, payload in covers.items():
                    if name in existing and existing[name] != payload:
                        raise CoverageDBError(
                            f"conflicting payloads for "
                            f"({metric!r}, {module!r}, {name!r}) in merge: "
                            f"{existing[name]!r} != {payload!r}"
                        )
                    merged.add(metric, module, name, payload)
        # exclusion proofs union; when both sides excluded the same key the
        # first reason wins (both agree the point is out of the denominator)
        for key, reason in other.exclusions.items():
            merged.exclusions.setdefault(key, reason)
        # recipes describe the same static structure, so — like entries —
        # a shared key must carry an identical recipe on both sides
        for module, module_recipes in other.recipes.items():
            existing_recipes = merged.recipes.get(module, {})
            for name, terms in module_recipes.items():
                if name in existing_recipes and existing_recipes[name] != terms:
                    raise CoverageDBError(
                        f"conflicting recipes for ({module!r}, {name!r}) "
                        f"in merge: {existing_recipes[name]!r} != {terms!r}"
                    )
                merged.recipes.setdefault(module, {})[name] = json.loads(
                    json.dumps(terms)
                )
        return merged

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> str:
        payload: dict[str, Any] = {
            "version": COVERAGE_DB_VERSION,
            "entries": self.entries,
        }
        if self.exclusions:
            payload["exclusions"] = self.exclusions
        if self.recipes:
            payload["recipes"] = self.recipes
        return json.dumps(payload, indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str, source: Optional[str] = None) -> "CoverageDB":
        """Deserialize, validating the version and the entries shape.

        ``source`` (a file name) is included in error messages so a bad
        shard or DB file can be identified in a multi-file campaign.
        """
        where = f" in {source}" if source else ""

        def fail(detail: str) -> "CoverageDBError":
            return CoverageDBError(f"bad coverage DB{where}: {detail}")

        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise fail(f"not valid JSON ({error})") from error
        if not isinstance(data, dict):
            raise fail(f"expected a JSON object, got {type(data).__name__}")
        version = data.get("version")
        if version is None:
            raise fail("missing 'version' field")
        if version != COVERAGE_DB_VERSION:
            raise fail(
                f"unsupported version {version!r} "
                f"(this library reads version {COVERAGE_DB_VERSION})"
            )
        entries = data.get("entries")
        if not isinstance(entries, dict):
            raise fail(
                "missing or non-object 'entries' field "
                f"(got {type(entries).__name__})"
            )
        for metric, modules in entries.items():
            if not isinstance(modules, dict):
                raise fail(f"metric {metric!r}: expected an object of modules")
            for module, covers in modules.items():
                if not isinstance(covers, dict):
                    raise fail(
                        f"metric {metric!r}, module {module!r}: "
                        "expected an object of cover payloads"
                    )
        exclusions = data.get("exclusions", {})
        if not isinstance(exclusions, dict):
            raise fail(
                f"non-object 'exclusions' field (got {type(exclusions).__name__})"
            )
        for key, reason in exclusions.items():
            if not isinstance(reason, str):
                raise fail(f"exclusion {key!r}: reason must be a string")
        recipes = data.get("recipes", {})
        if not isinstance(recipes, dict):
            raise fail(f"non-object 'recipes' field (got {type(recipes).__name__})")
        for module, module_recipes in recipes.items():
            if not isinstance(module_recipes, dict):
                raise fail(f"recipes for module {module!r}: expected an object")
            for name, terms in module_recipes.items():
                if not isinstance(terms, list) or not all(
                    isinstance(t, list)
                    and len(t) == 2
                    and type(t[0]) is int
                    and isinstance(t[1], str)
                    for t in terms
                ):
                    raise fail(
                        f"recipe ({module!r}, {name!r}): expected a list of "
                        "[coefficient, basis-cover] pairs"
                    )
        return CoverageDB(entries, exclusions, recipes)


class InstanceTree:
    """The circuit's instance hierarchy, for resolving canonical cover keys."""

    def __init__(self, circuit: Circuit) -> None:
        self.main = circuit.main
        self.children: dict[str, dict[str, str]] = {}
        for module in circuit.modules:
            table: dict[str, str] = {}
            for stmt in walk_stmts(module.body):
                if isinstance(stmt, DefInstance):
                    table[stmt.name] = stmt.module
            self.children[module.name] = table

    def resolve(self, key: str) -> tuple[str, str]:
        """Map a canonical cover key to ``(module, local_cover_name)``."""
        parts = key.split(".")
        module = self.main
        for part in parts[:-1]:
            module = self.children[module][part]
        return module, parts[-1]

    def instance_paths(self, module: str) -> list[str]:
        """All dotted instance paths at which ``module`` appears."""
        out: list[str] = []

        def walk(current: str, path: str) -> None:
            if current == module:
                out.append(path)
            for inst, child in self.children.get(current, {}).items():
                walk(child, f"{path}{inst}." if path else f"{inst}.")

        walk(self.main, "")
        return out


def merge_counts(*results: CoverCounts, counter_width: Optional[int] = None) -> CoverCounts:
    """Merge counts from any number of backends (saturating addition).

    This is the paper's headline property: "by construction, coverage can be
    trivially merged across backends".
    """
    merged: CoverCounts = {}
    for counts in results:
        for name, count in counts.items():
            merged[name] = merged.get(name, 0) + count
    if counter_width is not None:
        merged = {name: saturate(c, counter_width) for name, c in merged.items()}
    return merged


def count_issues(counts: CoverCounts, counter_width: Optional[int] = None) -> list[str]:
    """Describe every value in ``counts`` that cannot be merged as-is.

    Invalid values: non-``int`` counts (including ``bool``), negative
    counts, and — when ``counter_width`` is given — counts exceeding the
    saturation limit of that counter width (a backend can never report
    more than ``2**width - 1``, so a larger value is corrupt data).
    """
    issues: list[str] = []
    limit = (1 << counter_width) - 1 if counter_width is not None else None
    for name, count in counts.items():
        if type(count) is not int:
            issues.append(f"{name}: non-integer count {count!r}")
        elif count < 0:
            issues.append(f"{name}: negative count {count}")
        elif limit is not None and count > limit:
            issues.append(
                f"{name}: count {count} exceeds {counter_width}-bit "
                f"saturation limit {limit}"
            )
    return issues


def checked_merge_counts(
    *results: CoverCounts,
    counter_width: Optional[int] = None,
    on_invalid: str = "raise",
) -> CoverCounts:
    """:func:`merge_counts` with validation of every input map.

    ``on_invalid`` selects the policy for bad values:

    * ``"raise"`` — raise :class:`InvalidCountsError` listing every issue,
    * ``"clamp"`` — coerce into range (negatives to 0, oversized counts to
      the saturation limit); non-integer values are dropped,
    * ``"drop"`` — silently skip invalid entries.
    """
    if on_invalid not in ("raise", "clamp", "drop"):
        raise ValueError(f"on_invalid must be raise|clamp|drop, got {on_invalid!r}")
    if on_invalid == "raise":
        issues = [i for counts in results for i in count_issues(counts, counter_width)]
        if issues:
            raise InvalidCountsError(
                f"refusing to merge {len(issues)} invalid count(s): "
                + "; ".join(issues[:5])
                + ("; ..." if len(issues) > 5 else ""),
                issues,
            )
        return merge_counts(*results, counter_width=counter_width)
    limit = (1 << counter_width) - 1 if counter_width is not None else None
    cleaned: list[CoverCounts] = []
    for counts in results:
        good: CoverCounts = {}
        for name, count in counts.items():
            if type(count) is not int:
                continue  # unrepresentable either way
            if count < 0:
                if on_invalid == "clamp":
                    good[name] = 0
                continue
            if limit is not None and count > limit:
                if on_invalid == "clamp":
                    good[name] = limit
                continue
            good[name] = count
        cleaned.append(good)
    return merge_counts(*cleaned, counter_width=counter_width)


def apply_exclusions(counts: CoverCounts, db: CoverageDB) -> tuple[CoverCounts, dict[str, str]]:
    """Split counts into (countable, excluded-with-reason) by the DB's table.

    The first map is what reports should compute percentages over; the
    second is what they should *show* so an excluded point is visibly
    excluded rather than silently gone.  A nonzero count on an excluded
    key is kept in the excluded map (the reason string still explains why
    it is out of the denominator) — report generators may flag it, since a
    hit on a "statically unreachable" point means the proof and the
    hardware disagree.
    """
    countable: CoverCounts = {}
    excluded: dict[str, str] = {}
    for name, count in counts.items():
        if name in db.exclusions:
            excluded[name] = db.exclusions[name]
        else:
            countable[name] = count
    return countable, excluded


def covered_points(counts: CoverCounts, threshold: int = 1) -> set[str]:
    """Cover points hit at least ``threshold`` times."""
    return {name for name, count in counts.items() if count >= threshold}


def filter_covered(counts: CoverCounts, threshold: int = 1) -> set[str]:
    """Cover points NOT yet covered ``threshold`` times (§5.3 removal).

    These are the points that still need hardware counters in a subsequent
    FPGA-accelerated run; already-covered points can be excluded, reducing
    instrumentation area.
    """
    return {name for name, count in counts.items() if count < threshold}


def aggregate_by_module(counts: CoverCounts, tree: InstanceTree) -> dict[tuple[str, str], int]:
    """Sum counts over all instances of each module's cover statements."""
    out: dict[tuple[str, str], int] = {}
    for key, count in counts.items():
        module_cover = tree.resolve(key)
        out[module_cover] = out.get(module_cover, 0) + count
    return out


def excluded_module_covers(db: CoverageDB, tree: InstanceTree) -> set[tuple[str, str]]:
    """Module-level cover keys excluded at *every* instance path.

    Exclusions are canonical (per-instance) but report generators
    aggregate by module, so a ``(module, cover_name)`` pair leaves a
    report's denominator only when no instance of that module can reach
    it — a module dead in one instance and live in another (the
    read-only-I$ / writable-D$ pair) keeps its covers countable.
    """
    if not db.exclusions:
        return set()
    resolved: set[tuple[str, str]] = set()
    for key in db.exclusions:
        try:
            resolved.add(tree.resolve(key))
        except KeyError:
            continue  # stale key from another circuit revision
    out: set[tuple[str, str]] = set()
    for module, local in resolved:
        paths = tree.instance_paths(module)
        if paths and all(f"{p}{local}" in db.exclusions for p in paths):
            out.add((module, local))
    return out


def counts_to_json(counts: CoverCounts) -> str:
    return json.dumps(counts, indent=2, sort_keys=True)


def counts_from_json(text: str, source: Optional[str] = None) -> CoverCounts:
    """Deserialize a counts map, validating shape and values.

    Like :meth:`CoverageDB.from_json`, failures raise a *located* error
    (:class:`InvalidCountsError`, naming ``source`` when given) at load
    time — instead of handing malformed data onward to surface later as a
    ``TypeError`` deep inside a merge.
    """
    where = f" in {source}" if source else ""

    def fail(detail: str, issues: Optional[list[str]] = None) -> InvalidCountsError:
        return InvalidCountsError(f"bad cover counts{where}: {detail}", issues)

    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise fail(f"not valid JSON ({error})") from error
    if not isinstance(data, dict):
        raise fail(f"expected a JSON object of counts, got {type(data).__name__}")
    issues: list[str] = []
    for key, value in data.items():
        if not isinstance(key, str):
            issues.append(f"non-string cover name {key!r}")
        elif type(value) is not int:
            issues.append(f"{key}: non-integer count {value!r}")
        elif value < 0:
            issues.append(f"{key}: negative count {value}")
    if issues:
        raise fail(
            f"{len(issues)} invalid entr{'y' if len(issues) == 1 else 'ies'}: "
            + "; ".join(issues[:5])
            + ("; ..." if len(issues) > 5 else ""),
            issues,
        )
    return dict(data)


def all_cover_names(circuit: Circuit, tree: Optional[InstanceTree] = None) -> list[str]:
    """Every canonical cover key the circuit will report (all instances)."""
    tree = tree or InstanceTree(circuit)
    out: list[str] = []
    for module in circuit.modules:
        local = [s.name for s in walk_stmts(module.body) if isinstance(s, Cover)]
        if not local:
            continue
        for path in tree.instance_paths(module.name):
            out.extend(f"{path}{name}" for name in local)
    return sorted(out)
