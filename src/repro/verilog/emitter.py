"""Emit lowered IR as structural (System)Verilog.

Reproduces the paper's §2.4/§3.2 flow: the compiler emits a small,
synthesizable Verilog subset, with each ``cover`` IR statement lowered to an
*immediate* SystemVerilog cover statement (the form supported by Yosys, as
the paper notes).  This output is what would feed Verilator or SymbiYosys in
the original toolchain; here it serves export and golden-file testing.

Requires low form (no ``When`` blocks).
"""

from __future__ import annotations

from io import StringIO

from ..ir.nodes import (
    Circuit,
    Connect,
    Cover,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    MemRead,
    MemWrite,
    Module,
    Mux,
    PrimOp,
    Ref,
    SIntLiteral,
    Stop,
    UIntLiteral,
    When,
)
from ..ir.types import ClockType, bit_width, is_signed
from ..ir.traversal import walk_stmts

_IND = "  "


class VerilogError(Exception):
    """Raised when a circuit cannot be expressed in the Verilog subset."""


def _width_decl(width: int) -> str:
    return f"[{width - 1}:0] " if width > 1 else ""


def _sgn(expr: Expr, text: str) -> str:
    return f"$signed({text})" if is_signed(expr.tpe) else text


_BINOPS = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "rem": "%",
    "lt": "<",
    "leq": "<=",
    "gt": ">",
    "geq": ">=",
    "eq": "==",
    "neq": "!=",
    "and": "&",
    "or": "|",
    "xor": "^",
}


def emit_expr(expr: Expr) -> str:
    """Render one expression as Verilog."""
    if isinstance(expr, Ref):
        return expr.name
    if isinstance(expr, InstPort):
        return f"{expr.instance}_{expr.port}"
    if isinstance(expr, UIntLiteral):
        return f"{expr.width}'h{expr.value:x}"
    if isinstance(expr, SIntLiteral):
        raw = expr.value & ((1 << expr.width) - 1)
        return f"$signed({expr.width}'h{raw:x})"
    if isinstance(expr, Mux):
        return f"({emit_expr(expr.cond)} ? {_arm(expr.tval)} : {_arm(expr.fval)})"
    if isinstance(expr, MemRead):
        return f"{expr.mem}[{emit_expr(expr.addr)}]"
    if isinstance(expr, PrimOp):
        return _emit_primop(expr)
    raise VerilogError(f"cannot emit expression {expr!r}")


def _arm(expr: Expr) -> str:
    return _sgn(expr, emit_expr(expr))


def _emit_primop(expr: PrimOp) -> str:
    op = expr.op
    args = expr.args
    if op in _BINOPS:
        a, b = args
        return f"({_sgn(a, emit_expr(a))} {_BINOPS[op]} {_sgn(b, emit_expr(b))})"
    if op == "not":
        return f"(~{emit_expr(args[0])})"
    if op == "neg":
        return f"(-{_sgn(args[0], emit_expr(args[0]))})"
    if op == "cat":
        return f"{{{emit_expr(args[0])}, {emit_expr(args[1])}}}"
    if op == "bits":
        hi, lo = expr.consts
        inner = emit_expr(args[0])
        if isinstance(args[0], (PrimOp, Mux)):
            # Verilog cannot slice an expression; widen via a cast-free shift
            if lo == 0:
                return inner  # truncation happens at the assignment width
            return f"({inner} >> {lo})"
        if hi == lo:
            return f"{inner}[{hi}]"
        return f"{inner}[{hi}:{lo}]"
    if op == "head":
        (count,) = expr.consts
        width = bit_width(args[0].tpe)
        return f"({emit_expr(args[0])} >> {width - count})"
    if op == "tail":
        return emit_expr(args[0])
    if op == "shl":
        return f"({emit_expr(args[0])} << {expr.consts[0]})"
    if op == "shr":
        a = args[0]
        if is_signed(a.tpe):
            return f"($signed({emit_expr(a)}) >>> {expr.consts[0]})"
        return f"({emit_expr(a)} >> {expr.consts[0]})"
    if op == "dshl":
        return f"({emit_expr(args[0])} << {emit_expr(args[1])})"
    if op == "dshr":
        a = args[0]
        if is_signed(a.tpe):
            return f"($signed({emit_expr(a)}) >>> {emit_expr(args[1])})"
        return f"({emit_expr(a)} >> {emit_expr(args[1])})"
    if op == "andr":
        return f"(&{emit_expr(args[0])})"
    if op == "orr":
        return f"(|{emit_expr(args[0])})"
    if op == "xorr":
        return f"(^{emit_expr(args[0])})"
    if op == "pad":
        a = args[0]
        if is_signed(a.tpe):
            return f"$signed({emit_expr(a)})"
        return emit_expr(a)
    if op in ("asUInt", "asSInt"):
        return emit_expr(args[0])
    raise VerilogError(f"cannot emit primop {op}")


def emit_module(circuit: Circuit, module: Module, out: StringIO, use_sv_cover: bool = True) -> None:
    if any(isinstance(s, When) for s in walk_stmts(module.body)):
        raise VerilogError(f"module {module.name} is not in low form")

    ports = []
    for p in module.ports:
        width = 1 if isinstance(p.type, ClockType) else bit_width(p.type)
        direction = "input" if p.direction == "input" else "output"
        signed = " signed" if is_signed(p.type) else ""
        ports.append(f"{_IND}{direction}{signed} {_width_decl(width)}{p.name}")
    out.write(f"module {module.name}(\n" + ",\n".join(ports) + "\n);\n")

    regs: list[DefRegister] = []
    covers: list[Cover] = []
    stops: list[Stop] = []
    writes: list[MemWrite] = []
    connects: dict[str, Connect] = {}
    inst_connects: dict[str, list[Connect]] = {}
    for stmt in module.body:
        if isinstance(stmt, Connect):
            if isinstance(stmt.loc, InstPort):
                inst_connects.setdefault(stmt.loc.instance, []).append(stmt)
            else:
                connects[stmt.loc.name] = stmt
        elif isinstance(stmt, DefRegister):
            regs.append(stmt)
        elif isinstance(stmt, Cover):
            covers.append(stmt)
        elif isinstance(stmt, Stop):
            stops.append(stmt)
        elif isinstance(stmt, MemWrite):
            writes.append(stmt)

    for stmt in module.body:
        if isinstance(stmt, DefWire):
            signed = " signed" if is_signed(stmt.type) else ""
            out.write(f"{_IND}wire{signed} {_width_decl(bit_width(stmt.type))}{stmt.name};\n")
        elif isinstance(stmt, DefNode):
            tpe = stmt.value.tpe
            signed = " signed" if is_signed(tpe) else ""
            out.write(
                f"{_IND}wire{signed} {_width_decl(bit_width(tpe))}{stmt.name} = "
                f"{emit_expr(stmt.value)};\n"
            )
        elif isinstance(stmt, DefRegister):
            signed = " signed" if is_signed(stmt.type) else ""
            out.write(f"{_IND}reg{signed} {_width_decl(bit_width(stmt.type))}{stmt.name};\n")
        elif isinstance(stmt, DefMemory):
            out.write(
                f"{_IND}reg {_width_decl(bit_width(stmt.data_type))}{stmt.name} "
                f"[0:{stmt.depth - 1}];\n"
            )
        elif isinstance(stmt, DefInstance):
            pass

    # instances: child outputs surface as wires named ``inst_port``
    for stmt in module.body:
        if isinstance(stmt, DefInstance):
            conns = []
            for c in inst_connects.get(stmt.name, []):
                assert isinstance(c.loc, InstPort)
                conns.append(f".{c.loc.port}({emit_expr(c.expr)})")
            child = circuit.module(stmt.module)
            if child is not None:
                for p in child.ports:
                    if p.direction == "output":
                        wire = f"{stmt.name}_{p.name}"
                        out.write(f"{_IND}wire {_width_decl(bit_width(p.type))}{wire};\n")
                        conns.append(f".{p.name}({wire})")
            out.write(f"{_IND}{stmt.module} {stmt.name} (" + ", ".join(conns))
            out.write(");\n")

    # continuous assignments for wires and outputs
    for name, stmt in connects.items():
        if any(r.name == name for r in regs):
            continue
        out.write(f"{_IND}assign {name} = {emit_expr(stmt.expr)};\n")

    # sequential logic
    clock_groups: dict[str, list[str]] = {}

    def add_seq(clock: Expr, line: str) -> None:
        clock_groups.setdefault(emit_expr(clock), []).append(line)

    for reg in regs:
        stmt = connects.get(reg.name)
        next_text = emit_expr(stmt.expr) if stmt is not None else reg.name
        if reg.reset is not None and reg.init is not None:
            add_seq(
                reg.clock,
                f"if ({emit_expr(reg.reset)}) {reg.name} <= {emit_expr(reg.init)}; "
                f"else {reg.name} <= {next_text};",
            )
        else:
            add_seq(reg.clock, f"{reg.name} <= {next_text};")
    for w in writes:
        add_seq(
            w.clock,
            f"if ({emit_expr(w.en)}) {w.mem}[{emit_expr(w.addr)}] <= {emit_expr(w.data)};",
        )
    for c in covers:
        if use_sv_cover:
            add_seq(c.clock, f"{c.name}: cover(({emit_expr(c.pred)}) && ({emit_expr(c.en)}));")
        else:
            add_seq(
                c.clock,
                f"if (({emit_expr(c.pred)}) && ({emit_expr(c.en)})) ; // cover {c.name}",
            )
    for s_ in stops:
        add_seq(
            s_.clock,
            f"if (({emit_expr(s_.pred)}) && ({emit_expr(s_.en)})) $finish; // stop {s_.name}",
        )

    for clock_text, lines in clock_groups.items():
        out.write(f"{_IND}always @(posedge {clock_text}) begin\n")
        for line in lines:
            out.write(f"{_IND}{_IND}{line}\n")
        out.write(f"{_IND}end\n")

    out.write("endmodule\n")


def emit_verilog(circuit: Circuit, use_sv_cover: bool = True) -> str:
    """Emit the whole circuit as Verilog text.

    ``use_sv_cover`` selects immediate SystemVerilog cover statements (the
    Yosys/SymbiYosys-compatible form); otherwise covers become comments.
    """
    out = StringIO()
    out.write("// Generated by repro (simulator independent coverage)\n")
    for i, module in enumerate(circuit.modules):
        if i:
            out.write("\n")
        emit_module(circuit, module, out, use_sv_cover)
    return out.getvalue()
