"""Structural Verilog emission (export path toward Verilator/SymbiYosys)."""

from .emitter import VerilogError, emit_expr, emit_verilog

__all__ = ["VerilogError", "emit_expr", "emit_verilog"]
