"""VCD waveforms: record, parse, and replay (the Table 2 methodology).

The paper isolates simulator run time from testbench overhead by recording
a waveform VCD from a real test run and then generating "a minimal
testbench that only replays the top-level inputs from the VCD".  This
package reproduces that flow: :class:`VcdRecorder` captures port activity
from any backend, :func:`parse_vcd` reads it back, and
:class:`InputReplay` drives a fresh simulation from the recorded inputs.
"""

from .reader import VcdData, VcdParseError, parse_vcd
from .replay import InputReplay, record_inputs, replay_counts
from .writer import VcdRecorder, VcdWriter

__all__ = [
    "InputReplay",
    "VcdData",
    "VcdParseError",
    "VcdRecorder",
    "VcdWriter",
    "parse_vcd",
    "record_inputs",
    "replay_counts",
]
