"""Input-replay testbenches (the paper's overhead-isolation harness).

``record_inputs`` runs a real testbench once under any backend while
recording the top-level inputs; ``InputReplay`` then drives a fresh
simulation from the recording — "a minimal testbench that only replays the
top-level inputs from the VCD", isolating raw simulator throughput from
stimulus generation for the Table 2 / Figure 8 measurements.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..backends.api import CoverCounts
from .reader import VcdData, parse_vcd
from .writer import VcdRecorder


def record_inputs(sim, input_widths: dict[str, int], drive: Callable, cycles: int) -> str:
    """Run ``drive(sim, cycle)`` for each cycle, recording inputs to VCD text.

    ``drive`` pokes whatever stimulus it likes before each clock edge.
    """
    recorder = VcdRecorder(sim, input_widths)
    for cycle in range(cycles):
        drive(sim, cycle)
        recorder.cycle()
    return recorder.finish()


class InputReplay:
    """Replays recorded input vectors into a simulation."""

    def __init__(self, vcd_text_or_data, inputs: Optional[list[str]] = None) -> None:
        data = (
            vcd_text_or_data
            if isinstance(vcd_text_or_data, VcdData)
            else parse_vcd(vcd_text_or_data)
        )
        self.data = data
        names = inputs if inputs is not None else list(data.signals)
        self.vectors = data.as_cycles(names)
        self.names = names

    @property
    def cycles(self) -> int:
        return len(self.vectors)

    def run(self, sim, cycles: Optional[int] = None) -> None:
        """Poke each recorded vector and step, for ``cycles`` (default all)."""
        limit = self.cycles if cycles is None else min(cycles, self.cycles)
        poke = sim.poke
        step = sim.step
        previous: dict[str, int] = {}
        for vector in self.vectors[:limit]:
            for name, value in vector.items():
                if previous.get(name) != value:
                    poke(name, value)
                    previous[name] = value
            step(1)


def replay_counts(backend, state_or_circuit, replay: InputReplay) -> CoverCounts:
    """Compile with ``backend``, run the replay, return cover counts."""
    if hasattr(backend, "compile_state") and not hasattr(state_or_circuit, "module_names"):
        sim = backend.compile_state(state_or_circuit)
    else:
        sim = backend.compile(state_or_circuit)
    replay.run(sim)
    return sim.cover_counts()
