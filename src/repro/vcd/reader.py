"""VCD parsing back into per-time signal values."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class VcdData:
    """Parsed waveform: signal declarations and value changes."""

    signals: dict[str, int] = field(default_factory=dict)  # name -> width
    #: per signal: sorted list of (time, value)
    changes: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    end_time: int = 0

    def value_at(self, name: str, time: int) -> int:
        """The value of ``name`` at ``time`` (0 before the first change)."""
        history = self.changes.get(name, [])
        value = 0
        for t, v in history:
            if t > time:
                break
            value = v
        return value

    def as_cycles(self, names: list[str]) -> list[dict[str, int]]:
        """Expand the dump into one value-map per timestep."""
        out = []
        current = {name: 0 for name in names}
        pending: dict[int, dict[str, int]] = {}
        for name in names:
            for t, v in self.changes.get(name, []):
                pending.setdefault(t, {})[name] = v
        for time in range(self.end_time):
            if time in pending:
                current.update(pending[time])
            out.append(dict(current))
        return out


def parse_vcd(text: str) -> VcdData:
    """Parse VCD text (the subset our writer produces plus common variants)."""
    data = VcdData()
    id_to_name: dict[str, str] = {}
    time = 0
    in_definitions = True
    tokens = text.split("\n")
    i = 0
    while i < len(tokens):
        line = tokens[i].strip()
        i += 1
        if not line:
            continue
        if in_definitions:
            if line.startswith("$var"):
                parts = line.split()
                # $var wire <width> <id> <name> [indices] $end
                width = int(parts[2])
                code = parts[3]
                name = parts[4]
                data.signals[name] = width
                id_to_name[code] = name
                data.changes[name] = []
            elif line.startswith("$enddefinitions"):
                in_definitions = False
            continue
        if line.startswith("#"):
            time = int(line[1:])
            data.end_time = max(data.end_time, time)
        elif line.startswith("b") or line.startswith("B"):
            value_text, _, code = line[1:].partition(" ")
            name = id_to_name.get(code.strip())
            if name is not None:
                value = int(value_text.replace("x", "0").replace("z", "0"), 2)
                data.changes[name].append((time, value))
        elif line[0] in "01xzXZ":
            code = line[1:]
            name = id_to_name.get(code)
            if name is not None:
                value = 1 if line[0] == "1" else 0
                data.changes[name].append((time, value))
    return data
