"""VCD parsing back into per-time signal values."""

from __future__ import annotations

from dataclasses import dataclass, field


class VcdParseError(ValueError):
    """A VCD file is malformed; the message carries the 1-based line number."""

    def __init__(self, line_number: int, line: str, detail: str) -> None:
        shown = line if len(line) <= 60 else line[:57] + "..."
        super().__init__(f"VCD parse error at line {line_number}: {detail} ({shown!r})")
        self.line_number = line_number
        self.line = line
        self.detail = detail


@dataclass
class VcdData:
    """Parsed waveform: signal declarations and value changes."""

    signals: dict[str, int] = field(default_factory=dict)  # name -> width
    #: per signal: sorted list of (time, value)
    changes: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    end_time: int = 0

    def value_at(self, name: str, time: int) -> int:
        """The value of ``name`` at ``time`` (0 before the first change)."""
        history = self.changes.get(name, [])
        value = 0
        for t, v in history:
            if t > time:
                break
            value = v
        return value

    def as_cycles(self, names: list[str]) -> list[dict[str, int]]:
        """Expand the dump into one value-map per timestep."""
        out = []
        current = {name: 0 for name in names}
        pending: dict[int, dict[str, int]] = {}
        for name in names:
            for t, v in self.changes.get(name, []):
                pending.setdefault(t, {})[name] = v
        for time in range(self.end_time):
            if time in pending:
                current.update(pending[time])
            out.append(dict(current))
        return out


def parse_vcd(text: str) -> VcdData:
    """Parse VCD text (the subset our writer produces plus common variants).

    Malformed input — truncated headers, garbage declarations, bad
    timestamps or value changes — raises :class:`VcdParseError` naming the
    offending line, so a corrupted waveform shard is a diagnosable artifact
    rather than an unhandled ``ValueError``/``IndexError``.
    """
    data = VcdData()
    id_to_name: dict[str, str] = {}
    time = 0
    in_definitions = True
    lines = text.split("\n")
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue

        def fail(detail: str) -> VcdParseError:
            return VcdParseError(line_number, line, detail)

        if in_definitions:
            if line.startswith("$var"):
                parts = line.split()
                # $var wire <width> <id> <name> [indices] $end
                if len(parts) < 5:
                    raise fail(
                        "malformed $var: expected "
                        "'$var <type> <width> <id> <name> ... $end'"
                    )
                try:
                    width = int(parts[2])
                except ValueError:
                    raise fail(f"malformed $var: width {parts[2]!r} is not an integer")
                if width < 1:
                    raise fail(f"malformed $var: width must be positive, got {width}")
                code = parts[3]
                name = parts[4]
                data.signals[name] = width
                id_to_name[code] = name
                data.changes[name] = []
            elif line.startswith("$enddefinitions"):
                in_definitions = False
            continue
        if line.startswith("#"):
            try:
                time = int(line[1:])
            except ValueError:
                raise fail(f"bad timestamp {line[1:]!r}: not an integer")
            if time < 0:
                raise fail(f"bad timestamp: negative time {time}")
            data.end_time = max(data.end_time, time)
        elif line.startswith("b") or line.startswith("B"):
            value_text, _, code = line[1:].partition(" ")
            name = id_to_name.get(code.strip())
            if name is not None:
                try:
                    value = int(value_text.replace("x", "0").replace("z", "0"), 2)
                except ValueError:
                    raise fail(f"bad binary value {value_text!r}")
                data.changes[name].append((time, value))
        elif line[0] in "01xzXZ":
            code = line[1:]
            if not code:
                raise fail("scalar value change is missing its identifier code")
            name = id_to_name.get(code)
            if name is not None:
                value = 1 if line[0] == "1" else 0
                data.changes[name].append((time, value))
        elif line.startswith("$"):
            # $dumpvars/$dumpall/$comment blocks etc.: tolerated, ignored
            continue
        else:
            raise fail("unrecognized line in the value-change section")
    if in_definitions and (data.signals or any(l.strip() for l in lines)):
        raise VcdParseError(
            len(lines),
            lines[-1] if lines else "",
            "truncated VCD: reached end of input before $enddefinitions",
        )
    return data
