"""Semantic lints backed by the abstract interpreter.

The interesting one: covers whose predicate is *provably* constant.  An
always-false cover is a coverage hole no amount of simulation can close
(and silently deflates the report's denominator — the reachability flow
in :mod:`repro.analysis.reachability` consumes the same classification to
fix that); an always-true cover fires every cycle and measures nothing.

Classification runs per module on the lowered (``ExpandWhens``-ed) body;
constants feeding in through instance ports are only visible after
``InlineInstances``, which is why lint reports what it can prove locally
and the tiered reachability flow re-runs the interpreter on the flat
circuit.
"""

from __future__ import annotations

from typing import Optional

from ..ir.nodes import Cover, Module
from ..ir.traversal import walk_stmts
from .absint import ModuleAbstract
from .dataflow import ModuleDataflow
from .diagnostics import Diagnostics, Severity, register_rule

register_rule(
    "cover-const-false",
    Severity.WARNING,
    "cover can never fire",
    "Abstract interpretation proves the cover's predicate (or enable) is "
    "zero at every reachable cycle; the point is unreachable and deflates "
    "the coverage denominator.",
    category="semantic",
)
register_rule(
    "cover-const-true",
    Severity.INFO,
    "cover fires every cycle",
    "Abstract interpretation proves the cover's predicate and enable are "
    "one at every reachable cycle; the point measures nothing.",
    category="semantic",
)


def check_lowered_module(
    module: Module,
    diags: Diagnostics,
    dataflow: Optional[ModuleDataflow] = None,
) -> dict[str, str]:
    """Classify every cover in a low-form module; returns name -> verdict."""
    covers = [s for s in walk_stmts(module.body) if isinstance(s, Cover)]
    if not covers:
        return {}
    abstract = ModuleAbstract(module, dataflow)
    verdicts: dict[str, str] = {}
    for cover in covers:
        verdict = abstract.classify_cover(cover)
        verdicts[cover.name] = verdict
        if verdict == "always-false":
            diags.emit(
                "cover-const-false",
                f"cover {cover.name!r} is statically unreachable "
                "(predicate proven constant zero)",
                module=module.name,
                info=cover.info,
                signal=cover.name,
            )
        elif verdict == "always-true":
            diags.emit(
                "cover-const-true",
                f"cover {cover.name!r} fires on every cycle "
                "(predicate proven constant one)",
                module=module.name,
                info=cover.info,
                signal=cover.name,
            )
    return verdicts
