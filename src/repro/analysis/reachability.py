"""Tiered cover reachability: abstract interpretation first, BMC second.

The paper's answer to dead cover points is a formal backend (our
``backends/formal/bmc.py``), but bit-blasting and SAT-solving every cover
of every design is orders of magnitude more work than most points need.
This module runs the cheap tier first:

1. **static screen** — the known-bits/interval interpreter
   (:mod:`repro.analysis.absint`) runs over the *flattened* circuit, so
   constants tied off at instantiation sites (the §5.5 read-only-I$
   pattern) propagate into each instance's logic.  Covers proven
   ``always-false`` are *statically unreachable*; a structural refinement
   additionally proves toggle-coverage bits dead when the toggled signal's
   bit is constant (the shadow-register correlation the interpreter's
   independent-attribute domain cannot see).
2. **BMC residue** — only covers the screen left ``unknown`` are handed
   to the bounded model checker, sharing one incremental solver.

Verdicts are keyed by *canonical* cover name (``inst.path.name``), so a
module instantiated twice — one instance dead, one live — gets per-
instance verdicts; :func:`apply_verdicts` records the statically-dead
keys in the :class:`~repro.coverage.common.CoverageDB` exclusions table,
which the report generators subtract from coverage denominators.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..ir.nodes import Connect, Cover, Module, PrimOp, Ref, UIntLiteral
from ..ir.traversal import walk_stmts
from ..passes.base import CompileState
from .absint import ModuleAbstract
from .dataflow import ModuleDataflow, get_dataflow

#: verdict values: how and what was decided
STATIC_UNREACHABLE = "static-unreachable"
STATIC_ALWAYS = "static-always"
BMC_REACHABLE = "bmc-reachable"
BMC_UNREACHABLE = "bmc-unreachable"
UNKNOWN = "unknown"


@dataclass
class CoverVerdict:
    """One cover's reachability verdict and which tier produced it."""

    name: str        # canonical hierarchical cover key
    local: str       # flat-module cover name (BMC / simulator namespace)
    verdict: str
    tier: str        # "static" | "bmc" | "none"
    detail: str = ""

    @property
    def unreachable(self) -> bool:
        return self.verdict in (STATIC_UNREACHABLE, BMC_UNREACHABLE)


@dataclass
class ReachabilityResult:
    """The tiered flow's output over one (flattened) circuit."""

    bound: int
    verdicts: dict[str, CoverVerdict] = field(default_factory=dict)
    #: SAT solve() invocations consumed by the BMC tier (0 = static only)
    sat_solve_calls: int = 0
    seconds: float = 0.0

    def by_verdict(self, verdict: str) -> list[str]:
        return sorted(n for n, v in self.verdicts.items() if v.verdict == verdict)

    @property
    def statically_resolved(self) -> list[str]:
        return sorted(n for n, v in self.verdicts.items() if v.tier == "static")

    @property
    def unreachable(self) -> list[str]:
        return sorted(n for n, v in self.verdicts.items() if v.unreachable)

    def format(self) -> str:
        counts: dict[str, int] = {}
        for v in self.verdicts.values():
            counts[v.verdict] = counts.get(v.verdict, 0) + 1
        summary = ", ".join(f"{n} {k}" for k, n in sorted(counts.items()))
        lines = [
            f"tiered reachability, k={self.bound}: {summary or 'no covers'} "
            f"({self.sat_solve_calls} SAT calls, {self.seconds:.2f}s)"
        ]
        for name in sorted(self.verdicts):
            v = self.verdicts[name]
            mark = "-" if v.unreachable else "+"
            detail = f" ({v.detail})" if v.detail else ""
            lines.append(f"  {mark} {name}: {v.verdict} [{v.tier}]{detail}")
        return "\n".join(lines)

    def to_json_obj(self) -> dict:
        return {
            "bound": self.bound,
            "sat_solve_calls": self.sat_solve_calls,
            "verdicts": {
                n: {"verdict": v.verdict, "tier": v.tier, "detail": v.detail}
                for n, v in sorted(self.verdicts.items())
            },
        }


def _toggle_constant_bit(abstract: ModuleAbstract, df: ModuleDataflow,
                         cover: Cover) -> bool:
    """Refinement for toggle-shaped covers the generic screen cannot kill.

    A stuck-at-1 bit leaves ``xor(sig, prev)`` *unknown* to the
    interpreter (``prev`` starts at 0, so its abstraction covers both
    values) even though ``sig``'s bit is proven constant.  The shadow
    register correlates with the signal after the first cycle, and the
    ``seen`` enable masks exactly that first cycle — so a constant signal
    bit means the cover can never fire.  This function verifies the full
    structural pattern before trusting that argument.
    """
    pred = cover.pred
    if not (isinstance(pred, PrimOp) and pred.op == "bits"):
        return False
    hi, lo = pred.consts
    if hi != lo:
        return False
    bit = lo
    # the predicate must select from a node defined as xor(sig, prev)
    if not isinstance(pred.args[0], Ref):
        return False
    diff_decl = df.decls.get(pred.args[0].name)
    diff = getattr(diff_decl, "value", None)
    if not (isinstance(diff, PrimOp) and diff.op == "xor" and len(diff.args) == 2):
        return False
    # the enable must be a first-cycle guard: an uninitialized register
    # whose only next-value is the constant 1 (starts 0, then sticks at 1)
    en = cover.en
    if not (isinstance(en, Ref) and en.name in df.registers):
        return False
    en_decl = df.decls[en.name]
    if en_decl.init is not None:
        return False
    en_nexts = [s.expr for s in df.drivers.get(en.name, []) if isinstance(s, Connect)]
    if len(en_nexts) != 1 or not (
        isinstance(en_nexts[0], UIntLiteral) and en_nexts[0].value == 1
    ):
        return False
    # one xor operand is the shadow register, the other the signal; the
    # shadow's only next-value must be exactly the signal expression
    for sig, prev in ((diff.args[0], diff.args[1]), (diff.args[1], diff.args[0])):
        if not (isinstance(prev, Ref) and prev.name in df.registers):
            continue
        prev_decl = df.decls[prev.name]
        if prev_decl.init is not None:
            continue
        nexts = [s.expr for s in df.drivers.get(prev.name, []) if isinstance(s, Connect)]
        if len(nexts) == 1 and nexts[0] == sig:
            value = abstract.eval(sig)
            if (value.known >> bit) & 1:
                return True
    return False


def screen_module(module: Module,
                  dataflow: Optional[ModuleDataflow] = None) -> dict[str, tuple[str, str]]:
    """Static tier over one low-form module.

    Returns ``local cover name -> (classification, detail)`` where the
    classification is ``always-false`` / ``always-true`` / ``unknown``.
    """
    covers = [s for s in walk_stmts(module.body) if isinstance(s, Cover)]
    if not covers:
        return {}
    abstract = ModuleAbstract(module, dataflow)
    df = abstract.df
    out: dict[str, tuple[str, str]] = {}
    for cover in covers:
        verdict = abstract.classify_cover(cover)
        detail = "predicate constant"
        if verdict == "unknown" and _toggle_constant_bit(abstract, df, cover):
            verdict = "always-false"
            detail = "signal bit constant (untoggleable)"
        out[cover.name] = (verdict, detail if verdict != "unknown" else "")
    return out


def tiered_reachability(
    state: CompileState,
    bound: int = 20,
    reset_cycles: int = 1,
    use_bmc: bool = True,
) -> ReachabilityResult:
    """Run the static screen, then BMC on the residue.

    ``state`` should hold a *flattened* circuit (single top module) so
    instantiation-site constants reach the logic they disable;
    ``state.cover_paths`` (from ``InlineInstances``) maps flat cover names
    back to canonical keys.  Unflattened circuits work too — each module
    is screened in isolation and instance ports are unconstrained.
    """
    started = time.perf_counter()
    result = ReachabilityResult(bound)
    circuit = state.circuit
    cover_paths = state.cover_paths or {}
    cdf = get_dataflow(state)

    def canonical(local: str) -> str:
        return cover_paths.get(local, local)

    unknown_local: list[str] = []
    for module in circuit.modules:
        screened = screen_module(module, cdf.modules.get(module.name))
        for local, (classification, detail) in screened.items():
            name = canonical(local)
            if classification == "always-false":
                result.verdicts[name] = CoverVerdict(
                    name, local, STATIC_UNREACHABLE, "static", detail)
            elif classification == "always-true":
                result.verdicts[name] = CoverVerdict(
                    name, local, STATIC_ALWAYS, "static", detail)
            else:
                result.verdicts[name] = CoverVerdict(name, local, UNKNOWN, "none")
                unknown_local.append(local)

    if use_bmc and unknown_local:
        from ..backends.formal.bmc import BoundedModelChecker

        checker = BoundedModelChecker(state, bound, reset_cycles=reset_cycles)
        for local in unknown_local:
            # the checker's model names covers canonically (build_model
            # applies cover_paths), so query by canonical key
            name = canonical(local)
            trace = checker.query(name)
            if trace.reachable:
                result.verdicts[name] = CoverVerdict(
                    name, local, BMC_REACHABLE, "bmc",
                    f"witness at cycle {trace.cycle}")
            else:
                result.verdicts[name] = CoverVerdict(
                    name, local, BMC_UNREACHABLE, "bmc",
                    f"no witness within {bound} cycles")
        result.sat_solve_calls = checker.solver.solve_calls

    result.seconds = time.perf_counter() - started
    return result


def apply_verdicts(db, result: ReachabilityResult) -> int:
    """Record statically-dead covers in the coverage DB's exclusions table.

    Only *static* verdicts go in: a ``bmc-unreachable`` is relative to the
    bound, not a proof, so it must not shrink the denominator.  Returns
    the number of exclusions added.
    """
    added = 0
    for name, verdict in result.verdicts.items():
        if verdict.verdict == STATIC_UNREACHABLE:
            db.exclude(name, f"statically unreachable: {verdict.detail}")
            added += 1
    return added
