"""The diagnostics engine behind ``repro lint``.

Every analysis reports through this module: findings are
:class:`Diagnostic` records carrying a stable rule ID (registered in
:data:`RULES`), a :class:`~repro.ir.nodes.SourceInfo` locator, and a
severity.  The engine owns the cross-cutting concerns so individual rules
stay small:

* **rule registry** — rules declare themselves once via
  :func:`register_rule`; the DESIGN.md §10 catalog table is generated from
  the registry (:func:`rule_catalog_markdown`) so docs cannot drift, and
  an undeclared rule ID raises at emit time, exactly like the telemetry
  metric registry.
* **per-line suppression** — a frontend source line containing
  ``lint: disable=<rule-id>[,<rule-id>...]`` (or a bare ``lint: disable``)
  suppresses findings located on that line.  Suppressed findings are kept
  (marked) so reports can show what was waived.
* **output** — plain text (one ``severity[rule-id]`` line per finding)
  and a SARIF-style JSON document for CI artifact upload.

Telemetry: every unsuppressed finding increments the
``repro_lint_findings_total`` counter (labels: ``rule``, ``severity``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from ..ir.nodes import NO_INFO, SourceInfo

# Telemetry is imported lazily (same cycle-avoidance dance as passes/base.py).
_obs = None


def _get_obs():
    global _obs
    if _obs is None:
        from ..runtime.telemetry import obs as _o
        _obs = _o
    return _obs


class Severity(enum.IntEnum):
    """Finding severity; ordering is by increasing seriousness."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()

    @staticmethod
    def parse(text: str) -> "Severity":
        try:
            return Severity[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class RuleSpec:
    """One registered lint rule (the unit of the DESIGN.md §10 catalog)."""

    rule_id: str
    severity: Severity
    title: str
    description: str
    category: str = "lint"
    #: optional illustrative snippet shown by ``repro lint --explain``
    example: str = ""

    def explain(self) -> str:
        """The ``repro lint --explain <rule-id>`` catalog entry."""
        lines = [
            f"{self.rule_id} ({self.severity}, {self.category})",
            f"  {self.title}",
            "",
            f"  {self.description}",
        ]
        if self.example:
            lines.append("")
            lines.append("  example:")
            lines.extend(f"    {line}" for line in self.example.splitlines())
        return "\n".join(lines)


#: Stable rule-ID registry.  ``Diagnostics.emit`` refuses unregistered IDs.
RULES: dict[str, RuleSpec] = {}


def register_rule(
    rule_id: str,
    severity: Severity,
    title: str,
    description: str,
    category: str = "lint",
    example: str = "",
) -> RuleSpec:
    """Declare a rule.  IDs are permanent: re-registering one is a bug."""
    if rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    spec = RuleSpec(rule_id, severity, title, description, category, example)
    RULES[rule_id] = spec
    return spec


def rule_catalog_markdown() -> str:
    """The DESIGN.md §10 rule table, generated from :data:`RULES`."""
    lines = [
        "| rule | severity | category | meaning |",
        "|---|---|---|---|",
    ]
    for rule_id in sorted(RULES):
        spec = RULES[rule_id]
        lines.append(
            f"| `{spec.rule_id}` | {spec.severity} | {spec.category} "
            f"| {spec.description} |"
        )
    return "\n".join(lines)


@dataclass
class Diagnostic:
    """One finding: rule, severity, message, and a source locator."""

    rule: str
    severity: Severity
    message: str
    module: str = ""
    info: SourceInfo = NO_INFO
    signal: Optional[str] = None
    suppressed: bool = False

    @property
    def locator(self) -> str:
        return str(self.info)

    def format(self) -> str:
        where = f" [{self.module}]" if self.module else ""
        loc = f" {self.locator}" if self.info.file else ""
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.severity}[{self.rule}]{where} {self.message}{loc}{mark}"

    def to_json(self) -> dict:
        out = {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "module": self.module,
        }
        if self.info.file:
            out["file"] = self.info.file
            out["line"] = self.info.line
        if self.signal:
            out["signal"] = self.signal
        if self.suppressed:
            out["suppressed"] = True
        return out


#: The in-source suppression marker.  Anything after it is a comma list of
#: rule IDs; an empty list suppresses every rule on that line.
SUPPRESS_MARKER = "lint: disable"

#: The forward form: waives findings located on the *following* source
#: line (for lines too dense to carry a trailing comment).
SUPPRESS_NEXT_MARKER = "lint: disable-next-line"


def _parse_ids(rest: str) -> set[str]:
    """The comma-separated rule list after a marker (empty = waive all)."""
    if rest.startswith("="):
        ids = {part.strip() for part in rest[1:].split(",")}
        return {i for i in ids if i} or set()
    return set()


def _parse_suppression(line: str) -> Optional[set[str]]:
    """Rule IDs waived on ``line`` itself, or ``None`` if it has no marker.

    An empty set means "suppress everything on this line".  The
    ``disable-next-line`` form is parsed first so its suffix is never
    misread as a bare ``lint: disable`` (which would waive *every* rule
    on the marker's own line).
    """
    if SUPPRESS_NEXT_MARKER in line:
        return None
    index = line.find(SUPPRESS_MARKER)
    if index < 0:
        return None
    return _parse_ids(line[index + len(SUPPRESS_MARKER):])


def _parse_next_line_suppression(line: str) -> Optional[set[str]]:
    """Rule IDs ``line`` waives on the line below it, or ``None``."""
    index = line.find(SUPPRESS_NEXT_MARKER)
    if index < 0:
        return None
    return _parse_ids(line[index + len(SUPPRESS_NEXT_MARKER):])


class SuppressionIndex:
    """Resolves ``SourceInfo`` locators to in-source suppression markers.

    ``SourceInfo.file`` holds a base name (the HCL records
    ``Path(filename).name``), so the index scans ``search_paths``
    recursively once and maps base names to real files.  Ambiguous base
    names keep the first match (search paths are ordered).
    """

    def __init__(self, search_paths: Iterable[Path] = ()) -> None:
        self._files: dict[str, Path] = {}
        self._lines: dict[str, list[str]] = {}
        for root in search_paths:
            root = Path(root)
            if root.is_file():
                self._files.setdefault(root.name, root)
                continue
            if not root.is_dir():
                continue
            for path in sorted(root.rglob("*")):
                if path.is_file() and path.suffix in (".py", ".fir"):
                    self._files.setdefault(path.name, path)

    def _source_line(self, file: str, line: int) -> Optional[str]:
        if file not in self._lines:
            path = self._files.get(Path(file).name)
            if path is None:
                self._lines[file] = []
            else:
                try:
                    self._lines[file] = path.read_text().splitlines()
                except OSError:
                    self._lines[file] = []
        lines = self._lines[file]
        if 0 < line <= len(lines):
            return lines[line - 1]
        return None

    def is_suppressed(self, diag: Diagnostic) -> bool:
        if not diag.info.file:
            return False
        text = self._source_line(diag.info.file, diag.info.line)
        if text is not None:
            waived = _parse_suppression(text)
            if waived is not None and (not waived or diag.rule in waived):
                return True
        above = self._source_line(diag.info.file, diag.info.line - 1)
        if above is not None:
            waived = _parse_next_line_suppression(above)
            if waived is not None and (not waived or diag.rule in waived):
                return True
        return False


class Diagnostics:
    """A sink of findings with suppression, counting, and rendering."""

    def __init__(self, suppressions: Optional[SuppressionIndex] = None) -> None:
        self.suppressions = suppressions
        self.findings: list[Diagnostic] = []

    def emit(
        self,
        rule: str,
        message: str,
        module: str = "",
        info: SourceInfo = NO_INFO,
        signal: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        spec = RULES.get(rule)
        if spec is None:
            raise KeyError(
                f"undeclared rule id {rule!r}: register it in "
                "repro.analysis.diagnostics.RULES (and DESIGN.md §10)"
            )
        diag = Diagnostic(rule, severity or spec.severity, message, module, info, signal)
        if self.suppressions is not None and self.suppressions.is_suppressed(diag):
            diag.suppressed = True
        else:
            obs = _get_obs()
            if obs.enabled:
                obs.inc(
                    "repro_lint_findings_total",
                    rule=rule,
                    severity=str(diag.severity),
                )
        self.findings.append(diag)
        return diag

    def extend(self, other: "Diagnostics") -> None:
        self.findings.extend(other.findings)

    # -- selection -----------------------------------------------------------

    @property
    def unsuppressed(self) -> list[Diagnostic]:
        return [d for d in self.findings if not d.suppressed]

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        """Unsuppressed findings at or above ``severity``."""
        return [d for d in self.unsuppressed if d.severity >= severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.unsuppressed if d.severity == Severity.WARNING]

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.findings if d.rule == rule]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for diag in self.unsuppressed:
            out[str(diag.severity)] = out.get(str(diag.severity), 0) + 1
        return out

    # -- rendering -----------------------------------------------------------

    def format_text(self, show_suppressed: bool = False) -> str:
        shown = [
            d for d in self.findings if show_suppressed or not d.suppressed
        ]
        ordered = sorted(
            shown,
            key=lambda d: (-int(d.severity), d.module, d.info.file, d.info.line, d.rule),
        )
        lines = [d.format() for d in ordered]
        counts = self.counts()
        summary = ", ".join(
            f"{counts[s]} {s}{'s' if counts[s] != 1 else ''}"
            for s in ("error", "warning", "info")
            if s in counts
        ) or "no findings"
        waived = sum(1 for d in self.findings if d.suppressed)
        if waived:
            summary += f" ({waived} suppressed)"
        lines.append(summary)
        return "\n".join(lines)

    def to_sarif(self, tool_name: str = "repro-lint") -> dict:
        """SARIF-style JSON: one run, registry-driven rule metadata."""
        used = sorted({d.rule for d in self.findings})
        levels = {Severity.ERROR: "error", Severity.WARNING: "warning", Severity.INFO: "note"}
        results = []
        for diag in self.findings:
            entry: dict = {
                "ruleId": diag.rule,
                "level": levels[diag.severity],
                "message": {"text": diag.message},
            }
            if diag.module:
                entry["properties"] = {"module": diag.module}
                if diag.signal:
                    entry["properties"]["signal"] = diag.signal
            if diag.info.file:
                entry["locations"] = [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": diag.info.file},
                            "region": {"startLine": diag.info.line},
                        }
                    }
                ]
            if diag.suppressed:
                entry["suppressions"] = [{"kind": "inSource"}]
            results.append(entry)
        return {
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": tool_name,
                            "rules": [
                                {
                                    "id": rid,
                                    "shortDescription": {"text": RULES[rid].title},
                                    "fullDescription": {"text": RULES[rid].description},
                                    "defaultConfiguration": {
                                        "level": levels[RULES[rid].severity]
                                    },
                                }
                                for rid in used
                            ],
                        }
                    },
                    "results": results,
                }
            ],
        }

    def to_json(self, tool_name: str = "repro-lint") -> str:
        return json.dumps(self.to_sarif(tool_name), indent=2, sort_keys=True)
