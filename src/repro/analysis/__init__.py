"""Static analysis framework: lints, dataflow, abstract interpretation.

The cheap tier of design quality the paper leaves to formal tools (see
DESIGN.md §10).  Layers:

* :mod:`.diagnostics` — rule registry, severities, ``@[file:line]``
  locators, per-line suppression, text/SARIF output.
* :mod:`.dataflow` — def-use + combinational dependency graphs, computed
  once per circuit and cached on the ``CompileState``.
* :mod:`.absint` — known-bits + interval + small-value-set abstract
  interpretation over :mod:`repro.ir.ops`.
* rule modules — :mod:`.comb_loops`, :mod:`.deadcode`, :mod:`.widths`,
  :mod:`.clocks` (structural, run on the elaborated circuit) and
  :mod:`.semantic` (absint-backed, runs on a lowered copy).
* :mod:`.reachability` — the tiered static-screen → BMC cover
  reachability flow feeding coverage denominator exclusions.

Entry points: :func:`lint_circuit` (the ``repro lint`` engine) and
:class:`LintPass` (interleaved between compiler passes in
``--check-passes`` mode).
"""

from __future__ import annotations

from typing import Optional

from ..ir.nodes import Circuit
from ..passes.base import CompileState, Pass, PassError
from . import clocks, comb_loops, deadcode, semantic, widths
from .absint import AbsVal, ModuleAbstract, classify_covers
from .dataflow import (
    CircuitDataflow,
    ModuleDataflow,
    build_circuit_dataflow,
    build_module_dataflow,
    get_dataflow,
    strongly_connected_components,
)
from .diagnostics import (
    RULES,
    Diagnostic,
    Diagnostics,
    RuleSpec,
    Severity,
    SuppressionIndex,
    register_rule,
    rule_catalog_markdown,
)
from .implication import (
    MINIMIZER_VERSION,
    MinimizeCoversPass,
    MinimizeResult,
    ModuleImplications,
    analyze_module_covers,
    check_redundant_covers,
    minimize_basis,
    minimize_circuit,
)
from .reachability import (
    ReachabilityResult,
    apply_verdicts,
    screen_module,
    tiered_reachability,
)


def lint_circuit(
    circuit: Circuit,
    suppressions: Optional[SuppressionIndex] = None,
    semantic_tier: bool = True,
    state: Optional[CompileState] = None,
) -> Diagnostics:
    """Run every lint rule over ``circuit`` and return the findings.

    Structural rules (loops, dead code, widths, clocking) run on the
    circuit as given — ideally the elaborated, pre-lowering form, where
    declarations still carry their frontend source locators.  The
    semantic tier lowers a copy through ``ExpandWhens`` (the original is
    untouched; the pass rebuilds) and classifies cover predicates with
    the abstract interpreter; pass ``semantic_tier=False`` to skip it,
    e.g. when re-linting between passes.

    ``state`` may be supplied to share the cached dataflow build with
    other analyses over the same circuit object.
    """
    from .diagnostics import _get_obs

    obs = _get_obs()
    diags = Diagnostics(suppressions)
    if state is None or state.circuit is not circuit:
        state = CompileState(circuit)
    with obs.span("lint", cat="analysis"):
        cdf = get_dataflow(state)
        comb_loops.check(cdf, diags)
        deadcode.check(cdf, diags)
        widths.check(cdf, diags)
        clocks.check(cdf, diags)
        if semantic_tier:
            from ..passes.expand_whens import ExpandWhens

            try:
                lowered = ExpandWhens().run(CompileState(circuit)).circuit
            except PassError:
                lowered = None  # malformed input: structural findings stand
            if lowered is not None:
                for module in lowered.modules:
                    semantic.check_lowered_module(module, diags)
                    check_redundant_covers(module, diags)
    return diags


class LintPass(Pass):
    """Run the lint rules as a pipeline pass (``--check-passes`` mode).

    Non-mutating: findings accumulate under ``state.metadata["lint"]``
    (one :class:`Diagnostics` shared across invocations, so interleaving
    the pass between every pipeline stage yields one combined report).
    With ``strict=True`` any ERROR-severity finding — e.g. a
    combinational loop introduced by a buggy transform — raises
    :class:`~repro.passes.base.PassError` naming the rule and location.
    """

    METADATA_KEY = "lint"

    def __init__(
        self,
        strict: bool = False,
        suppressions: Optional[SuppressionIndex] = None,
        semantic_tier: bool = False,
    ) -> None:
        self.strict = strict
        self.suppressions = suppressions
        self.semantic_tier = semantic_tier

    def run(self, state: CompileState) -> CompileState:
        diags = lint_circuit(
            state.circuit,
            suppressions=self.suppressions,
            semantic_tier=self.semantic_tier,
            state=state,
        )
        sink = state.metadata.setdefault(self.METADATA_KEY, Diagnostics())
        sink.extend(diags)
        if self.strict and diags.errors:
            first = diags.errors[0]
            raise PassError(
                f"lint: {len(diags.errors)} error(s), first: {first.format()}"
            )
        return state


__all__ = [
    "AbsVal",
    "CircuitDataflow",
    "Diagnostic",
    "Diagnostics",
    "LintPass",
    "MINIMIZER_VERSION",
    "MinimizeCoversPass",
    "MinimizeResult",
    "ModuleAbstract",
    "ModuleDataflow",
    "ModuleImplications",
    "RULES",
    "ReachabilityResult",
    "RuleSpec",
    "Severity",
    "SuppressionIndex",
    "analyze_module_covers",
    "apply_verdicts",
    "build_circuit_dataflow",
    "build_module_dataflow",
    "check_redundant_covers",
    "classify_covers",
    "clocks",
    "comb_loops",
    "deadcode",
    "get_dataflow",
    "lint_circuit",
    "minimize_basis",
    "minimize_circuit",
    "register_rule",
    "rule_catalog_markdown",
    "screen_module",
    "semantic",
    "strongly_connected_components",
    "tiered_reachability",
    "widths",
]
