"""Combinational-loop detection.

Runs Tarjan over each module's combinational dependency graph (see
:mod:`repro.analysis.dataflow`).  Instance ports participate as
``inst.port`` pseudo-nodes wired through child port-coupling summaries, so
a zero-latency cycle threading two module boundaries is caught without
flattening; after ``InlineInstances`` the same detector re-finds it inside
the flat module (the ``sort_statements`` topological sort in
``passes/flatten.py`` would also choke, but with a far less useful error).
"""

from __future__ import annotations

from ..ir.nodes import NO_INFO, Module
from .dataflow import CircuitDataflow, ModuleDataflow, strongly_connected_components
from .diagnostics import Diagnostics, Severity, register_rule

register_rule(
    "comb-loop",
    Severity.ERROR,
    "combinational loop",
    "A zero-latency cycle through wires, nodes, or mux logic inside one "
    "module; simulation order is undefined and hardware would oscillate.",
    category="structure",
)
register_rule(
    "comb-loop-xmodule",
    Severity.ERROR,
    "cross-module combinational loop",
    "A zero-latency cycle that threads through instance ports; invisible "
    "to per-module inspection, found via child port-coupling summaries.",
    category="structure",
)


def _loop_info(df: ModuleDataflow, members: list[str]):
    """Best source locator for a loop: the first member with a location."""
    for name in members:
        decl = df.decls.get(name)
        info = getattr(decl, "info", NO_INFO)
        if info.file:
            return info
        for stmt in df.drivers.get(name, []):
            info = getattr(stmt, "info", NO_INFO)
            if info.file:
                return info
    return NO_INFO


def check_module(module: Module, df: ModuleDataflow, diags: Diagnostics) -> None:
    for members in strongly_connected_components(df.comb_deps):
        crosses = any("." in name for name in members)
        rule = "comb-loop-xmodule" if crosses else "comb-loop"
        path = " -> ".join(members + [members[0]])
        diags.emit(
            rule,
            f"combinational loop: {path}",
            module=module.name,
            info=_loop_info(df, members),
            signal=members[0],
        )


def check(cdf: CircuitDataflow, diags: Diagnostics) -> None:
    for module in cdf.circuit.modules:
        check_module(module, cdf.modules[module.name], diags)
