"""Dead-code lints: unread signals, unwritten wires, unused ports.

``passes/dce.py`` silently *deletes* dead logic — correct for the
compiler, useless for the author, who wants to know the wire they wired
up goes nowhere.  These rules report what DCE would remove, with the
declaration's source locator, before any pass has had a chance to
normalize it away.  Run on the elaborated (pre-lowering) circuit.
"""

from __future__ import annotations

from ..ir.nodes import (
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Module,
    NO_INFO,
)
from ..ir.types import ClockType, ResetType
from .dataflow import CircuitDataflow, ModuleDataflow
from .diagnostics import Diagnostics, Severity, register_rule

register_rule(
    "unread-signal",
    Severity.WARNING,
    "signal is never read",
    "A node, register, wire, or memory is declared and possibly driven "
    "but nothing reads it; DCE will silently delete it.",
    category="dead-code",
)
register_rule(
    "unwritten-wire",
    Severity.WARNING,
    "wire is never driven",
    "A wire has no connect driving it; readers see an undefined value "
    "(backends default it to zero, masking the bug).",
    category="dead-code",
)
register_rule(
    "unused-port",
    Severity.WARNING,
    "port is unused",
    "An input port is never read inside the module, or an output port is "
    "never driven; the interface promises more than the module delivers.",
    category="dead-code",
)


def check_module(module: Module, df: ModuleDataflow, diags: Diagnostics) -> None:
    for name, decl in df.decls.items():
        info = getattr(decl, "info", NO_INFO)
        if isinstance(decl, DefWire) and not df.drives_of(name):
            diags.emit(
                "unwritten-wire",
                f"wire {name!r} is never driven",
                module=module.name,
                info=info,
                signal=name,
            )
            continue  # unwritten implies unread is a symptom, not a cause
        if isinstance(decl, (DefNode, DefRegister, DefWire, DefMemory)):
            if not df.reads_of(name):
                kind = type(decl).__name__[3:].lower()  # DefNode -> "node"
                diags.emit(
                    "unread-signal",
                    f"{kind} {name!r} is never read",
                    module=module.name,
                    info=info,
                    signal=name,
                )
        elif isinstance(decl, DefInstance):
            continue  # instances are used through their ports

    for port in module.ports:
        if isinstance(port.type, (ClockType, ResetType)):
            continue  # implicit infrastructure ports are exempt
        if port.direction == "input" and port.name == "reset":
            continue  # the HCL adds 'reset' to every module; a module with
            # no resettable register legitimately never reads it
        if port.direction == "input" and not df.reads_of(port.name):
            diags.emit(
                "unused-port",
                f"input port {port.name!r} is never read",
                module=module.name,
                info=port.info,
                signal=port.name,
            )
        elif port.direction == "output" and not df.drives_of(port.name):
            diags.emit(
                "unused-port",
                f"output port {port.name!r} is never driven",
                module=module.name,
                info=port.info,
                signal=port.name,
            )


def check(cdf: CircuitDataflow, diags: Diagnostics) -> None:
    for module in cdf.circuit.modules:
        check_module(module, cdf.modules[module.name], diags)
