"""Width-truncation and signedness-mix lints.

``CheckForms`` rejects a connect that would truncate — so by the time IR
exists, the HCL frontend has already *made it legal* by narrowing the RHS
(and inserting an ``asUInt``/``asSInt`` cast when the signedness
disagreed).  Perfectly well-formed IR, silently lossy intent.

Telling *silent* truncation apart from *intended* narrowing is the whole
game: ``count <<= count + 1`` truncates too (Chisel-style width-preserving
arithmetic), and an explicit user slice ``x <<= req[15:0]`` narrows by
construction — flagging those would drown the report.  Both of them reach
the connect as ``bits(x, w-1, 0)``; the frontend's connect-site narrowing
is emitted as ``tail(x, dropped)`` instead (see ``Value._trunc_implicit``)
precisely so this rule fires only where the user never asked for bits to
be dropped.  Sign reinterpretation is judged the same way: the *source*
operand under the frontend's wrappers is compared against the target, so a
sign-preserving round-trip (``asSInt(bits(sint_expr))``) stays quiet.
"""

from __future__ import annotations

from ..ir.nodes import Connect, InstPort, Module, PrimOp, Stmt
from ..ir.types import bit_width, is_signed
from ..ir.traversal import stmt_exprs, walk_expr, walk_stmts
from .dataflow import CircuitDataflow
from .diagnostics import Diagnostics, Severity, register_rule

register_rule(
    "width-trunc",
    Severity.WARNING,
    "connect silently truncates",
    "The right-hand side of a connect is wider than its target and gets "
    "truncated (the frontend inserts the bits() for you); high-order bits "
    "are dropped without any indication at the connect site.",
    category="width",
)
register_rule(
    "sign-mix",
    Severity.WARNING,
    "signed/unsigned mixing",
    "A connect reinterprets signedness via an implicit asUInt/asSInt "
    "cast, or a primitive op mixes signed and unsigned operands whose "
    "interpretation differs; the numeric value can silently change.",
    category="width",
)

#: two-operand ops whose result depends on the signed *interpretation* of
#: operands (``cat`` concatenates raw bits and is exempt)
_SIGN_SENSITIVE = {
    "add", "sub", "mul", "div", "rem",
    "lt", "leq", "gt", "geq", "eq", "neq",
    "and", "or", "xor",
}

#: bitwise ops operate on raw bits — signedness only matters when the
#: operands get extended to a common width (zero- vs sign-extension);
#: at equal widths ``x & ~1`` style masking with a signed literal is safe
_BITWISE = {"and", "or", "xor"}


def _target_name(stmt: Connect) -> str:
    loc = stmt.loc
    if isinstance(loc, InstPort):
        return f"{loc.instance}.{loc.port}"
    return loc.name


def _check_connect(stmt: Connect, module: Module, diags: Diagnostics) -> None:
    target = _target_name(stmt)
    expr = stmt.expr
    # peel the frontend's wrappers: [asUInt/asSInt] over [tail|bits]
    cast = None
    if isinstance(expr, PrimOp) and expr.op in ("asUInt", "asSInt"):
        cast = expr
        expr = expr.args[0]
    source = expr
    implicit_trunc = (
        isinstance(expr, PrimOp) and expr.op == "tail" and expr.consts[0] > 0
    )
    if implicit_trunc:
        source = expr.args[0]
        diags.emit(
            "width-trunc",
            f"connect to {target!r} truncates {source.tpe} to "
            f"{bit_width(expr.tpe)} bits",
            module=module.name,
            info=stmt.info,
            signal=target,
        )
    elif isinstance(expr, PrimOp) and expr.op == "bits" and expr.consts[1] == 0:
        # explicit slice or width-preserving arithmetic: the narrowing is
        # intended, but peel it so the sign check sees the real source
        source = expr.args[0]
    if (cast is not None or implicit_trunc) and is_signed(
        source.tpe
    ) != is_signed(stmt.loc.tpe):
        diags.emit(
            "sign-mix",
            f"connect to {target!r} ({stmt.loc.tpe}) reinterprets "
            f"{source.tpe}",
            module=module.name,
            info=stmt.info,
            signal=target,
        )


def _check_primops(stmt: Stmt, module: Module, diags: Diagnostics) -> None:
    for root in stmt_exprs(stmt):
        for expr in walk_expr(root):
            if not isinstance(expr, PrimOp) or expr.op not in _SIGN_SENSITIVE:
                continue
            signs = {is_signed(a.tpe) for a in expr.args}
            widths = {bit_width(a.tpe) for a in expr.args}
            if expr.op in _BITWISE and len(widths) == 1:
                continue
            if len(signs) > 1:
                operands = ", ".join(str(a.tpe) for a in expr.args)
                diags.emit(
                    "sign-mix",
                    f"{expr.op}({operands}) mixes signed and unsigned operands",
                    module=module.name,
                    info=stmt.info,
                )


def check_module(module: Module, diags: Diagnostics) -> None:
    for stmt in walk_stmts(module.body):
        if isinstance(stmt, Connect):
            _check_connect(stmt, module, diags)
        _check_primops(stmt, module, diags)


def check(cdf: CircuitDataflow, diags: Diagnostics) -> None:
    for module in cdf.circuit.modules:
        check_module(module, diags)
