"""Clock and reset hygiene lints.

Single-clock designs sail through; the rules exist for the designs that
quietly stopped being single-clock: a register hooked to a data expression
instead of a clock, a register in one domain sampling a register from
another without a synchronizer, and cover statements attached to a clock
other than the module's canonical one (coverage counts from two domains
are not comparable, see coverage/common.py).
"""

from __future__ import annotations

from ..ir.nodes import Cover, DefRegister, Expr, InstPort, MemWrite, Module, Ref, Stop
from ..ir.types import ClockType
from ..ir.traversal import walk_stmts
from .dataflow import CircuitDataflow, ModuleDataflow, comb_reads
from .diagnostics import Diagnostics, Severity, register_rule

register_rule(
    "non-clock-clock",
    Severity.ERROR,
    "non-clock expression used as clock",
    "The clock operand of a register, memory write, or cover statement is "
    "not of clock type; the sequential element is clocked by data.",
    category="clocking",
)
register_rule(
    "cross-domain",
    Severity.WARNING,
    "unsynchronized clock-domain crossing",
    "A register samples (combinationally) a register clocked by a "
    "different clock with no synchronizer stage; metastability hazard.",
    category="clocking",
)
register_rule(
    "cover-clock",
    Severity.WARNING,
    "cover on non-canonical clock",
    "A cover or stop statement uses a clock other than the module's "
    "canonical clock port; its counts are not comparable with the rest "
    "of the module's coverage.",
    category="clocking",
)


def _clock_key(expr: Expr) -> str:
    """A stable identity for a clock expression (domain label)."""
    if isinstance(expr, Ref):
        return expr.name
    if isinstance(expr, InstPort):
        return f"{expr.instance}.{expr.port}"
    return repr(expr)


def _canonical_clock(module: Module) -> str | None:
    for port in module.ports:
        if port.direction == "input" and isinstance(port.type, ClockType):
            return port.name
    return None


def check_module(module: Module, df: ModuleDataflow, diags: Diagnostics) -> None:
    canonical = _canonical_clock(module)
    reg_domain: dict[str, str] = {}

    for stmt in walk_stmts(module.body):
        clock = getattr(stmt, "clock", None)
        if clock is None:
            continue
        if not isinstance(clock.tpe, ClockType):
            what = {
                DefRegister: "register",
                MemWrite: "memory write",
                Cover: "cover",
                Stop: "stop",
            }.get(type(stmt), "statement")
            name = getattr(stmt, "name", getattr(stmt, "mem", "?"))
            diags.emit(
                "non-clock-clock",
                f"{what} {name!r} is clocked by {clock.tpe} expression",
                module=module.name,
                info=stmt.info,
                signal=name,
            )
            continue
        if isinstance(stmt, DefRegister):
            reg_domain[stmt.name] = _clock_key(clock)
        elif isinstance(stmt, (Cover, Stop)):
            domain = _clock_key(clock)
            if canonical is not None and domain != canonical:
                diags.emit(
                    "cover-clock",
                    f"{type(stmt).__name__.lower()} {stmt.name!r} uses clock "
                    f"{domain!r}, not the canonical clock {canonical!r}",
                    module=module.name,
                    info=stmt.info,
                    signal=stmt.name,
                )

    if len(set(reg_domain.values())) < 2:
        return  # single domain: no crossings possible

    # combinational fan-in of each register's next-value, looking for
    # source registers in a different domain
    def comb_sources(name: str, seen: set[str]) -> set[str]:
        found: set[str] = set()
        for dep in df.comb_deps.get(name, ()):
            if dep in seen:
                continue
            seen.add(dep)
            if dep in reg_domain:
                found.add(dep)
            else:
                found |= comb_sources(dep, seen)
        return found

    for stmt in walk_stmts(module.body):
        if not isinstance(stmt, DefRegister):
            continue
        domain = reg_domain[stmt.name]
        next_reads: set[str] = set()
        for driver in df.drivers.get(stmt.name, []):
            expr = getattr(driver, "expr", None)
            if expr is not None:
                next_reads.update(comb_reads(expr))
        sources: set[str] = set()
        for read in next_reads:
            if read in reg_domain:
                sources.add(read)
            else:
                sources |= comb_sources(read, {read})
        for source in sorted(sources):
            if reg_domain[source] != domain:
                diags.emit(
                    "cross-domain",
                    f"register {stmt.name!r} (clock {domain!r}) samples "
                    f"{source!r} from clock domain {reg_domain[source]!r}",
                    module=module.name,
                    info=stmt.info,
                    signal=stmt.name,
                )


def check(cdf: CircuitDataflow, diags: Diagnostics) -> None:
    for module in cdf.circuit.modules:
        check_module(module, cdf.modules[module.name], diags)
