"""Cover-implication analysis and minimal-basis instrumentation (DESIGN §15).

The Ball–Larus observation, ported to RTL cover statements: after
``ExpandWhens`` every cover's firing condition is a conjunction of branch
predicates, and the branch structure makes most counters *derivable* from
a small basis.  Three relations are provable statically:

* **partition** — the two arms of a ``when`` split their parent's firing
  set disjointly and exhaustively, so ``count(parent)`` equals
  ``count(conseq) + count(alt)`` on *every* cycle (and therefore also for
  checkpoint shards, WAL records, and streamed cluster deltas, which are
  all prefixes or deltas of the same cycle sequence);
* **equivalence** — two covers whose normalized conditions are the same
  conjunction fire on exactly the same cycles;
* **guard implication** — a nested cover's condition strictly extends its
  parent's, so ``count(child) <= count(parent)`` (reported by lint, never
  used for reconstruction: a difference is not computable from saturated
  counters).

The abstract interpreter strengthens all three by dropping proven-true
literals and declaring covers with a proven-false literal dead; the
reachability exclusion table contributes covers dead at every instance.
Dead covers never enter the graph — they are elided with an *empty*
recipe (reconstructed as 0).

**Saturation soundness.**  Recipes are restricted to non-negative
coefficients plus a final clamp at the counter limit ``L``: with true
counts ``t_i`` and reported counts ``min(t_i, L)``, either every term is
exact (sum below ``L`` on both sides) or some term saturated, in which
case both the clamped sum and the parent's own counter report exactly
``L``.  Subtraction recipes (``alt = parent - conseq``) are *not* bit
identical under saturation, which is why the minimizer elides parents,
duplicates, and dead covers only — never one arm of a partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..ir.nodes import Cover, Expr, Module, PrimOp, UIntLiteral, When
from ..ir.traversal import walk_stmts
from ..passes.base import CompileState, Pass

#: Version of the minimization algorithm.  Part of the model-cache key:
#: a new version may elide a different basis for the same circuit text,
#: which changes the generated counter code.
MINIMIZER_VERSION = 1

#: One literal of a cover condition: (polarity, 1-bit expression).
Atom = tuple[bool, Expr]

#: A reconstruction recipe: non-negative ``(coefficient, basis_cover)``
#: terms summed (then clamped at the saturation limit).  Empty = the
#: cover is statically dead and reconstructs as 0.  Stored as signed
#: integers in the CoverageDB schema; the current minimizer only emits
#: coefficients >= 1 (see the saturation-soundness note above).
Recipe = list[tuple[int, str]]


def _is_true(expr: Expr) -> bool:
    return isinstance(expr, UIntLiteral) and expr.value == 1 and expr.width == 1


def _is_false(expr: Expr) -> bool:
    return isinstance(expr, UIntLiteral) and expr.value == 0


def decompose(expr: Expr, polarity: bool = True) -> Optional[frozenset[Atom]]:
    """Split a 1-bit condition into polarity-tagged conjunction literals.

    ``and`` nodes are flattened and ``not`` nodes peeled into the
    polarity bit; anything else is an opaque atom (frozen Expr nodes
    compare structurally, so syntactically identical predicates from
    sibling branches collide as intended).  A negated conjunction is not
    a conjunction of literals, so ``not(a and b)`` stays one atom.
    Returns ``None`` for a constant-false condition (the caller treats
    the cover as dead) and the empty set for constant true.
    """
    if isinstance(expr, PrimOp):
        if expr.op == "not":
            return decompose(expr.args[0], not polarity)
        if expr.op == "and" and polarity:
            left = decompose(expr.args[0], True)
            right = decompose(expr.args[1], True)
            if left is None or right is None:
                return None
            return left | right
    if isinstance(expr, UIntLiteral) and expr.width == 1:
        truthy = bool(expr.value) == polarity
        return frozenset() if truthy else None
    return frozenset({(polarity, expr)})


def cover_atoms(cover: Cover) -> Optional[frozenset[Atom]]:
    """Normalized literal set of ``pred AND en``, or ``None`` if dead.

    A set containing both polarities of one expression is contradictory
    (the cover can never fire) and also returns ``None``.
    """
    pred = decompose(cover.pred)
    en = decompose(cover.en)
    if pred is None or en is None:
        return None
    atoms = pred | en
    exprs = {}
    for polarity, expr in atoms:
        if exprs.setdefault(expr, polarity) != polarity:
            return None  # p and not(p): structurally unsatisfiable
    return atoms


@dataclass
class ModuleImplications:
    """The cover-implication graph of one module (module-local names)."""

    module: str
    #: live cover -> its normalized literal set
    atoms: dict[str, frozenset]
    #: covers proven unable to fire (structural contradiction, absint
    #: always-false, or excluded by a reachability proof at every instance)
    dead: set[str]
    #: literal-set equivalence classes with >= 2 members (sorted names)
    equivalences: list[list[str]]
    #: parent cover -> (conseq-arm cover, alt-arm cover) partitions;
    #: ``count(parent) == count(conseq) + count(alt)`` cycle-by-cycle
    partitions: dict[str, tuple[str, str]]
    #: child cover -> one immediate guard parent (``child <= parent``)
    guards: dict[str, str]

    def edge_count(self) -> int:
        return (
            len(self.partitions) * 2
            + sum(len(c) - 1 for c in self.equivalences)
            + len(self.guards)
        )


def analyze_module_covers(
    module: Module,
    dead_covers: Iterable[str] = (),
    use_absint: bool = True,
    dataflow=None,
) -> ModuleImplications:
    """Build the implication graph over ``module``'s cover statements.

    ``dead_covers`` are names already proven unreachable (the composed
    reachability exclusions); they never enter the graph.  With
    ``use_absint`` the abstract interpreter prunes proven-true literals
    (tightening equivalence/partition detection) and marks covers with a
    proven-false literal dead.
    """
    covers = [s for s in walk_stmts(module.body) if isinstance(s, Cover)]
    dead = {name for name in dead_covers}
    atoms: dict[str, frozenset] = {}

    abstract = None
    if use_absint and covers:
        from .absint import ModuleAbstract

        try:
            abstract = ModuleAbstract(module, dataflow)
        except Exception:
            abstract = None  # analysis is best-effort; structure still holds

    def normalize(raw: frozenset) -> Optional[frozenset]:
        if abstract is None:
            return raw
        kept = []
        for polarity, expr in raw:
            try:
                value = abstract.eval(expr)
            except Exception:
                kept.append((polarity, expr))
                continue
            always_false = value.hi == 0
            always_true = value.lo >= 1
            if (polarity and always_false) or (not polarity and always_true):
                return None  # one literal can never hold: cover is dead
            if (polarity and always_true) or (not polarity and always_false):
                continue  # literal always holds: drop it
            kept.append((polarity, expr))
        return frozenset(kept)

    for cover in covers:
        if cover.name in dead:
            continue
        raw = cover_atoms(cover)
        normalized = normalize(raw) if raw is not None else None
        if normalized is None:
            dead.add(cover.name)
        else:
            atoms[cover.name] = normalized

    # -- equivalences: identical normalized literal sets --------------------
    by_set: dict[frozenset, list[str]] = {}
    for name in sorted(atoms):
        by_set.setdefault(atoms[name], []).append(name)
    equivalences = [names for names in by_set.values() if len(names) > 1]

    # -- partitions: parent = conseq + alt ----------------------------------
    # ExpandWhens gives the alt arm a single negative literal ``not p``
    # over the parent's set, and the conseq arm ``decompose(p)``.  So for
    # every negative literal of every cover, check whether removing it
    # yields an existing parent set and replacing it with the predicate's
    # own decomposition yields an existing sibling set.
    partitions: dict[str, tuple[str, str]] = {}
    for atom_set, names in by_set.items():
        for polarity, expr in atom_set:
            if polarity:
                continue
            parent_set = atom_set - {(polarity, expr)}
            parents = by_set.get(parent_set)
            if not parents:
                continue
            conseq_extra = decompose(expr, True)
            if conseq_extra is None:
                continue
            sibling_set = frozenset(parent_set | conseq_extra)
            if sibling_set == atom_set or sibling_set == parent_set:
                continue
            siblings = by_set.get(sibling_set)
            if not siblings:
                continue
            for parent in parents:
                partitions.setdefault(parent, (siblings[0], names[0]))

    # -- guard implications: strict superset => child <= parent -------------
    guards: dict[str, str] = {}
    for atom_set, names in by_set.items():
        best: Optional[str] = None
        for polarity, expr in atom_set:
            parent_set = atom_set - {(polarity, expr)}
            parents = by_set.get(parent_set)
            if parents and parents[0] not in names:
                best = parents[0]
                break
        if best is not None:
            for name in names:
                guards[name] = best

    return ModuleImplications(
        module=module.name,
        atoms=atoms,
        dead=dead,
        equivalences=equivalences,
        partitions=partitions,
        guards=guards,
    )


@dataclass
class MinimizeResult:
    """Basis selection for one module: what to keep, how to rebuild the rest."""

    basis: set[str]
    #: elided cover -> fully resolved recipe over basis covers only
    recipes: dict[str, Recipe] = field(default_factory=dict)


def minimize_basis(analysis: ModuleImplications) -> MinimizeResult:
    """Derive a minimal spanning basis from the implication graph.

    Elides (a) dead covers (empty recipe), (b) equivalence-class
    non-representatives (recipe: 1x representative) and (c) partition
    parents (recipe: sum of the two arms), then resolves recipes
    transitively so every term references a basis cover.  Resolution
    terminates because equivalence points to a same-set representative
    and partitions point to strictly larger literal sets; a resolution
    cycle (which the construction should never produce) conservatively
    re-materializes the cover instead of failing.
    """
    raw: dict[str, Recipe] = {name: [] for name in analysis.dead}
    for names in analysis.equivalences:
        rep = names[0]
        for other in names[1:]:
            raw[other] = [(1, rep)]
    for parent, (conseq, alt) in analysis.partitions.items():
        if parent in raw:
            continue  # already elided as an equivalence duplicate
        raw[parent] = [(1, conseq), (1, alt)]

    resolved: dict[str, Recipe] = {}

    def resolve(name: str, visiting: set[str]) -> Optional[dict[str, int]]:
        """``basis cover -> coefficient`` for one elided cover, or None
        on a resolution cycle."""
        if name in visiting:
            return None
        terms: dict[str, int] = {}
        visiting.add(name)
        try:
            for coefficient, target in raw[name]:
                if target not in raw:
                    terms[target] = terms.get(target, 0) + coefficient
                    continue
                inner = resolve(target, visiting)
                if inner is None:
                    return None
                for basis_name, basis_coefficient in inner.items():
                    terms[basis_name] = (
                        terms.get(basis_name, 0)
                        + coefficient * basis_coefficient
                    )
        finally:
            visiting.discard(name)
        return terms

    dropped = True
    while dropped:
        dropped = False
        resolved = {}
        for name in sorted(raw):
            flat = resolve(name, set())
            if flat is None:
                del raw[name]  # cycle: keep this cover materialized
                dropped = True
                break
            resolved[name] = sorted(flat.items(), key=lambda kv: kv[0])
            resolved[name] = [(c, n) for n, c in resolved[name]]

    live = set(analysis.atoms) | analysis.dead
    basis = {name for name in live if name not in resolved}
    return MinimizeResult(basis=basis, recipes=resolved)


def _strip_covers(block: list, names: set[str]) -> list:
    out = []
    for stmt in block:
        if isinstance(stmt, Cover) and stmt.name in names:
            continue
        if isinstance(stmt, When):
            stmt.conseq = _strip_covers(stmt.conseq, names)
            stmt.alt = _strip_covers(stmt.alt, names)
        out.append(stmt)
    return out


@dataclass
class MinimizeSummary:
    """What one minimization run did (stored under state.metadata)."""

    total: int = 0
    elided: int = 0
    per_metric: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def reduction_pct(self) -> float:
        return 100.0 * self.elided / self.total if self.total else 0.0


class MinimizeCoversPass(Pass):
    """Replace each module's covers with a minimal spanning basis.

    Runs after every instrumentation pass (module-level, before any
    flatten): elided ``Cover`` statements are removed from the module
    bodies and their reconstruction recipes recorded in the
    :class:`~repro.coverage.common.CoverageDB`, keyed module-locally so
    reconstruction applies at every instance path.  Reachability
    exclusions present in the DB compose in: a cover excluded at every
    instance is elided with an empty recipe.
    """

    def __init__(self, db, use_absint: bool = True) -> None:
        self.db = db
        self.use_absint = use_absint

    def run(self, state: CompileState) -> CompileState:
        from ..coverage.common import InstanceTree, excluded_module_covers

        tree = InstanceTree(state.circuit)
        excluded = excluded_module_covers(self.db, tree)
        metric_of: dict[tuple[str, str], str] = {}
        for metric in self.db.metrics():
            for module, name, _payload in self.db.covers_of(metric):
                metric_of[(module, name)] = metric

        summary = MinimizeSummary()
        for module in state.circuit.modules:
            cover_names = [
                s.name for s in walk_stmts(module.body) if isinstance(s, Cover)
            ]
            if not cover_names:
                continue
            dead = {
                local for (mod, local) in excluded if mod == module.name
            }
            analysis = analyze_module_covers(
                module, dead_covers=dead, use_absint=self.use_absint
            )
            result = minimize_basis(analysis)
            elided = set(result.recipes)
            module.body = _strip_covers(module.body, elided)
            for name, recipe in result.recipes.items():
                self.db.add_recipe(module.name, name, recipe)
            for name in cover_names:
                metric = metric_of.get((module.name, name), "unknown")
                total, gone = summary.per_metric.get(metric, (0, 0))
                summary.per_metric[metric] = (
                    total + 1, gone + (1 if name in elided else 0)
                )
            summary.total += len(cover_names)
            summary.elided += len(elided)

        state.metadata["minimize"] = summary
        obs = _get_obs()
        if obs.enabled:
            for metric, (total, gone) in summary.per_metric.items():
                obs.inc("repro_instrument_covers_total", total, metric=metric)
                obs.inc(
                    "repro_instrument_covers_elided_total", gone, metric=metric
                )
        return state


def minimize_circuit(circuit, db=None, use_absint: bool = True):
    """Minimize an already-instrumented circuit (the ``simulate`` path).

    Returns ``(CompileState, CoverageDB)`` where the state's circuit
    counts only basis covers and the DB carries the recipes needed to
    reconstruct the full counts.  ``db`` may carry reachability
    exclusions to compose in.
    """
    import copy

    from ..coverage.common import CoverageDB

    db = db if db is not None else CoverageDB()
    state = CompileState(copy.deepcopy(circuit))
    with _get_obs().span("minimize", cat="compile", circuit=circuit.main):
        state = MinimizeCoversPass(db, use_absint=use_absint).run(state)
    return state, db


# -- lint integration --------------------------------------------------------

from .diagnostics import Diagnostics, Severity, register_rule  # noqa: E402

register_rule(
    "cover-redundant-partition",
    Severity.INFO,
    "cover equals the sum of its branch arms",
    "The cover's firing condition is partitioned exactly by a when's two "
    "arms, so its count is the sum of the arm covers and its counter can "
    "be elided (`--min-instrument` reconstructs it at report time).",
    category="coverage",
    example=(
        "when p:   ; cover l_parent partitions into l_conseq (p) and\n"
        "  ...     ; l_else (not p): count(l_parent) =\n"
        "else:     ;   count(l_conseq) + count(l_else)\n"
        "  ..."
    ),
)

register_rule(
    "cover-redundant-equiv",
    Severity.INFO,
    "cover always fires together with another cover",
    "Two covers have the same normalized firing condition (after "
    "abstract-interpretation literal pruning), so either counter alone "
    "determines both counts.",
    category="coverage",
    example=(
        "when x: cover a  ; a second `when x:` block later in the module\n"
        "when x: cover b  ; gives b the same condition as a"
    ),
)

register_rule(
    "cover-redundant-implied",
    Severity.INFO,
    "cover is dominated by an enclosing guard's cover",
    "The cover's condition strictly extends another cover's, so it can "
    "only fire on cycles where the implying cover fires "
    "(count(child) <= count(parent)); hitting the parent is necessary "
    "but not sufficient for hitting this point.",
    category="coverage",
    example=(
        "when p:        ; cover l_inner can only fire when l_outer\n"
        "  cover l_outer; (condition p) fires: its condition is p and q\n"
        "  when q:\n"
        "    cover l_inner"
    ),
)


def check_redundant_covers(
    module: Module, diags: Diagnostics, use_absint: bool = True
) -> None:
    """Emit the ``cover-redundant-*`` rule family for one lowered module.

    Info severity: these are opportunities (`--min-instrument` elides
    partition parents and equivalence duplicates), not defects.  Each
    finding names the implying cover(s).
    """
    infos = {
        s.name: s.info for s in walk_stmts(module.body) if isinstance(s, Cover)
    }
    if not infos:
        return
    analysis = analyze_module_covers(module, use_absint=use_absint)
    flagged: set[str] = set()
    for parent, (conseq, alt) in sorted(analysis.partitions.items()):
        diags.emit(
            "cover-redundant-partition",
            f"cover '{parent}' is implied by its branch arms: "
            f"count({parent}) = count({conseq}) + count({alt})",
            module=module.name,
            info=infos.get(parent, next(iter(infos.values()))),
            signal=parent,
        )
        flagged.add(parent)
    for names in analysis.equivalences:
        rep = names[0]
        for other in names[1:]:
            diags.emit(
                "cover-redundant-equiv",
                f"cover '{other}' always fires with cover '{rep}' "
                f"(identical firing condition)",
                module=module.name,
                info=infos.get(other, next(iter(infos.values()))),
                signal=other,
            )
            flagged.add(other)
    for child, parent in sorted(analysis.guards.items()):
        if child in flagged or parent in flagged:
            continue
        diags.emit(
            "cover-redundant-implied",
            f"cover '{child}' can only fire when cover '{parent}' fires "
            f"(nested guard: count({child}) <= count({parent}))",
            module=module.name,
            info=infos.get(child, next(iter(infos.values()))),
            signal=child,
        )


# Telemetry is imported lazily (same cycle-avoidance dance as passes/base.py).
_obs_handle = None


def _get_obs():
    global _obs_handle
    if _obs_handle is None:
        from ..runtime.telemetry import obs as _o
        _obs_handle = _o
    return _obs_handle
